# Empty compiler generated dependencies file for ext_beamformer_scaling.
# This may be replaced when dependencies are built.
