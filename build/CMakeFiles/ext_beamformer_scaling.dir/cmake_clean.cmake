file(REMOVE_RECURSE
  "CMakeFiles/ext_beamformer_scaling.dir/bench/ext_beamformer_scaling.cpp.o"
  "CMakeFiles/ext_beamformer_scaling.dir/bench/ext_beamformer_scaling.cpp.o.d"
  "bench/ext_beamformer_scaling"
  "bench/ext_beamformer_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_beamformer_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
