file(REMOVE_RECURSE
  "CMakeFiles/fig6_speech_errorgen.dir/bench/fig6_speech_errorgen.cpp.o"
  "CMakeFiles/fig6_speech_errorgen.dir/bench/fig6_speech_errorgen.cpp.o.d"
  "bench/fig6_speech_errorgen"
  "bench/fig6_speech_errorgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_speech_errorgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
