# Empty dependencies file for fig6_speech_errorgen.
# This may be replaced when dependencies are built.
