file(REMOVE_RECURSE
  "CMakeFiles/ext_heterogeneous.dir/bench/ext_heterogeneous.cpp.o"
  "CMakeFiles/ext_heterogeneous.dir/bench/ext_heterogeneous.cpp.o.d"
  "bench/ext_heterogeneous"
  "bench/ext_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
