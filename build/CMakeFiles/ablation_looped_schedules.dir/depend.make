# Empty dependencies file for ablation_looped_schedules.
# This may be replaced when dependencies are built.
