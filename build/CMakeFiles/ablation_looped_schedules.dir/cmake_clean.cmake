file(REMOVE_RECURSE
  "CMakeFiles/ablation_looped_schedules.dir/bench/ablation_looped_schedules.cpp.o"
  "CMakeFiles/ablation_looped_schedules.dir/bench/ablation_looped_schedules.cpp.o.d"
  "bench/ablation_looped_schedules"
  "bench/ablation_looped_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_looped_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
