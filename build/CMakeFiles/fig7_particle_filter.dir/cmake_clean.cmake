file(REMOVE_RECURSE
  "CMakeFiles/fig7_particle_filter.dir/bench/fig7_particle_filter.cpp.o"
  "CMakeFiles/fig7_particle_filter.dir/bench/fig7_particle_filter.cpp.o.d"
  "bench/fig7_particle_filter"
  "bench/fig7_particle_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_particle_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
