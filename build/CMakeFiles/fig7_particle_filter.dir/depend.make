# Empty dependencies file for fig7_particle_filter.
# This may be replaced when dependencies are built.
