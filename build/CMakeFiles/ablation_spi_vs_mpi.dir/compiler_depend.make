# Empty compiler generated dependencies file for ablation_spi_vs_mpi.
# This may be replaced when dependencies are built.
