file(REMOVE_RECURSE
  "CMakeFiles/ablation_spi_vs_mpi.dir/bench/ablation_spi_vs_mpi.cpp.o"
  "CMakeFiles/ablation_spi_vs_mpi.dir/bench/ablation_spi_vs_mpi.cpp.o.d"
  "bench/ablation_spi_vs_mpi"
  "bench/ablation_spi_vs_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spi_vs_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
