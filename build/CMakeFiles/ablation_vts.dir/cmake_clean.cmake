file(REMOVE_RECURSE
  "CMakeFiles/ablation_vts.dir/bench/ablation_vts.cpp.o"
  "CMakeFiles/ablation_vts.dir/bench/ablation_vts.cpp.o.d"
  "bench/ablation_vts"
  "bench/ablation_vts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
