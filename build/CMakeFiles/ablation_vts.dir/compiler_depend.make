# Empty compiler generated dependencies file for ablation_vts.
# This may be replaced when dependencies are built.
