# Empty compiler generated dependencies file for table2_area_particle.
# This may be replaced when dependencies are built.
