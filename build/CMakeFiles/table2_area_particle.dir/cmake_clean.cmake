file(REMOVE_RECURSE
  "CMakeFiles/table2_area_particle.dir/bench/table2_area_particle.cpp.o"
  "CMakeFiles/table2_area_particle.dir/bench/table2_area_particle.cpp.o.d"
  "bench/table2_area_particle"
  "bench/table2_area_particle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_area_particle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
