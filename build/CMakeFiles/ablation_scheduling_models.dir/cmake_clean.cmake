file(REMOVE_RECURSE
  "CMakeFiles/ablation_scheduling_models.dir/bench/ablation_scheduling_models.cpp.o"
  "CMakeFiles/ablation_scheduling_models.dir/bench/ablation_scheduling_models.cpp.o.d"
  "bench/ablation_scheduling_models"
  "bench/ablation_scheduling_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scheduling_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
