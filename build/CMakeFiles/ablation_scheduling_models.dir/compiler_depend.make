# Empty compiler generated dependencies file for ablation_scheduling_models.
# This may be replaced when dependencies are built.
