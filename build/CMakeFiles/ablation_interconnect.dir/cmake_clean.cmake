file(REMOVE_RECURSE
  "CMakeFiles/ablation_interconnect.dir/bench/ablation_interconnect.cpp.o"
  "CMakeFiles/ablation_interconnect.dir/bench/ablation_interconnect.cpp.o.d"
  "bench/ablation_interconnect"
  "bench/ablation_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
