file(REMOVE_RECURSE
  "CMakeFiles/ablation_resync.dir/bench/ablation_resync.cpp.o"
  "CMakeFiles/ablation_resync.dir/bench/ablation_resync.cpp.o.d"
  "bench/ablation_resync"
  "bench/ablation_resync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
