# Empty compiler generated dependencies file for micro_compile.
# This may be replaced when dependencies are built.
