file(REMOVE_RECURSE
  "CMakeFiles/micro_compile.dir/bench/micro_compile.cpp.o"
  "CMakeFiles/micro_compile.dir/bench/micro_compile.cpp.o.d"
  "bench/micro_compile"
  "bench/micro_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
