file(REMOVE_RECURSE
  "CMakeFiles/ext_vectorization.dir/bench/ext_vectorization.cpp.o"
  "CMakeFiles/ext_vectorization.dir/bench/ext_vectorization.cpp.o.d"
  "bench/ext_vectorization"
  "bench/ext_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
