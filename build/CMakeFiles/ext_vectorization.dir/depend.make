# Empty dependencies file for ext_vectorization.
# This may be replaced when dependencies are built.
