file(REMOVE_RECURSE
  "CMakeFiles/table1_area_speech.dir/bench/table1_area_speech.cpp.o"
  "CMakeFiles/table1_area_speech.dir/bench/table1_area_speech.cpp.o.d"
  "bench/table1_area_speech"
  "bench/table1_area_speech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_area_speech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
