# Empty compiler generated dependencies file for ablation_bbs_ubs.
# This may be replaced when dependencies are built.
