file(REMOVE_RECURSE
  "CMakeFiles/ablation_bbs_ubs.dir/bench/ablation_bbs_ubs.cpp.o"
  "CMakeFiles/ablation_bbs_ubs.dir/bench/ablation_bbs_ubs.cpp.o.d"
  "bench/ablation_bbs_ubs"
  "bench/ablation_bbs_ubs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bbs_ubs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
