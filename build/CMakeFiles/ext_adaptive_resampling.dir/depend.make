# Empty dependencies file for ext_adaptive_resampling.
# This may be replaced when dependencies are built.
