file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_resampling.dir/bench/ext_adaptive_resampling.cpp.o"
  "CMakeFiles/ext_adaptive_resampling.dir/bench/ext_adaptive_resampling.cpp.o.d"
  "bench/ext_adaptive_resampling"
  "bench/ext_adaptive_resampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_resampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
