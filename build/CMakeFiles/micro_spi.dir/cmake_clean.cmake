file(REMOVE_RECURSE
  "CMakeFiles/micro_spi.dir/bench/micro_spi.cpp.o"
  "CMakeFiles/micro_spi.dir/bench/micro_spi.cpp.o.d"
  "bench/micro_spi"
  "bench/micro_spi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
