# Empty dependencies file for micro_spi.
# This may be replaced when dependencies are built.
