file(REMOVE_RECURSE
  "CMakeFiles/spi_compile.dir/spi_compile.cpp.o"
  "CMakeFiles/spi_compile.dir/spi_compile.cpp.o.d"
  "spi_compile"
  "spi_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
