# Empty dependencies file for spi_compile.
# This may be replaced when dependencies are built.
