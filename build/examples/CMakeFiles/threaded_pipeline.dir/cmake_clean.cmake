file(REMOVE_RECURSE
  "CMakeFiles/threaded_pipeline.dir/threaded_pipeline.cpp.o"
  "CMakeFiles/threaded_pipeline.dir/threaded_pipeline.cpp.o.d"
  "threaded_pipeline"
  "threaded_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
