# Empty dependencies file for threaded_pipeline.
# This may be replaced when dependencies are built.
