file(REMOVE_RECURSE
  "CMakeFiles/conditional_stream.dir/conditional_stream.cpp.o"
  "CMakeFiles/conditional_stream.dir/conditional_stream.cpp.o.d"
  "conditional_stream"
  "conditional_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
