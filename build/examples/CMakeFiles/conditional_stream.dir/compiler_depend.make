# Empty compiler generated dependencies file for conditional_stream.
# This may be replaced when dependencies are built.
