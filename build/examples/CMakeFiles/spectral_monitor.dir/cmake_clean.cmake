file(REMOVE_RECURSE
  "CMakeFiles/spectral_monitor.dir/spectral_monitor.cpp.o"
  "CMakeFiles/spectral_monitor.dir/spectral_monitor.cpp.o.d"
  "spectral_monitor"
  "spectral_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
