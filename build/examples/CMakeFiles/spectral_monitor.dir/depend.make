# Empty dependencies file for spectral_monitor.
# This may be replaced when dependencies are built.
