file(REMOVE_RECURSE
  "CMakeFiles/multirate_rate_converter.dir/multirate_rate_converter.cpp.o"
  "CMakeFiles/multirate_rate_converter.dir/multirate_rate_converter.cpp.o.d"
  "multirate_rate_converter"
  "multirate_rate_converter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirate_rate_converter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
