# Empty compiler generated dependencies file for multirate_rate_converter.
# This may be replaced when dependencies are built.
