file(REMOVE_RECURSE
  "CMakeFiles/particle_filter_tracking.dir/particle_filter_tracking.cpp.o"
  "CMakeFiles/particle_filter_tracking.dir/particle_filter_tracking.cpp.o.d"
  "particle_filter_tracking"
  "particle_filter_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particle_filter_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
