# Empty dependencies file for particle_filter_tracking.
# This may be replaced when dependencies are built.
