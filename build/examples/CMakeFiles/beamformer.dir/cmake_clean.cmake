file(REMOVE_RECURSE
  "CMakeFiles/beamformer.dir/beamformer.cpp.o"
  "CMakeFiles/beamformer.dir/beamformer.cpp.o.d"
  "beamformer"
  "beamformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beamformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
