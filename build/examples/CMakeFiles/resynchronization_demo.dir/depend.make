# Empty dependencies file for resynchronization_demo.
# This may be replaced when dependencies are built.
