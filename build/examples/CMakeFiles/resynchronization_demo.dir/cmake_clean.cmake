file(REMOVE_RECURSE
  "CMakeFiles/resynchronization_demo.dir/resynchronization_demo.cpp.o"
  "CMakeFiles/resynchronization_demo.dir/resynchronization_demo.cpp.o.d"
  "resynchronization_demo"
  "resynchronization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resynchronization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
