file(REMOVE_RECURSE
  "CMakeFiles/auto_partition.dir/auto_partition.cpp.o"
  "CMakeFiles/auto_partition.dir/auto_partition.cpp.o.d"
  "auto_partition"
  "auto_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
