# Empty dependencies file for vts_dynamic_rates.
# This may be replaced when dependencies are built.
