file(REMOVE_RECURSE
  "CMakeFiles/vts_dynamic_rates.dir/vts_dynamic_rates.cpp.o"
  "CMakeFiles/vts_dynamic_rates.dir/vts_dynamic_rates.cpp.o.d"
  "vts_dynamic_rates"
  "vts_dynamic_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vts_dynamic_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
