# Empty compiler generated dependencies file for speech_compression.
# This may be replaced when dependencies are built.
