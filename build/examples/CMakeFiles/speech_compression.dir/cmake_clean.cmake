file(REMOVE_RECURSE
  "CMakeFiles/speech_compression.dir/speech_compression.cpp.o"
  "CMakeFiles/speech_compression.dir/speech_compression.cpp.o.d"
  "speech_compression"
  "speech_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
