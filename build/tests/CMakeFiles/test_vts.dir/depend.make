# Empty dependencies file for test_vts.
# This may be replaced when dependencies are built.
