file(REMOVE_RECURSE
  "CMakeFiles/test_vts.dir/test_vts.cpp.o"
  "CMakeFiles/test_vts.dir/test_vts.cpp.o.d"
  "test_vts"
  "test_vts.pdb"
  "test_vts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
