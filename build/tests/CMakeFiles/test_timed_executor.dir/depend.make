# Empty dependencies file for test_timed_executor.
# This may be replaced when dependencies are built.
