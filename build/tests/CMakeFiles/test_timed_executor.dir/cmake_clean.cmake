file(REMOVE_RECURSE
  "CMakeFiles/test_timed_executor.dir/test_timed_executor.cpp.o"
  "CMakeFiles/test_timed_executor.dir/test_timed_executor.cpp.o.d"
  "test_timed_executor"
  "test_timed_executor.pdb"
  "test_timed_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timed_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
