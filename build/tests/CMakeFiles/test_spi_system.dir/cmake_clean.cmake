file(REMOVE_RECURSE
  "CMakeFiles/test_spi_system.dir/test_spi_system.cpp.o"
  "CMakeFiles/test_spi_system.dir/test_spi_system.cpp.o.d"
  "test_spi_system"
  "test_spi_system.pdb"
  "test_spi_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spi_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
