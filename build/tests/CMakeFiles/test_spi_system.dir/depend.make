# Empty dependencies file for test_spi_system.
# This may be replaced when dependencies are built.
