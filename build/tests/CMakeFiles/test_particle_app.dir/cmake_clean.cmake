file(REMOVE_RECURSE
  "CMakeFiles/test_particle_app.dir/test_particle_app.cpp.o"
  "CMakeFiles/test_particle_app.dir/test_particle_app.cpp.o.d"
  "test_particle_app"
  "test_particle_app.pdb"
  "test_particle_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_particle_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
