file(REMOVE_RECURSE
  "CMakeFiles/test_speech_app.dir/test_speech_app.cpp.o"
  "CMakeFiles/test_speech_app.dir/test_speech_app.cpp.o.d"
  "test_speech_app"
  "test_speech_app.pdb"
  "test_speech_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speech_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
