# Empty dependencies file for test_speech_app.
# This may be replaced when dependencies are built.
