file(REMOVE_RECURSE
  "CMakeFiles/test_fpga_area.dir/test_fpga_area.cpp.o"
  "CMakeFiles/test_fpga_area.dir/test_fpga_area.cpp.o.d"
  "test_fpga_area"
  "test_fpga_area.pdb"
  "test_fpga_area[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
