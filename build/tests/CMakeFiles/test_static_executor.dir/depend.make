# Empty dependencies file for test_static_executor.
# This may be replaced when dependencies are built.
