file(REMOVE_RECURSE
  "CMakeFiles/test_static_executor.dir/test_static_executor.cpp.o"
  "CMakeFiles/test_static_executor.dir/test_static_executor.cpp.o.d"
  "test_static_executor"
  "test_static_executor.pdb"
  "test_static_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
