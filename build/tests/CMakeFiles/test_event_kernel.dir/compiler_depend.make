# Empty compiler generated dependencies file for test_event_kernel.
# This may be replaced when dependencies are built.
