file(REMOVE_RECURSE
  "CMakeFiles/test_event_kernel.dir/test_event_kernel.cpp.o"
  "CMakeFiles/test_event_kernel.dir/test_event_kernel.cpp.o.d"
  "test_event_kernel"
  "test_event_kernel.pdb"
  "test_event_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
