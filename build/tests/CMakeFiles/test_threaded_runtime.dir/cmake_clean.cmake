file(REMOVE_RECURSE
  "CMakeFiles/test_threaded_runtime.dir/test_threaded_runtime.cpp.o"
  "CMakeFiles/test_threaded_runtime.dir/test_threaded_runtime.cpp.o.d"
  "test_threaded_runtime"
  "test_threaded_runtime.pdb"
  "test_threaded_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threaded_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
