# Empty compiler generated dependencies file for test_threaded_runtime.
# This may be replaced when dependencies are built.
