# Empty dependencies file for test_resync.
# This may be replaced when dependencies are built.
