file(REMOVE_RECURSE
  "CMakeFiles/test_resync.dir/test_resync.cpp.o"
  "CMakeFiles/test_resync.dir/test_resync.cpp.o.d"
  "test_resync"
  "test_resync.pdb"
  "test_resync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
