# Empty dependencies file for test_sync_graph.
# This may be replaced when dependencies are built.
