file(REMOVE_RECURSE
  "CMakeFiles/test_sync_graph.dir/test_sync_graph.cpp.o"
  "CMakeFiles/test_sync_graph.dir/test_sync_graph.cpp.o.d"
  "test_sync_graph"
  "test_sync_graph.pdb"
  "test_sync_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
