# Empty dependencies file for test_sdf_schedule.
# This may be replaced when dependencies are built.
