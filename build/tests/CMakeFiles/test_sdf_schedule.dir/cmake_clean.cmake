file(REMOVE_RECURSE
  "CMakeFiles/test_sdf_schedule.dir/test_sdf_schedule.cpp.o"
  "CMakeFiles/test_sdf_schedule.dir/test_sdf_schedule.cpp.o.d"
  "test_sdf_schedule"
  "test_sdf_schedule.pdb"
  "test_sdf_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdf_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
