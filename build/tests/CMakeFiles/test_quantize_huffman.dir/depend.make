# Empty dependencies file for test_quantize_huffman.
# This may be replaced when dependencies are built.
