file(REMOVE_RECURSE
  "CMakeFiles/test_quantize_huffman.dir/test_quantize_huffman.cpp.o"
  "CMakeFiles/test_quantize_huffman.dir/test_quantize_huffman.cpp.o.d"
  "test_quantize_huffman"
  "test_quantize_huffman.pdb"
  "test_quantize_huffman[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantize_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
