# Empty dependencies file for test_message_packing.
# This may be replaced when dependencies are built.
