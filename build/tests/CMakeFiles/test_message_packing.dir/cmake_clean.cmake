file(REMOVE_RECURSE
  "CMakeFiles/test_message_packing.dir/test_message_packing.cpp.o"
  "CMakeFiles/test_message_packing.dir/test_message_packing.cpp.o.d"
  "test_message_packing"
  "test_message_packing.pdb"
  "test_message_packing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
