# Empty compiler generated dependencies file for test_looped_schedule.
# This may be replaced when dependencies are built.
