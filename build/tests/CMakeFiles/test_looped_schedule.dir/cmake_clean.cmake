file(REMOVE_RECURSE
  "CMakeFiles/test_looped_schedule.dir/test_looped_schedule.cpp.o"
  "CMakeFiles/test_looped_schedule.dir/test_looped_schedule.cpp.o.d"
  "test_looped_schedule"
  "test_looped_schedule.pdb"
  "test_looped_schedule[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_looped_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
