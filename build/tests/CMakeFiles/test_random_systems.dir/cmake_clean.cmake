file(REMOVE_RECURSE
  "CMakeFiles/test_random_systems.dir/test_random_systems.cpp.o"
  "CMakeFiles/test_random_systems.dir/test_random_systems.cpp.o.d"
  "test_random_systems"
  "test_random_systems.pdb"
  "test_random_systems[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
