file(REMOVE_RECURSE
  "CMakeFiles/test_repetitions.dir/test_repetitions.cpp.o"
  "CMakeFiles/test_repetitions.dir/test_repetitions.cpp.o.d"
  "test_repetitions"
  "test_repetitions.pdb"
  "test_repetitions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repetitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
