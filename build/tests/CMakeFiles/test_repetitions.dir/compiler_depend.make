# Empty compiler generated dependencies file for test_repetitions.
# This may be replaced when dependencies are built.
