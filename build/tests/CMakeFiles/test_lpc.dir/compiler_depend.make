# Empty compiler generated dependencies file for test_lpc.
# This may be replaced when dependencies are built.
