file(REMOVE_RECURSE
  "CMakeFiles/test_lpc.dir/test_lpc.cpp.o"
  "CMakeFiles/test_lpc.dir/test_lpc.cpp.o.d"
  "test_lpc"
  "test_lpc.pdb"
  "test_lpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
