# Empty compiler generated dependencies file for test_hdl_model.
# This may be replaced when dependencies are built.
