file(REMOVE_RECURSE
  "CMakeFiles/test_hdl_model.dir/test_hdl_model.cpp.o"
  "CMakeFiles/test_hdl_model.dir/test_hdl_model.cpp.o.d"
  "test_hdl_model"
  "test_hdl_model.pdb"
  "test_hdl_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
