# Empty dependencies file for test_beamformer.
# This may be replaced when dependencies are built.
