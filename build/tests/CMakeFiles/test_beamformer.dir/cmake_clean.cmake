file(REMOVE_RECURSE
  "CMakeFiles/test_beamformer.dir/test_beamformer.cpp.o"
  "CMakeFiles/test_beamformer.dir/test_beamformer.cpp.o.d"
  "test_beamformer"
  "test_beamformer.pdb"
  "test_beamformer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beamformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
