file(REMOVE_RECURSE
  "CMakeFiles/spi_mpi.dir/mpi_comm.cpp.o"
  "CMakeFiles/spi_mpi.dir/mpi_comm.cpp.o.d"
  "libspi_mpi.a"
  "libspi_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
