# Empty compiler generated dependencies file for spi_mpi.
# This may be replaced when dependencies are built.
