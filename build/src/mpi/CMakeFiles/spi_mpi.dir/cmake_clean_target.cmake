file(REMOVE_RECURSE
  "libspi_mpi.a"
)
