file(REMOVE_RECURSE
  "libspi_dsp.a"
)
