
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/spi_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/spi_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/spi_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/spi_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/huffman.cpp" "src/dsp/CMakeFiles/spi_dsp.dir/huffman.cpp.o" "gcc" "src/dsp/CMakeFiles/spi_dsp.dir/huffman.cpp.o.d"
  "/root/repo/src/dsp/linalg.cpp" "src/dsp/CMakeFiles/spi_dsp.dir/linalg.cpp.o" "gcc" "src/dsp/CMakeFiles/spi_dsp.dir/linalg.cpp.o.d"
  "/root/repo/src/dsp/lpc.cpp" "src/dsp/CMakeFiles/spi_dsp.dir/lpc.cpp.o" "gcc" "src/dsp/CMakeFiles/spi_dsp.dir/lpc.cpp.o.d"
  "/root/repo/src/dsp/particle_filter.cpp" "src/dsp/CMakeFiles/spi_dsp.dir/particle_filter.cpp.o" "gcc" "src/dsp/CMakeFiles/spi_dsp.dir/particle_filter.cpp.o.d"
  "/root/repo/src/dsp/quantize.cpp" "src/dsp/CMakeFiles/spi_dsp.dir/quantize.cpp.o" "gcc" "src/dsp/CMakeFiles/spi_dsp.dir/quantize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
