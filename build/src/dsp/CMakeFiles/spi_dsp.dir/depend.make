# Empty dependencies file for spi_dsp.
# This may be replaced when dependencies are built.
