file(REMOVE_RECURSE
  "CMakeFiles/spi_dsp.dir/fft.cpp.o"
  "CMakeFiles/spi_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/spi_dsp.dir/fir.cpp.o"
  "CMakeFiles/spi_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/spi_dsp.dir/huffman.cpp.o"
  "CMakeFiles/spi_dsp.dir/huffman.cpp.o.d"
  "CMakeFiles/spi_dsp.dir/linalg.cpp.o"
  "CMakeFiles/spi_dsp.dir/linalg.cpp.o.d"
  "CMakeFiles/spi_dsp.dir/lpc.cpp.o"
  "CMakeFiles/spi_dsp.dir/lpc.cpp.o.d"
  "CMakeFiles/spi_dsp.dir/particle_filter.cpp.o"
  "CMakeFiles/spi_dsp.dir/particle_filter.cpp.o.d"
  "CMakeFiles/spi_dsp.dir/quantize.cpp.o"
  "CMakeFiles/spi_dsp.dir/quantize.cpp.o.d"
  "libspi_dsp.a"
  "libspi_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
