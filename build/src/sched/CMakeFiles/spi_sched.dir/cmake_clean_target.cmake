file(REMOVE_RECURSE
  "libspi_sched.a"
)
