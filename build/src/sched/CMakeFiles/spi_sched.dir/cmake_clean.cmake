file(REMOVE_RECURSE
  "CMakeFiles/spi_sched.dir/assignment.cpp.o"
  "CMakeFiles/spi_sched.dir/assignment.cpp.o.d"
  "CMakeFiles/spi_sched.dir/hsdf.cpp.o"
  "CMakeFiles/spi_sched.dir/hsdf.cpp.o.d"
  "CMakeFiles/spi_sched.dir/resync.cpp.o"
  "CMakeFiles/spi_sched.dir/resync.cpp.o.d"
  "CMakeFiles/spi_sched.dir/sync_dot.cpp.o"
  "CMakeFiles/spi_sched.dir/sync_dot.cpp.o.d"
  "CMakeFiles/spi_sched.dir/sync_graph.cpp.o"
  "CMakeFiles/spi_sched.dir/sync_graph.cpp.o.d"
  "libspi_sched.a"
  "libspi_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
