
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/assignment.cpp" "src/sched/CMakeFiles/spi_sched.dir/assignment.cpp.o" "gcc" "src/sched/CMakeFiles/spi_sched.dir/assignment.cpp.o.d"
  "/root/repo/src/sched/hsdf.cpp" "src/sched/CMakeFiles/spi_sched.dir/hsdf.cpp.o" "gcc" "src/sched/CMakeFiles/spi_sched.dir/hsdf.cpp.o.d"
  "/root/repo/src/sched/resync.cpp" "src/sched/CMakeFiles/spi_sched.dir/resync.cpp.o" "gcc" "src/sched/CMakeFiles/spi_sched.dir/resync.cpp.o.d"
  "/root/repo/src/sched/sync_dot.cpp" "src/sched/CMakeFiles/spi_sched.dir/sync_dot.cpp.o" "gcc" "src/sched/CMakeFiles/spi_sched.dir/sync_dot.cpp.o.d"
  "/root/repo/src/sched/sync_graph.cpp" "src/sched/CMakeFiles/spi_sched.dir/sync_graph.cpp.o" "gcc" "src/sched/CMakeFiles/spi_sched.dir/sync_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/spi_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
