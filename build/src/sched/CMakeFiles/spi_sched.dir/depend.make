# Empty dependencies file for spi_sched.
# This may be replaced when dependencies are built.
