file(REMOVE_RECURSE
  "libspi_dataflow.a"
)
