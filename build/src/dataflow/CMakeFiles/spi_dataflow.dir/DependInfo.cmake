
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/dot.cpp" "src/dataflow/CMakeFiles/spi_dataflow.dir/dot.cpp.o" "gcc" "src/dataflow/CMakeFiles/spi_dataflow.dir/dot.cpp.o.d"
  "/root/repo/src/dataflow/graph.cpp" "src/dataflow/CMakeFiles/spi_dataflow.dir/graph.cpp.o" "gcc" "src/dataflow/CMakeFiles/spi_dataflow.dir/graph.cpp.o.d"
  "/root/repo/src/dataflow/graph_algos.cpp" "src/dataflow/CMakeFiles/spi_dataflow.dir/graph_algos.cpp.o" "gcc" "src/dataflow/CMakeFiles/spi_dataflow.dir/graph_algos.cpp.o.d"
  "/root/repo/src/dataflow/looped_schedule.cpp" "src/dataflow/CMakeFiles/spi_dataflow.dir/looped_schedule.cpp.o" "gcc" "src/dataflow/CMakeFiles/spi_dataflow.dir/looped_schedule.cpp.o.d"
  "/root/repo/src/dataflow/repetitions.cpp" "src/dataflow/CMakeFiles/spi_dataflow.dir/repetitions.cpp.o" "gcc" "src/dataflow/CMakeFiles/spi_dataflow.dir/repetitions.cpp.o.d"
  "/root/repo/src/dataflow/sdf_schedule.cpp" "src/dataflow/CMakeFiles/spi_dataflow.dir/sdf_schedule.cpp.o" "gcc" "src/dataflow/CMakeFiles/spi_dataflow.dir/sdf_schedule.cpp.o.d"
  "/root/repo/src/dataflow/vts.cpp" "src/dataflow/CMakeFiles/spi_dataflow.dir/vts.cpp.o" "gcc" "src/dataflow/CMakeFiles/spi_dataflow.dir/vts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
