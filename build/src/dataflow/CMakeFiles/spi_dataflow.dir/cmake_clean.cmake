file(REMOVE_RECURSE
  "CMakeFiles/spi_dataflow.dir/dot.cpp.o"
  "CMakeFiles/spi_dataflow.dir/dot.cpp.o.d"
  "CMakeFiles/spi_dataflow.dir/graph.cpp.o"
  "CMakeFiles/spi_dataflow.dir/graph.cpp.o.d"
  "CMakeFiles/spi_dataflow.dir/graph_algos.cpp.o"
  "CMakeFiles/spi_dataflow.dir/graph_algos.cpp.o.d"
  "CMakeFiles/spi_dataflow.dir/looped_schedule.cpp.o"
  "CMakeFiles/spi_dataflow.dir/looped_schedule.cpp.o.d"
  "CMakeFiles/spi_dataflow.dir/repetitions.cpp.o"
  "CMakeFiles/spi_dataflow.dir/repetitions.cpp.o.d"
  "CMakeFiles/spi_dataflow.dir/sdf_schedule.cpp.o"
  "CMakeFiles/spi_dataflow.dir/sdf_schedule.cpp.o.d"
  "CMakeFiles/spi_dataflow.dir/vts.cpp.o"
  "CMakeFiles/spi_dataflow.dir/vts.cpp.o.d"
  "libspi_dataflow.a"
  "libspi_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
