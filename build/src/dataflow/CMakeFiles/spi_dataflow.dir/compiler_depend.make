# Empty compiler generated dependencies file for spi_dataflow.
# This may be replaced when dependencies are built.
