# Empty dependencies file for spi_apps.
# This may be replaced when dependencies are built.
