file(REMOVE_RECURSE
  "libspi_apps.a"
)
