
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/beamformer_app.cpp" "src/apps/CMakeFiles/spi_apps.dir/beamformer_app.cpp.o" "gcc" "src/apps/CMakeFiles/spi_apps.dir/beamformer_app.cpp.o.d"
  "/root/repo/src/apps/particle_app.cpp" "src/apps/CMakeFiles/spi_apps.dir/particle_app.cpp.o" "gcc" "src/apps/CMakeFiles/spi_apps.dir/particle_app.cpp.o.d"
  "/root/repo/src/apps/speech_app.cpp" "src/apps/CMakeFiles/spi_apps.dir/speech_app.cpp.o" "gcc" "src/apps/CMakeFiles/spi_apps.dir/speech_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/spi_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/spi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/spi_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
