file(REMOVE_RECURSE
  "CMakeFiles/spi_apps.dir/beamformer_app.cpp.o"
  "CMakeFiles/spi_apps.dir/beamformer_app.cpp.o.d"
  "CMakeFiles/spi_apps.dir/particle_app.cpp.o"
  "CMakeFiles/spi_apps.dir/particle_app.cpp.o.d"
  "CMakeFiles/spi_apps.dir/speech_app.cpp.o"
  "CMakeFiles/spi_apps.dir/speech_app.cpp.o.d"
  "libspi_apps.a"
  "libspi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
