file(REMOVE_RECURSE
  "CMakeFiles/spi_core.dir/channel.cpp.o"
  "CMakeFiles/spi_core.dir/channel.cpp.o.d"
  "CMakeFiles/spi_core.dir/functional.cpp.o"
  "CMakeFiles/spi_core.dir/functional.cpp.o.d"
  "CMakeFiles/spi_core.dir/hdl_model.cpp.o"
  "CMakeFiles/spi_core.dir/hdl_model.cpp.o.d"
  "CMakeFiles/spi_core.dir/message.cpp.o"
  "CMakeFiles/spi_core.dir/message.cpp.o.d"
  "CMakeFiles/spi_core.dir/packing.cpp.o"
  "CMakeFiles/spi_core.dir/packing.cpp.o.d"
  "CMakeFiles/spi_core.dir/spi_system.cpp.o"
  "CMakeFiles/spi_core.dir/spi_system.cpp.o.d"
  "CMakeFiles/spi_core.dir/text_format.cpp.o"
  "CMakeFiles/spi_core.dir/text_format.cpp.o.d"
  "CMakeFiles/spi_core.dir/threaded_runtime.cpp.o"
  "CMakeFiles/spi_core.dir/threaded_runtime.cpp.o.d"
  "libspi_core.a"
  "libspi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
