
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/spi_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/functional.cpp" "src/core/CMakeFiles/spi_core.dir/functional.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/functional.cpp.o.d"
  "/root/repo/src/core/hdl_model.cpp" "src/core/CMakeFiles/spi_core.dir/hdl_model.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/hdl_model.cpp.o.d"
  "/root/repo/src/core/message.cpp" "src/core/CMakeFiles/spi_core.dir/message.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/message.cpp.o.d"
  "/root/repo/src/core/packing.cpp" "src/core/CMakeFiles/spi_core.dir/packing.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/packing.cpp.o.d"
  "/root/repo/src/core/spi_system.cpp" "src/core/CMakeFiles/spi_core.dir/spi_system.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/spi_system.cpp.o.d"
  "/root/repo/src/core/text_format.cpp" "src/core/CMakeFiles/spi_core.dir/text_format.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/text_format.cpp.o.d"
  "/root/repo/src/core/threaded_runtime.cpp" "src/core/CMakeFiles/spi_core.dir/threaded_runtime.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/threaded_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/spi_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/spi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/spi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
