# Empty dependencies file for spi_core.
# This may be replaced when dependencies are built.
