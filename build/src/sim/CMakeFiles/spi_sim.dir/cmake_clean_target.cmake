file(REMOVE_RECURSE
  "libspi_sim.a"
)
