
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_kernel.cpp" "src/sim/CMakeFiles/spi_sim.dir/event_kernel.cpp.o" "gcc" "src/sim/CMakeFiles/spi_sim.dir/event_kernel.cpp.o.d"
  "/root/repo/src/sim/fpga_area.cpp" "src/sim/CMakeFiles/spi_sim.dir/fpga_area.cpp.o" "gcc" "src/sim/CMakeFiles/spi_sim.dir/fpga_area.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/spi_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/spi_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/spi_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/spi_sim.dir/power.cpp.o.d"
  "/root/repo/src/sim/static_executor.cpp" "src/sim/CMakeFiles/spi_sim.dir/static_executor.cpp.o" "gcc" "src/sim/CMakeFiles/spi_sim.dir/static_executor.cpp.o.d"
  "/root/repo/src/sim/timed_executor.cpp" "src/sim/CMakeFiles/spi_sim.dir/timed_executor.cpp.o" "gcc" "src/sim/CMakeFiles/spi_sim.dir/timed_executor.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/spi_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/spi_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/spi_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/spi_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
