file(REMOVE_RECURSE
  "CMakeFiles/spi_sim.dir/event_kernel.cpp.o"
  "CMakeFiles/spi_sim.dir/event_kernel.cpp.o.d"
  "CMakeFiles/spi_sim.dir/fpga_area.cpp.o"
  "CMakeFiles/spi_sim.dir/fpga_area.cpp.o.d"
  "CMakeFiles/spi_sim.dir/link.cpp.o"
  "CMakeFiles/spi_sim.dir/link.cpp.o.d"
  "CMakeFiles/spi_sim.dir/power.cpp.o"
  "CMakeFiles/spi_sim.dir/power.cpp.o.d"
  "CMakeFiles/spi_sim.dir/static_executor.cpp.o"
  "CMakeFiles/spi_sim.dir/static_executor.cpp.o.d"
  "CMakeFiles/spi_sim.dir/timed_executor.cpp.o"
  "CMakeFiles/spi_sim.dir/timed_executor.cpp.o.d"
  "CMakeFiles/spi_sim.dir/trace.cpp.o"
  "CMakeFiles/spi_sim.dir/trace.cpp.o.d"
  "libspi_sim.a"
  "libspi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
