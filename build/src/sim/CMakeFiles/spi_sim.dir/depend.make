# Empty dependencies file for spi_sim.
# This may be replaced when dependencies are built.
