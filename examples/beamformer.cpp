/// \file beamformer.cpp
/// Delay-and-sum beamformer on SPI: sweeps the steering angle across a
/// scene with a source at +0.4 rad and prints the beam pattern (output
/// power vs steering), then runs the distributed system and verifies it
/// against the sequential reference.
#include <cmath>
#include <cstdio>

#include "apps/beamformer_app.hpp"

int main() {
  using namespace spi;

  apps::BeamformerParams params;
  params.sensors = 12;
  params.block = 64;
  params.noise_stddev = 1.0;
  constexpr double kSource = 0.4;

  const apps::BeamformerReference reference(params);
  std::printf("beam pattern, %zu-sensor array, source at %.2f rad, noise sigma %.1f:\n",
              params.sensors, kSource, params.noise_stddev);
  for (double steer = -1.2; steer <= 1.21; steer += 0.2) {
    const double power = reference.steered_power(steer, kSource, 12);
    const int bars = static_cast<int>(power * 80.0);
    std::printf("  steer %+5.2f  power %6.4f  |%.*s\n", steer, power,
                bars, "############################################################");
  }

  const apps::BeamformerApp app(4, params);
  std::printf("\n%s\n", app.system().report().c_str());

  const std::vector<double> out = app.run_functional(kSource, kSource, 4);
  std::vector<double> ref_out;
  for (std::int64_t k = 0; k < 4; ++k) {
    const auto block = reference.beamform(reference.sensor_block(kSource, k), kSource);
    ref_out.insert(ref_out.end(), block.begin(), block.end());
  }
  double max_diff = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i)
    max_diff = std::max(max_diff, std::abs(out[i] - ref_out[i]));
  std::printf("4-PE distributed output vs reference: max |diff| = %.2e over %zu samples\n",
              max_diff, out.size());

  const apps::BeamformerTimingModel timing;
  const sim::ClockModel clock{timing.clock_mhz};
  std::printf("\nthroughput (block = %zu samples):\n", params.block);
  for (std::int32_t pes : {1, 2, 4}) {
    const apps::BeamformerApp scaled(pes, params);
    const auto stats = scaled.run_timed(timing, 100);
    std::printf("  n=%d PEs: %7.2f us/block (%0.1f Msamples/s)\n", pes,
                clock.to_microseconds(static_cast<sim::SimTime>(stats.steady_period_cycles)),
                static_cast<double>(params.block) /
                    clock.to_microseconds(
                        static_cast<sim::SimTime>(stats.steady_period_cycles)));
  }
  return max_diff < 1e-9 ? 0 : 1;
}
