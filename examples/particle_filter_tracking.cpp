/// \file particle_filter_tracking.cpp
/// Application 2 of the paper end to end: particle-filter tracking of
/// crack failure length in turbine-engine blades (Section 5.3). A
/// ground-truth Paris-law crack trajectory is generated; the sequential
/// reference filter and the 2-PE distributed SPI implementation (with
/// the 3-phase resampling: local sums via SPI_static, excess particles
/// via SPI_dynamic) both track it; the timed model reports the
/// figure-7 operating point.
#include <cstdio>

#include "apps/particle_app.hpp"

int main() {
  using namespace spi;

  apps::ParticleParams params;
  params.particles = 200;
  params.seed = 7;

  dsp::Rng truth_rng(99);
  const dsp::CrackTrajectory trajectory = dsp::simulate_crack(params.model, 150, truth_rng);

  // Sequential reference filter.
  dsp::ParticleFilter reference(params.particles, params.model, params.seed);
  std::vector<double> ref_estimates;
  ref_estimates.reserve(trajectory.observations.size());
  for (double obs : trajectory.observations) ref_estimates.push_back(reference.step(obs));
  std::printf("crack tracking over %zu steps, %zu particles:\n",
              trajectory.observations.size(), params.particles);
  std::printf("  sequential filter RMSE vs truth : %.4f\n",
              dsp::rmse(trajectory.truth, ref_estimates));

  // Distributed 2-PE filter through the SPI fabric.
  apps::ParticleFilterApp app(2, params);
  const apps::TrackResult distributed = app.track(trajectory);
  std::printf("  2-PE SPI filter RMSE vs truth   : %.4f\n", distributed.rmse_vs_truth);
  std::printf("  observation noise (floor)       : %.4f\n", params.model.obs_noise);
  std::printf("  particles exchanged (phase 3)   : %lld over %lld SPI_dynamic msgs\n",
              static_cast<long long>(distributed.particles_exchanged),
              static_cast<long long>(distributed.dynamic_messages));
  std::printf("  SPI_static msgs (sums + obs)    : %lld\n\n",
              static_cast<long long>(distributed.static_messages));
  std::printf("%s\n", app.system().report().c_str());

  // Timed operating point (figure 7 midpoint).
  const apps::ParticleTimingModel timing;
  const sim::ClockModel clock{timing.clock_mhz};
  for (std::int32_t n : {1, 2}) {
    apps::ParticleFilterApp timed_app(n, params);
    const sim::ExecStats stats = timed_app.run_timed(params.particles, timing, 200);
    std::printf("n=%d: %.1f us/iteration (steady state)\n", n,
                clock.to_microseconds(static_cast<sim::SimTime>(stats.steady_period_cycles)));
  }
  return 0;
}
