/// \file design_space_exploration.cpp
/// Uses the library as a downstream architect would: sweep the design
/// space of the speech error-generation system — PE count, interconnect
/// width and topology — and report per-configuration throughput, device
/// area, and a throughput-per-slice figure of merit. Demonstrates that
/// the analysis (area model) and execution (timed model) layers compose
/// into a design-space-exploration loop.
#include <cstdio>
#include <vector>

#include "apps/speech_app.hpp"
#include "sim/power.hpp"

int main() {
  using namespace spi;

  apps::SpeechParams params;
  constexpr std::size_t kSamples = 1024;
  constexpr std::size_t kOrder = 10;

  std::printf("design-space exploration: speech error generation, %zu samples, order %zu\n\n",
              kSamples, kOrder);
  std::printf("%4s %6s %14s %12s %12s %12s %14s %12s\n", "PEs", "wire", "topology",
              "period(us)", "frames/s", "slices", "frames/s/slice", "uJ/frame");

  struct Best {
    double merit = 0.0;
    std::string config;
  } best;

  for (std::int32_t n : {1, 2, 3, 4}) {
    const apps::ErrorGenApp app(n, params);
    const sim::AreaReport area = app.area_report();
    const auto slices = area.total().slices;
    for (std::int64_t width : {2, 4, 8}) {
      for (auto [topo_name, topo] :
           {std::pair{"point-to-point", sim::Topology::kPointToPoint},
            std::pair{"shared-bus", sim::Topology::kSharedBus}}) {
        apps::SpeechTimingModel timing;
        timing.link.bytes_per_cycle = width;
        timing.link.topology = topo;
        const auto stats = app.run_timed(kSamples, kOrder, timing, 120);
        const double period_us = sim::ClockModel{timing.clock_mhz}.to_microseconds(
            static_cast<sim::SimTime>(stats.steady_period_cycles));
        const double frames_per_s = 1e6 / period_us;
        const double merit = frames_per_s / static_cast<double>(slices);
        const sim::EnergyEstimate energy = sim::estimate_energy(stats, area);
        std::printf("%4d %5lldB %14s %12.1f %12.0f %12lld %14.2f %12.3f\n", n,
                    static_cast<long long>(width), topo_name, period_us, frames_per_s,
                    static_cast<long long>(slices), merit,
                    energy.total_nj() / 120.0 / 1000.0);
        if (merit > best.merit) {
          best.merit = merit;
          best.config = std::to_string(n) + " PEs, " + std::to_string(width) + "B/cyc " +
                        topo_name;
        }
      }
    }
  }
  std::printf("\nbest throughput-per-slice: %s (%.2f frames/s/slice)\n", best.config.c_str(),
              best.merit);
  std::printf("takeaway: wider wires help until the host I/O serialization dominates;\n"
              "past that point extra PEs buy little — the sweet spot balances both.\n");
  return 0;
}
