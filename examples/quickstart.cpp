/// \file quickstart.cpp
/// Minimal end-to-end tour of the SPI library:
///   1. describe an application as a dataflow graph (one edge dynamic),
///   2. assign actors to processors,
///   3. let SpiSystem run the compilation pipeline (VTS conversion,
///      schedule, synchronization graph, BBS/UBS selection, buffer
///      bounds, resynchronization),
///   4. execute it functionally (real bytes through real SPI channels),
///   5. execute it on the timed platform model and print statistics.
#include <cstdio>

#include "apps/serialization.hpp"
#include "core/functional.hpp"
#include "core/spi_system.hpp"
#include "mpi/mpi_backend.hpp"

int main() {
  using namespace spi;

  // A 3-stage pipeline: a producer on processor 0 emits a run-time-
  // varying number of samples (at most 16 per firing) to a filter on
  // processor 1, which forwards fixed-size results to a sink on
  // processor 2.
  df::Graph graph("quickstart");
  const df::ActorId src = graph.add_actor("Source", /*exec_cycles=*/64);
  const df::ActorId flt = graph.add_actor("Filter", /*exec_cycles=*/128);
  const df::ActorId snk = graph.add_actor("Sink", /*exec_cycles=*/32);
  const df::EdgeId e_dyn = graph.connect(src, df::Rate::dynamic(16), flt, df::Rate::dynamic(16),
                                         0, sizeof(double), "samples");
  const df::EdgeId e_out = graph.connect(flt, df::Rate::fixed(1), snk, df::Rate::fixed(1), 0,
                                         sizeof(double), "result");

  sched::Assignment assignment(graph.actor_count(), 3);
  assignment.assign(src, 0);
  assignment.assign(flt, 1);
  assignment.assign(snk, 2);

  core::SpiSystem system(graph, assignment);
  std::printf("%s\n", system.report().c_str());

  // --- functional run: sum a varying number of samples per iteration ---
  core::FunctionalRuntime runtime(system);
  double checksum = 0.0;
  runtime.set_compute(src, [&](core::FiringContext& ctx) {
    // Iteration k ships (k % 16) + 1 samples — a dynamic rate.
    const std::size_t count = static_cast<std::size_t>(ctx.invocation % 16) + 1;
    std::vector<double> samples(count);
    for (std::size_t i = 0; i < count; ++i)
      samples[i] = static_cast<double>(ctx.invocation) + 0.25 * static_cast<double>(i);
    ctx.outputs[ctx.output_index(e_dyn)] = {apps::pack_f64(samples)};
  });
  runtime.set_compute(flt, [&](core::FiringContext& ctx) {
    const std::vector<double> samples = apps::unpack_f64(ctx.inputs[ctx.input_index(e_dyn)][0]);
    double sum = 0.0;
    for (double s : samples) sum += s;
    ctx.outputs[ctx.output_index(e_out)] = {apps::pack_f64(std::vector<double>{sum})};
  });
  runtime.set_compute(snk, [&](core::FiringContext& ctx) {
    checksum += apps::unpack_f64(ctx.inputs[ctx.input_index(e_out)][0]).at(0);
  });
  runtime.run(32);
  std::printf("functional: 32 iterations, checksum = %.2f\n", checksum);
  const auto& ch = runtime.channel(e_dyn);
  std::printf("  dynamic channel: %lld msgs, %lld payload B, %lld wire B (8B headers)\n\n",
              static_cast<long long>(ch.stats().messages),
              static_cast<long long>(ch.stats().payload_bytes),
              static_cast<long long>(ch.stats().wire_bytes));

  // --- timed run: SPI backend vs. the generic MPI baseline -------------
  sim::TimedExecutorOptions options;
  options.iterations = 1000;
  const sim::ExecStats spi_stats = system.run_timed(options);
  const mpi::MpiBackend mpi_backend;
  const sim::ExecStats mpi_stats = system.run_timed_with(mpi_backend, options);
  std::printf("timed (1000 iterations @ %.0f MHz):\n", options.clock.mhz);
  std::printf("  SPI : period %8.1f cycles  (%7.3f us/iter), %lld data + %lld sync msgs\n",
              spi_stats.steady_period_cycles,
              options.clock.to_microseconds(
                  static_cast<sim::SimTime>(spi_stats.steady_period_cycles)),
              static_cast<long long>(spi_stats.data_messages),
              static_cast<long long>(spi_stats.sync_messages));
  std::printf("  MPI : period %8.1f cycles  (%7.3f us/iter), %lld data + %lld sync msgs\n",
              mpi_stats.steady_period_cycles,
              options.clock.to_microseconds(
                  static_cast<sim::SimTime>(mpi_stats.steady_period_cycles)),
              static_cast<long long>(mpi_stats.data_messages),
              static_cast<long long>(mpi_stats.sync_messages));
  std::printf("  SPI speedup over generic MPI: %.2fx\n",
              mpi_stats.steady_period_cycles / spi_stats.steady_period_cycles);
  return 0;
}
