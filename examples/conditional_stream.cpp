/// \file conditional_stream.cpp
/// VTS as an explicit modeling tool for dynamic dataflow (the paper's
/// contribution 1: "a means for applying more efficient and intuitive
/// SDF techniques to certain kinds of dynamic dataflow behaviors").
///
/// Classic dynamic-dataflow constructs like switch/select route each
/// token to ONE of several branches depending on its value — impossible
/// in pure SDF, whose rates are fixed. With VTS, the splitter emits one
/// *packed* token per branch per firing whose SIZE varies (possibly
/// zero raw tokens): rates stay statically 1, the graph stays SDF
/// (schedulable, bounded, resynchronizable), and the data-dependent
/// routing lives in the token sizes. This example routes a sample
/// stream into "low" and "high" branches processed on different
/// processors and checks conservation.
#include <cstdio>

#include "apps/serialization.hpp"
#include "core/functional.hpp"
#include "core/spi_system.hpp"
#include "dsp/rng.hpp"

int main() {
  using namespace spi;
  constexpr std::size_t kBlock = 16;  // samples per splitter firing

  df::Graph g("conditional-stream");
  const df::ActorId src = g.add_actor("Source", 16);
  const df::ActorId split = g.add_actor("Split", 32);
  const df::ActorId low = g.add_actor("LowBand", 64);
  const df::ActorId high = g.add_actor("HighBand", 64);
  const df::ActorId merge = g.add_actor("Merge", 16);

  const df::EdgeId e_in = g.connect(src, df::Rate::fixed(kBlock), split,
                                    df::Rate::fixed(kBlock), 0, sizeof(double));
  // The conditional routes: each firing ships 0..kBlock samples per branch.
  const df::EdgeId e_low = g.connect(split, df::Rate::dynamic(kBlock), low,
                                     df::Rate::dynamic(kBlock), 0, sizeof(double));
  const df::EdgeId e_high = g.connect(split, df::Rate::dynamic(kBlock), high,
                                      df::Rate::dynamic(kBlock), 0, sizeof(double));
  const df::EdgeId e_lo_out = g.connect(low, df::Rate::dynamic(kBlock), merge,
                                        df::Rate::dynamic(kBlock), 0, sizeof(double));
  const df::EdgeId e_hi_out = g.connect(high, df::Rate::dynamic(kBlock), merge,
                                        df::Rate::dynamic(kBlock), 0, sizeof(double));

  sched::Assignment assignment(g.actor_count(), 3);
  assignment.assign(low, 1);
  assignment.assign(high, 2);
  const core::SpiSystem system(g, assignment);
  std::printf("%s\n", system.report().c_str());

  core::FunctionalRuntime runtime(system);
  dsp::Rng rng(99);
  std::int64_t produced = 0, low_count = 0, high_count = 0, merged = 0;
  double low_sum = 0.0, high_sum = 0.0, merged_sum = 0.0, source_sum = 0.0;

  runtime.set_compute(src, [&](core::FiringContext& ctx) {
    auto& out = ctx.outputs[ctx.output_index(e_in)];
    for (std::size_t i = 0; i < kBlock; ++i) {
      const double v = rng.uniform(-1.0, 1.0);
      source_sum += v;
      ++produced;
      out.push_back(apps::pack_f64(std::vector<double>{v}));
    }
  });
  runtime.set_compute(split, [&](core::FiringContext& ctx) {
    std::vector<double> lo, hi;
    for (const auto& token : ctx.inputs[ctx.input_index(e_in)]) {
      const double v = apps::unpack_f64(token).at(0);
      (std::abs(v) < 0.5 ? lo : hi).push_back(v);  // the data-dependent route
    }
    ctx.outputs[ctx.output_index(e_low)] = {apps::pack_f64(lo)};
    ctx.outputs[ctx.output_index(e_high)] = {apps::pack_f64(hi)};
  });
  auto band = [&](df::EdgeId in, df::EdgeId out, std::int64_t& counter, double& sum) {
    return [&, in, out](core::FiringContext& ctx) {
      const std::vector<double> values = apps::unpack_f64(ctx.inputs[ctx.input_index(in)][0]);
      counter += static_cast<std::int64_t>(values.size());
      for (double v : values) sum += v;
      ctx.outputs[ctx.output_index(out)] = {ctx.inputs[ctx.input_index(in)][0]};  // pass through
    };
  };
  runtime.set_compute(low, band(e_low, e_lo_out, low_count, low_sum));
  runtime.set_compute(high, band(e_high, e_hi_out, high_count, high_sum));
  runtime.set_compute(merge, [&](core::FiringContext& ctx) {
    for (df::EdgeId e : {e_lo_out, e_hi_out}) {
      for (double v : apps::unpack_f64(ctx.inputs[ctx.input_index(e)][0])) {
        merged_sum += v;
        ++merged;
      }
    }
  });

  runtime.run(256);
  std::printf("routed %lld samples: %lld low-band, %lld high-band, %lld merged\n",
              static_cast<long long>(produced), static_cast<long long>(low_count),
              static_cast<long long>(high_count), static_cast<long long>(merged));
  std::printf("conservation: source sum %.6f == merged sum %.6f (|diff| %.2e)\n", source_sum,
              merged_sum, std::abs(source_sum - merged_sum));
  std::printf("low-band channel avg payload %.1f B/msg (b_max %lld B) — the dynamism\n"
              "lives in token sizes while every rate stayed statically 1.\n",
              static_cast<double>(runtime.channel(e_low).stats().payload_bytes) / 256.0,
              static_cast<long long>(system.channel_for(e_low).b_max_bytes));
  const bool ok = produced == low_count + high_count && merged == produced &&
                  std::abs(source_sum - merged_sum) < 1e-9;
  return ok ? 0 : 1;
}
