/// \file threaded_pipeline.cpp
/// Software SPI on real threads: the same application wired once and
/// run on both execution engines — FunctionalRuntime (sequential
/// interleaving) and ThreadedRuntime (one std::thread per processor,
/// blocking SPI channels). Dataflow determinacy makes the outputs
/// identical; the channel statistics show the real back-pressure the
/// threads exercised.
#include <cstdio>

#include "apps/serialization.hpp"
#include "core/threaded_runtime.hpp"
#include "dsp/fir.hpp"
#include "dsp/rng.hpp"

int main() {
  using namespace spi;
  constexpr std::size_t kBlock = 32;
  constexpr std::int64_t kIterations = 400;

  // 3-stage filter pipeline over 3 processors.
  df::Graph g("threaded-pipeline");
  const df::ActorId src = g.add_actor("Source");
  const df::ActorId flt = g.add_actor("Filter");
  const df::ActorId snk = g.add_actor("Sink");
  const df::EdgeId e_raw = g.connect(src, df::Rate::fixed(kBlock), flt,
                                     df::Rate::fixed(kBlock), 0, sizeof(double));
  const df::EdgeId e_out = g.connect(flt, df::Rate::fixed(kBlock), snk,
                                     df::Rate::fixed(kBlock), 0, sizeof(double));
  sched::Assignment assignment(g.actor_count(), 3);
  assignment.assign(flt, 1);
  assignment.assign(snk, 2);
  const core::SpiSystem system(g, assignment);

  const auto taps = dsp::design_lowpass(21, 0.2);
  auto wire = [&](auto& runtime, std::vector<double>& sink, auto& filter_state) {
    runtime.set_compute(src, [&, e_raw](core::FiringContext& ctx) {
      dsp::Rng rng(static_cast<std::uint64_t>(ctx.invocation) + 1);
      auto& out = ctx.outputs[ctx.output_index(e_raw)];
      for (std::size_t i = 0; i < kBlock; ++i)
        out.push_back(apps::pack_f64(std::vector<double>{rng.uniform(-1, 1)}));
    });
    runtime.set_compute(flt, [&, e_raw, e_out](core::FiringContext& ctx) {
      std::vector<double> block;
      for (const auto& t : ctx.inputs[ctx.input_index(e_raw)])
        block.push_back(apps::unpack_f64(t).at(0));
      const auto filtered = filter_state.process(block);
      auto& out = ctx.outputs[ctx.output_index(e_out)];
      for (double v : filtered) out.push_back(apps::pack_f64(std::vector<double>{v}));
    });
    runtime.set_compute(snk, [&, e_out](core::FiringContext& ctx) {
      for (const auto& t : ctx.inputs[ctx.input_index(e_out)])
        sink.push_back(apps::unpack_f64(t).at(0));
    });
  };

  std::vector<double> sequential, threaded;
  {
    core::FunctionalRuntime runtime(system);
    dsp::FirState state(taps);
    wire(runtime, sequential, state);
    runtime.run(kIterations);
  }
  core::ThreadedRuntime runtime(system);
  dsp::FirState state(taps);
  wire(runtime, threaded, state);
  runtime.run(kIterations);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < sequential.size(); ++i)
    max_diff = std::max(max_diff, std::abs(sequential[i] - threaded[i]));
  std::printf("threaded SPI pipeline: %lld iterations x %zu samples on 3 threads\n",
              static_cast<long long>(kIterations), kBlock);
  std::printf("sequential vs threaded outputs: max |diff| = %.2e (determinate)\n", max_diff);
  std::printf("channel stats: %lld tokens, %lld payload B, producer blocked %lld times, "
              "consumer blocked %lld times\n",
              static_cast<long long>(runtime.stats().messages),
              static_cast<long long>(runtime.stats().payload_bytes),
              static_cast<long long>(runtime.stats().producer_blocks),
              static_cast<long long>(runtime.stats().consumer_blocks));
  return max_diff == 0.0 ? 0 : 1;
}
