/// \file vts_dynamic_rates.cpp
/// Walkthrough of the paper's Section 3 on the figure-1 example: an edge
/// whose production rate varies with bound 10 and consumption rate with
/// bound 8. Shows the VTS conversion, the equation-1 buffer bound, the
/// memory comparison against worst-case static sizing, and a functional
/// run where the true rates vary every firing.
#include <cstdio>

#include "apps/serialization.hpp"
#include "core/functional.hpp"
#include "core/packing.hpp"
#include "core/spi_system.hpp"
#include "dataflow/dot.hpp"
#include "dataflow/vts.hpp"
#include "dsp/rng.hpp"

int main() {
  using namespace spi;

  // The paper's figure 1: A --(dynamic <=10 : dynamic <=8)--> B,
  // 2-byte raw tokens.
  df::Graph g("figure1");
  const df::ActorId a = g.add_actor("A");
  const df::ActorId b = g.add_actor("B");
  const df::EdgeId e = g.connect(a, df::Rate::dynamic(10), b, df::Rate::dynamic(8), 0, 2);

  std::printf("original graph (dynamic rates):\n%s\n", df::to_dot(g).c_str());

  const df::VtsResult vts = df::vts_convert(g);
  std::printf("after VTS conversion (pure SDF, packed tokens):\n%s\n",
              df::to_dot(vts.graph).c_str());
  std::printf("packed-token bound b_max(e) = %lld bytes\n",
              static_cast<long long>(vts.edges[0].b_max_bytes));
  const auto c_bytes = df::packed_buffer_byte_bounds(vts);
  std::printf("equation 1: c(e) = c_sdf(e) x b_max(e) = %lld bytes\n",
              static_cast<long long>(c_bytes[0]));
  const auto cmp = df::compare_vts_memory(g, vts);
  std::printf("buffer memory: VTS %lld B vs worst-case static %lld B\n\n",
              static_cast<long long>(cmp.vts_bytes),
              static_cast<long long>(cmp.worst_case_static_bytes));

  // Functional run across two processors: A ships a varying number of
  // 2-byte samples per firing through an SPI_dynamic channel.
  sched::Assignment assignment(g.actor_count(), 2);
  assignment.assign(b, 1);
  const core::SpiSystem system(g, assignment);
  std::printf("%s\n", system.report().c_str());

  core::FunctionalRuntime runtime(system);
  const core::TokenPacker packer(2, 10);
  dsp::Rng rng(1);
  std::int64_t raw_sent = 0, raw_received = 0;
  runtime.set_compute(a, [&](core::FiringContext& ctx) {
    const std::int64_t count = rng.uniform_int(0, 10);  // true dynamic rate
    core::Bytes raw(static_cast<std::size_t>(count * 2));
    for (auto& byte : raw) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    raw_sent += count;
    ctx.outputs[ctx.output_index(e)] = {packer.pack(raw, count)};
  });
  runtime.set_compute(b, [&](core::FiringContext& ctx) {
    raw_received += static_cast<std::int64_t>(
        packer.unpack(ctx.inputs[ctx.input_index(e)][0]).size());
  });
  runtime.run(1000);

  const auto& stats = runtime.channel(e).stats();
  std::printf("1000 firings: %lld raw tokens sent, %lld received (must match)\n",
              static_cast<long long>(raw_sent), static_cast<long long>(raw_received));
  std::printf("channel: %lld messages, %lld payload B, %lld wire B -> %.2f B header/msg\n",
              static_cast<long long>(stats.messages),
              static_cast<long long>(stats.payload_bytes),
              static_cast<long long>(stats.wire_bytes),
              static_cast<double>(stats.wire_bytes - stats.payload_bytes) /
                  static_cast<double>(stats.messages));
  std::printf("max channel occupancy %lld message(s) — within the static bound.\n",
              static_cast<long long>(stats.max_occupancy));
  return raw_sent == raw_received ? 0 : 1;
}
