/// \file lossy_pipeline.cpp
/// The reliable SPI transport end to end (docs/reliability.md): the
/// speech error-generator pipeline (paper figure 3) running on real host
/// threads over a wire that drops 5% and corrupts 1% of all frames,
/// under a seeded, fully deterministic fault plan.
///
/// The reliability layer — sequenced CRC-checked frames, bounded retry
/// with exponential backoff, duplicate suppression — recovers every
/// loss, so the lossy run's output is bit-identical to the lossless
/// sequential reference. The program prints the retry metrics and fails
/// loudly if a single sample differs. It then demonstrates graceful
/// degradation: a 100%-drop edge surfaces a typed sim::ChannelError
/// within the retry deadline instead of hanging the pipeline.
#include <cstdio>
#include <vector>

#include "apps/speech_app.hpp"
#include "dsp/lpc.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"

int main() {
  using namespace spi;

  // The figure-3 system: actor D parallelized across 3 PEs plus the host.
  apps::SpeechParams params;
  params.frame_size = 256;
  const apps::ErrorGenApp app(3, params);

  dsp::Rng rng(8);
  const std::vector<double> frame = dsp::synthetic_speech(params.frame_size, rng);
  const apps::SpeechCompressor codec(params);
  const std::vector<double> coeffs = codec.frame_coefficients(frame);
  const std::vector<double> reference = codec.frame_errors(frame, coeffs);

  // A seeded lossy wire: 5% of frames vanish, 1% arrive damaged. Every
  // fault decision is a pure function of (seed, edge, sequence, attempt),
  // so this run is reproducible on any machine and any thread schedule.
  sim::FaultPlan plan(2008);
  sim::EdgeFaultSpec spec;
  spec.drop = 0.05;
  spec.corrupt = 0.01;
  plan.set_default(spec);
  plan.retry().attempts = 16;
  plan.retry().backoff_base_us = 20;
  plan.retry().backoff_max_us = 500;

  core::ReliabilityOptions rel;
  rel.enabled = true;
  rel.faults = &plan;
  obs::MetricRegistry registry;
  const std::vector<double> lossy = app.compute_errors_threaded(frame, coeffs, rel, &registry);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < reference.size(); ++i)
    if (lossy[i] != reference[i]) ++mismatches;

  std::printf("lossy speech pipeline (seed %llu, drop=5%%, corrupt=1%%):\n",
              static_cast<unsigned long long>(plan.seed()));
  std::printf("  samples         : %zu (%zu mismatch the lossless reference)\n",
              reference.size(), mismatches);
  std::printf("  retries         : %lld\n",
              static_cast<long long>(registry.counter_total("spi_reliable_retries_total")));
  std::printf("  dropped frames  : %lld\n",
              static_cast<long long>(registry.counter_total("spi_reliable_dropped_frames_total")));
  std::printf("  crc failures    : %lld\n",
              static_cast<long long>(registry.counter_total("spi_reliable_crc_failures_total")));
  std::printf("  backoff total   : %lld us\n",
              static_cast<long long>(registry.counter_total("spi_reliable_backoff_micros_total")));
  if (mismatches != 0) {
    std::fprintf(stderr, "FAILED: the reliable transport surfaced damaged data\n");
    return 1;
  }
  std::printf("  result          : bit-identical to the lossless reference\n\n");

  // Graceful degradation: kill one edge completely. The sender exhausts
  // its retry budget and run() surfaces a typed error — no hang, no
  // silent data loss.
  sim::FaultPlan dead_plan(2008);
  sim::EdgeFaultSpec dead;
  dead.drop = 1.0;
  dead_plan.set_edge(0, dead);
  dead_plan.retry().attempts = 4;
  dead_plan.retry().backoff_base_us = 10;
  dead_plan.retry().backoff_max_us = 50;

  core::ReliabilityOptions dead_rel;
  dead_rel.enabled = true;
  dead_rel.faults = &dead_plan;
  try {
    (void)app.compute_errors_threaded(frame, coeffs, dead_rel);
    std::fprintf(stderr, "FAILED: a 100%%-drop edge must raise sim::ChannelError\n");
    return 1;
  } catch (const sim::ChannelError& e) {
    std::printf("dead edge degrades gracefully:\n  %s\n", e.what());
  }
  return 0;
}
