/// \file bottleneck_hunt.cpp
/// Finding the real bottleneck with the flight recorder and the
/// critical-path analyzer (docs/observability.md): a 3-processor
/// pipeline whose middle stage is deliberately slow runs on real
/// threads with every firing, send, receive and blocking wait
/// recorded; the analyzer then reconstructs the causal DAG, walks the
/// realized critical path, and names the channel and actor where the
/// wall clock actually went — compared against the schedule's
/// predicted iteration period (the sync graph's MCM).
///
/// Output: the per-segment attribution summary, the per-channel
/// blocked-time ranking, the realized-vs-predicted period, and the
/// spi_critpath_* gauges. Write the Chrome trace with the critical
/// path overlaid via report.to_chrome_trace_json(log) and follow the
/// flow arrows in Perfetto to see the same story graphically.
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/pipeline.hpp"
#include "core/text_format.hpp"
#include "core/threaded_runtime.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace {

// The middle actor's own iteration cycle dominates every ack cycle
// (the delays spread those over two iterations), so the predicted MCM
// is Filter's 500 cycles — and Filter is the planted bottleneck.
constexpr char kSystem[] = R"(graph bottleneck_hunt
procs 3

actor Source exec=40
actor Filter exec=500
actor Sink   exec=60

edge Source:1 -> Filter:1 delay=2 bytes=64
edge Filter:1 -> Sink:1   delay=2 bytes=64

proc Source = 0
proc Filter = 1
proc Sink   = 2
)";

}  // namespace

int main() {
  using namespace spi;
  constexpr std::int64_t kIterations = 50;

  const core::ParsedSystem parsed = core::parse_system(kSystem);
  const core::ExecutablePlan plan = core::compile_plan(parsed.graph, parsed.assignment);
  std::printf("predicted MCM: %.0f cycles\n\n", plan.predicted_mcm());

  // Real-thread run: every actor sleeps its modeled WCET at 1 cycle ->
  // 1 us, so the realized period has a hard floor at the predicted MCM
  // and the attribution is legible.
  core::ThreadedRuntime runtime(plan);
  const df::Graph& graph = plan.vts.graph;
  for (df::ActorId a = 0; a < static_cast<df::ActorId>(graph.actor_count()); ++a) {
    const std::int64_t wcet_us = graph.actor(a).exec_cycles;
    runtime.set_compute(a, [&graph, wcet_us](core::FiringContext& ctx) {
      std::this_thread::sleep_for(std::chrono::microseconds(wcet_us));
      for (std::size_t i = 0; i < ctx.out_edges.size(); ++i) {
        const df::Edge& e = graph.edge(ctx.out_edges[i]);
        for (std::int64_t t = 0; t < e.prod.value(); ++t)
          ctx.outputs[i].emplace_back(static_cast<std::size_t>(e.token_bytes), 0);
      }
    });
  }

  obs::FlightRecorder recorder(static_cast<std::int32_t>(plan.proc_count));
  runtime.set_flight_recorder(&recorder);  // actor/edge names come from the plan
  runtime.run(kIterations);
  const obs::FlightLog log = recorder.collect();
  std::printf("recorded %zu events on %d processors (%lld dropped)\n\n", log.events.size(),
              log.proc_count, static_cast<long long>(log.dropped));

  obs::AnalyzeOptions options;
  options.predicted_mcm = plan.predicted_mcm();
  options.mcm_scale = 1000.0;  // 1 modeled cycle = 1 slept us = 1000 ns
  const obs::CriticalPathReport report = obs::analyze_critical_path(log, options);

  const double pct = report.cp_length > 0 ? 100.0 / static_cast<double>(report.cp_length) : 0.0;
  std::printf("critical path: %lld ns over [%lld, %lld]\n",
              static_cast<long long>(report.cp_length),
              static_cast<long long>(report.t_first), static_cast<long long>(report.t_last));
  std::printf("  compute : %10lld ns (%5.1f%%)\n", static_cast<long long>(report.cp_compute),
              static_cast<double>(report.cp_compute) * pct);
  std::printf("  blocked : %10lld ns (%5.1f%%)\n", static_cast<long long>(report.cp_blocked),
              static_cast<double>(report.cp_blocked) * pct);
  std::printf("  comm    : %10lld ns (%5.1f%%)\n", static_cast<long long>(report.cp_comm),
              static_cast<double>(report.cp_comm) * pct);
  std::printf("  idle    : %10lld ns (%5.1f%%)\n\n", static_cast<long long>(report.cp_idle),
              static_cast<double>(report.cp_idle) * pct);

  std::printf("realized period: avg %.0f ns, steady %.0f ns — predicted MCM %.0f ns (x%.2f)\n\n",
              report.realized_period_avg, report.realized_period_steady, report.predicted_mcm,
              report.period_ratio);

  std::printf("channels by blocked time (on-path blocked + comm decides the bottleneck):\n");
  for (const obs::ChannelAttribution& c : report.channels)
    std::printf("  %-16s producer-blocked %8lld ns, consumer-blocked %8lld ns, "
                "on-path %8lld ns, %lld msgs\n",
                c.name.c_str(), static_cast<long long>(c.producer_blocked),
                static_cast<long long>(c.consumer_blocked),
                static_cast<long long>(c.cp_blocked + c.cp_comm),
                static_cast<long long>(c.messages));
  std::printf("\nactors by on-path compute:\n");
  for (const obs::ActorAttribution& a : report.actors)
    std::printf("  %-16s %10lld ns on path (%lld firings)\n", a.name.c_str(),
                static_cast<long long>(a.cp_compute), static_cast<long long>(a.firings));
  if (report.bottleneck_edge >= 0)
    std::printf("\n=> bottleneck: channel %s\n\n", report.bottleneck_channel.c_str());
  else
    std::printf("\n=> bottleneck: compute-bound — dominant actor %s\n\n",
                report.actors.empty() ? "?" : report.actors.front().name.c_str());

  // The same verdict as metrics, ready for any Prometheus scraper.
  obs::MetricRegistry registry;
  report.publish_metrics(registry);
  recorder.publish_metrics(registry);
  std::printf("%s", registry.to_prometheus().c_str());
  return 0;
}
