/// \file multirate_rate_converter.cpp
/// A multirate SDF system on SPI: a 4:1 decimator followed by a 1:4
/// interpolator, distributed over four processors. Unlike the paper's
/// two applications (whose edges become rate-1 after VTS conversion),
/// this pipeline has true multirate static edges — the repetitions
/// vector is (1, 4, 4, 1) and the HSDF expansion creates one task per
/// firing — exercising multirate interprocessor channels and schedules.
///
///   Src --64:16--> Dec --4:4--> Interp --16:64--> Snk
///
/// Dataflow determinacy is demonstrated by running the same system on 1
/// and on 4 processors and comparing outputs bit-for-bit.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "apps/serialization.hpp"
#include "core/functional.hpp"
#include "core/spi_system.hpp"
#include "dsp/fir.hpp"

namespace {

using namespace spi;

/// Builds and runs the converter on `procs` processors; returns the
/// reconstructed output signal.
std::vector<double> run_converter(const std::vector<double>& input, std::int32_t procs) {
  constexpr std::size_t kBlock = 64;   // Src production / Snk consumption
  constexpr std::size_t kSub = 16;     // Dec consumption per firing
  constexpr std::size_t kFactor = 4;   // rate-change factor

  df::Graph g("rate-converter");
  const df::ActorId src = g.add_actor("Src", 16);
  const df::ActorId dec = g.add_actor("Dec", 64);
  const df::ActorId itp = g.add_actor("Interp", 64);
  const df::ActorId snk = g.add_actor("Snk", 16);
  const df::EdgeId e_in = g.connect(src, df::Rate::fixed(kBlock), dec, df::Rate::fixed(kSub), 0,
                                    sizeof(double));
  const df::EdgeId e_mid = g.connect(dec, df::Rate::fixed(kSub / kFactor), itp,
                                     df::Rate::fixed(kSub / kFactor), 0, sizeof(double));
  const df::EdgeId e_out = g.connect(itp, df::Rate::fixed(kSub), snk, df::Rate::fixed(kBlock),
                                     0, sizeof(double));

  sched::Assignment assignment(g.actor_count(), procs);
  if (procs >= 4) {
    assignment.assign(dec, 1);
    assignment.assign(itp, 2);
    assignment.assign(snk, 3);
  }
  const core::SpiSystem system(g, assignment);

  core::FunctionalRuntime runtime(system);
  const auto anti_alias = dsp::design_lowpass(31, 0.5 / kFactor * 0.8);
  auto dec_filter = std::make_shared<dsp::FirState>(anti_alias);
  auto itp_filter = std::make_shared<dsp::FirState>(anti_alias);
  auto output = std::make_shared<std::vector<double>>();

  runtime.set_compute(src, [&input, e_in](core::FiringContext& ctx) {
    auto& out = ctx.outputs[ctx.output_index(e_in)];
    for (std::size_t i = 0; i < kBlock; ++i) {
      const std::size_t pos = static_cast<std::size_t>(ctx.invocation) * kBlock + i;
      out.push_back(apps::pack_f64(std::vector<double>{pos < input.size() ? input[pos] : 0.0}));
    }
  });
  runtime.set_compute(dec, [dec_filter, e_in, e_mid](core::FiringContext& ctx) {
    std::vector<double> block;
    for (const auto& token : ctx.inputs[ctx.input_index(e_in)])
      block.push_back(apps::unpack_f64(token).at(0));
    const auto filtered = dec_filter->process(block);
    const auto decimated = dsp::downsample(filtered, kFactor);
    auto& out = ctx.outputs[ctx.output_index(e_mid)];
    for (double v : decimated) out.push_back(apps::pack_f64(std::vector<double>{v}));
  });
  runtime.set_compute(itp, [itp_filter, e_mid, e_out](core::FiringContext& ctx) {
    std::vector<double> block;
    for (const auto& token : ctx.inputs[ctx.input_index(e_mid)])
      block.push_back(apps::unpack_f64(token).at(0));
    const auto stuffed = dsp::upsample(block, kFactor);
    auto filtered = itp_filter->process(stuffed);
    for (double& v : filtered) v *= static_cast<double>(kFactor);  // interpolation gain
    auto& out = ctx.outputs[ctx.output_index(e_out)];
    for (double v : filtered) out.push_back(apps::pack_f64(std::vector<double>{v}));
  });
  runtime.set_compute(snk, [output, e_out](core::FiringContext& ctx) {
    for (const auto& token : ctx.inputs[ctx.input_index(e_out)])
      output->push_back(apps::unpack_f64(token).at(0));
  });

  runtime.run(static_cast<std::int64_t>(input.size() / kBlock));
  return *output;
}

}  // namespace

int main() {
  // Input: a passband tone (survives 4:1 resampling) plus a tone above
  // the decimated Nyquist (must be removed by the anti-alias filter).
  constexpr std::size_t kSamples = 4096;
  std::vector<double> input(kSamples);
  for (std::size_t n = 0; n < kSamples; ++n) {
    input[n] = std::sin(2.0 * std::numbers::pi * 0.02 * static_cast<double>(n)) +
               0.7 * std::sin(2.0 * std::numbers::pi * 0.31 * static_cast<double>(n));
  }

  const std::vector<double> seq = run_converter(input, 1);
  const std::vector<double> par = run_converter(input, 4);

  double max_diff = 0.0;
  for (std::size_t n = 0; n < seq.size(); ++n)
    max_diff = std::max(max_diff, std::abs(seq[n] - par[n]));
  std::printf("multirate 4:1 -> 1:4 rate converter, %zu samples\n", kSamples);
  std::printf("1-proc vs 4-proc outputs: max |diff| = %.3e (dataflow determinacy)\n", max_diff);

  // Energy check: passband tone survives, stopband tone attenuated.
  auto tone_energy = [&](double freq, std::span<const double> x) {
    double re = 0, im = 0;
    for (std::size_t n = 512; n < x.size(); ++n) {  // skip filter transients
      re += x[n] * std::cos(2.0 * std::numbers::pi * freq * static_cast<double>(n));
      im += x[n] * std::sin(2.0 * std::numbers::pi * freq * static_cast<double>(n));
    }
    return std::sqrt(re * re + im * im) / static_cast<double>(x.size() - 512);
  };
  std::printf("passband tone (0.02) amplitude: in %.3f -> out %.3f\n",
              tone_energy(0.02, input), tone_energy(0.02, par));
  std::printf("stopband tone (0.31) amplitude: in %.3f -> out %.3f (aliased band removed)\n",
              tone_energy(0.31, input), tone_energy(0.31, par));
  return max_diff == 0.0 ? 0 : 1;
}
