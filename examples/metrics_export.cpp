/// \file metrics_export.cpp
/// The unified observability layer end to end (docs/observability.md):
/// one MetricRegistry shared by the compile pipeline and the threaded
/// runtime, a wall-clock trace of the real-thread execution, and both
/// exporter formats.
///
/// Output: the Prometheus text exposition of everything recorded, a
/// JSON snippet, a per-iteration latency histogram summary, and the
/// first spans of the Chrome trace (pipe the full trace into a file and
/// open it in Perfetto).
#include <cstdio>
#include <vector>

#include "core/threaded_runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_trace.hpp"

int main() {
  using namespace spi;
  constexpr std::int64_t kIterations = 2000;

  // A 3-processor pipeline with a dynamic-rate stage, compiled with the
  // registry attached: the constructor records per-phase wall-clock
  // timings and the plan-level gauges.
  obs::MetricRegistry registry;
  df::Graph g("metrics-demo");
  const df::ActorId src = g.add_actor("Source", 32);
  const df::ActorId mid = g.add_actor("Transform", 96);
  const df::ActorId snk = g.add_actor("Sink", 16);
  g.connect(src, df::Rate::dynamic(8), mid, df::Rate::dynamic(8), 0, sizeof(double));
  g.connect(mid, df::Rate::fixed(1), snk, df::Rate::fixed(1), 0, sizeof(double));
  sched::Assignment assignment(g.actor_count(), 3);
  assignment.assign(mid, 1);
  assignment.assign(snk, 2);
  core::SpiSystemOptions options;
  options.metrics = &registry;
  const core::SpiSystem system(g, assignment, options);

  // Run on real threads with the same registry: per-channel message,
  // byte and block counters land beside the compile metrics. A
  // wall-clock recorder captures every firing for Perfetto.
  core::ThreadedRuntime runtime(system, &registry);
  obs::RuntimeTraceRecorder trace;
  runtime.set_trace(&trace);

  // Per-iteration sink-side latency histogram (microsecond buckets).
  obs::Histogram& latency = registry.histogram(
      "demo_iteration_micros", obs::Histogram::exponential_bounds(1.0, 2.0, 12), {},
      "Wall-clock microseconds between consecutive sink firings");
  std::int64_t last_us = trace.now_us();
  runtime.set_compute(snk, [&](core::FiringContext&) {
    const std::int64_t now = trace.now_us();
    latency.observe(static_cast<double>(now - last_us));
    last_us = now;
  });
  runtime.run(kIterations);

  std::printf("=== Prometheus text exposition ===\n%s\n", registry.to_prometheus().c_str());
  std::printf("=== iteration latency summary ===\n%s\n\n",
              latency.summary("us").c_str());
  std::printf("=== run stats (from the registry) ===\n"
              "messages=%lld payload=%lldB producer_blocks=%lld consumer_blocks=%lld\n\n",
              static_cast<long long>(runtime.stats().messages),
              static_cast<long long>(runtime.stats().payload_bytes),
              static_cast<long long>(runtime.stats().producer_blocks),
              static_cast<long long>(runtime.stats().consumer_blocks));

  const std::string chrome = trace.to_chrome_trace_json();
  std::printf("=== Chrome trace (first 400 chars; load the full JSON in Perfetto) ===\n%.400s...\n",
              chrome.c_str());
  return 0;
}
