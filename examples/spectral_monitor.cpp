/// \file spectral_monitor.cpp
/// A third domain application built on the public API: a two-PE
/// spectral monitor (framer -> FFT -> peak detector), the kind of
/// streaming front end the paper's introduction motivates. All channels
/// are *static* (frame length and spectrum size are compile-time
/// constants), so this exercises SPI_static end to end — complementing
/// the paper's two applications, whose interesting edges are dynamic.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "apps/serialization.hpp"
#include "core/functional.hpp"
#include "core/spi_system.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"

int main() {
  using namespace spi;
  constexpr std::size_t kFrame = 256;

  // Graph: Framer (PE0) ships kFrame samples; Analyzer (PE1) returns the
  // dominant bin and its power; Reporter (PE0) logs it.
  df::Graph g("spectral-monitor");
  const df::ActorId framer = g.add_actor("Framer", 64);
  const df::ActorId analyzer = g.add_actor("Analyzer", 2048);
  const df::ActorId reporter = g.add_actor("Reporter", 16);
  const df::EdgeId e_frame = g.connect(framer, df::Rate::fixed(kFrame), analyzer,
                                       df::Rate::fixed(kFrame), 0, sizeof(double));
  const df::EdgeId e_peak = g.connect(analyzer, df::Rate::fixed(1), reporter,
                                      df::Rate::fixed(1), 0, 2 * sizeof(double));

  sched::Assignment assignment(g.actor_count(), 2);
  assignment.assign(analyzer, 1);
  const core::SpiSystem system(g, assignment);
  std::printf("%s\n", system.report().c_str());

  // Input: a tone hopping between bins every frame, in noise.
  dsp::Rng rng(404);
  const std::vector<std::size_t> hop_bins{12, 40, 12, 97, 55, 40, 7, 120};
  core::FunctionalRuntime runtime(system);

  runtime.set_compute(framer, [&](core::FiringContext& ctx) {
    const std::size_t bin = hop_bins[static_cast<std::size_t>(ctx.invocation) % hop_bins.size()];
    auto& out = ctx.outputs[ctx.output_index(e_frame)];
    for (std::size_t n = 0; n < kFrame; ++n) {
      const double tone = std::sin(2.0 * std::numbers::pi * static_cast<double>(bin) *
                                   static_cast<double>(n) / static_cast<double>(kFrame));
      out.push_back(apps::pack_f64(std::vector<double>{tone + rng.gaussian(0.0, 0.2)}));
    }
  });
  runtime.set_compute(analyzer, [&](core::FiringContext& ctx) {
    std::vector<double> frame;
    frame.reserve(kFrame);
    for (const auto& token : ctx.inputs[ctx.input_index(e_frame)])
      frame.push_back(apps::unpack_f64(token).at(0));
    const std::vector<double> power = dsp::power_spectrum(frame);
    std::size_t peak = 1;
    for (std::size_t k = 2; k < power.size() / 2; ++k)
      if (power[k] > power[peak]) peak = k;
    ctx.outputs[ctx.output_index(e_peak)] = {
        apps::pack_f64(std::vector<double>{static_cast<double>(peak), power[peak]})};
  });
  int correct = 0, total = 0;
  runtime.set_compute(reporter, [&](core::FiringContext& ctx) {
    const auto report = apps::unpack_f64(ctx.inputs[ctx.input_index(e_peak)][0]);
    const auto expected =
        hop_bins[static_cast<std::size_t>(ctx.invocation) % hop_bins.size()];
    const bool hit = static_cast<std::size_t>(report[0]) == expected;
    correct += hit ? 1 : 0;
    ++total;
    std::printf("frame %3lld: peak bin %3.0f (power %8.1f) expected %3zu %s\n",
                static_cast<long long>(ctx.invocation), report[0], report[1], expected,
                hit ? "" : "<-- MISS");
  });

  runtime.run(16);
  const auto& ch = runtime.channel(e_frame).stats();
  std::printf("\ndetected %d/%d hops; frame channel moved %lld B payload in %lld msgs "
              "(4B static headers)\n",
              correct, total, static_cast<long long>(ch.payload_bytes),
              static_cast<long long>(ch.messages));
  return correct == total ? 0 : 1;
}
