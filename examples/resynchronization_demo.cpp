/// \file resynchronization_demo.cpp
/// Shows the Section-4.1 machinery on the paper's figure-3 pattern: a
/// host processor feeding n hardware PEs and collecting results. Prints
/// the synchronization graph before and after resynchronization — the
/// acknowledgement edges all become redundant because the data round
/// trip through the host's schedule loop already enforces them.
#include <cstdio>

#include "core/spi_system.hpp"
#include "sched/resync.hpp"

namespace {

const char* kind_name(spi::sched::SyncEdgeKind kind) {
  switch (kind) {
    case spi::sched::SyncEdgeKind::kSequence: return "seq ";
    case spi::sched::SyncEdgeKind::kIpc: return "ipc ";
    case spi::sched::SyncEdgeKind::kAck: return "ack ";
    case spi::sched::SyncEdgeKind::kResync: return "rsyn";
  }
  return "?";
}

void print_sync_graph(const spi::sched::SyncGraph& g) {
  for (const auto& e : g.edges()) {
    std::printf("  [%s] %-12s -> %-12s delay=%lld%s\n", kind_name(e.kind),
                g.task(e.src).name.c_str(), g.task(e.snk).name.c_str(),
                static_cast<long long>(e.delay), e.removed ? "   (ELIDED)" : "");
  }
}

}  // namespace

int main() {
  using namespace spi;

  // Figure-3 pattern with 2 PEs: per PE, the host sends an input block
  // and coefficients and receives results; each PE is its own processor.
  df::Graph g("fig3-pattern");
  sched::Assignment assignment(0, 1);
  std::vector<df::ActorId> actors;
  {
    std::vector<std::pair<df::ActorId, sched::Proc>> placement;
    for (int pe = 0; pe < 2; ++pe) {
      const std::string s = std::to_string(pe);
      const df::ActorId send_in = g.add_actor("SendIn" + s, 20);
      const df::ActorId send_cf = g.add_actor("SendCoef" + s, 5);
      const df::ActorId compute = g.add_actor("PE" + s, 100);
      const df::ActorId recv = g.add_actor("Recv" + s, 20);
      g.connect_simple(send_in, compute, 0, 512);
      g.connect_simple(send_cf, compute, 0, 64);
      g.connect_simple(compute, recv, 0, 512);
      placement.emplace_back(send_in, 0);
      placement.emplace_back(send_cf, 0);
      placement.emplace_back(compute, static_cast<sched::Proc>(1 + pe));
      placement.emplace_back(recv, 0);
    }
    assignment = sched::Assignment(g.actor_count(), 3);
    for (auto [actor, proc] : placement) assignment.assign(actor, proc);
  }

  core::SpiSystemOptions options;
  options.resynchronize = false;  // inspect the raw graph first
  const core::SpiSystem before(g, assignment, options);
  std::printf("BEFORE RESYNCHRONIZATION (%zu sync messages/iteration):\n",
              before.messages_per_iteration());
  print_sync_graph(before.sync_graph());

  options.resynchronize = true;
  const core::SpiSystem after(g, assignment, options);
  std::printf("\nAFTER RESYNCHRONIZATION (%zu sync messages/iteration):\n",
              after.messages_per_iteration());
  print_sync_graph(after.sync_graph());

  const auto& report = *after.resync_report();
  std::printf("\nresynchronization: %zu ack edges -> %zu (removed %zu, added %zu), "
              "MCM %.1f -> %.1f cycles\n",
              report.acks_before, report.acks_after, report.edges_removed,
              report.edges_added, report.mcm_before, report.mcm_after);

  sim::TimedExecutorOptions run;
  run.iterations = 300;
  const auto stats_before = before.run_timed(run);
  const auto stats_after = after.run_timed(run);
  std::printf("simulated period: %.1f cycles before, %.1f after; sync messages "
              "%lld -> %lld over the run\n",
              stats_before.steady_period_cycles, stats_after.steady_period_cycles,
              static_cast<long long>(stats_before.sync_messages),
              static_cast<long long>(stats_after.sync_messages));
  return 0;
}
