/// \file auto_partition.cpp
/// Automatic partitioning: instead of hand-assigning actors to
/// processors (as the paper's experiments do), let the HLFET list
/// scheduler place a synthetic DSP pipeline-with-branches graph, and
/// compare the resulting timed period against naive assignments. Shows
/// the sched-layer API a mapping tool would build on.
#include <cstdio>

#include "core/spi_system.hpp"

namespace {

/// A two-branch analysis graph: source fans out to two filter chains of
/// different weights that merge into a sink — enough structure that
/// placement matters.
spi::df::Graph make_graph() {
  using namespace spi::df;
  Graph g("branches");
  const ActorId src = g.add_actor("Src", 40);
  const ActorId heavy1 = g.add_actor("HeavyA", 220);
  const ActorId heavy2 = g.add_actor("HeavyB", 200);
  const ActorId light1 = g.add_actor("LightA", 60);
  const ActorId light2 = g.add_actor("LightB", 70);
  const ActorId merge = g.add_actor("Merge", 50);
  g.connect_simple(src, heavy1, 0, 64);
  g.connect_simple(heavy1, heavy2, 0, 64);
  g.connect_simple(src, light1, 0, 64);
  g.connect_simple(light1, light2, 0, 64);
  g.connect_simple(heavy2, merge, 0, 64);
  g.connect_simple(light2, merge, 0, 64);
  return g;
}

struct Metrics {
  double period;   ///< steady-state cycles per iteration (throughput)
  double latency;  ///< completion time of the first iteration
};

Metrics measure(const spi::df::Graph& g, const spi::sched::Assignment& assignment) {
  const spi::core::SpiSystem system(g, assignment);
  spi::sim::TimedExecutorOptions options;
  options.iterations = 300;
  const spi::sim::ExecStats stats = system.run_timed(options);
  return Metrics{stats.steady_period_cycles,
                 static_cast<double>(stats.iteration_complete.front())};
}

}  // namespace

int main() {
  using namespace spi;
  const df::Graph g = make_graph();

  // Naive: everything on one processor.
  const sched::Assignment single(g.actor_count(), 1);

  // Naive: round-robin over 3 processors (ignores the critical path).
  sched::Assignment round_robin(g.actor_count(), 3);
  for (std::size_t a = 0; a < g.actor_count(); ++a)
    round_robin.assign(static_cast<df::ActorId>(a), static_cast<sched::Proc>(a % 3));

  // HLFET list scheduling with the default IPC cost model.
  const sched::Assignment automatic = sched::list_schedule(g, 3);

  std::printf("automatic partitioning of a 6-actor branch graph over 3 processors\n\n");
  std::printf("%-26s %14s %16s\n", "assignment", "period (cyc)", "latency (cyc)");
  const Metrics m_single = measure(g, single);
  const Metrics m_rr = measure(g, round_robin);
  const Metrics m_auto = measure(g, automatic);
  std::printf("%-26s %14.1f %16.1f\n", "single processor", m_single.period, m_single.latency);
  std::printf("%-26s %14.1f %16.1f\n", "round-robin", m_rr.period, m_rr.latency);
  std::printf("%-26s %14.1f %16.1f\n", "HLFET list scheduler", m_auto.period, m_auto.latency);

  std::printf("\nlist-scheduler placement:\n");
  for (std::size_t a = 0; a < g.actor_count(); ++a)
    std::printf("  %-8s -> PE%d\n", g.actor(static_cast<df::ActorId>(a)).name.c_str(),
                automatic.proc_of(static_cast<df::ActorId>(a)));
  std::printf(
      "\ntakeaway: HLFET minimizes MAKESPAN — it packs the critical path onto one\n"
      "processor, giving the best single-iteration latency. For pipelined\n"
      "THROUGHPUT (the self-timed steady state), spreading heavy actors can beat\n"
      "it: latency-oriented and throughput-oriented mapping are different\n"
      "problems, which is why SPI leaves the assignment to the designer.\n");
  return 0;
}
