/// \file timeline_trace.cpp
/// Records a full execution trace of the 4-PE speech error-generation
/// system, prints an ASCII Gantt chart of the first iterations (showing
/// the host I/O serialization and the PEs computing in parallel), and
/// writes a Chrome trace-event JSON (open in chrome://tracing or
/// https://ui.perfetto.dev) to /tmp/spi_trace.json.
#include <cstdio>
#include <fstream>

#include "apps/speech_app.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace spi;

  apps::SpeechParams params;
  params.frame_size = 512;
  const apps::ErrorGenApp app(4, params);
  const apps::SpeechTimingModel timing;

  // Re-run the timed experiment with a recorder attached. The app's
  // run_timed wraps SpiSystem::run_timed, so we drive the system directly
  // to control the options.
  sim::TraceRecorder trace;
  sim::TimedExecutorOptions options;
  options.iterations = 6;
  options.clock.mhz = timing.clock_mhz;
  options.trace = &trace;

  // Reuse the app's workload by calling its run_timed via the system with
  // the same callbacks: simplest is to call run_timed once for stats and
  // again traced through the raw system API.
  sim::WorkloadModel workload;  // defaults: graph exec times, worst-case payloads
  const sim::ExecStats stats = app.system().run_timed(options, workload);

  std::printf("4-PE speech error generation, %lld iterations, makespan %lld cycles\n\n",
              static_cast<long long>(options.iterations),
              static_cast<long long>(stats.makespan));
  std::printf("%s\n", sim::to_ascii_gantt(trace, 5, stats.makespan, 110).c_str());
  std::printf("(PE0 = host I/O interfaces; PE1..4 = D actors; S/D/R = send/compute/receive)\n\n");

  const std::string json = sim::to_chrome_trace_json(trace, options.clock);
  std::ofstream("/tmp/spi_trace.json") << json;
  std::ofstream("/tmp/spi_trace.vcd") << sim::to_vcd(trace, 5);
  std::printf("wrote %zu firing records and %zu message records to /tmp/spi_trace.json\n"
              "and a GTKWave-viewable waveform to /tmp/spi_trace.vcd\n",
              trace.firings().size(), trace.messages().size());
  return 0;
}
