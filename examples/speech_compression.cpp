/// \file speech_compression.cpp
/// Application 1 of the paper end to end: LPC-based acoustic data
/// compression (Section 5.2). Runs the sequential A..E reference codec
/// on a synthetic speech-like signal, then executes the parallelized
/// error-generation actor D across n PEs through the SPI fabric —
/// functionally (bit-identical errors) and on the timed platform model
/// (the figure-6 experiment at one operating point).
#include <cstdio>

#include "apps/speech_app.hpp"
#include "dsp/lpc.hpp"
#include "dsp/rng.hpp"

int main() {
  using namespace spi;

  apps::SpeechParams params;
  params.frame_size = 512;
  params.order = 10;

  dsp::Rng rng(2008);
  const std::vector<double> signal = dsp::synthetic_speech(16 * params.frame_size, rng);

  // --- sequential reference: the full A..E pipeline ---------------------
  apps::SpeechCompressor codec(params);
  const apps::CompressionResult result = codec.compress(signal);
  std::printf("LPC speech compression (frame %zu, order %zu):\n", params.frame_size,
              params.order);
  std::printf("  raw        : %llu bits\n", static_cast<unsigned long long>(result.raw_bits));
  std::printf("  compressed : %llu bits (ratio %.2f:1)\n",
              static_cast<unsigned long long>(result.compressed_bits), result.ratio());
  std::printf("  SNR        : %.1f dB\n\n", result.snr_db);

  // --- parallel actor D over the SPI fabric -----------------------------
  const std::span<const double> frame(signal.data(), params.frame_size);
  const std::vector<double> coeffs = codec.frame_coefficients(frame);
  const std::vector<double> reference = codec.frame_errors(frame, coeffs);

  for (std::int32_t n : {1, 2, 4}) {
    apps::ErrorGenApp app(n, params);
    const std::vector<double> parallel = app.compute_errors_parallel(frame, coeffs);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i)
      max_diff = std::max(max_diff, std::abs(reference[i] - parallel[i]));

    const apps::SpeechTimingModel timing;
    const sim::ExecStats stats = app.run_timed(params.frame_size, params.order, timing, 200);
    const sim::ClockModel clock{timing.clock_mhz};
    std::printf("n=%d PEs: parallel errors match reference (max |diff| = %.2e); "
                "timed period %.1f us/frame, %lld msgs/iter\n",
                n, max_diff,
                clock.to_microseconds(static_cast<sim::SimTime>(stats.steady_period_cycles)),
                static_cast<long long>((stats.data_messages + stats.sync_messages) /
                                       stats.iteration_complete.size()));
    std::printf("%s", app.system().report().c_str());
  }
  return 0;
}
