/// \file spsc_channel.hpp
/// Zero-copy lock-free SPSC channel with a slab-allocated token buffer.
///
/// The paper's core claim is that static SDF structure lets interprocessor
/// communication compile down to lean specialized actors instead of a
/// general-purpose runtime. Every IPC edge of an ExecutablePlan is
/// single-producer / single-consumer by construction (one src processor,
/// one snk processor), and a BBS edge carries a compile-time capacity
/// (equation 2). This channel exploits exactly that knowledge:
///
///  * The buffer is one slab of `capacity × frame_bound` bytes allocated
///    at construction — equation 2 sizes it, so steady-state send and
///    receive perform **zero heap allocations**.
///  * The producer *acquires* a fixed-size slot span, packs/encodes its
///    token directly into it, and *publishes* with one release store; the
///    consumer reads the published span in place and *releases* the slot
///    with one release store. No mutex, no condition variable, no memcpy
///    beyond the one the caller chooses to perform.
///  * Indices are cache-line-separated and each side caches the opposing
///    index, so an uncontended transfer touches one shared cache line per
///    side.
///
/// Blocking degrades gracefully: a bounded spin (cheap, keeps the
/// back-pressure latency in the tens of nanoseconds when the peer is
/// active), then a few sched yields, then a futex-style park on a
/// condition variable. The park handshake uses the standard eventcount
/// fence protocol: the waiter registers in `waiters_` before re-checking,
/// the signaler publishes before checking `waiters_`, both separated by
/// seq_cst fences — so the fast path never takes a lock and a wakeup is
/// never lost. Flight-recorder kBlockBegin/kBlockEnd events are emitted
/// only when the wait actually parks (spin waits are not "blocked" in any
/// sense the critical-path analyzer should attribute).
///
/// ThreadedRuntime selects this channel for every IPC edge of the plan
/// except reliability-enabled ones (retry/timeout needs the requeue
/// semantics of BlockingChannel — see docs/architecture.md, "Channel
/// selection").
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/message.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace spi::core {

/// Thrown out of a blocked (or spinning) push/pop when the owning
/// runtime aborts the run: the worker unwinds without recording an error
/// of its own (another worker's failure is the root cause).
struct ChannelInterrupted : std::runtime_error {
  ChannelInterrupted() : std::runtime_error("SPI channel: interrupted by abort") {}
};

/// Per-call flight-recording context: who is touching the channel. A
/// null pointer at the call site means recording is off (construction
/// -time token placement and every run without a recorder attached).
struct ChannelFlightCtx {
  obs::FlightRecorder* recorder = nullptr;
  std::int32_t proc = 0;
  std::int32_t actor = -1;
  std::int64_t iteration = 0;
};

/// Nullable registry handles for the channel's block accounting. The
/// block *count* is incremented whenever the fast path failed and the
/// caller had to wait at all; the block *duration* covers the whole wait
/// (spin + yield + park). Null pointers skip the accounting entirely —
/// including the monotonic clock reads.
struct SpscCounters {
  obs::Counter* producer_blocks = nullptr;
  obs::Counter* consumer_blocks = nullptr;
  obs::Counter* producer_block_micros = nullptr;
  obs::Counter* consumer_block_micros = nullptr;
};

/// Lock-free single-producer / single-consumer token channel over a
/// preallocated slab. Exactly one thread may call the producer API
/// (acquire/publish/push) and exactly one thread the consumer API
/// (front/pop/pop_into) — the dataflow edge guarantees it.
class SpscChannel {
 public:
  /// \param edge         dataflow edge id (flight events, errors)
  /// \param capacity     slot count — the plan's equation-2 bound for
  ///                     BBS, UBS credit window otherwise (plus delay
  ///                     tokens); clamped to >= 1
  /// \param frame_bound  bytes of the largest token the edge can carry
  ///                     (b_max for VTS-converted edges); clamped to >= 1
  /// \param abort        optional run-abort flag checked while waiting;
  ///                     a blocked call throws ChannelInterrupted once it
  ///                     is set (after interrupt() wakes parked waiters)
  SpscChannel(df::EdgeId edge, std::size_t capacity, std::size_t frame_bound,
              std::atomic<bool>* abort = nullptr);

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  void set_counters(const SpscCounters& counters) { counters_ = counters; }

  [[nodiscard]] df::EdgeId edge() const { return edge_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t frame_bound() const { return frame_bound_; }
  /// Published-but-unconsumed tokens (approximate across threads).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  /// Highest occupancy (tokens) ever seen by the producer at publish
  /// time — the live signal for how tight the plan's eq.-2 bound really
  /// is. Readable from any thread (/runtime endpoint); maintained with
  /// producer-local arithmetic plus a relaxed store only when the
  /// maximum actually grows (at most `capacity` times per run).
  [[nodiscard]] std::size_t high_watermark() const {
    return static_cast<std::size_t>(high_watermark_.load(std::memory_order_relaxed));
  }

  // --- producer side -------------------------------------------------

  /// Waits for a free slot and returns its frame_bound-byte span. The
  /// caller packs/encodes directly into it and calls publish(). Blocking
  /// escalates spin -> yield -> park; throws ChannelInterrupted on abort.
  [[nodiscard]] std::span<std::uint8_t> acquire(const ChannelFlightCtx* flight = nullptr);

  /// Non-blocking acquire; false when the channel is full.
  [[nodiscard]] bool try_acquire(std::span<std::uint8_t>& slot) noexcept;

  /// Publishes the acquired slot's first `frame_bytes` bytes with one
  /// release store (this is the kSend instant). Throws std::length_error
  /// beyond frame_bound.
  void publish(std::size_t frame_bytes, const ChannelFlightCtx* flight = nullptr);

  /// Convenience: acquire + copy + publish (the one copy the ComputeFn
  /// contract forces on the runtime; direct users avoid it with
  /// acquire/publish).
  void push(std::span<const std::uint8_t> token, const ChannelFlightCtx* flight = nullptr);

  // --- consumer side -------------------------------------------------

  /// Waits for a published token and returns its in-slab span (valid
  /// until pop()). Throws ChannelInterrupted on abort. If the channel is
  /// non-empty when the abort lands, the remaining tokens stay readable.
  [[nodiscard]] std::span<const std::uint8_t> front(const ChannelFlightCtx* flight = nullptr);

  /// Non-blocking front; false when the channel is empty.
  [[nodiscard]] bool try_front(std::span<const std::uint8_t>& token) noexcept;

  /// Consumes the front token (records the kReceive event, then frees the
  /// slot with one release store).
  void pop(const ChannelFlightCtx* flight = nullptr);

  /// front + copy-out + pop. `out.assign` reuses the caller's buffer
  /// capacity, so a warmed-up receive loop performs no allocation.
  void pop_into(Bytes& out, const ChannelFlightCtx* flight = nullptr);

  /// Wakes parked waiters so they can observe the abort flag. Safe from
  /// any thread.
  void interrupt();

 private:
  enum class Side : std::uint8_t { kProducer, kConsumer };

  /// Slow path: spin -> yield -> park until `ready()` (a lambda polling
  /// the opposing index) holds or abort is set. Returns false on abort
  /// with the condition still unmet.
  template <class Ready>
  bool wait(Side side, Ready&& ready, const ChannelFlightCtx* flight);

  void wake_peer() noexcept;
  [[nodiscard]] bool aborted() const noexcept {
    return abort_ != nullptr && abort_->load(std::memory_order_relaxed);
  }

  const df::EdgeId edge_;
  const std::size_t capacity_;
  const std::size_t frame_bound_;
  std::vector<std::uint8_t> slab_;      ///< capacity_ * frame_bound_ bytes
  std::vector<std::uint32_t> sizes_;    ///< published byte count per slot
  std::atomic<bool>* abort_;
  SpscCounters counters_;

  // Producer-owned state (shared tail_ on its own cache line; the rest
  // is touched only by the producing thread).
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< published count
  std::uint64_t tail_local_ = 0;   ///< producer's mirror of tail_
  std::uint64_t head_cache_ = 0;   ///< producer's last view of head_
  std::size_t tail_idx_ = 0;       ///< producer's wrapped slot index
  std::int64_t send_seq_ = 0;      ///< flight-event sequence (producer)
  std::uint64_t watermark_local_ = 0;  ///< producer's running max depth
  /// Published copy of watermark_local_, stored only on increase (so
  /// the hot path pays one predictable branch, no shared-line traffic
  /// in steady state). Lives on the producer's cache line: only the
  /// producer writes it, and readers are cold scrape paths.
  std::atomic<std::uint64_t> high_watermark_{0};

  // Consumer-owned state.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumed count
  std::uint64_t head_local_ = 0;
  std::uint64_t tail_cache_ = 0;
  std::size_t head_idx_ = 0;
  std::int64_t recv_seq_ = 0;

  // Park state (cold): eventcount-style. waiters_ is checked lock-free
  // by the signaling side; the mutex serializes only actual parks/wakes.
  alignas(64) std::atomic<std::uint32_t> waiters_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
};

}  // namespace spi::core
