/// \file threaded_runtime.hpp
/// Software SPI: executes a compiled SpiSystem on real host threads —
/// one thread per modeled processor, self-timed scheduling realized by
/// blocking SPI channels.
///
/// The paper's preliminary SPI was exactly this: a software library for
/// multiprocessor signal processing. Every interprocessor edge is a
/// bounded, single-producer/single-consumer token FIFO: a BBS channel
/// back-pressures the producer at its equation-2 capacity (a safety net
/// the static analysis guarantees is never exercised in a correctly
/// scheduled system); a UBS channel at its credit window. Dataflow
/// determinacy guarantees the parallel result is identical to
/// FunctionalRuntime's sequential interleaving, whatever the thread
/// schedule — the tests assert it.
///
/// Channel selection (docs/architecture.md): plain edges ride the
/// lock-free zero-copy SpscChannel — a slab sized from the plan's
/// equation-2 bound, no lock and no heap allocation in steady state.
/// Reliability-enabled edges keep the mutex-based BlockingChannel, whose
/// requeue/timeout semantics the retry protocol needs. ChannelPolicy
/// can force the blocking fallback everywhere (parity tests, paranoid
/// deployments).
///
/// Actor compute functions are the same ComputeFn used by
/// FunctionalRuntime, so an application wires up once and runs on either
/// engine.
///
/// Reliability (docs/reliability.md): construct with ReliabilityOptions
/// and every reliable interprocessor channel becomes a reliable link
/// over an (optionally faulty) wire — sequenced CRC-checked frames,
/// bounded retry with exponential backoff + deterministic jitter,
/// duplicate suppression, receive timeouts. Because the FaultPlan is
/// keyed by (edge, sequence, attempt), a lossy run delivers exactly the
/// payloads of a lossless run; persistent faults surface a typed
/// sim::ChannelError from run() instead of hanging.
///
/// Observability (docs/observability.md): every channel feeds lock-free
/// counters in a MetricRegistry — messages, payload bytes, block counts
/// and block *durations* per side, and under reliability the
/// retry/drop/CRC/duplicate/timeout counters plus a backoff histogram —
/// either a registry the caller provides (shared with the compile
/// pipeline) or a private one. Message/byte counters are batched per
/// firing, so the per-token hot path touches no atomics. Attach a
/// RuntimeTraceRecorder to get wall-clock Chrome trace JSON of every
/// firing, diffable in Perfetto against the timed simulator's trace of
/// the same system.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/blocking_channel.hpp"
#include "core/functional.hpp"
#include "core/spsc_channel.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/fault.hpp"

namespace spi::core {

/// Turns the runtime's interprocessor channels into reliable links.
struct ReliabilityOptions {
  bool enabled = false;
  /// Deterministic fault injection on every interprocessor wire. Not
  /// owned; must outlive the runtime. Null = perfect wire (the protocol
  /// still frames, sequences and CRC-checks every message).
  const sim::FaultPlan* faults = nullptr;
  /// Retry/backoff/timeout knobs. When `faults` is set its embedded
  /// retry() policy wins, so one fault-plan file configures everything.
  sim::RetryPolicy retry;

  [[nodiscard]] const sim::RetryPolicy& policy() const {
    return faults ? faults->retry() : retry;
  }
};

/// Which channel implementation plain (non-reliable) IPC edges get.
enum class ChannelPolicy : std::uint8_t {
  kAuto,          ///< lock-free SpscChannel; BlockingChannel only where the
                  ///< reliable protocol demands it (the default)
  kBlockingOnly,  ///< mutex-based BlockingChannel everywhere (the
                  ///< pre-slab behavior; parity tests and fallback)
};

/// Aggregated channel statistics of one run() (see
/// ThreadedRuntime::stats). Derived from the registry counters: the
/// difference between their values at run() entry and exit.
struct ThreadedRunStats {
  std::int64_t messages = 0;         ///< interprocessor tokens moved
  std::int64_t payload_bytes = 0;
  std::int64_t producer_blocks = 0;  ///< times a sender hit a full channel
  std::int64_t consumer_blocks = 0;  ///< times a receiver waited for data
  std::int64_t producer_block_micros = 0;  ///< wall-clock µs senders spent blocked
  std::int64_t consumer_block_micros = 0;  ///< wall-clock µs receivers spent blocked
  // Reliability protocol (all zero when reliability is off):
  std::int64_t retries = 0;          ///< retransmissions after a failed attempt
  std::int64_t dropped_frames = 0;   ///< attempts the faulty wire swallowed
  std::int64_t crc_failures = 0;     ///< corrupted frames rejected by the receiver
  std::int64_t duplicates = 0;       ///< stale-sequence frames discarded
  std::int64_t timeouts = 0;         ///< receive deadlines that expired
  std::int64_t backoff_micros = 0;   ///< wall-clock µs senders spent backing off
};

/// Everything one run() needs beyond the iteration count: the live
/// telemetry endpoint and the progress watchdog (docs/observability.md,
/// "Live telemetry"). The plain-iteration overload run(n) is equivalent
/// to run({.iterations = n}).
struct RunOptions {
  std::int64_t iterations = 1;
  /// >= 0: serve /metrics, /metrics.json, /healthz and /runtime on this
  /// TCP port for the duration of the run (0 = kernel-assigned
  /// ephemeral port — see on_obs_start). < 0 (default): no server.
  int obs_port = -1;
  std::string obs_bind = "127.0.0.1";
  /// Called once the telemetry server is listening, with the bound
  /// port (resolves obs_port = 0).
  std::function<void(int)> on_obs_start;
  /// Stall detection (watchdog.enabled). On stall: post-mortems are
  /// dumped, watchdog.on_stall fires, and with abort_on_stall the run
  /// is interrupted and run() throws obs::StallError.
  obs::WatchdogOptions watchdog;
};

/// Multithreaded execution engine for a compiled plan.
class ThreadedRuntime {
 public:
  /// `metrics`: registry receiving the per-channel counters
  /// (spi_threaded_* — see docs/observability.md). Not owned; must
  /// outlive the runtime. Null = the runtime owns a private registry,
  /// reachable through metrics(). The plan must outlive the runtime.
  explicit ThreadedRuntime(const ExecutablePlan& plan, obs::MetricRegistry* metrics = nullptr);

  /// Reliable-transport variant: reliable interprocessor channels speak
  /// the sequenced retry protocol (spi_reliable_* counters), optionally
  /// over the fault plan in `reliability`.
  ThreadedRuntime(const ExecutablePlan& plan, ReliabilityOptions reliability,
                  obs::MetricRegistry* metrics = nullptr);

  /// Full-control variant: additionally picks the channel implementation
  /// for plain edges (ChannelPolicy::kBlockingOnly forces the mutex
  /// fallback everywhere — the parity tests compare both paths).
  ThreadedRuntime(const ExecutablePlan& plan, ChannelPolicy policy,
                  ReliabilityOptions reliability = {}, obs::MetricRegistry* metrics = nullptr);

  /// Convenience overloads running the facade's plan().
  explicit ThreadedRuntime(const SpiSystem& system, obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(system.plan(), metrics) {}
  ThreadedRuntime(const SpiSystem& system, ReliabilityOptions reliability,
                  obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(system.plan(), reliability, metrics) {}

  /// Registers an actor's computation (same contract as
  /// FunctionalRuntime::set_compute; must be called before run()).
  /// Compute functions for actors on different processors run
  /// concurrently — they must not share mutable state without their own
  /// synchronization.
  void set_compute(df::ActorId actor, ComputeFn fn);

  /// Attaches a wall-clock trace recorder: every firing is recorded as a
  /// span (tid = processor). Not owned; must outlive run(). Null
  /// detaches.
  void set_trace(obs::RuntimeTraceRecorder* trace) { trace_ = trace; }

  /// Attaches a flight recorder (docs/observability.md): every firing,
  /// interprocessor send/receive and blocking wait becomes a causal
  /// event, wait-free on the hot path. On SPSC channels kBlockBegin/
  /// kBlockEnd are emitted only when a wait actually parks the thread —
  /// spin waits are not blocks. The recorder's proc_count must match the
  /// plan's. Actor/edge names are installed from the plan so post-mortem
  /// dumps are self-describing. Not owned; must outlive run(). Null
  /// detaches. If the recorder has a postmortem_path and run() fails
  /// with sim::ChannelError, the collected log is written there before
  /// the error is rethrown.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  /// Runs `iterations` graph iterations across proc_count() threads and
  /// joins them — every spawned thread is joined on every exit path,
  /// including mid-run channel or compute failures (no detached or
  /// leaked workers). Exceptions thrown by compute functions or by the
  /// reliable transport (sim::ChannelError) are rethrown on the caller
  /// thread (first one wins); other threads are unblocked and wound
  /// down. stats() is reset on entry and aggregated on every exit path —
  /// after a throw it reflects the partial run.
  void run(std::int64_t iterations);

  /// Full-control run: optionally mounts the embedded telemetry server
  /// (options.obs_port) and the progress watchdog (options.watchdog)
  /// for the duration of the run. A watchdog stall with abort_on_stall
  /// interrupts the workers and throws obs::StallError after writing
  /// the post-mortems (flight dump with the stall classification in
  /// the filename, plus the /runtime snapshot + report into
  /// watchdog.dump_dir).
  void run(const RunOptions& options);

  /// The current per-worker heartbeat/state snapshot (relaxed reads of
  /// the workers' published atomics; meaningful during and after run()).
  [[nodiscard]] std::vector<obs::WorkerSnapshot> worker_snapshots() const;

  /// The /runtime endpoint body: graph identity, per-worker state and
  /// per-channel depth / high-watermark vs. capacity. Valid strict JSON.
  /// Callable from any thread while run() executes.
  [[nodiscard]] std::string runtime_status_json() const;

  /// Pushes every channel's current depth and high watermark into the
  /// spi_channel_* gauges (called by the server before each scrape;
  /// callable manually for registry-only consumers).
  void refresh_channel_gauges();

  /// Aggregated channel statistics of the last run() (partial if it
  /// threw).
  [[nodiscard]] const ThreadedRunStats& stats() const { return stats_; }

  [[nodiscard]] const ReliabilityOptions& reliability() const { return reliability_; }
  [[nodiscard]] ChannelPolicy channel_policy() const { return policy_; }
  /// How many IPC edges ride the lock-free SPSC path this run.
  [[nodiscard]] std::int64_t spsc_channel_count() const { return spsc_count_; }

  /// The registry the channel counters live in (the caller-provided one,
  /// or the runtime's own). Counters are cumulative across runs and
  /// include initial-token placement at construction.
  [[nodiscard]] obs::MetricRegistry& metrics() { return *registry_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const { return *registry_; }

 private:
  /// Per-worker published state, one cache line per worker so heartbeat
  /// stores never contend: the worker writes with relaxed stores (the
  /// only hot-path cost), the watchdog/scrape threads read with relaxed
  /// loads. Approximate across fields by design — liveness needs only
  /// "does the epoch ever change".
  struct alignas(64) WorkerState {
    std::atomic<std::uint64_t> epoch{0};        ///< firings completed
    std::atomic<std::int64_t> iteration{0};
    std::atomic<std::int32_t> step{-1};
    std::atomic<std::int32_t> actor{-1};        ///< -1 between firings
    std::atomic<std::int32_t> waiting_edge{-1}; ///< channel op in progress
    std::atomic<std::int32_t> waiting_side{-1}; ///< 0 consume / 1 produce
    std::atomic<bool> done{false};
  };

  void init();
  void interrupt_all();
  void worker(std::int32_t proc, std::int64_t iterations);
  void fire(const FiringStep& step, FiringContext& ctx, std::int32_t proc,
            std::int64_t iteration, WorkerState& ws);
  [[nodiscard]] ThreadedRunStats counter_totals() const;
  /// Writes the flight recorder's post-mortem dump when the pending
  /// first_error_ is a sim::ChannelError (recorder's postmortem_path
  /// verbatim) or an obs::StallError (same path with ".stall-<kind>"
  /// inserted before the extension) and a dump path is configured.
  void maybe_dump_flight_postmortem();
  /// Monitor-thread stall handling: writes the report + /runtime
  /// snapshot into dump_dir, dumps the flight log for non-aborting
  /// watchdogs, and on abort_on_stall records StallError and
  /// interrupts the workers.
  void handle_stall(const obs::StallReport& report, const obs::WatchdogOptions& options);
  [[nodiscard]] std::string actor_display_name(std::int32_t actor) const;
  [[nodiscard]] std::string channel_display_name(std::int32_t edge) const;

  const ExecutablePlan& plan_;
  const df::Graph& graph_;  ///< the VTS-converted graph
  ReliabilityOptions reliability_;
  ChannelPolicy policy_ = ChannelPolicy::kAuto;
  std::unique_ptr<obs::MetricRegistry> owned_registry_;  ///< when none was provided
  obs::MetricRegistry* registry_ = nullptr;
  obs::RuntimeTraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::vector<ComputeFn> compute_;
  /// Per-edge local FIFOs (touched only by the owning processor's
  /// thread) and cross-processor channels, all indexed by edge id.
  /// Exactly one of spsc_/blocking_ is non-null for an IPC edge; both
  /// null = processor-local edge. Direct indexing keeps the per-token
  /// hot path free of map lookups.
  std::vector<std::deque<Bytes>> local_fifo_;
  std::vector<std::unique_ptr<SpscChannel>> spsc_;
  std::vector<std::unique_ptr<BlockingChannel>> blocking_;
  std::int64_t spsc_count_ = 0;
  /// Per-edge message counters for the per-firing batch increments
  /// (indexed by edge id; null entries = local edge or reliable channel,
  /// which counts for itself).
  std::vector<obs::Counter*> edge_messages_;
  std::vector<obs::Counter*> edge_payload_bytes_;
  std::vector<ChannelCounters> channel_counters_;  ///< for stats aggregation
  /// Per-(proc, step) firing contexts, built once and reused every
  /// iteration so input/output buffers keep their heap capacity —
  /// steady-state firings allocate nothing on the channel path. Each
  /// context is touched only by its processor's thread.
  std::vector<std::vector<FiringContext>> contexts_;
  std::vector<std::int64_t> fired_;  ///< per actor, owned by its processor's thread
  /// Heartbeat/wait state, one aligned slot per worker (see
  /// WorkerState). Allocated once in init(); reset at run() entry.
  std::unique_ptr<WorkerState[]> worker_state_;
  std::size_t worker_count_ = 0;
  /// Depth/watermark gauges per plan channel (indexed like
  /// channel_counters_), refreshed on scrape — never on the hot path.
  std::vector<obs::Gauge*> depth_gauges_;
  std::vector<obs::Gauge*> watermark_gauges_;
  std::int64_t run_iterations_ = 0;  ///< written before workers/server start
  std::atomic<bool> running_{false};
  std::atomic<bool> abort_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  ThreadedRunStats stats_;
};

}  // namespace spi::core
