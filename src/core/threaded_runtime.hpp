/// \file threaded_runtime.hpp
/// Software SPI: executes a compiled SpiSystem on real host threads —
/// one thread per modeled processor, self-timed scheduling realized by
/// blocking SPI channels.
///
/// The paper's preliminary SPI was exactly this: a software library for
/// multiprocessor signal processing. Here every interprocessor channel
/// is a bounded, thread-safe FIFO of tokens: a BBS channel blocks the
/// producer at its equation-2 capacity (back-pressure the static
/// analysis guarantees is never exercised in a correctly scheduled
/// system, kept as a safety net); a UBS channel blocks at its credit
/// window. Dataflow determinacy guarantees the parallel result is
/// identical to FunctionalRuntime's sequential interleaving, whatever
/// the thread schedule — the tests assert it.
///
/// Actor compute functions are the same ComputeFn used by
/// FunctionalRuntime, so an application wires up once and runs on either
/// engine.
///
/// Reliability (docs/reliability.md): construct with ReliabilityOptions
/// and every interprocessor channel becomes a reliable link over an
/// (optionally faulty) wire — sequenced CRC-checked frames, bounded
/// retry with exponential backoff + deterministic jitter, duplicate
/// suppression, receive timeouts. Because the FaultPlan is keyed by
/// (edge, sequence, attempt), a lossy run delivers exactly the payloads
/// of a lossless run; persistent faults surface a typed
/// sim::ChannelError from run() instead of hanging.
///
/// Observability (docs/observability.md): every channel feeds lock-free
/// counters in a MetricRegistry — messages, payload bytes, block counts
/// and block *durations* per side, and under reliability the
/// retry/drop/CRC/duplicate/timeout counters plus a backoff histogram —
/// either a registry the caller provides (shared with the compile
/// pipeline) or a private one. Attach a RuntimeTraceRecorder to get
/// wall-clock Chrome trace JSON of every firing, diffable in Perfetto
/// against the timed simulator's trace of the same system.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "core/functional.hpp"
#include "core/reliable_link.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_trace.hpp"
#include "sim/fault.hpp"

namespace spi::core {

/// Turns the runtime's interprocessor channels into reliable links.
struct ReliabilityOptions {
  bool enabled = false;
  /// Deterministic fault injection on every interprocessor wire. Not
  /// owned; must outlive the runtime. Null = perfect wire (the protocol
  /// still frames, sequences and CRC-checks every message).
  const sim::FaultPlan* faults = nullptr;
  /// Retry/backoff/timeout knobs. When `faults` is set its embedded
  /// retry() policy wins, so one fault-plan file configures everything.
  sim::RetryPolicy retry;

  [[nodiscard]] const sim::RetryPolicy& policy() const {
    return faults ? faults->retry() : retry;
  }
};

/// Aggregated channel statistics of one run() (see
/// ThreadedRuntime::stats). Derived from the registry counters: the
/// difference between their values at run() entry and exit.
struct ThreadedRunStats {
  std::int64_t messages = 0;         ///< interprocessor tokens moved
  std::int64_t payload_bytes = 0;
  std::int64_t producer_blocks = 0;  ///< times a sender hit a full channel
  std::int64_t consumer_blocks = 0;  ///< times a receiver waited for data
  std::int64_t producer_block_micros = 0;  ///< wall-clock µs senders spent blocked
  std::int64_t consumer_block_micros = 0;  ///< wall-clock µs receivers spent blocked
  // Reliability protocol (all zero when reliability is off):
  std::int64_t retries = 0;          ///< retransmissions after a failed attempt
  std::int64_t dropped_frames = 0;   ///< attempts the faulty wire swallowed
  std::int64_t crc_failures = 0;     ///< corrupted frames rejected by the receiver
  std::int64_t duplicates = 0;       ///< stale-sequence frames discarded
  std::int64_t timeouts = 0;         ///< receive deadlines that expired
  std::int64_t backoff_micros = 0;   ///< wall-clock µs senders spent backing off
};

/// Multithreaded execution engine for a compiled plan.
class ThreadedRuntime {
 public:
  /// `metrics`: registry receiving the per-channel counters
  /// (spi_threaded_* — see docs/observability.md). Not owned; must
  /// outlive the runtime. Null = the runtime owns a private registry,
  /// reachable through metrics(). The plan must outlive the runtime.
  explicit ThreadedRuntime(const ExecutablePlan& plan, obs::MetricRegistry* metrics = nullptr);

  /// Reliable-transport variant: interprocessor channels speak the
  /// sequenced retry protocol (spi_reliable_* counters), optionally over
  /// the fault plan in `reliability`.
  ThreadedRuntime(const ExecutablePlan& plan, ReliabilityOptions reliability,
                  obs::MetricRegistry* metrics = nullptr);

  /// Convenience overloads running the facade's plan().
  explicit ThreadedRuntime(const SpiSystem& system, obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(system.plan(), metrics) {}
  ThreadedRuntime(const SpiSystem& system, ReliabilityOptions reliability,
                  obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(system.plan(), reliability, metrics) {}

  /// Registers an actor's computation (same contract as
  /// FunctionalRuntime::set_compute; must be called before run()).
  /// Compute functions for actors on different processors run
  /// concurrently — they must not share mutable state without their own
  /// synchronization.
  void set_compute(df::ActorId actor, ComputeFn fn);

  /// Attaches a wall-clock trace recorder: every firing is recorded as a
  /// span (tid = processor). Not owned; must outlive run(). Null
  /// detaches.
  void set_trace(obs::RuntimeTraceRecorder* trace) { trace_ = trace; }

  /// Attaches a flight recorder (docs/observability.md): every firing,
  /// interprocessor send/receive and blocking wait becomes a causal
  /// event, wait-free on the hot path. The recorder's proc_count must
  /// match the plan's. Actor/edge names are installed from the plan so
  /// post-mortem dumps are self-describing. Not owned; must outlive
  /// run(). Null detaches. If the recorder has a postmortem_path and
  /// run() fails with sim::ChannelError, the collected log is written
  /// there before the error is rethrown.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  /// Runs `iterations` graph iterations across proc_count() threads and
  /// joins them — every spawned thread is joined on every exit path,
  /// including mid-run channel or compute failures (no detached or
  /// leaked workers). Exceptions thrown by compute functions or by the
  /// reliable transport (sim::ChannelError) are rethrown on the caller
  /// thread (first one wins); other threads are unblocked and wound
  /// down. stats() is reset on entry and aggregated on every exit path —
  /// after a throw it reflects the partial run.
  void run(std::int64_t iterations);

  /// Aggregated channel statistics of the last run() (partial if it
  /// threw).
  [[nodiscard]] const ThreadedRunStats& stats() const { return stats_; }

  [[nodiscard]] const ReliabilityOptions& reliability() const { return reliability_; }

  /// The registry the channel counters live in (the caller-provided one,
  /// or the runtime's own). Counters are cumulative across runs and
  /// include initial-token placement at construction.
  [[nodiscard]] obs::MetricRegistry& metrics() { return *registry_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const { return *registry_; }

 private:
  /// Lock-free registry handles of one channel's counters. Reliability
  /// pointers are null when the protocol is off.
  struct ChannelCounters {
    obs::Counter* messages = nullptr;
    obs::Counter* payload_bytes = nullptr;
    obs::Counter* producer_blocks = nullptr;
    obs::Counter* consumer_blocks = nullptr;
    obs::Counter* producer_block_micros = nullptr;
    obs::Counter* consumer_block_micros = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* dropped_frames = nullptr;
    obs::Counter* crc_failures = nullptr;
    obs::Counter* duplicates = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* send_failures = nullptr;
    obs::Counter* backoff_micros = nullptr;
    obs::Histogram* backoff_histogram = nullptr;
  };

  /// Per-call flight-recording context: who is touching the channel.
  /// Null pointer = recording off (the construction-time token placement
  /// and every run without a recorder attached).
  struct FlightCtx {
    obs::FlightRecorder* recorder = nullptr;
    std::int32_t proc = 0;
    std::int32_t actor = -1;
    std::int64_t iteration = 0;
  };

  /// Thread-safe bounded FIFO for one interprocessor edge. In plain mode
  /// it moves raw tokens; in reliable mode it moves sequenced frames
  /// produced/consumed by the per-edge protocol state machines (each
  /// touched only by its single producing / consuming thread).
  class BlockingChannel {
   public:
    BlockingChannel(df::EdgeId edge, std::size_t capacity_tokens, std::atomic<bool>& abort,
                    ChannelCounters counters);

    /// Enables the reliable protocol. `plan` may be null (perfect wire);
    /// `policy` must outlive the channel.
    void enable_reliability(const sim::FaultPlan* plan, const sim::RetryPolicy& policy);

    void push(Bytes token, const FlightCtx* flight = nullptr);
    /// Initial-token placement: sequenced framing without fault
    /// injection, so construction cannot fail under a hostile plan.
    void push_faultless(Bytes token);
    [[nodiscard]] Bytes pop(const FlightCtx* flight = nullptr);
    void interrupt();  ///< wake all waiters (used on abort)

   private:
    void enqueue(Bytes frame, const FlightCtx* flight);  ///< capacity-blocking raw enqueue
    /// Blocking raw dequeue (timeout in reliable mode).
    [[nodiscard]] Bytes dequeue(const FlightCtx* flight);
    void execute(const TransmitScript& script, std::int64_t payload_bytes,
                 const FlightCtx* flight);

    df::EdgeId edge_;
    std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<Bytes> queue_;
    std::size_t capacity_;
    std::atomic<bool>& abort_;
    ChannelCounters counters_;
    // Reliable mode (null/empty otherwise). Sender state is touched only
    // by the edge's producing thread, receiver state only by its
    // consuming thread — dataflow edges are single-producer,
    // single-consumer by construction.
    std::unique_ptr<ReliableSender> sender_;
    std::unique_ptr<ReliableReceiver> receiver_;
    const sim::RetryPolicy* policy_ = nullptr;
    /// Flight-event sequence numbers. send_seq_ is touched only by the
    /// edge's producing thread, recv_seq_ only by its consuming thread
    /// (channels are SPSC by construction), so plain int64 suffices.
    /// Initial tokens advance send_seq_ unrecorded, which is correct:
    /// delay tokens are initially available, not sent during the run.
    std::int64_t send_seq_ = 0;
    std::int64_t recv_seq_ = 0;
  };

  void init();
  void interrupt_all();
  void worker(std::int32_t proc, std::int64_t iterations);
  void fire(const FiringStep& step, std::int32_t proc, std::int64_t iteration);
  [[nodiscard]] ThreadedRunStats counter_totals() const;
  /// Writes the flight recorder's post-mortem dump when the pending
  /// first_error_ is a sim::ChannelError and a dump path is configured.
  void maybe_dump_flight_postmortem();

  const ExecutablePlan& plan_;
  const df::Graph& graph_;  ///< the VTS-converted graph
  ReliabilityOptions reliability_;
  std::unique_ptr<obs::MetricRegistry> owned_registry_;  ///< when none was provided
  obs::MetricRegistry* registry_ = nullptr;
  obs::RuntimeTraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::vector<ComputeFn> compute_;
  /// Per-edge local FIFOs (touched only by the owning processor's
  /// thread) and cross-processor blocking channels, both indexed by
  /// edge id (null channel = processor-local edge). Direct indexing
  /// keeps the per-token hot path free of map lookups.
  std::vector<std::deque<Bytes>> local_fifo_;
  std::vector<std::unique_ptr<BlockingChannel>> channels_;
  std::vector<ChannelCounters> channel_counters_;  ///< for stats aggregation
  std::vector<std::int64_t> fired_;  ///< per actor, owned by its processor's thread
  std::atomic<bool> abort_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  ThreadedRunStats stats_;
};

}  // namespace spi::core
