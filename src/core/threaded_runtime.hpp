/// \file threaded_runtime.hpp
/// Software SPI: executes a compiled SpiSystem on real host threads —
/// one thread per modeled processor, self-timed scheduling realized by
/// blocking SPI channels.
///
/// The paper's preliminary SPI was exactly this: a software library for
/// multiprocessor signal processing. Every interprocessor edge is a
/// bounded, single-producer/single-consumer token FIFO: a BBS channel
/// back-pressures the producer at its equation-2 capacity (a safety net
/// the static analysis guarantees is never exercised in a correctly
/// scheduled system); a UBS channel at its credit window. Dataflow
/// determinacy guarantees the parallel result is identical to
/// FunctionalRuntime's sequential interleaving, whatever the thread
/// schedule — the tests assert it.
///
/// Since the serving refactor this class is a thin facade over the real
/// execution stack (docs/serving.md): a JobInstance holds the channels,
/// firing contexts and per-run state; a private WorkerPool sized to the
/// plan's processor count supplies the threads and keeps them across
/// runs, so repeated run() calls no longer spawn and join. Everything
/// below — channel selection, reliability, observability — is
/// JobInstance behavior surfaced unchanged.
///
/// Channel selection (docs/architecture.md): plain edges ride the
/// lock-free zero-copy SpscChannel — a slab sized from the plan's
/// equation-2 bound, no lock and no heap allocation in steady state.
/// Reliability-enabled edges keep the mutex-based BlockingChannel, whose
/// requeue/timeout semantics the retry protocol needs. ChannelPolicy
/// can force the blocking fallback everywhere (parity tests, paranoid
/// deployments).
///
/// Actor compute functions are the same ComputeFn used by
/// FunctionalRuntime, so an application wires up once and runs on either
/// engine.
///
/// Reliability (docs/reliability.md): construct with ReliabilityOptions
/// and every reliable interprocessor channel becomes a reliable link
/// over an (optionally faulty) wire — sequenced CRC-checked frames,
/// bounded retry with exponential backoff + deterministic jitter,
/// duplicate suppression, receive timeouts. Because the FaultPlan is
/// keyed by (edge, sequence, attempt), a lossy run delivers exactly the
/// payloads of a lossless run; persistent faults surface a typed
/// sim::ChannelError from run() instead of hanging.
///
/// Observability (docs/observability.md): every channel feeds lock-free
/// counters in a MetricRegistry — messages, payload bytes, block counts
/// and block *durations* per side, and under reliability the
/// retry/drop/CRC/duplicate/timeout counters plus a backoff histogram —
/// either a registry the caller provides (shared with the compile
/// pipeline) or a private one. Message/byte counters are batched per
/// firing, so the per-token hot path touches no atomics. Attach a
/// RuntimeTraceRecorder to get wall-clock Chrome trace JSON of every
/// firing, diffable in Perfetto against the timed simulator's trace of
/// the same system.
#pragma once

#include "core/job_instance.hpp"
#include "core/worker_pool.hpp"

namespace spi::core {

/// Multithreaded execution engine for a compiled plan: one JobInstance
/// plus a private, persistent WorkerPool of proc_count() threads.
class ThreadedRuntime {
 public:
  /// `metrics`: registry receiving the per-channel counters
  /// (spi_threaded_* — see docs/observability.md). Not owned; must
  /// outlive the runtime. Null = the runtime owns a private registry,
  /// reachable through metrics(). The plan must outlive the runtime.
  explicit ThreadedRuntime(const ExecutablePlan& plan, obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(plan, ChannelPolicy::kAuto, ReliabilityOptions{}, metrics) {}

  /// Reliable-transport variant: reliable interprocessor channels speak
  /// the sequenced retry protocol (spi_reliable_* counters), optionally
  /// over the fault plan in `reliability`.
  ThreadedRuntime(const ExecutablePlan& plan, ReliabilityOptions reliability,
                  obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(plan, ChannelPolicy::kAuto, reliability, metrics) {}

  /// Full-control variant: additionally picks the channel implementation
  /// for plain edges (ChannelPolicy::kBlockingOnly forces the mutex
  /// fallback everywhere — the parity tests compare both paths).
  ThreadedRuntime(const ExecutablePlan& plan, ChannelPolicy policy,
                  ReliabilityOptions reliability = {}, obs::MetricRegistry* metrics = nullptr)
      : job_(plan, JobInstanceOptions{policy, reliability, metrics, {}}),
        pool_(plan.programs.size()) {}

  /// Convenience overloads running the facade's plan().
  explicit ThreadedRuntime(const SpiSystem& system, obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(system.plan(), metrics) {}
  ThreadedRuntime(const SpiSystem& system, ReliabilityOptions reliability,
                  obs::MetricRegistry* metrics = nullptr)
      : ThreadedRuntime(system.plan(), reliability, metrics) {}

  /// Registers an actor's computation (same contract as
  /// FunctionalRuntime::set_compute; must be called before run()).
  /// Compute functions for actors on different processors run
  /// concurrently — they must not share mutable state without their own
  /// synchronization.
  void set_compute(df::ActorId actor, ComputeFn fn) { job_.set_compute(actor, std::move(fn)); }

  /// Attaches a wall-clock trace recorder: every firing is recorded as a
  /// span (tid = processor). Not owned; must outlive run(). Null
  /// detaches.
  void set_trace(obs::RuntimeTraceRecorder* trace) { job_.set_trace(trace); }

  /// Attaches a flight recorder (docs/observability.md): every firing,
  /// interprocessor send/receive and blocking wait becomes a causal
  /// event, wait-free on the hot path. On SPSC channels kBlockBegin/
  /// kBlockEnd are emitted only when a wait actually parks the thread —
  /// spin waits are not blocks. The recorder's proc_count must match the
  /// plan's. Actor/edge names are installed from the plan so post-mortem
  /// dumps are self-describing. Not owned; must outlive run(). Null
  /// detaches. If the recorder has a postmortem_path and run() fails
  /// with sim::ChannelError, the collected log is written there before
  /// the error is rethrown.
  void set_flight_recorder(obs::FlightRecorder* recorder) { job_.set_flight_recorder(recorder); }

  /// Runs `iterations` graph iterations across proc_count() pool workers
  /// and waits for the gang — every worker finishes its body on every
  /// exit path, including mid-run channel or compute failures (no
  /// detached or leaked work). Exceptions thrown by compute functions or
  /// by the reliable transport (sim::ChannelError) are rethrown on the
  /// caller thread (first one wins); other workers are unblocked and
  /// wound down. stats() is reset on entry and aggregated on every exit
  /// path — after a throw it reflects the partial run.
  void run(std::int64_t iterations) {
    RunOptions options;
    options.iterations = iterations;
    run(options);
  }

  /// Full-control run: optionally mounts the embedded telemetry server
  /// (options.obs_port) and the progress watchdog (options.watchdog)
  /// for the duration of the run. A watchdog stall with abort_on_stall
  /// interrupts the workers and throws obs::StallError after writing
  /// the post-mortems (flight dump with the stall classification in
  /// the filename, plus the /runtime snapshot + report into
  /// watchdog.dump_dir).
  void run(const RunOptions& options) { job_.run(pool_, options); }

  /// The current per-worker heartbeat/state snapshot (relaxed reads of
  /// the workers' published atomics; meaningful during and after run()).
  [[nodiscard]] std::vector<obs::WorkerSnapshot> worker_snapshots() const {
    return job_.worker_snapshots();
  }

  /// The /runtime endpoint body: graph identity, per-worker state and
  /// per-channel depth / high-watermark vs. capacity. Valid strict JSON.
  /// Callable from any thread while run() executes.
  [[nodiscard]] std::string runtime_status_json() const { return job_.runtime_status_json(); }

  /// Pushes every channel's current depth and high watermark into the
  /// spi_channel_* gauges (called by the server before each scrape;
  /// callable manually for registry-only consumers).
  void refresh_channel_gauges() { job_.refresh_channel_gauges(); }

  /// Aggregated channel statistics of the last run() (partial if it
  /// threw).
  [[nodiscard]] const ThreadedRunStats& stats() const { return job_.stats(); }

  [[nodiscard]] const ReliabilityOptions& reliability() const { return job_.reliability(); }
  [[nodiscard]] ChannelPolicy channel_policy() const { return job_.channel_policy(); }
  /// How many IPC edges ride the lock-free SPSC path this run.
  [[nodiscard]] std::int64_t spsc_channel_count() const { return job_.spsc_channel_count(); }

  /// The underlying job instance (the serve layer builds these directly;
  /// exposed here so diagnostics and tests can reach the full surface).
  [[nodiscard]] JobInstance& job() { return job_; }
  [[nodiscard]] const JobInstance& job() const { return job_; }

  /// The registry the channel counters live in (the caller-provided one,
  /// or the runtime's own). Counters are cumulative across runs and
  /// include initial-token placement at construction.
  [[nodiscard]] obs::MetricRegistry& metrics() { return job_.metrics(); }
  [[nodiscard]] const obs::MetricRegistry& metrics() const { return job_.metrics(); }

 private:
  JobInstance job_;
  WorkerPool pool_;
};

}  // namespace spi::core
