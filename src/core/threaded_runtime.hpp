/// \file threaded_runtime.hpp
/// Software SPI: executes a compiled SpiSystem on real host threads —
/// one thread per modeled processor, self-timed scheduling realized by
/// blocking SPI channels.
///
/// The paper's preliminary SPI was exactly this: a software library for
/// multiprocessor signal processing. Here every interprocessor channel
/// is a bounded, thread-safe FIFO of tokens: a BBS channel blocks the
/// producer at its equation-2 capacity (back-pressure the static
/// analysis guarantees is never exercised in a correctly scheduled
/// system, kept as a safety net); a UBS channel blocks at its credit
/// window. Dataflow determinacy guarantees the parallel result is
/// identical to FunctionalRuntime's sequential interleaving, whatever
/// the thread schedule — the tests assert it.
///
/// Actor compute functions are the same ComputeFn used by
/// FunctionalRuntime, so an application wires up once and runs on either
/// engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "core/functional.hpp"

namespace spi::core {

struct ThreadedRunStats {
  std::int64_t messages = 0;         ///< interprocessor tokens moved
  std::int64_t payload_bytes = 0;
  std::int64_t producer_blocks = 0;  ///< times a sender hit a full channel
  std::int64_t consumer_blocks = 0;  ///< times a receiver waited for data
};

/// Multithreaded execution engine for a compiled SpiSystem.
class ThreadedRuntime {
 public:
  explicit ThreadedRuntime(const SpiSystem& system);

  /// Registers an actor's computation (same contract as
  /// FunctionalRuntime::set_compute; must be called before run()).
  /// Compute functions for actors on different processors run
  /// concurrently — they must not share mutable state without their own
  /// synchronization.
  void set_compute(df::ActorId actor, ComputeFn fn);

  /// Runs `iterations` graph iterations across proc_count() threads and
  /// joins them. Exceptions thrown by compute functions are rethrown on
  /// the caller thread (first one wins); other threads are unblocked and
  /// wound down.
  void run(std::int64_t iterations);

  /// Aggregated channel statistics of the last run().
  [[nodiscard]] const ThreadedRunStats& stats() const { return stats_; }

 private:
  /// Thread-safe bounded FIFO of raw tokens for one interprocessor edge.
  class BlockingChannel {
   public:
    BlockingChannel(std::size_t capacity_tokens, std::atomic<bool>& abort)
        : capacity_(capacity_tokens), abort_(abort) {}

    void push(Bytes token);
    [[nodiscard]] Bytes pop();
    void interrupt();  ///< wake all waiters (used on abort)

    std::int64_t messages = 0;  // guarded by mutex_
    std::int64_t payload_bytes = 0;
    std::int64_t producer_blocks = 0;
    std::int64_t consumer_blocks = 0;

   private:
    std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<Bytes> queue_;
    std::size_t capacity_;
    std::atomic<bool>& abort_;
  };

  void worker(std::int32_t proc, std::int64_t iterations);
  void fire(df::ActorId actor);

  const SpiSystem& system_;
  const df::Graph& graph_;  ///< the VTS-converted graph
  std::vector<ComputeFn> compute_;
  /// Per-edge local FIFOs (touched only by the owning processor's
  /// thread) and cross-processor blocking channels.
  std::vector<std::deque<Bytes>> local_fifo_;
  std::map<df::EdgeId, std::unique_ptr<BlockingChannel>> channels_;
  /// Per-processor firing sequence for one iteration (actor ids; an
  /// actor appears once per firing, from the PASS).
  std::vector<std::vector<df::ActorId>> proc_firing_order_;
  std::vector<std::int64_t> fired_;  ///< per actor, owned by its processor's thread
  std::atomic<bool> abort_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  ThreadedRunStats stats_;
};

}  // namespace spi::core
