/// \file text_format.hpp
/// A small text format for describing SPI systems, consumed by the
/// `spi_compile` command-line tool and usable programmatically. One
/// declaration per line; '#' starts a comment.
///
///   graph lpc_frontend
///   procs 3
///   actor Src  exec=32
///   actor Filt exec=128
///   actor Sink exec=16
///   edge  Src:2    -> Filt:3   delay=0 bytes=4    # static 2:3 edge
///   edge  Filt:dyn8 -> Sink:dyn8 bytes=8          # dynamic, bound 8
///   proc  Src  = 0
///   proc  Filt = 1
///   proc  Sink = 2
///
/// Unassigned actors default to processor 0; `procs` defaults to the
/// highest assigned processor + 1.
#pragma once

#include <string>
#include <string_view>

#include "dataflow/graph.hpp"
#include "sched/assignment.hpp"

namespace spi::core {

struct ParsedSystem {
  df::Graph graph;
  sched::Assignment assignment{0, 1};
};

/// Parses the format above. Throws std::invalid_argument with a
/// line-numbered message on any syntax or semantic error.
[[nodiscard]] ParsedSystem parse_system(std::string_view text);

/// Renders a graph + assignment back to the text format (round-trips
/// through parse_system; the tests assert it).
[[nodiscard]] std::string to_text(const df::Graph& graph, const sched::Assignment& assignment);

}  // namespace spi::core
