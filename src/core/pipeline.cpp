#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace spi::core {

namespace {

df::Repetitions checked_repetitions(const df::Graph& g) {
  df::Repetitions reps = df::compute_repetitions(g);
  if (!reps.consistent) {
    std::string edge = reps.conflict_edge != df::kInvalidEdge
                           ? g.edge(reps.conflict_edge).name
                           : std::string("<structural>");
    throw std::invalid_argument("SpiSystem: inconsistent dataflow graph after VTS conversion"
                                " (balance equation fails at edge " + edge + ")");
  }
  return reps;
}

df::SequentialSchedule checked_pass(const df::Graph& g, const df::Repetitions& reps,
                                    df::SchedulePolicy policy) {
  df::SequentialSchedule s = df::build_sequential_schedule(g, reps, policy);
  if (!s.admissible)
    throw std::invalid_argument("SpiSystem: graph deadlocks (insufficient delay on a cycle)");
  return s;
}

/// Runs one compile phase, recording its wall-clock seconds into
/// `spi_compile_phase_seconds{phase=...}` when a registry is attached.
template <typename F>
auto timed_phase(obs::MetricRegistry* registry, const char* phase, F&& f) {
  if (!registry) return f();
  obs::ScopedTimer timer(&registry->gauge(
      "spi_compile_phase_seconds", {{"phase", phase}},
      "Wall-clock seconds spent in one phase of the SPI compile pipeline"));
  return f();
}

}  // namespace

VtsStage run_vts_stage(const df::Graph& application, const SpiSystemOptions& options) {
  VtsStage stage;
  stage.vts = timed_phase(options.metrics, "vts_convert",
                          [&] { return df::vts_convert(application); });
  return stage;
}

ScheduleStage run_schedule_stage(const VtsStage& vts, const sched::Assignment& assignment,
                                 const SpiSystemOptions& options) {
  ScheduleStage stage;
  const df::Graph& g = vts.vts.graph;
  stage.repetitions =
      timed_phase(options.metrics, "repetitions", [&] { return checked_repetitions(g); });
  stage.pass = timed_phase(options.metrics, "pass_schedule", [&] {
    return checked_pass(g, stage.repetitions, options.pass_policy);
  });
  stage.hsdf = timed_phase(options.metrics, "hsdf_expand",
                           [&] { return sched::hsdf_expand(g, stage.repetitions); });
  stage.proc_order = timed_phase(options.metrics, "proc_order", [&] {
    return sched::proc_order_from_pass(stage.hsdf, stage.pass.firings, assignment);
  });
  return stage;
}

SyncStage run_sync_stage(const ScheduleStage& sched, const sched::Assignment& assignment,
                         const SpiSystemOptions& options) {
  sched::SyncGraphBuild build = timed_phase(options.metrics, "sync_graph", [&] {
    return sched::build_sync_graph(sched.hsdf, assignment, sched.proc_order, options.sync);
  });
  std::optional<sched::ResyncReport> resync;
  if (options.resynchronize)
    resync = timed_phase(options.metrics, "resynchronize",
                         [&] { return sched::resynchronize(build.graph, options.resync); });
  return SyncStage{std::move(build), std::move(resync)};
}

ProtocolStage run_protocol_stage(const VtsStage& vts, const ScheduleStage& sched,
                                 const SyncStage& sync) {
  // One channel per interprocessor dataflow edge. The VTS result is the
  // single source: names are preserved by the conversion and
  // `converted` marks the originally-dynamic edges.
  const std::vector<std::int64_t> c_bytes = df::packed_buffer_byte_bounds(vts.vts);
  std::map<df::EdgeId, ChannelSpec> plans;
  for (const auto& [sync_index, protocol] : sync.build.ipc_edges) {
    const sched::SyncEdge& se = sync.build.graph.edges()[sync_index];
    ChannelSpec& plan = plans[se.dataflow_edge];
    if (plan.edge == df::kInvalidEdge) {
      const auto slot = static_cast<std::size_t>(se.dataflow_edge);
      const df::Edge& edge = vts.vts.graph.edge(se.dataflow_edge);
      const df::VtsEdgeInfo& info = vts.vts.edges[slot];
      plan.edge = se.dataflow_edge;
      plan.name = edge.name;
      plan.mode = info.converted ? SpiMode::kDynamic : SpiMode::kStatic;
      plan.b_max_bytes = info.b_max_bytes;
      plan.c_bytes = c_bytes[slot];
      plan.protocol = sched::SyncProtocol::kBbs;  // demoted to UBS below if any arc needs it
      plan.token_bytes = edge.token_bytes;
      plan.raw_token_bytes = info.raw_token_bytes;
      plan.prod_tokens = edge.prod.value();
      plan.delay_tokens = edge.delay;
      plan.src_firings_per_iteration = sched.repetitions.of(edge.src);
    }
    plan.sync_edges.push_back(sync_index);
    if (protocol == sched::SyncProtocol::kUbs) plan.protocol = sched::SyncProtocol::kUbs;
  }

  // Equation 2 bounds for BBS channels; ack bookkeeping for UBS channels.
  for (auto& [edge, plan] : plans) {
    if (plan.protocol == sched::SyncProtocol::kBbs) {
      std::int64_t tokens = 0;
      for (std::size_t idx : plan.sync_edges) {
        const auto bound = sched::ipc_buffer_bound_tokens(sync.build.graph, idx);
        if (!bound) {  // should not happen for a BBS-classified edge
          plan.protocol = sched::SyncProtocol::kUbs;
          tokens = 0;
          break;
        }
        tokens = std::max(tokens, *bound);
      }
      if (plan.protocol == sched::SyncProtocol::kBbs) {
        plan.bbs_capacity_tokens = tokens;
        plan.bbs_capacity_bytes = tokens * plan.b_max_bytes;
      }
    }
  }
  for (const sched::SyncEdge& se : sync.build.graph.edges()) {
    if (se.kind != sched::SyncEdgeKind::kAck) continue;
    auto it = plans.find(se.dataflow_edge);
    if (it == plans.end()) continue;
    it->second.acks_total += 1;
    if (se.removed) it->second.acks_elided += 1;
  }

  ProtocolStage stage;
  stage.channels.reserve(plans.size());
  for (auto& [edge, plan] : plans) stage.channels.push_back(std::move(plan));
  return stage;
}

ExecutablePlan plan_emit(const df::Graph& application, const sched::Assignment& assignment,
                         const SpiSystemOptions& options, VtsStage vts, ScheduleStage sched,
                         SyncStage sync, ProtocolStage protocol) {
  ExecutablePlan plan;
  plan.graph_name = application.name();
  plan.proc_count = assignment.proc_count();
  plan.costs = options.costs;
  plan.vts = std::move(vts.vts);
  plan.repetitions = std::move(sched.repetitions);
  plan.pass = std::move(sched.pass);
  plan.proc_order = std::move(sched.proc_order);
  plan.sync_graph = std::move(sync.build.graph);
  plan.resync = sync.resync;
  plan.channels = std::move(protocol.channels);

  plan.proc_of_actor.reserve(plan.vts.graph.actor_count());
  for (std::size_t a = 0; a < plan.vts.graph.actor_count(); ++a)
    plan.proc_of_actor.push_back(assignment.proc_of(static_cast<df::ActorId>(a)));

  // Per-processor firing programs: the PASS in per-processor slices,
  // each firing carrying its invocation index and edge bindings.
  plan.programs.assign(static_cast<std::size_t>(plan.proc_count), {});
  std::vector<std::int32_t> invocation(plan.vts.graph.actor_count(), 0);
  for (df::ActorId actor : plan.pass.firings) {
    FiringStep step;
    step.actor = actor;
    step.invocation = invocation[static_cast<std::size_t>(actor)]++;
    const auto in = plan.vts.graph.in_edges(actor);
    const auto out = plan.vts.graph.out_edges(actor);
    step.in_edges.assign(in.begin(), in.end());
    step.out_edges.assign(out.begin(), out.end());
    plan.programs[static_cast<std::size_t>(plan.proc_of(actor))].push_back(std::move(step));
  }

  plan.messages_per_iteration = plan.sync_graph.count_active(sched::SyncEdgeKind::kIpc) +
                                plan.sync_graph.count_active(sched::SyncEdgeKind::kAck) +
                                plan.sync_graph.count_active(sched::SyncEdgeKind::kResync);
  plan.rebuild_channel_index();
  return plan;
}

ExecutablePlan compile_plan(const df::Graph& application, const sched::Assignment& assignment,
                            const SpiSystemOptions& options) {
  const std::int64_t compile_start_ns = obs::monotonic_ns();
  if (assignment.actor_count() != application.actor_count())
    throw std::invalid_argument("SpiSystem: assignment size does not match the graph");

  VtsStage vts = run_vts_stage(application, options);
  ScheduleStage sched = run_schedule_stage(vts, assignment, options);
  SyncStage sync = run_sync_stage(sched, assignment, options);

  ExecutablePlan plan = [&] {
    obs::ScopedTimer plan_timer(
        options.metrics ? &options.metrics->gauge(
                              "spi_compile_phase_seconds", {{"phase", "channel_plan"}},
                              "Wall-clock seconds spent in one phase of the SPI compile pipeline")
                        : nullptr);
    ProtocolStage protocol = run_protocol_stage(vts, sched, sync);
    return plan_emit(application, assignment, options, std::move(vts), std::move(sched),
                     std::move(sync), std::move(protocol));
  }();

  if (options.metrics) {
    options.metrics
        ->gauge("spi_compile_total_seconds", {},
                "Wall-clock seconds of the whole SPI compile pipeline")
        .set(static_cast<double>(obs::monotonic_ns() - compile_start_ns) * 1e-9);
    plan.publish_metrics(*options.metrics);
  }
  return plan;
}

}  // namespace spi::core
