#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "sched/sync_path.hpp"

namespace spi::core {

namespace {

df::Repetitions checked_repetitions(const df::Graph& g) {
  df::Repetitions reps = df::compute_repetitions(g);
  if (!reps.consistent) {
    std::string edge = reps.conflict_edge != df::kInvalidEdge
                           ? g.edge(reps.conflict_edge).name
                           : std::string("<structural>");
    throw std::invalid_argument("SpiSystem: inconsistent dataflow graph after VTS conversion"
                                " (balance equation fails at edge " + edge + ")");
  }
  return reps;
}

df::SequentialSchedule checked_pass(const df::Graph& g, const df::Repetitions& reps,
                                    df::SchedulePolicy policy) {
  df::SequentialSchedule s = df::build_sequential_schedule(g, reps, policy);
  if (!s.admissible)
    throw std::invalid_argument("SpiSystem: graph deadlocks (insufficient delay on a cycle)");
  return s;
}

/// Runs one compile phase, recording its wall-clock seconds into
/// `spi_compile_phase_seconds{phase=...}` when a registry is attached.
template <typename F>
auto timed_phase(obs::MetricRegistry* registry, const char* phase, F&& f) {
  if (!registry) return f();
  obs::ScopedTimer timer(&registry->gauge(
      "spi_compile_phase_seconds", {{"phase", phase}},
      "Wall-clock seconds spent in one phase of the SPI compile pipeline"));
  return f();
}

}  // namespace

VtsStage run_vts_stage(const df::Graph& application, const SpiSystemOptions& options) {
  VtsStage stage;
  stage.vts = timed_phase(options.metrics, "vts_convert",
                          [&] { return df::vts_convert(application); });
  return stage;
}

ScheduleStage run_schedule_stage(const VtsStage& vts, const sched::Assignment& assignment,
                                 const SpiSystemOptions& options) {
  ScheduleStage stage;
  const df::Graph& g = vts.vts.graph;
  stage.repetitions =
      timed_phase(options.metrics, "repetitions", [&] { return checked_repetitions(g); });
  stage.pass = timed_phase(options.metrics, "pass_schedule", [&] {
    return checked_pass(g, stage.repetitions, options.pass_policy);
  });
  stage.hsdf = timed_phase(options.metrics, "hsdf_expand",
                           [&] { return sched::hsdf_expand(g, stage.repetitions); });
  stage.proc_order = timed_phase(options.metrics, "proc_order", [&] {
    return sched::proc_order_from_pass(stage.hsdf, stage.pass.firings, assignment);
  });
  return stage;
}

SyncStage run_sync_stage(const ScheduleStage& sched, const sched::Assignment& assignment,
                         const SpiSystemOptions& options) {
  SyncStage stage{timed_phase(options.metrics, "sync_graph",
                              [&] {
                                return sched::build_sync_graph(sched.hsdf, assignment,
                                                               sched.proc_order, options.sync);
                              }),
                  std::nullopt,
                  {}};
  if (options.resynchronize)
    stage.resync = timed_phase(options.metrics, "resynchronize", [&] {
      return sched::resynchronize(stage.build.graph, options.resync, &stage.trace);
    });
  return stage;
}

ProtocolStage run_protocol_stage(const VtsStage& vts, const ScheduleStage& sched,
                                 const SyncStage& sync) {
  // One channel per interprocessor dataflow edge. The VTS result is the
  // single source: names are preserved by the conversion and
  // `converted` marks the originally-dynamic edges.
  const std::vector<std::int64_t> c_bytes = df::packed_buffer_byte_bounds(vts.vts);
  std::map<df::EdgeId, ChannelSpec> plans;
  for (const auto& [sync_index, protocol] : sync.build.ipc_edges) {
    const sched::SyncEdge& se = sync.build.graph.edges()[sync_index];
    ChannelSpec& plan = plans[se.dataflow_edge];
    if (plan.edge == df::kInvalidEdge) {
      const auto slot = static_cast<std::size_t>(se.dataflow_edge);
      const df::Edge& edge = vts.vts.graph.edge(se.dataflow_edge);
      const df::VtsEdgeInfo& info = vts.vts.edges[slot];
      plan.edge = se.dataflow_edge;
      plan.name = edge.name;
      plan.mode = info.converted ? SpiMode::kDynamic : SpiMode::kStatic;
      plan.b_max_bytes = info.b_max_bytes;
      plan.c_bytes = c_bytes[slot];
      plan.protocol = sched::SyncProtocol::kBbs;  // demoted to UBS below if any arc needs it
      plan.token_bytes = edge.token_bytes;
      plan.raw_token_bytes = info.raw_token_bytes;
      plan.prod_tokens = edge.prod.value();
      plan.delay_tokens = edge.delay;
      plan.src_firings_per_iteration = sched.repetitions.of(edge.src);
    }
    plan.sync_edges.push_back(sync_index);
    if (protocol == sched::SyncProtocol::kUbs) plan.protocol = sched::SyncProtocol::kUbs;
  }

  // Equation 2 bounds for BBS channels; ack bookkeeping for UBS channels.
  sched::SyncPathEngine paths(sync.build.graph);
  for (auto& [edge, plan] : plans) {
    if (plan.protocol == sched::SyncProtocol::kBbs) {
      std::int64_t tokens = 0;
      for (std::size_t idx : plan.sync_edges) {
        const auto bound = sched::ipc_buffer_bound_tokens(sync.build.graph, paths, idx);
        if (!bound) {  // should not happen for a BBS-classified edge
          plan.protocol = sched::SyncProtocol::kUbs;
          tokens = 0;
          break;
        }
        tokens = std::max(tokens, *bound);
      }
      if (plan.protocol == sched::SyncProtocol::kBbs) {
        plan.bbs_capacity_tokens = tokens;
        plan.bbs_capacity_bytes = tokens * plan.b_max_bytes;
      }
    }
  }
  for (const sched::SyncEdge& se : sync.build.graph.edges()) {
    if (se.kind != sched::SyncEdgeKind::kAck) continue;
    auto it = plans.find(se.dataflow_edge);
    if (it == plans.end()) continue;
    it->second.acks_total += 1;
    if (se.removed) it->second.acks_elided += 1;
  }

  ProtocolStage stage;
  stage.channels.reserve(plans.size());
  for (auto& [edge, plan] : plans) stage.channels.push_back(std::move(plan));
  return stage;
}

ExecutablePlan plan_emit(const df::Graph& application, const sched::Assignment& assignment,
                         const SpiSystemOptions& options, VtsStage vts, ScheduleStage sched,
                         SyncStage sync, ProtocolStage protocol) {
  ExecutablePlan plan;
  plan.graph_name = application.name();
  plan.proc_count = assignment.proc_count();
  plan.costs = options.costs;
  plan.vts = std::move(vts.vts);
  plan.repetitions = std::move(sched.repetitions);
  plan.pass = std::move(sched.pass);
  plan.proc_order = std::move(sched.proc_order);
  plan.sync_graph = std::move(sync.build.graph);
  plan.resync = sync.resync;
  plan.channels = std::move(protocol.channels);

  plan.proc_of_actor.reserve(plan.vts.graph.actor_count());
  for (std::size_t a = 0; a < plan.vts.graph.actor_count(); ++a)
    plan.proc_of_actor.push_back(assignment.proc_of(static_cast<df::ActorId>(a)));

  // Per-processor firing programs: the PASS in per-processor slices,
  // each firing carrying its invocation index and edge bindings.
  plan.programs.assign(static_cast<std::size_t>(plan.proc_count), {});
  std::vector<std::int32_t> invocation(plan.vts.graph.actor_count(), 0);
  for (df::ActorId actor : plan.pass.firings) {
    FiringStep step;
    step.actor = actor;
    step.invocation = invocation[static_cast<std::size_t>(actor)]++;
    const auto in = plan.vts.graph.in_edges(actor);
    const auto out = plan.vts.graph.out_edges(actor);
    step.in_edges.assign(in.begin(), in.end());
    step.out_edges.assign(out.begin(), out.end());
    plan.programs[static_cast<std::size_t>(plan.proc_of(actor))].push_back(std::move(step));
  }

  plan.messages_per_iteration = plan.sync_graph.count_active(sched::SyncEdgeKind::kIpc) +
                                plan.sync_graph.count_active(sched::SyncEdgeKind::kAck) +
                                plan.sync_graph.count_active(sched::SyncEdgeKind::kResync);
  plan.fingerprints = PlanFingerprints{topology_fingerprint(application, assignment, options),
                                       exec_fingerprint(application)};
  plan.rebuild_channel_index();
  return plan;
}

namespace {

/// compile_plan() with the resynchronization trace captured for
/// IncrementalCompiler (the trace dies with SyncStage otherwise).
ExecutablePlan compile_with_trace(const df::Graph& application,
                                  const sched::Assignment& assignment,
                                  const SpiSystemOptions& options,
                                  sched::ResyncTrace* out_trace) {
  const std::int64_t compile_start_ns = obs::monotonic_ns();
  if (assignment.actor_count() != application.actor_count())
    throw std::invalid_argument("SpiSystem: assignment size does not match the graph");

  VtsStage vts = run_vts_stage(application, options);
  ScheduleStage sched = run_schedule_stage(vts, assignment, options);
  SyncStage sync = run_sync_stage(sched, assignment, options);
  if (out_trace) *out_trace = sync.trace;

  ExecutablePlan plan = [&] {
    obs::ScopedTimer plan_timer(
        options.metrics ? &options.metrics->gauge(
                              "spi_compile_phase_seconds", {{"phase", "channel_plan"}},
                              "Wall-clock seconds spent in one phase of the SPI compile pipeline")
                        : nullptr);
    ProtocolStage protocol = run_protocol_stage(vts, sched, sync);
    return plan_emit(application, assignment, options, std::move(vts), std::move(sched),
                     std::move(sync), std::move(protocol));
  }();

  if (options.metrics) {
    options.metrics
        ->gauge("spi_compile_total_seconds", {},
                "Wall-clock seconds of the whole SPI compile pipeline")
        .set(static_cast<double>(obs::monotonic_ns() - compile_start_ns) * 1e-9);
    plan.publish_metrics(*options.metrics);
  }
  return plan;
}

}  // namespace

ExecutablePlan compile_plan(const df::Graph& application, const sched::Assignment& assignment,
                            const SpiSystemOptions& options) {
  return compile_with_trace(application, assignment, options, nullptr);
}

namespace {

/// 64-bit FNV-1a accumulator for the input fingerprints.
struct Fnv1a {
  std::uint64_t h = 14695981039346656037ull;
  void bytes(const void* data, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {  // length-prefixed so fields can't bleed
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace

std::uint64_t topology_fingerprint(const df::Graph& g, const sched::Assignment& assignment,
                                   const SpiSystemOptions& options) {
  Fnv1a h;
  h.str(g.name());
  h.u64(g.actor_count());
  for (const df::Actor& a : g.actors()) h.str(a.name);
  h.u64(g.edge_count());
  for (const df::Edge& e : g.edges()) {
    h.i64(e.src);
    h.i64(e.snk);
    h.i64(e.prod.bound());
    h.i64(e.prod.is_dynamic() ? 1 : 0);
    h.i64(e.cons.bound());
    h.i64(e.cons.is_dynamic() ? 1 : 0);
    h.i64(e.delay);
    h.i64(e.token_bytes);
    h.str(e.name);
  }
  h.i64(assignment.proc_count());
  for (std::size_t a = 0; a < assignment.actor_count(); ++a)
    h.i64(assignment.proc_of(static_cast<df::ActorId>(a)));
  h.i64(options.resynchronize ? 1 : 0);
  h.i64(options.resync.preserve_throughput ? 1 : 0);
  h.u64(options.resync.min_cover);
  h.u64(options.resync.max_added);
  h.u64(options.resync.greedy_max_tasks);
  h.i64(options.sync.ubs_credit_window);
  h.i64(static_cast<std::int64_t>(options.pass_policy));
  h.i64(options.costs.send_enqueue_cycles);
  h.i64(options.costs.offload_fixed_cycles);
  h.i64(options.costs.ack_wire_bytes);
  return h.h;
}

std::uint64_t exec_fingerprint(const df::Graph& g) {
  Fnv1a h;
  h.u64(g.actor_count());
  for (const df::Actor& a : g.actors()) h.i64(a.exec_cycles);
  return h.h;
}

IncrementalCompiler::IncrementalCompiler(df::Graph application, sched::Assignment assignment,
                                         SpiSystemOptions options)
    : app_(std::move(application)),
      assignment_(std::move(assignment)),
      options_(std::move(options)) {}

const ExecutablePlan& IncrementalCompiler::compile() {
  plan_ = compile_with_trace(app_, assignment_, options_, &trace_);
  compiled_ = true;
  last_incremental_ = false;
  return plan_;
}

const ExecutablePlan& IncrementalCompiler::plan() const {
  if (!compiled_)
    throw std::logic_error("IncrementalCompiler::plan: compile() has not run yet");
  return plan_;
}

const ExecutablePlan& IncrementalCompiler::recompile(const std::vector<ExecUpdate>& updates) {
  const std::int64_t start_ns = obs::monotonic_ns();
  for (const ExecUpdate& u : updates) app_.actor(u.actor).exec_cycles = u.exec_cycles;
  const bool incremental = compiled_ && try_incremental();
  if (!incremental) compile();
  last_incremental_ = incremental;
  if (options_.metrics) {
    options_.metrics
        ->gauge("spi_recompile_total_seconds", {},
                "Wall-clock seconds of the last IncrementalCompiler::recompile")
        .set(static_cast<double>(obs::monotonic_ns() - start_ns) * 1e-9);
    options_.metrics
        ->gauge("spi_recompile_full", {},
                "1 when the last recompile fell back to a full compile, else 0")
        .set(incremental ? 0.0 : 1.0);
    if (incremental) plan_.publish_metrics(*options_.metrics);
  }
  return plan_;
}

bool IncrementalCompiler::try_incremental() {
  // The fast path covers exec-only edits: everything structural must hash
  // to what the cached plan was compiled from.
  if (plan_.fingerprints.topology != topology_fingerprint(app_, assignment_, options_))
    return false;

  {
    obs::ScopedTimer timer(
        options_.metrics
            ? &options_.metrics->gauge(
                  "spi_recompile_phase_seconds", {{"phase", "patch_exec"}},
                  "Wall-clock seconds spent in one phase of an incremental recompile")
            : nullptr);
    df::Graph& vg = plan_.vts.graph;
    for (std::size_t a = 0; a < app_.actor_count(); ++a) {
      const auto id = static_cast<df::ActorId>(a);
      vg.actor(id).exec_cycles = app_.actor(id).exec_cycles;
    }
    sched::SyncGraph& sg = plan_.sync_graph;
    for (std::int32_t t = 0; t < static_cast<std::int32_t>(sg.task_count()); ++t)
      sg.set_task_exec(t, vg.actor(sg.task(t).actor).exec_cycles);
    plan_.fingerprints.exec = exec_fingerprint(app_);
  }

  if (plan_.resync) {
    obs::ScopedTimer timer(
        options_.metrics
            ? &options_.metrics->gauge(
                  "spi_recompile_phase_seconds", {{"phase", "resync_replay"}},
                  "Wall-clock seconds spent in one phase of an incremental recompile")
            : nullptr);
    const sched::SyncGraph& sg = plan_.sync_graph;
    const auto exec_of = [&](std::int32_t t) {
      return static_cast<double>(sg.task(t).exec_cycles);
    };

    // mcm_before: the pristine pre-resync graph, reconstructed as the
    // first pre_resync_edges edges with every removed flag ignored (none
    // were set when resynchronize() sampled it). Same arc order and same
    // solver as SyncGraph::max_cycle_mean, so the double is bit-identical.
    std::vector<sched::McmArc> pristine;
    pristine.reserve(trace_.pre_resync_edges);
    for (std::size_t i = 0; i < trace_.pre_resync_edges; ++i) {
      const sched::SyncEdge& e = sg.edges()[i];
      pristine.push_back(sched::McmArc{e.src, e.snk, exec_of(e.src), e.delay});
    }
    const double mcm_before = sched::max_cycle_ratio_howard(sg.task_count(), pristine).mcm;

    // Replay the recorded insertion rounds, re-evaluating only the
    // throughput verdicts (the sole exec-dependent decision). Any flip
    // means the structural outcome would differ: fall back.
    if (options_.resync.preserve_throughput) {
      std::vector<char> removed_at_start(sg.edges().size(), 0);
      for (std::size_t i : trace_.phase1_removed) removed_at_start[i] = 1;
      std::vector<std::ptrdiff_t> arc_of_edge(sg.edges().size(), -1);
      std::vector<sched::McmArc> arcs;
      for (std::size_t i = 0; i < trace_.pre_resync_edges; ++i) {
        if (removed_at_start[i]) continue;
        const sched::SyncEdge& e = sg.edges()[i];
        arc_of_edge[i] = static_cast<std::ptrdiff_t>(arcs.size());
        arcs.push_back(sched::McmArc{e.src, e.snk, exec_of(e.src), e.delay});
      }
      sched::HowardSolver solver;
      solver.reset(sg.task_count(), std::move(arcs));
      for (const sched::ResyncTrace::Round& r : trace_.rounds) {
        const sched::SyncEdge& e = sg.edges()[r.edge_index];
        const std::size_t arc =
            solver.add_arc(sched::McmArc{e.src, e.snk, exec_of(e.src), e.delay});
        const double mcm = solver.solve().mcm;
        const bool accepted = !(mcm > mcm_before * (1.0 + 1e-9));
        if (accepted != r.accepted) return false;
        if (!r.accepted || r.rolled_back) {
          solver.remove_arc(arc);
          break;  // both outcomes ended the original greedy loop
        }
        arc_of_edge[r.edge_index] = static_cast<std::ptrdiff_t>(arc);
        for (std::size_t i : r.removed)
          if (arc_of_edge[i] >= 0) {
            solver.remove_arc(static_cast<std::size_t>(arc_of_edge[i]));
            arc_of_edge[i] = -1;
          }
      }
    }

    // All verdicts held: the cached structure is exactly what a fresh
    // compile would produce. Re-derive the exec-dependent report fields
    // with the same calls resynchronize() ends with.
    sched::ResyncReport& report = *plan_.resync;
    report.mcm_before = mcm_before;
    sched::McmResult after = plan_.sync_graph.max_cycle_mean_witness();
    report.mcm_after = after.mcm;
    report.critical_cycle = std::move(after.cycle_nodes);
  }
  return true;
}

}  // namespace spi::core
