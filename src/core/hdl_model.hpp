/// \file hdl_model.hpp
/// Cycle-level FSM models of the HDL SPI library (paper Sections 1/5.1:
/// "We develop a hardware description language (HDL) realization of the
/// SPI library").
///
/// The coarse cost model in spi_backend.hpp prices a message with three
/// numbers; these models instead *execute* the communication actors
/// cycle by cycle on the event kernel, the way the Xilinx System
/// Generator blocks do on the fabric:
///
///   SpiSendFsm:    IDLE -> HEADER (1 word/cycle) -> PAYLOAD (1 word/
///                  cycle, valid/ready handshake) -> IDLE
///   SpiReceiveFsm: IDLE -> HEADER -> PAYLOAD -> DELIVER
///
/// connected by a WireModel: a registered point-to-point word channel
/// with a fixed pipeline depth and ready back-pressure. A conformance
/// test (tests/test_hdl_model.cpp) checks the per-message cycle counts
/// the FSMs measure against the analytic SpiBackend + LinkNetwork cost,
/// calibrating the one against the other.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/message.hpp"
#include "sim/event_kernel.hpp"

namespace spi::core {

/// Word width of the modeled fabric (32-bit, matching the default
/// LinkParams::bytes_per_cycle).
inline constexpr std::int64_t kWireWordBytes = 4;

/// A registered word pipeline with valid/ready semantics: at most one
/// word enters per cycle when ready; each word emerges `depth` cycles
/// later. Capacity equals the pipeline depth (an FPGA shift-register
/// FIFO); when the consumer stalls, back-pressure propagates.
class WireModel {
 public:
  explicit WireModel(sim::SimTime depth) : depth_(depth) {}

  [[nodiscard]] sim::SimTime depth() const { return depth_; }
  [[nodiscard]] bool ready(sim::SimTime now) const;

  /// Producer pushes a word at cycle `now` (requires ready()).
  void push(sim::SimTime now, std::uint32_t word);

  /// Consumer pops the oldest word if one has arrived by `now`.
  [[nodiscard]] std::optional<std::uint32_t> pop(sim::SimTime now);

  [[nodiscard]] std::size_t in_flight() const { return words_.size(); }

 private:
  struct Word {
    sim::SimTime arrival;
    std::uint32_t value;
  };
  sim::SimTime depth_;
  std::deque<Word> words_;
};

/// Statistics one FSM gathers per message.
struct FsmStats {
  std::int64_t messages = 0;
  std::int64_t words = 0;
  sim::SimTime busy_cycles = 0;    ///< cycles not spent in IDLE
  sim::SimTime stall_cycles = 0;   ///< cycles blocked on the wire
};

/// The SPI_send communication actor. Accepts whole messages from the
/// computation side (the paper's separation: the PE only enqueues) and
/// streams header + payload words onto the wire, one word per cycle.
class SpiSendFsm {
 public:
  enum class State : std::uint8_t { kIdle, kHeader, kPayload };

  SpiSendFsm(df::EdgeId edge, bool dynamic, WireModel& wire)
      : edge_(edge), dynamic_(dynamic), wire_(wire) {}

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const FsmStats& stats() const { return stats_; }
  [[nodiscard]] bool idle() const { return state_ == State::kIdle && queue_.empty(); }

  /// PE-side enqueue (non-blocking; the FSM drains the queue).
  void submit(Bytes payload) { queue_.push_back(std::move(payload)); }

  /// One clock edge at cycle `now`.
  void tick(sim::SimTime now);

 private:
  df::EdgeId edge_;
  bool dynamic_;
  WireModel& wire_;
  State state_ = State::kIdle;
  std::deque<Bytes> queue_;
  std::vector<std::uint32_t> words_;  ///< current message as wire words
  std::size_t cursor_ = 0;
  FsmStats stats_;
};

/// The SPI_receive communication actor: reassembles words into messages
/// and delivers decoded payloads to the computation side.
class SpiReceiveFsm {
 public:
  enum class State : std::uint8_t { kIdle, kSize, kPayload };

  SpiReceiveFsm(df::EdgeId edge, bool dynamic, std::int64_t static_payload_bytes,
                WireModel& wire, std::function<void(Bytes)> deliver)
      : edge_(edge), dynamic_(dynamic), static_payload_bytes_(static_payload_bytes),
        wire_(wire), deliver_(std::move(deliver)) {}

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const FsmStats& stats() const { return stats_; }
  [[nodiscard]] bool idle() const { return state_ == State::kIdle; }

  /// One clock edge at cycle `now`.
  void tick(sim::SimTime now);

 private:
  void finish();  ///< message complete: deliver and count

  df::EdgeId edge_;
  bool dynamic_;
  std::int64_t static_payload_bytes_;
  WireModel& wire_;
  std::function<void(Bytes)> deliver_;
  State state_ = State::kIdle;
  std::int64_t expected_bytes_ = 0;
  Bytes assembling_;
  FsmStats stats_;
};

/// Drives a send FSM, a wire and a receive FSM with a common clock until
/// all submitted messages are delivered; returns total cycles elapsed.
/// The harness behind the HDL-vs-analytic conformance tests and the
/// micro-benches.
struct HdlChannelRun {
  sim::SimTime cycles = 0;
  FsmStats send;
  FsmStats receive;
  std::vector<Bytes> delivered;
};
[[nodiscard]] HdlChannelRun run_hdl_channel(df::EdgeId edge, bool dynamic,
                                            std::int64_t static_payload_bytes,
                                            sim::SimTime wire_depth,
                                            const std::vector<Bytes>& messages);

}  // namespace spi::core
