#include "core/reliable_link.hpp"

#include <stdexcept>

namespace spi::core {

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t offset) {
  return static_cast<std::uint32_t>(in[offset]) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 3]) << 24);
}

}  // namespace

Bytes encode_sequenced(df::EdgeId edge, std::uint32_t seq,
                       std::span<const std::uint8_t> payload) {
  if (edge < 0) throw std::invalid_argument("encode_sequenced: invalid edge id");
  Bytes wire;
  wire.reserve(static_cast<std::size_t>(kSequencedOverheadBytes) + payload.size());
  put_u32(wire, seq);
  put_u32(wire, static_cast<std::uint32_t>(edge));
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  put_u32(wire, crc32(wire));  // covers seq + edge + size + payload
  return wire;
}

SequencedMessage decode_sequenced(std::span<const std::uint8_t> wire) {
  if (wire.size() < static_cast<std::size_t>(kSequencedOverheadBytes))
    throw std::runtime_error("decode_sequenced: truncated frame");
  const std::uint32_t stored = get_u32(wire, wire.size() - 4);
  if (crc32(wire.first(wire.size() - 4)) != stored)
    throw std::runtime_error("decode_sequenced: CRC mismatch (frame corrupted)");
  SequencedMessage m;
  m.seq = get_u32(wire, 0);
  m.edge = static_cast<df::EdgeId>(get_u32(wire, 4));
  const std::uint32_t size = get_u32(wire, 8);
  if (wire.size() != static_cast<std::size_t>(kSequencedOverheadBytes) + size)
    throw std::runtime_error("decode_sequenced: size header disagrees with wire length");
  m.payload.assign(wire.begin() + 12, wire.end() - 4);
  return m;
}

TransmitScript ReliableSender::plan_transmit(std::span<const std::uint8_t> payload) {
  return plan_with(plan_, payload);
}

TransmitScript ReliableSender::plan_transmit_faultless(std::span<const std::uint8_t> payload) {
  return plan_with(nullptr, payload);
}

TransmitScript ReliableSender::plan_with(const sim::FaultPlan* plan,
                                         std::span<const std::uint8_t> payload) {
  TransmitScript script;
  script.seq = next_seq_++;
  const Bytes frame = encode_sequenced(edge_, script.seq, payload);

  const int budget = plan ? policy_.attempts : 1;
  for (int attempt = 0; attempt < budget; ++attempt) {
    const sim::FaultOutcome outcome =
        plan ? plan->outcome(edge_, static_cast<std::int64_t>(script.seq), attempt)
             : sim::FaultOutcome{};

    TransmitStep step;
    step.duplicate = outcome.duplicate;
    step.delay_us = outcome.delay_us;
    switch (outcome.kind) {
      case sim::FaultOutcome::Kind::kDrop:
        ++script.dropped;
        break;  // step.frame stays empty
      case sim::FaultOutcome::Kind::kCorrupt: {
        // Flip one byte, position and mask drawn from the outcome's
        // entropy; the XOR mask is never zero so the frame always
        // changes and the whole-frame CRC always catches it.
        step.frame = frame;
        const std::size_t pos = static_cast<std::size_t>(outcome.entropy % frame.size());
        const auto mask = static_cast<std::uint8_t>(1 + (outcome.entropy >> 32) % 255);
        step.frame[pos] ^= mask;
        step.corrupted = true;
        ++script.corrupted;
        break;
      }
      case sim::FaultOutcome::Kind::kDeliver:
        step.frame = frame;
        script.delivered = true;
        break;
    }

    if (!script.delivered && attempt + 1 < budget) {
      step.backoff_us = policy_.backoff_us(
          attempt + 1,
          plan ? plan->jitter_key(edge_, static_cast<std::int64_t>(script.seq), attempt) : 0);
      script.total_backoff_us += step.backoff_us;
    }
    script.steps.push_back(std::move(step));
    if (script.delivered) break;
  }
  return script;
}

ReliableReceiver::Result ReliableReceiver::accept(std::span<const std::uint8_t> frame) {
  Result result;
  SequencedMessage m;
  try {
    m = decode_sequenced(frame);
  } catch (const std::runtime_error&) {
    result.verdict = Verdict::kCorrupt;
    return result;
  }
  if (m.edge != edge_) {
    // A frame routed to the wrong channel: indistinguishable from
    // corruption that survived by landing on another edge's queue.
    result.verdict = Verdict::kCorrupt;
    return result;
  }
  if (m.seq < expected_seq_) {
    result.verdict = Verdict::kDuplicate;
    return result;
  }
  expected_seq_ = m.seq + 1;
  result.verdict = Verdict::kAccept;
  result.payload = std::move(m.payload);
  return result;
}

}  // namespace spi::core
