/// \file functional.hpp
/// Functional execution of an SPI system: real token data flows through
/// real SPI channels (headers, packing, BBS/UBS checks) in a sequential
/// interleaving (the PASS) of the self-timed multiprocessor execution.
///
/// This layer answers "does the parallel SPI implementation compute the
/// same values as the sequential reference?" — the correctness half of
/// the reproduction — while the timed executor answers the performance
/// half. Any admissible interleaving produces identical results in a
/// dataflow graph, so running the PASS order is sufficient for
/// functional validation (determinacy of dataflow).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "core/channel.hpp"
#include "core/plan.hpp"
#include "core/spi_system.hpp"

namespace spi::core {

/// Everything one firing sees and produces. Tokens on VTS-converted
/// dynamic edges are *packed* tokens (variable size up to b_max; build
/// them with TokenPacker); tokens on static edges have the edge's exact
/// token size.
struct FiringContext {
  df::ActorId actor = df::kInvalidActor;
  std::int64_t invocation = 0;  ///< k-th firing of this actor (0-based, global)
  /// inputs[i] = the cons-rate tokens consumed from in_edges[i].
  std::vector<std::vector<Bytes>> inputs;
  /// outputs[i] must be filled with prod-rate tokens for out_edges[i].
  std::vector<std::vector<Bytes>> outputs;
  /// Edge ids aligned with inputs / outputs.
  std::span<const df::EdgeId> in_edges;
  std::span<const df::EdgeId> out_edges;

  /// Convenience: index of edge `e` within in_edges / out_edges.
  [[nodiscard]] std::size_t input_index(df::EdgeId e) const;
  [[nodiscard]] std::size_t output_index(df::EdgeId e) const;
};

using ComputeFn = std::function<void(FiringContext&)>;

/// Executes a compiled plan functionally.
class FunctionalRuntime {
 public:
  /// Constructs from the compiled artifact alone — anything that can
  /// produce (or load) an ExecutablePlan can execute functionally. The
  /// plan must outlive the runtime.
  explicit FunctionalRuntime(const ExecutablePlan& plan);
  /// Convenience: runs the facade's plan().
  explicit FunctionalRuntime(const SpiSystem& system) : FunctionalRuntime(system.plan()) {}

  /// Registers the computation of an actor. Unregistered actors default
  /// to producing zero-filled full-rate tokens (useful for smoke tests).
  void set_compute(df::ActorId actor, ComputeFn fn);

  /// Runs `iterations` complete graph iterations.
  void run(std::int64_t iterations);

  /// SPI channel of an interprocessor edge (statistics, occupancy).
  [[nodiscard]] const SpiChannel& channel(df::EdgeId edge) const;
  [[nodiscard]] const std::map<df::EdgeId, SpiChannel>& channels() const { return channels_; }

  /// Total firings executed so far per actor.
  [[nodiscard]] std::int64_t invocations(df::ActorId actor) const {
    return fired_.at(static_cast<std::size_t>(actor));
  }

  /// This runtime's (per-job) wire-buffer pool — shared by its channels,
  /// never by another runtime's.
  [[nodiscard]] const BufferPool& buffer_pool() const { return pool_; }

 private:
  void fire(df::ActorId actor);
  [[nodiscard]] Bytes take_token(df::EdgeId edge);
  void put_tokens(df::EdgeId edge, std::vector<Bytes>&& tokens);

  const ExecutablePlan& plan_;
  const df::Graph& graph_;  ///< the VTS-converted graph
  std::vector<ComputeFn> compute_;
  std::vector<std::int64_t> fired_;
  /// Receiver-side raw FIFOs, one per edge (interprocessor edges refill
  /// from their SpiChannel on demand).
  std::vector<std::deque<Bytes>> fifo_;
  /// Per-job wire-buffer pool shared by every channel of this runtime
  /// (declared before channels_ so it outlives their teardown).
  BufferPool pool_;
  std::map<df::EdgeId, SpiChannel> channels_;
};

}  // namespace spi::core
