/// \file message.hpp
/// SPI message wire formats (paper Sections 3 and 5.1).
///
/// SPI exploits compile-time knowledge to shrink message envelopes:
///  * SPI_static  — header carries only the interprocessor edge ID; the
///    payload length and datatype are compile-time constants of the edge.
///  * SPI_dynamic — header additionally carries the message size, because
///    VTS packed tokens vary in length at run time. The paper argues a
///    size field beats a delimiter on FPGAs (the receiver would otherwise
///    scan the payload); both transports are implemented here so the
///    ablation bench can quantify that argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataflow/graph.hpp"

namespace spi::core {

using Bytes = std::vector<std::uint8_t>;

/// Header sizes on the wire.
inline constexpr std::int64_t kStaticHeaderBytes = 4;   // edge id
inline constexpr std::int64_t kDynamicHeaderBytes = 8;  // edge id + size

/// A decoded SPI message.
struct Message {
  df::EdgeId edge = df::kInvalidEdge;
  Bytes payload;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Encodes a static-mode message: [edge:u32le][payload]. The receiver
/// knows the payload length from the edge's compile-time token size.
[[nodiscard]] Bytes encode_static(df::EdgeId edge, std::span<const std::uint8_t> payload);

/// Decodes a static-mode message; `expected_payload` is the compile-time
/// length (throws std::runtime_error on mismatch — a framing error).
[[nodiscard]] Message decode_static(std::span<const std::uint8_t> wire,
                                    std::int64_t expected_payload);

/// Encodes a dynamic-mode message: [edge:u32le][size:u32le][payload].
[[nodiscard]] Bytes encode_dynamic(df::EdgeId edge, std::span<const std::uint8_t> payload);

/// In-place encoders: write the wire format into a caller-provided
/// buffer — a reused freelist buffer or an SpscChannel slot span — and
/// return the wire size, allocating nothing. Throw std::length_error
/// when `dest` cannot hold header + payload.
std::size_t encode_static_into(df::EdgeId edge, std::span<const std::uint8_t> payload,
                               std::span<std::uint8_t> dest);
std::size_t encode_dynamic_into(df::EdgeId edge, std::span<const std::uint8_t> payload,
                                std::span<std::uint8_t> dest);

/// Decodes a dynamic-mode message using the size header.
[[nodiscard]] Message decode_dynamic(std::span<const std::uint8_t> wire);

/// Delimiter-framed transport (the alternative the paper rejects for
/// FPGA targets): [edge:u32le][stuffed payload][0x7E]. Byte-stuffing is
/// HDLC-style (escape 0x7D, XOR 0x20), so the payload may expand and the
/// receiver must scan every byte. Provided for the VTS transport
/// ablation.
[[nodiscard]] Bytes encode_delimited(df::EdgeId edge, std::span<const std::uint8_t> payload);

/// Decodes a delimiter-framed message; `scan_cost` (optional out) counts
/// the bytes the receiver had to examine — the FPGA cost the paper cites.
[[nodiscard]] Message decode_delimited(std::span<const std::uint8_t> wire,
                                       std::int64_t* scan_cost = nullptr);

/// --- optional payload-integrity extension ---------------------------------
/// The paper's protocols "use acknowledgments to ensure consistency of
/// data" — delivery consistency. For links that can corrupt payloads, a
/// checked variant of the dynamic format appends a CRC-32 so corruption
/// is detected rather than silently consumed:
/// [edge:u32le][size:u32le][payload][crc32:u32le].
inline constexpr std::int64_t kCheckedHeaderBytes = 12;  // dynamic header + trailer

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

[[nodiscard]] Bytes encode_checked(df::EdgeId edge, std::span<const std::uint8_t> payload);

/// Decodes a checked message; throws std::runtime_error when the CRC
/// disagrees (corruption detected).
[[nodiscard]] Message decode_checked(std::span<const std::uint8_t> wire);

}  // namespace spi::core
