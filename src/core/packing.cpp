#include "core/packing.hpp"

#include <algorithm>
#include <stdexcept>

namespace spi::core {

TokenPacker::TokenPacker(std::int64_t raw_token_bytes, std::int64_t max_raw_tokens)
    : raw_token_bytes_(raw_token_bytes), max_raw_tokens_(max_raw_tokens) {
  if (raw_token_bytes <= 0)
    throw std::invalid_argument("TokenPacker: raw_token_bytes must be positive");
  if (max_raw_tokens <= 0)
    throw std::invalid_argument("TokenPacker: max_raw_tokens must be positive");
}

Bytes TokenPacker::pack(std::span<const std::uint8_t> raw, std::int64_t count) const {
  if (count < 0) throw std::invalid_argument("TokenPacker::pack: negative count");
  if (count > max_raw_tokens_)
    throw std::length_error("TokenPacker::pack: dynamic rate exceeds declared bound (" +
                            std::to_string(count) + " > " + std::to_string(max_raw_tokens_) +
                            ") — b_max violated");
  if (static_cast<std::int64_t>(raw.size()) != count * raw_token_bytes_)
    throw std::invalid_argument("TokenPacker::pack: raw byte count does not match token count");
  return Bytes(raw.begin(), raw.end());
}

std::size_t TokenPacker::pack_into(std::span<const std::uint8_t> raw, std::int64_t count,
                                   std::span<std::uint8_t> dest) const {
  if (count < 0) throw std::invalid_argument("TokenPacker::pack_into: negative count");
  if (count > max_raw_tokens_)
    throw std::length_error("TokenPacker::pack_into: dynamic rate exceeds declared bound (" +
                            std::to_string(count) + " > " + std::to_string(max_raw_tokens_) +
                            ") — b_max violated");
  if (static_cast<std::int64_t>(raw.size()) != count * raw_token_bytes_)
    throw std::invalid_argument(
        "TokenPacker::pack_into: raw byte count does not match token count");
  if (dest.size() < raw.size())
    throw std::length_error("TokenPacker::pack_into: destination smaller than the packed token");
  std::copy(raw.begin(), raw.end(), dest.begin());
  return raw.size();
}

std::vector<Bytes> TokenPacker::unpack(std::span<const std::uint8_t> packed) const {
  const std::int64_t count = count_of(static_cast<std::int64_t>(packed.size()));
  std::vector<Bytes> tokens;
  tokens.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const auto begin = packed.begin() + i * raw_token_bytes_;
    tokens.emplace_back(begin, begin + raw_token_bytes_);
  }
  return tokens;
}

std::int64_t TokenPacker::count_of(std::int64_t packed_bytes) const {
  if (packed_bytes < 0 || packed_bytes % raw_token_bytes_ != 0)
    throw std::runtime_error("TokenPacker: packed size is not a whole number of raw tokens");
  const std::int64_t count = packed_bytes / raw_token_bytes_;
  if (count > max_raw_tokens_)
    throw std::length_error("TokenPacker: packed token exceeds b_max");
  return count;
}

}  // namespace spi::core
