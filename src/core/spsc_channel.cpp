#include "core/spsc_channel.hpp"

#include <cstring>
#include <thread>

namespace spi::core {

namespace {

/// Spin/yield budget before parking. The spin phase rides out a peer
/// that is actively filling/draining (tens to hundreds of nanoseconds);
/// the yield phase covers a peer that is runnable but descheduled. Only
/// after both does the wait count as "blocked" for the flight recorder.
///
/// On a uniprocessor the peer cannot make progress while we spin, so
/// the pause loop would only burn the rest of our timeslice — skip it
/// and go straight to yield, which hands the CPU to the peer.
constexpr int kYieldIterations = 32;

inline int spin_iterations() noexcept {
  static const int value = std::thread::hardware_concurrency() > 1 ? 2048 : 0;
  return value;
}

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

SpscChannel::SpscChannel(df::EdgeId edge, std::size_t capacity, std::size_t frame_bound,
                         std::atomic<bool>* abort)
    : edge_(edge),
      capacity_(capacity == 0 ? 1 : capacity),
      frame_bound_(frame_bound == 0 ? 1 : frame_bound),
      slab_(capacity_ * frame_bound_, 0),
      sizes_(capacity_, 0),
      abort_(abort) {
  if (edge < 0) throw std::invalid_argument("SpscChannel: invalid edge id");
}

template <class Ready>
bool SpscChannel::wait(Side side, Ready&& ready, const ChannelFlightCtx* flight) {
  const bool producer = side == Side::kProducer;
  obs::Counter* blocks = producer ? counters_.producer_blocks : counters_.consumer_blocks;
  obs::Counter* micros =
      producer ? counters_.producer_block_micros : counters_.consumer_block_micros;
  if (blocks) blocks->inc();
  const std::int64_t t0 = micros ? obs::monotonic_ns() : 0;
  bool ok = false;

  const int spins = spin_iterations();
  for (int i = 0; i < spins; ++i) {
    if (ready()) {
      ok = true;
      break;
    }
    if ((i & 63) == 0 && aborted()) break;
    cpu_relax();
  }
  if (!ok) {
    for (int i = 0; i < kYieldIterations && !aborted(); ++i) {
      std::this_thread::yield();
      if (ready()) {
        ok = true;
        break;
      }
    }
  }

  if (!ok && !aborted()) {
    // Park. Only this phase is a "block" in the flight recorder's sense:
    // the thread genuinely left the CPU waiting on the peer.
    const std::int32_t aux = producer ? 1 : 0;
    const std::int64_t seq = producer ? send_seq_ : recv_seq_;
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockBegin, flight->actor,
                               edge_, seq, flight->iteration, aux);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!ready() && !aborted()) {
      std::unique_lock lock(park_mutex_);
      park_cv_.wait(lock, [&] { return ready() || aborted(); });
    }
    waiters_.fetch_sub(1, std::memory_order_release);
    ok = ready();
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockEnd, flight->actor,
                               edge_, seq, flight->iteration, aux);
  }

  if (micros) micros->inc((obs::monotonic_ns() - t0) / 1000);
  return ok || ready();
}

void SpscChannel::wake_peer() noexcept {
  // Eventcount handshake, signal side: the index store above (release)
  // plus this fence pairs with the waiter's registration fence — either
  // the waiter's re-check sees the new index, or this load sees the
  // waiter and takes the (cold) lock to wake it.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_relaxed) != 0) {
    std::lock_guard lock(park_mutex_);
    park_cv_.notify_all();
  }
}

std::span<std::uint8_t> SpscChannel::acquire(const ChannelFlightCtx* flight) {
  if (tail_local_ - head_cache_ >= capacity_) {
    head_cache_ = head_.load(std::memory_order_acquire);
    if (tail_local_ - head_cache_ >= capacity_) {
      const bool ok = wait(
          Side::kProducer,
          [&]() noexcept {
            head_cache_ = head_.load(std::memory_order_acquire);
            return tail_local_ - head_cache_ < capacity_;
          },
          flight);
      if (!ok) throw ChannelInterrupted{};
    }
  }
  return {slab_.data() + tail_idx_ * frame_bound_, frame_bound_};
}

bool SpscChannel::try_acquire(std::span<std::uint8_t>& slot) noexcept {
  if (tail_local_ - head_cache_ >= capacity_) {
    head_cache_ = head_.load(std::memory_order_acquire);
    if (tail_local_ - head_cache_ >= capacity_) return false;
  }
  slot = {slab_.data() + tail_idx_ * frame_bound_, frame_bound_};
  return true;
}

void SpscChannel::publish(std::size_t frame_bytes, const ChannelFlightCtx* flight) {
  if (frame_bytes > frame_bound_)
    throw std::length_error("SpscChannel: published frame exceeds the slab's frame bound");
  sizes_[tail_idx_] = static_cast<std::uint32_t>(frame_bytes);
  if (++tail_idx_ == capacity_) tail_idx_ = 0;
  ++tail_local_;
  // Occupancy watermark from the producer's (conservative) view of the
  // consumer: head_cache_ only lags head_, so this depth can only
  // over-estimate — the watermark never under-reports pressure. The
  // shared store happens at most `capacity_` times over the channel's
  // lifetime.
  const std::uint64_t depth = tail_local_ - head_cache_;
  if (depth > watermark_local_) {
    watermark_local_ = depth;
    high_watermark_.store(depth, std::memory_order_relaxed);
  }
  tail_.store(tail_local_, std::memory_order_release);
  wake_peer();
  if (flight && flight->recorder) {
    // The token is now visible to the receiver: this is the causal send
    // edge the analyzer matches a consumer's wait against.
    flight->recorder->record(flight->proc, obs::FlightEventKind::kSend, flight->actor, edge_,
                             send_seq_, flight->iteration, /*aux=*/0);
  }
  ++send_seq_;
}

void SpscChannel::push(std::span<const std::uint8_t> token, const ChannelFlightCtx* flight) {
  const std::span<std::uint8_t> slot = acquire(flight);
  if (token.size() > frame_bound_)
    throw std::length_error("SpscChannel: token exceeds the slab's frame bound");
  if (!token.empty()) std::memcpy(slot.data(), token.data(), token.size());
  publish(token.size(), flight);
}

std::span<const std::uint8_t> SpscChannel::front(const ChannelFlightCtx* flight) {
  if (head_local_ == tail_cache_) {
    tail_cache_ = tail_.load(std::memory_order_acquire);
    if (head_local_ == tail_cache_) {
      const bool ok = wait(
          Side::kConsumer,
          [&]() noexcept {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            return head_local_ != tail_cache_;
          },
          flight);
      if (!ok) throw ChannelInterrupted{};
    }
  }
  return {slab_.data() + head_idx_ * frame_bound_, sizes_[head_idx_]};
}

bool SpscChannel::try_front(std::span<const std::uint8_t>& token) noexcept {
  if (head_local_ == tail_cache_) {
    tail_cache_ = tail_.load(std::memory_order_acquire);
    if (head_local_ == tail_cache_) return false;
  }
  token = {slab_.data() + head_idx_ * frame_bound_, sizes_[head_idx_]};
  return true;
}

void SpscChannel::pop(const ChannelFlightCtx* flight) {
  if (flight && flight->recorder)
    flight->recorder->record(flight->proc, obs::FlightEventKind::kReceive, flight->actor, edge_,
                             recv_seq_, flight->iteration, /*aux=*/0);
  ++recv_seq_;
  if (++head_idx_ == capacity_) head_idx_ = 0;
  ++head_local_;
  head_.store(head_local_, std::memory_order_release);
  wake_peer();
}

void SpscChannel::pop_into(Bytes& out, const ChannelFlightCtx* flight) {
  const std::span<const std::uint8_t> token = front(flight);
  out.assign(token.begin(), token.end());
  pop(flight);
}

void SpscChannel::interrupt() {
  std::lock_guard lock(park_mutex_);
  park_cv_.notify_all();
}

}  // namespace spi::core
