#include "core/plan.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spi::core {

namespace {

// --- JSON emission --------------------------------------------------------

std::string escape(const std::string& s) {
  std::string r;
  for (char c : s) {
    if (c == '"' || c == '\\') r.push_back('\\');
    r.push_back(c);
  }
  return r;
}

/// Doubles print exactly (round-trip through strtod) and deterministically:
/// integral values as "N.0", everything else with max_digits10 precision.
std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64 ".0", static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const char* kind_name(sched::SyncEdgeKind kind) {
  switch (kind) {
    case sched::SyncEdgeKind::kSequence: return "sequence";
    case sched::SyncEdgeKind::kIpc: return "ipc";
    case sched::SyncEdgeKind::kAck: return "ack";
    case sched::SyncEdgeKind::kResync: return "resync";
  }
  return "sequence";
}

sched::SyncEdgeKind kind_from_name(const std::string& name) {
  if (name == "sequence") return sched::SyncEdgeKind::kSequence;
  if (name == "ipc") return sched::SyncEdgeKind::kIpc;
  if (name == "ack") return sched::SyncEdgeKind::kAck;
  if (name == "resync") return sched::SyncEdgeKind::kResync;
  throw std::invalid_argument("ExecutablePlan: unknown sync-edge kind '" + name + "'");
}

template <typename T>
void write_int_array(std::ostringstream& out, const std::vector<T>& values) {
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ", ";
    out << static_cast<std::int64_t>(values[i]);
  }
  out << "]";
}

// --- JSON parsing ---------------------------------------------------------
//
// A minimal recursive-descent parser for the subset to_json() emits
// (objects, arrays, strings, numbers, booleans, null). Kept private to
// this translation unit — the repo deliberately has no external JSON
// dependency (tools/json_check.cpp is the same-idiom validator).

struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::int64_t integer = 0;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const char* key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
  [[nodiscard]] const JsonValue& at(const char* key) const {
    const JsonValue* v = find(key);
    if (!v) throw std::invalid_argument(std::string("ExecutablePlan: missing key '") + key + "'");
    return *v;
  }
  [[nodiscard]] std::int64_t as_int(const char* what) const {
    if (kind != Kind::kInt)
      throw std::invalid_argument(std::string("ExecutablePlan: '") + what + "' is not an integer");
    return integer;
  }
  [[nodiscard]] double as_double(const char* what) const {
    if (kind == Kind::kInt) return static_cast<double>(integer);
    if (kind != Kind::kDouble)
      throw std::invalid_argument(std::string("ExecutablePlan: '") + what + "' is not a number");
    return number;
  }
  [[nodiscard]] const std::string& as_string(const char* what) const {
    if (kind != Kind::kString)
      throw std::invalid_argument(std::string("ExecutablePlan: '") + what + "' is not a string");
    return string;
  }
  [[nodiscard]] bool as_bool(const char* what) const {
    if (kind != Kind::kBool)
      throw std::invalid_argument(std::string("ExecutablePlan: '") + what + "' is not a boolean");
    return boolean;
  }
  [[nodiscard]] const std::vector<JsonValue>& as_array(const char* what) const {
    if (kind != Kind::kArray)
      throw std::invalid_argument(std::string("ExecutablePlan: '") + what + "' is not an array");
    return array;
  }

  [[nodiscard]] std::vector<std::int64_t> as_int_vector(const char* what) const {
    std::vector<std::int64_t> values;
    values.reserve(as_array(what).size());
    for (const JsonValue& v : array) values.push_back(v.as_int(what));
    return values;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("ExecutablePlan: JSON parse error at byte " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: fail(std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool fractional = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        fractional = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("malformed number");
    JsonValue v;
    char* end = nullptr;
    if (fractional) {
      v.kind = JsonValue::Kind::kDouble;
      v.number = std::strtod(token.c_str(), &end);
    } else {
      v.kind = JsonValue::Kind::kInt;
      v.integer = std::strtoll(token.c_str(), &end, 10);
    }
    if (end != token.c_str() + token.size()) fail("malformed number '" + token + "'");
    return v;
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      if (!consume('}')) {
        do {
          std::string key = parse_string();
          expect(':');
          v.object.emplace_back(std::move(key), value());
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      if (!consume(']')) {
        do {
          v.array.push_back(value());
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
    } else if (c == 't' && consume_word("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (c == 'f' && consume_word("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
    } else if (c == 'n' && consume_word("null")) {
      v.kind = JsonValue::Kind::kNull;
    } else {
      v = parse_number();
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- lookup ---------------------------------------------------------------

const ChannelSpec* ExecutablePlan::find_channel(df::EdgeId edge) const {
  if (edge < 0 || static_cast<std::size_t>(edge) >= channel_index.size()) return nullptr;
  const std::int32_t slot = channel_index[static_cast<std::size_t>(edge)];
  return slot < 0 ? nullptr : &channels[static_cast<std::size_t>(slot)];
}

const ChannelSpec& ExecutablePlan::channel_for(df::EdgeId edge) const {
  const ChannelSpec* spec = find_channel(edge);
  if (!spec) throw std::out_of_range("ExecutablePlan::channel_for: edge is not interprocessor");
  return *spec;
}

void ExecutablePlan::rebuild_channel_index() {
  channel_index.assign(vts.graph.edge_count(), -1);
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const df::EdgeId edge = channels[i].edge;
    if (edge < 0 || static_cast<std::size_t>(edge) >= channel_index.size())
      throw std::invalid_argument("ExecutablePlan: channel references unknown edge " +
                                  std::to_string(edge));
    channel_index[static_cast<std::size_t>(edge)] = static_cast<std::int32_t>(i);
  }
}

std::unordered_set<df::EdgeId> ExecutablePlan::dynamic_edges() const {
  std::unordered_set<df::EdgeId> edges;
  for (std::size_t i = 0; i < vts.edges.size(); ++i)
    if (vts.edges[i].converted) edges.insert(static_cast<df::EdgeId>(i));
  return edges;
}

std::unique_ptr<SpiBackend> ExecutablePlan::make_backend() const {
  return std::make_unique<SpiBackend>(costs, dynamic_edges());
}

std::uint64_t ExecutablePlan::content_hash() const {
  // FNV-1a over (schema, topology, exec), little-endian byte order. The
  // schema version participates so a breaking encoding change can never
  // produce a stale PlanCache hit across daemon upgrades.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(kSchemaVersion));
  mix(fingerprints.topology);
  mix(fingerprints.exec);
  return h;
}

std::string ExecutablePlan::content_hash_hex() const {
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << content_hash();
  return out.str();
}

// --- report / metrics -----------------------------------------------------

std::string ExecutablePlan::report() const {
  std::ostringstream out;
  out << "SPI system: " << graph_name << "\n";
  out << "  actors: " << vts.graph.actor_count() << ", edges: " << vts.graph.edge_count()
      << ", processors: " << proc_count << "\n";
  out << "  tasks (HSDF): " << sync_graph.task_count()
      << ", firings/iteration: " << repetitions.total_firings() << "\n";
  out << "  content hash: " << content_hash_hex() << "\n";
  out << "  interprocessor channels: " << channels.size() << "\n";
  for (const ChannelSpec& plan : channels) {
    out << "    [" << plan.edge << "] " << plan.name << ": "
        << (plan.mode == SpiMode::kDynamic ? "SPI_dynamic" : "SPI_static") << " / "
        << (plan.protocol == sched::SyncProtocol::kBbs ? "BBS" : "UBS")
        << ", b_max=" << plan.b_max_bytes << "B, c(e)=" << plan.c_bytes << "B";
    if (plan.bbs_capacity_tokens)
      out << ", B(e)=" << *plan.bbs_capacity_tokens << " msgs (" << *plan.bbs_capacity_bytes
          << "B)";
    if (plan.acks_total > 0)
      out << ", acks " << (plan.acks_total - plan.acks_elided) << "/" << plan.acks_total
          << " (elided " << plan.acks_elided << ")";
    out << "\n";
  }
  if (resync) {
    out << "  resynchronization: +" << resync->edges_added << " sync edges, -"
        << resync->edges_removed << " redundant, acks " << resync->acks_before << " -> "
        << resync->acks_after << ", MCM " << resync->mcm_before << " -> " << resync->mcm_after
        << "\n";
    if (!resync->critical_cycle.empty()) {
      out << "  critical cycle (bounds throughput):";
      for (std::int32_t t : resync->critical_cycle)
        out << " " << sync_graph.task(t).name;
      out << "\n";
    }
  }
  out << "  messages/iteration: " << messages_per_iteration << "\n";
  return out.str();
}

void ExecutablePlan::publish_metrics(obs::MetricRegistry& registry) const {
  static constexpr const char* kModes[] = {"static", "dynamic"};
  static constexpr const char* kProtocols[] = {"bbs", "ubs"};
  // Zero-initialize the full mode x protocol matrix so exports always
  // carry every combination.
  for (const char* mode : kModes)
    for (const char* protocol : kProtocols)
      registry
          .gauge("spi_plan_channels", {{"mode", mode}, {"protocol", protocol}},
                 "Interprocessor channels in the compiled plan by SPI mode and sync protocol")
          .set(0.0);

  std::int64_t acks_total = 0, acks_elided = 0, eq1_bytes = 0, eq2_bytes = 0;
  for (const ChannelSpec& plan : channels) {
    const char* mode = plan.mode == SpiMode::kDynamic ? "dynamic" : "static";
    const char* protocol = plan.protocol == sched::SyncProtocol::kBbs ? "bbs" : "ubs";
    registry.gauge("spi_plan_channels", {{"mode", mode}, {"protocol", protocol}}).add(1.0);

    const obs::Labels channel{{"channel", plan.name}};
    registry
        .gauge("spi_plan_channel_acks", channel,
               "UBS acknowledgement edges created for one channel")
        .set(static_cast<double>(plan.acks_total));
    registry
        .gauge("spi_plan_channel_acks_elided", channel,
               "Acknowledgement edges removed from one channel by resynchronization")
        .set(static_cast<double>(plan.acks_elided));
    registry
        .gauge("spi_plan_channel_b_max_bytes", channel,
               "Maximum bytes of one message payload (VTS bound)")
        .set(static_cast<double>(plan.b_max_bytes));
    registry
        .gauge("spi_plan_channel_c_bytes", channel,
               "Equation-1 static buffer bytes c_sdf(e) * b_max(e)")
        .set(static_cast<double>(plan.c_bytes));
    if (plan.bbs_capacity_bytes)
      registry
          .gauge("spi_plan_channel_bbs_capacity_bytes", channel,
                 "Equation-2 statically guaranteed BBS buffer bound in bytes")
          .set(static_cast<double>(*plan.bbs_capacity_bytes));
    acks_total += static_cast<std::int64_t>(plan.acks_total);
    acks_elided += static_cast<std::int64_t>(plan.acks_elided);
    eq1_bytes += plan.c_bytes;
    eq2_bytes += plan.bbs_capacity_bytes.value_or(0);
  }

  registry.gauge("spi_plan_acks", {}, "UBS acknowledgement edges created across all channels")
      .set(static_cast<double>(acks_total));
  registry
      .gauge("spi_plan_acks_elided", {},
             "Acknowledgement edges removed across all channels by resynchronization")
      .set(static_cast<double>(acks_elided));
  registry.gauge("spi_plan_eq1_buffer_bytes", {}, "Sum of equation-1 buffer bounds in bytes")
      .set(static_cast<double>(eq1_bytes));
  registry
      .gauge("spi_plan_eq2_buffer_bytes", {},
             "Sum of equation-2 (BBS) statically guaranteed buffer bounds in bytes")
      .set(static_cast<double>(eq2_bytes));
  registry
      .gauge("spi_plan_messages_per_iteration", {},
             "Synchronization messages per graph iteration under the compiled plan")
      .set(static_cast<double>(messages_per_iteration));
  if (resync) {
    registry.gauge("spi_plan_resync_acks_before", {}, "Ack edges before resynchronization")
        .set(static_cast<double>(resync->acks_before));
    registry.gauge("spi_plan_resync_acks_after", {}, "Ack edges after resynchronization")
        .set(static_cast<double>(resync->acks_after));
    registry.gauge("spi_plan_resync_mcm_before", {}, "Maximum cycle mean before resynchronization")
        .set(resync->mcm_before);
    registry.gauge("spi_plan_resync_mcm_after", {}, "Maximum cycle mean after resynchronization")
        .set(resync->mcm_after);
    registry
        .gauge("spi_plan_critical_cycle_tasks", {},
               "Tasks on the witness critical cycle realizing the post-resync MCM")
        .set(static_cast<double>(resync->critical_cycle.size()));
  }
}

// --- serialization --------------------------------------------------------

std::string ExecutablePlan::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema\": " << kSchemaVersion << ",\n";
  out << "  \"graph\": \"" << escape(graph_name) << "\",\n";
  out << "  \"processors\": " << proc_count << ",\n";
  out << "  \"messages_per_iteration\": " << messages_per_iteration << ",\n";
  if (resync) {
    out << "  \"resynchronization\": {\"acks_before\": " << resync->acks_before
        << ", \"acks_after\": " << resync->acks_after
        << ", \"edges_added\": " << resync->edges_added
        << ", \"edges_removed\": " << resync->edges_removed
        << ", \"mcm_before\": " << format_double(resync->mcm_before)
        << ", \"mcm_after\": " << format_double(resync->mcm_after)
        << ", \"critical_cycle\": ";
    write_int_array(out, resync->critical_cycle);
    out << "},\n";
  }
  // uint64 fingerprints are serialized as strings: JSON numbers above
  // 2^53 are not representable exactly.
  out << "  \"fingerprints\": {\"topology\": \"" << fingerprints.topology
      << "\", \"exec\": \"" << fingerprints.exec << "\", \"content\": \""
      << content_hash_hex() << "\"},\n";
  out << "  \"costs\": {\"send_enqueue_cycles\": " << costs.send_enqueue_cycles
      << ", \"offload_fixed_cycles\": " << costs.offload_fixed_cycles
      << ", \"ack_wire_bytes\": " << costs.ack_wire_bytes << "},\n";

  out << "  \"repetitions\": ";
  write_int_array(out, repetitions.q);
  out << ",\n  \"assignment\": ";
  write_int_array(out, proc_of_actor);

  out << ",\n  \"vts\": {\n    \"name\": \"" << escape(vts.graph.name()) << "\",\n";
  out << "    \"actors\": [";
  for (std::size_t a = 0; a < vts.graph.actor_count(); ++a) {
    const df::Actor& actor = vts.graph.actor(static_cast<df::ActorId>(a));
    if (a) out << ",";
    out << "\n      {\"name\": \"" << escape(actor.name)
        << "\", \"exec_cycles\": " << actor.exec_cycles << "}";
  }
  out << (vts.graph.actor_count() ? "\n    ],\n" : "],\n");
  out << "    \"edges\": [";
  for (std::size_t e = 0; e < vts.graph.edge_count(); ++e) {
    const df::Edge& edge = vts.graph.edge(static_cast<df::EdgeId>(e));
    const df::VtsEdgeInfo& info = vts.edges[e];
    if (e) out << ",";
    out << "\n      {\"src\": " << edge.src << ", \"snk\": " << edge.snk
        << ", \"prod\": " << edge.prod.value() << ", \"cons\": " << edge.cons.value()
        << ", \"delay\": " << edge.delay << ", \"token_bytes\": " << edge.token_bytes
        << ", \"name\": \"" << escape(edge.name) << "\", \"converted\": "
        << (info.converted ? "true" : "false") << ", \"b_max_bytes\": " << info.b_max_bytes
        << ", \"raw_token_bytes\": " << info.raw_token_bytes
        << ", \"prod_rate_bound\": " << info.prod_rate_bound
        << ", \"cons_rate_bound\": " << info.cons_rate_bound << "}";
  }
  out << (vts.graph.edge_count() ? "\n    ]\n  },\n" : "]\n  },\n");

  out << "  \"pass\": {\"firings\": ";
  write_int_array(out, pass.firings);
  out << ", \"buffer_bound\": ";
  write_int_array(out, pass.buffer_bound);
  out << "},\n";

  out << "  \"sync_graph\": {\n    \"proc_count\": " << sync_graph.proc_count() << ",\n";
  out << "    \"tasks\": [";
  for (std::size_t t = 0; t < sync_graph.task_count(); ++t) {
    const sched::TaskNode& task = sync_graph.task(static_cast<std::int32_t>(t));
    if (t) out << ",";
    out << "\n      {\"actor\": " << task.actor << ", \"firing\": " << task.firing
        << ", \"exec_cycles\": " << task.exec_cycles << ", \"name\": \"" << escape(task.name)
        << "\", \"proc\": " << sync_graph.proc_of(static_cast<std::int32_t>(t)) << "}";
  }
  out << (sync_graph.task_count() ? "\n    ],\n" : "],\n");
  out << "    \"edges\": [";
  for (std::size_t i = 0; i < sync_graph.edges().size(); ++i) {
    const sched::SyncEdge& e = sync_graph.edges()[i];
    if (i) out << ",";
    out << "\n      {\"src\": " << e.src << ", \"snk\": " << e.snk << ", \"delay\": " << e.delay
        << ", \"kind\": \"" << kind_name(e.kind) << "\", \"dataflow_edge\": " << e.dataflow_edge
        << ", \"removed\": " << (e.removed ? "true" : "false") << "}";
  }
  out << (sync_graph.edges().empty() ? "]\n  },\n" : "\n    ]\n  },\n");

  out << "  \"proc_order\": [";
  for (std::size_t p = 0; p < proc_order.size(); ++p) {
    if (p) out << ", ";
    write_int_array(out, proc_order[p]);
  }
  out << "],\n";

  out << "  \"programs\": [";
  for (std::size_t p = 0; p < programs.size(); ++p) {
    if (p) out << ",";
    out << "\n    [";
    for (std::size_t s = 0; s < programs[p].size(); ++s) {
      const FiringStep& step = programs[p][s];
      if (s) out << ",";
      out << "\n      {\"actor\": " << step.actor << ", \"invocation\": " << step.invocation
          << ", \"in\": ";
      write_int_array(out, step.in_edges);
      out << ", \"out\": ";
      write_int_array(out, step.out_edges);
      out << "}";
    }
    out << (programs[p].empty() ? "]" : "\n    ]");
  }
  out << (programs.empty() ? "],\n" : "\n  ],\n");

  out << "  \"channels\": [";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ChannelSpec& plan = channels[i];
    if (i) out << ",";
    out << "\n    {\"edge\": " << plan.edge << ", \"name\": \"" << escape(plan.name)
        << "\", \"mode\": \"" << (plan.mode == SpiMode::kDynamic ? "SPI_dynamic" : "SPI_static")
        << "\", \"protocol\": \""
        << (plan.protocol == sched::SyncProtocol::kBbs ? "BBS" : "UBS")
        << "\", \"b_max_bytes\": " << plan.b_max_bytes << ", \"c_bytes\": " << plan.c_bytes;
    if (plan.bbs_capacity_tokens)
      out << ", \"capacity_messages\": " << *plan.bbs_capacity_tokens
          << ", \"capacity_bytes\": " << *plan.bbs_capacity_bytes;
    out << ", \"acks_total\": " << plan.acks_total << ", \"acks_elided\": " << plan.acks_elided
        << ",\n     \"sync_edges\": ";
    write_int_array(out, plan.sync_edges);
    out << ", \"token_bytes\": " << plan.token_bytes
        << ", \"raw_token_bytes\": " << plan.raw_token_bytes
        << ", \"prod_tokens\": " << plan.prod_tokens
        << ", \"delay_tokens\": " << plan.delay_tokens
        << ", \"src_firings_per_iteration\": " << plan.src_firings_per_iteration
        << ", \"reliable\": " << (plan.reliable ? "true" : "false") << "}";
  }
  out << (channels.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

ExecutablePlan ExecutablePlan::from_json(std::string_view text) {
  const JsonValue root = JsonParser(text).parse();
  if (root.kind != JsonValue::Kind::kObject)
    throw std::invalid_argument("ExecutablePlan: top-level JSON value is not an object");
  const std::int64_t schema = root.at("schema").as_int("schema");
  if (schema != kSchemaVersion)
    throw std::invalid_argument("ExecutablePlan: unsupported schema version " +
                                std::to_string(schema) + " (expected " +
                                std::to_string(kSchemaVersion) + ")");

  ExecutablePlan plan;
  plan.graph_name = root.at("graph").as_string("graph");
  plan.proc_count = static_cast<std::int32_t>(root.at("processors").as_int("processors"));
  plan.messages_per_iteration =
      static_cast<std::size_t>(root.at("messages_per_iteration").as_int("messages_per_iteration"));

  if (const JsonValue* r = root.find("resynchronization")) {
    sched::ResyncReport report;
    report.acks_before = static_cast<std::size_t>(r->at("acks_before").as_int("acks_before"));
    report.acks_after = static_cast<std::size_t>(r->at("acks_after").as_int("acks_after"));
    report.edges_added = static_cast<std::size_t>(r->at("edges_added").as_int("edges_added"));
    report.edges_removed =
        static_cast<std::size_t>(r->at("edges_removed").as_int("edges_removed"));
    report.mcm_before = r->at("mcm_before").as_double("mcm_before");
    report.mcm_after = r->at("mcm_after").as_double("mcm_after");
    if (const JsonValue* cycle = r->find("critical_cycle"))
      for (std::int64_t t : cycle->as_int_vector("critical_cycle"))
        report.critical_cycle.push_back(static_cast<std::int32_t>(t));
    plan.resync = report;
  }

  if (const JsonValue* fp = root.find("fingerprints")) {
    plan.fingerprints.topology =
        std::stoull(fp->at("topology").as_string("fingerprints.topology"));
    plan.fingerprints.exec = std::stoull(fp->at("exec").as_string("fingerprints.exec"));
  }

  const JsonValue& costs = root.at("costs");
  plan.costs.send_enqueue_cycles = costs.at("send_enqueue_cycles").as_int("send_enqueue_cycles");
  plan.costs.offload_fixed_cycles =
      costs.at("offload_fixed_cycles").as_int("offload_fixed_cycles");
  plan.costs.ack_wire_bytes = costs.at("ack_wire_bytes").as_int("ack_wire_bytes");

  plan.repetitions.consistent = true;
  plan.repetitions.q = root.at("repetitions").as_int_vector("repetitions");
  for (std::int64_t p : root.at("assignment").as_int_vector("assignment"))
    plan.proc_of_actor.push_back(static_cast<sched::Proc>(p));

  // --- VTS-converted graph ------------------------------------------------
  const JsonValue& vts = root.at("vts");
  plan.vts.graph = df::Graph(vts.at("name").as_string("vts.name"));
  for (const JsonValue& a : vts.at("actors").as_array("vts.actors"))
    plan.vts.graph.add_actor(a.at("name").as_string("actor.name"),
                             a.at("exec_cycles").as_int("actor.exec_cycles"));
  for (const JsonValue& e : vts.at("edges").as_array("vts.edges")) {
    plan.vts.graph.connect(static_cast<df::ActorId>(e.at("src").as_int("edge.src")),
                           df::Rate::fixed(e.at("prod").as_int("edge.prod")),
                           static_cast<df::ActorId>(e.at("snk").as_int("edge.snk")),
                           df::Rate::fixed(e.at("cons").as_int("edge.cons")),
                           e.at("delay").as_int("edge.delay"),
                           e.at("token_bytes").as_int("edge.token_bytes"),
                           e.at("name").as_string("edge.name"));
    df::VtsEdgeInfo info;
    info.converted = e.at("converted").as_bool("edge.converted");
    info.b_max_bytes = e.at("b_max_bytes").as_int("edge.b_max_bytes");
    info.raw_token_bytes = e.at("raw_token_bytes").as_int("edge.raw_token_bytes");
    info.prod_rate_bound = e.at("prod_rate_bound").as_int("edge.prod_rate_bound");
    info.cons_rate_bound = e.at("cons_rate_bound").as_int("edge.cons_rate_bound");
    plan.vts.edges.push_back(info);
  }

  const JsonValue& pass = root.at("pass");
  plan.pass.admissible = true;
  for (std::int64_t a : pass.at("firings").as_int_vector("pass.firings"))
    plan.pass.firings.push_back(static_cast<df::ActorId>(a));
  plan.pass.buffer_bound = pass.at("buffer_bound").as_int_vector("pass.buffer_bound");

  // --- synchronization graph ----------------------------------------------
  const JsonValue& sync = root.at("sync_graph");
  std::vector<sched::TaskNode> tasks;
  std::vector<sched::Proc> proc_of_task;
  for (const JsonValue& t : sync.at("tasks").as_array("sync_graph.tasks")) {
    sched::TaskNode task;
    task.actor = static_cast<df::ActorId>(t.at("actor").as_int("task.actor"));
    task.firing = static_cast<std::int32_t>(t.at("firing").as_int("task.firing"));
    task.exec_cycles = t.at("exec_cycles").as_int("task.exec_cycles");
    task.name = t.at("name").as_string("task.name");
    tasks.push_back(std::move(task));
    proc_of_task.push_back(static_cast<sched::Proc>(t.at("proc").as_int("task.proc")));
  }
  plan.sync_graph =
      sched::SyncGraph(std::move(tasks), std::move(proc_of_task),
                       static_cast<std::int32_t>(sync.at("proc_count").as_int("proc_count")));
  for (const JsonValue& e : sync.at("edges").as_array("sync_graph.edges")) {
    sched::SyncEdge edge;
    edge.src = static_cast<std::int32_t>(e.at("src").as_int("sync_edge.src"));
    edge.snk = static_cast<std::int32_t>(e.at("snk").as_int("sync_edge.snk"));
    edge.delay = e.at("delay").as_int("sync_edge.delay");
    edge.kind = kind_from_name(e.at("kind").as_string("sync_edge.kind"));
    edge.dataflow_edge =
        static_cast<df::EdgeId>(e.at("dataflow_edge").as_int("sync_edge.dataflow_edge"));
    edge.removed = e.at("removed").as_bool("sync_edge.removed");
    plan.sync_graph.add_edge(edge);
  }

  for (const JsonValue& p : root.at("proc_order").as_array("proc_order")) {
    std::vector<std::int32_t> order;
    for (std::int64_t t : p.as_int_vector("proc_order[p]"))
      order.push_back(static_cast<std::int32_t>(t));
    plan.proc_order.push_back(std::move(order));
  }

  for (const JsonValue& p : root.at("programs").as_array("programs")) {
    std::vector<FiringStep> program;
    for (const JsonValue& s : p.as_array("programs[p]")) {
      FiringStep step;
      step.actor = static_cast<df::ActorId>(s.at("actor").as_int("step.actor"));
      step.invocation = static_cast<std::int32_t>(s.at("invocation").as_int("step.invocation"));
      for (std::int64_t e : s.at("in").as_int_vector("step.in"))
        step.in_edges.push_back(static_cast<df::EdgeId>(e));
      for (std::int64_t e : s.at("out").as_int_vector("step.out"))
        step.out_edges.push_back(static_cast<df::EdgeId>(e));
      program.push_back(std::move(step));
    }
    plan.programs.push_back(std::move(program));
  }

  for (const JsonValue& c : root.at("channels").as_array("channels")) {
    ChannelSpec spec;
    spec.edge = static_cast<df::EdgeId>(c.at("edge").as_int("channel.edge"));
    spec.name = c.at("name").as_string("channel.name");
    const std::string& mode = c.at("mode").as_string("channel.mode");
    if (mode != "SPI_static" && mode != "SPI_dynamic")
      throw std::invalid_argument("ExecutablePlan: unknown channel mode '" + mode + "'");
    spec.mode = mode == "SPI_dynamic" ? SpiMode::kDynamic : SpiMode::kStatic;
    const std::string& protocol = c.at("protocol").as_string("channel.protocol");
    if (protocol != "BBS" && protocol != "UBS")
      throw std::invalid_argument("ExecutablePlan: unknown channel protocol '" + protocol + "'");
    spec.protocol = protocol == "BBS" ? sched::SyncProtocol::kBbs : sched::SyncProtocol::kUbs;
    spec.b_max_bytes = c.at("b_max_bytes").as_int("channel.b_max_bytes");
    spec.c_bytes = c.at("c_bytes").as_int("channel.c_bytes");
    if (const JsonValue* tokens = c.find("capacity_messages")) {
      spec.bbs_capacity_tokens = tokens->as_int("channel.capacity_messages");
      spec.bbs_capacity_bytes = c.at("capacity_bytes").as_int("channel.capacity_bytes");
    }
    spec.acks_total = static_cast<std::size_t>(c.at("acks_total").as_int("channel.acks_total"));
    spec.acks_elided =
        static_cast<std::size_t>(c.at("acks_elided").as_int("channel.acks_elided"));
    for (std::int64_t s : c.at("sync_edges").as_int_vector("channel.sync_edges"))
      spec.sync_edges.push_back(static_cast<std::size_t>(s));
    spec.token_bytes = c.at("token_bytes").as_int("channel.token_bytes");
    spec.raw_token_bytes = c.at("raw_token_bytes").as_int("channel.raw_token_bytes");
    spec.prod_tokens = c.at("prod_tokens").as_int("channel.prod_tokens");
    spec.delay_tokens = c.at("delay_tokens").as_int("channel.delay_tokens");
    spec.src_firings_per_iteration =
        c.at("src_firings_per_iteration").as_int("channel.src_firings_per_iteration");
    spec.reliable = c.at("reliable").as_bool("channel.reliable");
    plan.channels.push_back(std::move(spec));
  }

  plan.rebuild_channel_index();
  plan.validate();
  return plan;
}

void ExecutablePlan::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("ExecutablePlan: invalid plan: ") + what);
  };
  const std::size_t actors = vts.graph.actor_count();
  const std::size_t edges = vts.graph.edge_count();
  require(proc_count > 0, "processor count must be positive");
  require(repetitions.consistent && repetitions.q.size() == actors,
          "repetitions vector does not match the graph");
  require(vts.edges.size() == edges, "VTS edge info does not match the graph");
  require(proc_of_actor.size() == actors, "assignment does not match the graph");
  for (sched::Proc p : proc_of_actor)
    require(p >= 0 && p < proc_count, "assignment names an unknown processor");
  require(pass.admissible &&
              pass.firings.size() == static_cast<std::size_t>(repetitions.total_firings()),
          "PASS length does not match the repetitions vector");
  require(pass.buffer_bound.size() == edges, "PASS buffer bounds do not match the graph");
  require(sync_graph.task_count() == pass.firings.size(),
          "sync graph task count does not match the firings per iteration");
  require(proc_order.size() == static_cast<std::size_t>(proc_count),
          "proc_order does not cover every processor");
  require(programs.size() == static_cast<std::size_t>(proc_count),
          "programs do not cover every processor");
  std::size_t program_steps = 0;
  for (const auto& program : programs) {
    program_steps += program.size();
    for (const FiringStep& step : program) {
      require(step.actor >= 0 && static_cast<std::size_t>(step.actor) < actors,
              "program step names an unknown actor");
      require(step.invocation >= 0 &&
                  step.invocation < repetitions.of(step.actor),
              "program step invocation exceeds the repetitions vector");
    }
  }
  require(program_steps == pass.firings.size(),
          "programs do not contain exactly the PASS firings");
  require(channel_index.size() == edges, "channel index does not match the graph");
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const ChannelSpec& spec = channels[i];
    require(spec.edge >= 0 && static_cast<std::size_t>(spec.edge) < edges,
            "channel references an unknown edge");
    require(channel_index[static_cast<std::size_t>(spec.edge)] == static_cast<std::int32_t>(i),
            "channel index disagrees with the channel list");
    for (std::size_t s : spec.sync_edges)
      require(s < sync_graph.edges().size(), "channel references an unknown sync edge");
    require(spec.bbs_capacity_tokens.has_value() == spec.bbs_capacity_bytes.has_value(),
            "BBS capacity tokens and bytes must be set together");
  }
  const std::size_t expected = sync_graph.count_active(sched::SyncEdgeKind::kIpc) +
                               sync_graph.count_active(sched::SyncEdgeKind::kAck) +
                               sync_graph.count_active(sched::SyncEdgeKind::kResync);
  require(messages_per_iteration == expected,
          "messages_per_iteration disagrees with the sync graph");
}

// --- execution glue -------------------------------------------------------

void ExecutablePlan::install_workload_defaults(sim::WorkloadModel& workload) const {
  if (!workload.payload_bytes) {
    workload.payload_bytes = [this](const sched::SyncEdge& e, std::int64_t) -> std::int64_t {
      if (e.dataflow_edge == df::kInvalidEdge) return 0;
      const df::Edge& edge = vts.graph.edge(e.dataflow_edge);
      return edge.prod.value() * edge.token_bytes;  // worst case for dynamic channels
    };
  }
  if (!workload.channel_info) {
    workload.channel_info = [this](const sched::SyncEdge& e) -> sim::ChannelInfo {
      const ChannelSpec* spec = find_channel(e.dataflow_edge);
      return spec ? spec->channel_info() : sim::ChannelInfo{e.dataflow_edge, false};
    };
  }
}

sim::ExecStats run_timed(const ExecutablePlan& plan, const sim::CommBackend& backend,
                         const sim::TimedExecutorOptions& options, sim::WorkloadModel workload) {
  plan.install_workload_defaults(workload);
  return sim::run_timed(plan.sync_graph, plan.proc_order, backend, workload, options);
}

sim::StaticRunResult run_fully_static(const ExecutablePlan& plan, const sim::CommBackend& backend,
                                      sim::WorkloadModel wcet, sim::WorkloadModel actual,
                                      const sim::TimedExecutorOptions& options) {
  plan.install_workload_defaults(wcet);
  plan.install_workload_defaults(actual);
  return sim::run_fully_static(plan.sync_graph, plan.proc_order, backend, wcet, actual, options);
}

}  // namespace spi::core
