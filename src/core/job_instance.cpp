#include "core/job_instance.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "core/worker_pool.hpp"
#include "obs/obs_server.hpp"
#include "obs/text_escape.hpp"

namespace spi::core {

JobInstance::JobInstance(const ExecutablePlan& plan, JobInstanceOptions options)
    : plan_(plan),
      graph_(plan.vts.graph),
      reliability_(options.reliability),
      policy_(options.policy),
      label_(std::move(options.label)),
      owned_registry_(options.metrics ? nullptr : std::make_unique<obs::MetricRegistry>()),
      registry_(options.metrics ? options.metrics : owned_registry_.get()),
      compute_(graph_.actor_count()),
      local_fifo_(graph_.edge_count()),
      spsc_(graph_.edge_count()),
      blocking_(graph_.edge_count()),
      edge_messages_(graph_.edge_count(), nullptr),
      edge_payload_bytes_(graph_.edge_count(), nullptr),
      fired_(graph_.actor_count(), 0) {
  if (reliability_.enabled) reliability_.policy().validate();
  init();
}

void JobInstance::init() {
  // Bounded channels for every interprocessor edge. Capacity: the BBS
  // bound (equation 2, converted to tokens) or the UBS credit window,
  // plus the edge's initial tokens.
  for (const ChannelSpec& spec : plan_.channels) {
    const std::int64_t per_iter = spec.prod_tokens * spec.src_firings_per_iteration;
    const std::int64_t window = spec.bbs_capacity_tokens.value_or(1);
    const std::int64_t capacity = window * per_iter + spec.delay_tokens;
    const auto ei = static_cast<std::size_t>(spec.edge);
    const bool reliable = reliability_.enabled && spec.reliable;

    obs::Labels labels{{"channel", spec.name}};
    // The job label keeps concurrent instances' series apart when they
    // share one registry (the serving daemon's /metrics).
    if (!label_.empty()) labels.emplace_back("job", label_);
    ChannelCounters counters;
    counters.messages = &registry_->counter(
        "spi_threaded_messages_total", labels,
        "Interprocessor tokens moved through one SPI channel");
    counters.payload_bytes = &registry_->counter(
        "spi_threaded_payload_bytes_total", labels,
        "Payload bytes moved through one SPI channel");
    counters.producer_blocks =
        &registry_->counter("spi_threaded_producer_blocks_total", labels,
                            "Times a sender hit the channel's capacity and waited");
    counters.consumer_blocks =
        &registry_->counter("spi_threaded_consumer_blocks_total", labels,
                            "Times a receiver found the channel empty and waited");
    counters.producer_block_micros =
        &registry_->counter("spi_threaded_producer_block_micros_total", labels,
                            "Wall-clock microseconds senders spent blocked on the channel");
    counters.consumer_block_micros =
        &registry_->counter("spi_threaded_consumer_block_micros_total", labels,
                            "Wall-clock microseconds receivers spent blocked on the channel");
    if (reliability_.enabled) {
      counters.retries = &registry_->counter(
          "spi_reliable_retries_total", labels,
          "Retransmissions after a dropped or corrupted attempt");
      counters.dropped_frames = &registry_->counter(
          "spi_reliable_dropped_frames_total", labels,
          "Transmission attempts the faulty wire swallowed");
      counters.crc_failures = &registry_->counter(
          "spi_reliable_crc_failures_total", labels,
          "Frames the receiver rejected on CRC or framing");
      counters.duplicates = &registry_->counter(
          "spi_reliable_duplicates_total", labels,
          "Stale-sequence frames the receiver discarded");
      counters.timeouts = &registry_->counter(
          "spi_reliable_timeouts_total", labels,
          "Receive deadlines that expired on an empty channel");
      counters.send_failures = &registry_->counter(
          "spi_reliable_send_failures_total", labels,
          "Messages whose retry budget was exhausted (typed failure)");
      counters.backoff_micros = &registry_->counter(
          "spi_reliable_backoff_micros_total", labels,
          "Wall-clock microseconds senders spent in retry backoff");
      counters.backoff_histogram = &registry_->histogram(
          "spi_reliable_backoff_micros", obs::Histogram::exponential_bounds(50.0, 2.0, 10),
          labels, "Distribution of individual retry backoff pauses (microseconds)");
    }
    channel_counters_.push_back(counters);

    // Live occupancy gauges (refreshed on scrape, never on the hot
    // path): depth right now, the high watermark so far, and the static
    // capacity the channel was built with — watermark vs. capacity is
    // the "is the eq.-2 bound tight?" signal /runtime serves.
    depth_gauges_.push_back(&registry_->gauge(
        "spi_channel_depth_tokens", labels,
        "Tokens currently queued in one SPI channel (scrape-time sample)"));
    watermark_gauges_.push_back(&registry_->gauge(
        "spi_channel_high_watermark_tokens", labels,
        "Highest occupancy one SPI channel ever reached this process"));
    registry_
        ->gauge("spi_channel_capacity_tokens", labels,
                "Configured token capacity of one SPI channel (eq.-2 bound + delays)")
        .set(static_cast<double>(std::max<std::int64_t>(1, capacity)));

    if (!reliable) {
      // Plain edges batch message/byte accounting per firing in fire();
      // reliable channels count per attempt inside the protocol.
      edge_messages_[ei] = counters.messages;
      edge_payload_bytes_[ei] = counters.payload_bytes;
    }

    // Channel selection (docs/architecture.md): the lock-free slab
    // channel wherever the plan's static knowledge allows it; the
    // mutex-based fallback where the reliable protocol needs requeue and
    // deadline waits, or when the policy forces it.
    if (reliable || policy_ == ChannelPolicy::kBlockingOnly) {
      auto channel = std::make_unique<BlockingChannel>(
          spec.edge, static_cast<std::size_t>(std::max<std::int64_t>(1, capacity)), abort_,
          counters);
      if (reliable) channel->enable_reliability(reliability_.faults, reliability_.policy());
      blocking_[ei] = std::move(channel);
    } else {
      const df::VtsEdgeInfo& info = plan_.vts.edges[ei];
      const std::int64_t frame_bound =
          info.converted ? info.b_max_bytes : spec.token_bytes;
      auto channel = std::make_unique<SpscChannel>(
          spec.edge, static_cast<std::size_t>(std::max<std::int64_t>(1, capacity)),
          static_cast<std::size_t>(std::max<std::int64_t>(1, frame_bound)), &abort_);
      channel->set_counters(counters.spsc());
      spsc_[ei] = std::move(channel);
      ++spsc_count_;
    }
  }

  // Initial tokens. Placed through the faultless path: delay tokens are
  // part of the compiled system, not traffic the fault plan may eat.
  // Plain channels no longer count per token, so account for the
  // placement here (reliable execute() counts for itself).
  for (std::size_t i = 0; i < graph_.edge_count(); ++i) {
    const df::Edge& e = graph_.edge(static_cast<df::EdgeId>(i));
    const bool dynamic = plan_.vts.edges[i].converted;
    const std::size_t token_bytes = dynamic ? 0 : static_cast<std::size_t>(e.token_bytes);
    for (std::int64_t d = 0; d < e.delay; ++d) {
      if (spsc_[i]) {
        Bytes token(token_bytes, 0);
        spsc_[i]->push({token.data(), token.size()});
      } else if (blocking_[i]) {
        blocking_[i]->push_faultless(Bytes(token_bytes, 0));
      } else {
        local_fifo_[i].push_back(Bytes(token_bytes, 0));
        continue;
      }
      if (edge_messages_[i]) {
        edge_messages_[i]->inc();
        edge_payload_bytes_[i]->inc(static_cast<std::int64_t>(token_bytes));
      }
    }
  }

  // One published heartbeat/wait-state slot per worker, cache-line
  // aligned so the per-firing stores stay worker-private.
  worker_count_ = plan_.programs.size();
  worker_state_ = std::make_unique<WorkerState[]>(worker_count_);
  colocated_epochs_.assign(worker_count_, 0);

  // Persistent per-(proc, step) firing contexts: the outer vectors and
  // the input token buffers are built once and keep their heap capacity
  // across iterations, so a warmed-up firing's channel path allocates
  // nothing.
  contexts_.resize(plan_.programs.size());
  for (std::size_t p = 0; p < plan_.programs.size(); ++p) {
    const std::vector<FiringStep>& program = plan_.programs[p];
    contexts_[p].resize(program.size());
    for (std::size_t s = 0; s < program.size(); ++s) {
      FiringContext& ctx = contexts_[p][s];
      const FiringStep& step = program[s];
      ctx.actor = step.actor;
      ctx.in_edges = step.in_edges;
      ctx.out_edges = step.out_edges;
      ctx.inputs.resize(ctx.in_edges.size());
      for (std::size_t i = 0; i < ctx.in_edges.size(); ++i) {
        const df::Edge& e = graph_.edge(ctx.in_edges[i]);
        ctx.inputs[i].resize(static_cast<std::size_t>(e.cons.value()));
      }
      ctx.outputs.resize(ctx.out_edges.size());
    }
  }

  // The colocated traversal order: every per-processor program is a
  // subsequence of the plan's PASS (pipeline.cpp builds them by slicing
  // it), so replaying the PASS with one cursor per processor recovers
  // the admissible merged order — the order in which one thread can walk
  // every processor's work without a single channel wait.
  std::vector<std::int32_t> proc_of(graph_.actor_count(), -1);
  for (std::size_t p = 0; p < plan_.programs.size(); ++p)
    for (const FiringStep& step : plan_.programs[p])
      proc_of[static_cast<std::size_t>(step.actor)] = static_cast<std::int32_t>(p);
  std::vector<std::size_t> cursor(plan_.programs.size(), 0);
  colocated_order_.reserve(plan_.pass.firings.size());
  for (const df::ActorId actor : plan_.pass.firings) {
    const std::int32_t p = proc_of[static_cast<std::size_t>(actor)];
    if (p < 0 || cursor[static_cast<std::size_t>(p)] >= plan_.programs[p].size() ||
        plan_.programs[p][cursor[static_cast<std::size_t>(p)]].actor != actor)
      throw std::logic_error("JobInstance: programs are not a partition of the PASS");
    colocated_order_.emplace_back(p, static_cast<std::int32_t>(cursor[static_cast<std::size_t>(p)]++));
  }
  for (std::size_t p = 0; p < plan_.programs.size(); ++p)
    if (cursor[p] != plan_.programs[p].size())
      throw std::logic_error("JobInstance: PASS shorter than the per-processor programs");
}

std::int64_t JobInstance::resident_channel_bytes(const ExecutablePlan& plan) {
  // What one instance keeps resident in channel buffering: per channel,
  // the eq.-2/credit-window token capacity (exactly the capacity init()
  // builds the channel with) times the per-token frame bound the SPSC
  // slab reserves. Computable from the plan alone, so admission control
  // can reject a job before anything is allocated.
  std::int64_t total = 0;
  for (const ChannelSpec& spec : plan.channels) {
    const std::int64_t per_iter = spec.prod_tokens * spec.src_firings_per_iteration;
    const std::int64_t window = spec.bbs_capacity_tokens.value_or(1);
    const std::int64_t capacity = std::max<std::int64_t>(1, window * per_iter + spec.delay_tokens);
    const df::VtsEdgeInfo& info = plan.vts.edges[static_cast<std::size_t>(spec.edge)];
    const std::int64_t frame_bound =
        std::max<std::int64_t>(1, info.converted ? info.b_max_bytes : spec.token_bytes);
    total += capacity * frame_bound;
  }
  return total;
}

void JobInstance::interrupt_all() {
  for (auto& channel : spsc_)
    if (channel) channel->interrupt();
  for (auto& channel : blocking_)
    if (channel) channel->interrupt();
  // Wake workers parked on the in-flight cap too: abort_ is already set
  // by every caller, and the empty critical section pairs with the
  // waiters' predicate check under the same mutex.
  { std::lock_guard lock(inflight_mutex_); }
  inflight_cv_.notify_all();
}

std::int64_t JobInstance::min_completed_iterations() const {
  std::int64_t floor = 0;
  for (std::size_t i = 0; i < worker_count_; ++i) {
    const std::int64_t c = worker_state_[i].completed.load(std::memory_order_relaxed);
    if (i == 0 || c < floor) floor = c;
  }
  return floor;
}

bool JobInstance::await_inflight_slot(std::int64_t iter) {
  const std::int64_t cap = run_inflight_cap_;
  if (cap <= 0 || iter < cap) return !abort_.load();
  // Starting iteration `iter` puts iterations [floor, iter] in flight;
  // wait until every worker has completed through iter - cap so the
  // window holds at most `cap` iterations. cap == 1 degenerates to a
  // full barrier: nobody enters iteration i before all finish i - 1.
  const std::int64_t need = iter - cap + 1;
  std::unique_lock lock(inflight_mutex_);
  inflight_cv_.wait(lock, [&] {
    return abort_.load() || min_completed_iterations() >= need;
  });
  return !abort_.load();
}

void JobInstance::set_compute(df::ActorId actor, ComputeFn fn) {
  compute_.at(static_cast<std::size_t>(actor)) = std::move(fn);
}

void JobInstance::reset_invocations() { std::fill(fired_.begin(), fired_.end(), 0); }

void JobInstance::set_flight_recorder(obs::FlightRecorder* recorder) {
  flight_ = recorder;
  if (!flight_) return;
  if (flight_->proc_count() < static_cast<std::int32_t>(plan_.programs.size()))
    throw std::invalid_argument("JobInstance: flight recorder has fewer rings than procs");
  std::vector<std::string> actor_names(graph_.actor_count());
  for (std::size_t a = 0; a < graph_.actor_count(); ++a)
    actor_names[a] = graph_.actor(static_cast<df::ActorId>(a)).name;
  std::vector<std::string> edge_names(graph_.edge_count());
  for (std::size_t i = 0; i < graph_.edge_count(); ++i)
    edge_names[i] = graph_.edge(static_cast<df::EdgeId>(i)).name;
  for (const ChannelSpec& spec : plan_.channels)
    if (spec.edge >= 0 && static_cast<std::size_t>(spec.edge) < edge_names.size())
      edge_names[static_cast<std::size_t>(spec.edge)] = spec.name;
  flight_->set_names(std::move(actor_names), std::move(edge_names));
}

ThreadedRunStats JobInstance::counter_totals() const {
  ThreadedRunStats totals;
  for (const ChannelCounters& c : channel_counters_) {
    totals.messages += c.messages->value();
    totals.payload_bytes += c.payload_bytes->value();
    totals.producer_blocks += c.producer_blocks->value();
    totals.consumer_blocks += c.consumer_blocks->value();
    totals.producer_block_micros += c.producer_block_micros->value();
    totals.consumer_block_micros += c.consumer_block_micros->value();
    if (c.retries) {
      totals.retries += c.retries->value();
      totals.dropped_frames += c.dropped_frames->value();
      totals.crc_failures += c.crc_failures->value();
      totals.duplicates += c.duplicates->value();
      totals.timeouts += c.timeouts->value();
      totals.backoff_micros += c.backoff_micros->value();
    }
  }
  return totals;
}

void JobInstance::fire(const FiringStep& step, FiringContext& ctx, std::int32_t proc,
                       std::int64_t iteration, WorkerState& ws) {
  const df::ActorId actor = step.actor;
  const auto a = static_cast<std::size_t>(actor);
  const std::int64_t span_start_us = trace_ ? trace_->now_us() : 0;
  const ChannelFlightCtx flight_ctx{flight_, proc, actor, iteration};
  const ChannelFlightCtx* flight = flight_ ? &flight_ctx : nullptr;
  if (flight)
    flight_->record(proc, obs::FlightEventKind::kFireBegin, actor, -1, 0, iteration);
  ctx.invocation = fired_[a]++;
  ws.actor.store(actor, std::memory_order_relaxed);

  ws.waiting_side.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < ctx.in_edges.size(); ++i) {
    const df::EdgeId eid = ctx.in_edges[i];
    const auto ei = static_cast<std::size_t>(eid);
    const df::Edge& e = graph_.edge(eid);
    // Publish which channel we are about to consume from: if the pop
    // blocks forever, this is what lets the watchdog name the edge.
    // Relaxed stores to the worker's own cache line — no shared traffic.
    ws.waiting_edge.store(eid, std::memory_order_relaxed);
    // A compute may have moved tokens out last firing; restore the slot
    // count before refilling (capacity survives, so no steady-state
    // allocation).
    ctx.inputs[i].resize(static_cast<std::size_t>(e.cons.value()));
    for (std::int64_t t = 0; t < e.cons.value(); ++t) {
      Bytes& slot = ctx.inputs[i][static_cast<std::size_t>(t)];
      if (spsc_[ei]) {
        spsc_[ei]->pop_into(slot, flight);
      } else if (blocking_[ei]) {
        slot = blocking_[ei]->pop(flight);
      } else {
        auto& fifo = local_fifo_[ei];
        if (fifo.empty())
          throw std::logic_error("JobInstance: local token underflow on " + e.name);
        slot = std::move(fifo.front());
        fifo.pop_front();
      }
    }
  }

  // Inputs consumed: while the compute runs, waiting_edge = -1 with the
  // actor set is the "inside a compute function" state the watchdog
  // classifies as slow-actor.
  ws.waiting_edge.store(-1, std::memory_order_relaxed);
  ws.waiting_side.store(-1, std::memory_order_relaxed);

  const bool have_compute = static_cast<bool>(compute_[a]);
  if (have_compute) {
    for (auto& out : ctx.outputs) out.clear();
    compute_[a](ctx);
  }

  ws.waiting_side.store(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < ctx.out_edges.size(); ++i) {
    const df::EdgeId eid = ctx.out_edges[i];
    const auto ei = static_cast<std::size_t>(eid);
    const df::Edge& e = graph_.edge(eid);
    ws.waiting_edge.store(eid, std::memory_order_relaxed);
    const df::VtsEdgeInfo& info = plan_.vts.edges[ei];
    std::int64_t batch_bytes = 0;
    if (!have_compute) {
      // Default compute: full-rate zero tokens. On the SPSC path they go
      // straight into the slab — acquire, zero-fill, publish; no Bytes.
      const auto token_bytes = static_cast<std::size_t>(e.token_bytes);
      for (std::int64_t t = 0; t < e.prod.value(); ++t) {
        if (spsc_[ei]) {
          const std::span<std::uint8_t> slot = spsc_[ei]->acquire(flight);
          std::memset(slot.data(), 0, token_bytes);
          spsc_[ei]->publish(token_bytes, flight);
        } else if (blocking_[ei]) {
          blocking_[ei]->push(Bytes(token_bytes, 0), flight);
        } else {
          local_fifo_[ei].emplace_back(token_bytes, 0);
        }
        batch_bytes += static_cast<std::int64_t>(token_bytes);
      }
    } else {
      if (static_cast<std::int64_t>(ctx.outputs[i].size()) != e.prod.value())
        throw std::logic_error("JobInstance: wrong token count on " + e.name);
      for (Bytes& token : ctx.outputs[i]) {
        if (info.converted && static_cast<std::int64_t>(token.size()) > info.b_max_bytes)
          throw std::length_error("JobInstance: packed token exceeds b_max on " + e.name);
        batch_bytes += static_cast<std::int64_t>(token.size());
        if (spsc_[ei])
          spsc_[ei]->push({token.data(), token.size()}, flight);
        else if (blocking_[ei])
          blocking_[ei]->push(std::move(token), flight);
        else
          local_fifo_[ei].push_back(std::move(token));
      }
    }
    // One batched registry update per (firing, edge) instead of two
    // atomic RMWs per token — the per-token hot path touches no shared
    // counters. Null entries: local edges (uncounted, as before) and
    // reliable channels (count per attempt themselves).
    if ((spsc_[ei] || blocking_[ei]) && edge_messages_[ei]) {
      edge_messages_[ei]->inc(e.prod.value());
      edge_payload_bytes_[ei]->inc(batch_bytes);
    }
  }

  ws.waiting_edge.store(-1, std::memory_order_relaxed);
  ws.waiting_side.store(-1, std::memory_order_relaxed);
  ws.actor.store(-1, std::memory_order_relaxed);

  if (flight)
    flight_->record(proc, obs::FlightEventKind::kFireEnd, actor, -1, 0, iteration);
  if (trace_)
    trace_->record({graph_.actor(actor).name, "firing", proc, span_start_us, trace_->now_us(),
                    iteration});
}

void JobInstance::worker(std::int32_t proc, std::int64_t iterations) {
  const auto p = static_cast<std::size_t>(proc);
  WorkerState& ws = worker_state_[p];
  std::uint64_t epoch = 0;  ///< local heartbeat counter, published per firing
  const bool capped = run_inflight_cap_ > 0;
  try {
    const std::vector<FiringStep>& program = plan_.programs[p];
    std::vector<FiringContext>& contexts = contexts_[p];
    // Free-running across iteration boundaries: the only couplings to
    // the other workers are the channels themselves (whose eq.-2
    // capacities bound the skew in tokens) and, when the caller set
    // max_inflight_iterations, the explicit iteration-window gate.
    for (std::int64_t iter = 0; iter < iterations && !abort_.load(); ++iter) {
      if (capped && !await_inflight_slot(iter)) break;
      ws.iteration.store(iter, std::memory_order_relaxed);
      for (std::size_t s = 0; s < program.size(); ++s) {
        ws.step.store(static_cast<std::int32_t>(s), std::memory_order_relaxed);
        fire(program[s], contexts[s], proc, iter, ws);
        // The heartbeat: one relaxed store to a worker-private cache
        // line per completed firing — the watchdog's only hot-path cost.
        ws.epoch.store(++epoch, std::memory_order_relaxed);
      }
      ws.completed.store(iter + 1, std::memory_order_relaxed);
      if (capped) {
        // Publish-then-notify under the gate mutex so a parked worker
        // either sees the new floor in its predicate or gets the wake.
        { std::lock_guard lock(inflight_mutex_); }
        inflight_cv_.notify_all();
      }
    }
  } catch (const ChannelInterrupted&) {
    // Unwound by another worker's failure; nothing to record.
  } catch (...) {
    {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    abort_.store(true);
    interrupt_all();
  }
  ws.done.store(true, std::memory_order_relaxed);
}

void JobInstance::colocated_body(std::int64_t iterations) {
  // The whole plan on the calling thread, in PASS order. Admissibility
  // plus the eq.-2 capacities mean no channel operation here ever waits
  // — a wait with one thread would be a deadlock, and handing the plan
  // to this path is an assertion that the schedule proof holds. The same
  // fire()/heartbeat machinery runs, so the watchdog, flight recorder
  // and /runtime endpoint see exactly what they see under the gang.
  try {
    for (std::int64_t iter = 0; iter < iterations && !abort_.load(); ++iter) {
      for (std::size_t i = 0; i < worker_count_; ++i)
        worker_state_[i].iteration.store(iter, std::memory_order_relaxed);
      for (const auto& [proc, step] : colocated_order_) {
        const auto p = static_cast<std::size_t>(proc);
        const auto s = static_cast<std::size_t>(step);
        WorkerState& ws = worker_state_[p];
        ws.step.store(step, std::memory_order_relaxed);
        fire(plan_.programs[p][s], contexts_[p][s], proc, iter, ws);
        ws.epoch.store(++colocated_epochs_[p], std::memory_order_relaxed);
      }
      for (std::size_t i = 0; i < worker_count_; ++i)
        worker_state_[i].completed.store(iter + 1, std::memory_order_relaxed);
    }
  } catch (const ChannelInterrupted&) {
    // Interrupted by the watchdog (or an embedded-server teardown);
    // the recorded StallError is what run() rethrows.
  } catch (...) {
    {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    abort_.store(true);
    interrupt_all();
  }
  for (std::size_t i = 0; i < worker_count_; ++i)
    worker_state_[i].done.store(true, std::memory_order_relaxed);
}

void JobInstance::run(WorkerPool& pool, const RunOptions& options) {
  const std::int64_t iterations = options.iterations;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(worker_count_);
  for (std::size_t p = 0; p < worker_count_; ++p)
    tasks.emplace_back([this, p, iterations] {
      worker(static_cast<std::int32_t>(p), iterations);
    });
  // Worker bodies trap their own exceptions (first_error_); the only
  // throws out of pool.run() are pool-level (too-wide gang, shutdown),
  // which run_with's unwind path turns into a clean teardown.
  run_with(options, [&] { pool.run(tasks); });
}

void JobInstance::run_colocated(std::int64_t iterations) {
  RunOptions options;
  options.iterations = iterations;
  run_colocated(options);
}

void JobInstance::run_colocated(const RunOptions& options) {
  run_with(options, [&] { colocated_body(options.iterations); });
}

void JobInstance::run_with(const RunOptions& options, const std::function<void()>& execute) {
  const std::int64_t iterations = options.iterations;
  if (iterations < 0) throw std::invalid_argument("JobInstance::run: negative iterations");
  if (options.max_inflight_iterations < 0)
    throw std::invalid_argument("JobInstance::run: negative max_inflight_iterations");
  abort_.store(false);
  first_error_ = nullptr;
  // Reset at entry, aggregate on every exit path: stats() is never stale
  // from a previous run, even when this run throws.
  stats_ = ThreadedRunStats{};
  run_iterations_ = iterations;
  run_inflight_cap_ = options.max_inflight_iterations;
  for (std::size_t i = 0; i < worker_count_; ++i) {
    WorkerState& ws = worker_state_[i];
    ws.epoch.store(0, std::memory_order_relaxed);
    ws.iteration.store(0, std::memory_order_relaxed);
    ws.completed.store(0, std::memory_order_relaxed);
    ws.step.store(-1, std::memory_order_relaxed);
    ws.actor.store(-1, std::memory_order_relaxed);
    ws.waiting_edge.store(-1, std::memory_order_relaxed);
    ws.waiting_side.store(-1, std::memory_order_relaxed);
    ws.done.store(false, std::memory_order_relaxed);
  }
  std::fill(colocated_epochs_.begin(), colocated_epochs_.end(), 0);
  const ThreadedRunStats base = counter_totals();

  // The watchdog is declared before the server on purpose: destruction
  // runs in reverse order, so the server (whose /healthz hook reads the
  // watchdog) always dies first.
  std::optional<obs::ProgressWatchdog> watchdog;
  if (options.watchdog.enabled) {
    obs::ProgressWatchdog::Hooks hooks;
    hooks.snapshot = [this] { return worker_snapshots(); };
    hooks.actor_name = [this](std::int32_t a) { return actor_display_name(a); };
    hooks.channel_name = [this](std::int32_t e) { return channel_display_name(e); };
    hooks.on_stall = [this, &options](const obs::StallReport& report) {
      handle_stall(report, options.watchdog);
    };
    watchdog.emplace(options.watchdog, std::move(hooks));
  }
  std::optional<obs::ObsServer> server;
  if (options.obs_port >= 0) {
    obs::ObsServer::Options server_options;
    server_options.port = options.obs_port;
    server_options.bind_address = options.obs_bind;
    server_options.registry = registry_;
    server_options.refresh = [this] { refresh_channel_gauges(); };
    server_options.runtime_json = [this] { return runtime_status_json(); };
    if (watchdog)
      server_options.health = [w = &*watchdog] { return w->health(); };
    server.emplace(std::move(server_options));
    server->start();
    if (options.on_obs_start) options.on_obs_start(server->port());
  }
  running_.store(true, std::memory_order_relaxed);
  if (watchdog) watchdog->start();

  // The execute callable must leave every worker body finished on every
  // normal return (the gang joins; the colocated body is synchronous).
  // If it throws at the pool level instead, abort + interrupt first so
  // any started bodies unwind, then let the stack optionals tear down
  // the watchdog and server before the exception escapes.
  // Serve-batch bracketing (request_trace.hpp): when the caller tagged
  // this run with a batch id, bookend the firing stream with batch
  // markers so a sampled request's span can be matched to its causal
  // firing log by (batch id) alone.
  if (flight_ && options.batch_id >= 0)
    flight_->record(0, obs::FlightEventKind::kBatchBegin, -1, -1, options.batch_id, 0,
                    static_cast<std::int32_t>(iterations));
  const auto exec_begin = std::chrono::steady_clock::now();
  try {
    execute();
  } catch (...) {
    abort_.store(true);
    interrupt_all();
    running_.store(false, std::memory_order_relaxed);
    throw;
  }
  last_run_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - exec_begin)
                     .count();
  if (flight_ && options.batch_id >= 0)
    flight_->record(0, obs::FlightEventKind::kBatchEnd, -1, -1, options.batch_id, 0,
                    static_cast<std::int32_t>(iterations));

  if (watchdog) watchdog->stop();
  if (server) server->stop();
  running_.store(false, std::memory_order_relaxed);

  const ThreadedRunStats now = counter_totals();
  stats_.messages = now.messages - base.messages;
  stats_.payload_bytes = now.payload_bytes - base.payload_bytes;
  stats_.producer_blocks = now.producer_blocks - base.producer_blocks;
  stats_.consumer_blocks = now.consumer_blocks - base.consumer_blocks;
  stats_.producer_block_micros = now.producer_block_micros - base.producer_block_micros;
  stats_.consumer_block_micros = now.consumer_block_micros - base.consumer_block_micros;
  stats_.retries = now.retries - base.retries;
  stats_.dropped_frames = now.dropped_frames - base.dropped_frames;
  stats_.crc_failures = now.crc_failures - base.crc_failures;
  stats_.duplicates = now.duplicates - base.duplicates;
  stats_.timeouts = now.timeouts - base.timeouts;
  stats_.backoff_micros = now.backoff_micros - base.backoff_micros;
  if (first_error_) {
    maybe_dump_flight_postmortem();
    std::rethrow_exception(first_error_);
  }
}

namespace {

/// "flight.json" + "deadlock" -> "flight.stall-deadlock.json" — the
/// classification rides in the dump filename so an operator (or the
/// tooling ctest tier) knows what killed the run before opening it.
std::string stall_dump_path(const std::string& base, const std::string& classification) {
  const std::string suffix = ".stall-" + classification + ".json";
  if (base.size() >= 5 && base.compare(base.size() - 5, 5, ".json") == 0)
    return base.substr(0, base.size() - 5) + suffix;
  return base + suffix;
}

void write_file_best_effort(const std::string& path, const std::string& content) {
  try {
    std::ofstream out(path, std::ios::binary);
    if (out) out << content;
  } catch (...) {
    // Best effort — a failing dump must not mask the original error.
  }
}

}  // namespace

void JobInstance::maybe_dump_flight_postmortem() {
  if (!flight_ || flight_->postmortem_path().empty()) return;
  try {
    std::rethrow_exception(first_error_);
  } catch (const sim::ChannelError&) {
    // Channel-level death is what the flight recorder exists for: dump
    // everything captured so the analyzer can reconstruct the final
    // moments. Best effort — a failing dump must not mask the error.
    write_file_best_effort(flight_->postmortem_path(), flight_->collect().to_json());
  } catch (const obs::StallError& stall) {
    // Watchdog abort: same dump, classification in the filename.
    write_file_best_effort(
        stall_dump_path(flight_->postmortem_path(), stall.report().classification),
        flight_->collect().to_json());
  } catch (...) {
    // Compute exceptions and internal errors: no dump.
  }
}

void JobInstance::handle_stall(const obs::StallReport& report,
                               const obs::WatchdogOptions& options) {
  // Runs on the watchdog's monitor thread while the workers are wedged.
  // First the /runtime snapshot + report (always), then either hand the
  // StallError to run() — which dumps the flight log with the
  // classification in the filename and rethrows — or, for a
  // non-aborting watchdog, dump the flight log right here (run() will
  // never see an error).
  const std::string dir = options.dump_dir.empty() ? std::string(".") : options.dump_dir;
  write_file_best_effort(dir + "/spi_stall." + report.classification + ".json",
                         "{\"report\":" + report.to_json() +
                             ",\"runtime\":" + runtime_status_json() + "}\n");
  if (options.abort_on_stall) {
    {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::make_exception_ptr(obs::StallError(report));
    }
    abort_.store(true);
    interrupt_all();
  } else if (flight_ && !flight_->postmortem_path().empty()) {
    write_file_best_effort(
        stall_dump_path(flight_->postmortem_path(), report.classification),
        flight_->collect().to_json());
  }
}

std::vector<obs::WorkerSnapshot> JobInstance::worker_snapshots() const {
  std::vector<obs::WorkerSnapshot> out(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    const WorkerState& ws = worker_state_[i];
    obs::WorkerSnapshot& snap = out[i];
    snap.proc = static_cast<std::int32_t>(i);
    snap.epoch = ws.epoch.load(std::memory_order_relaxed);
    snap.iteration = ws.iteration.load(std::memory_order_relaxed);
    snap.completed = ws.completed.load(std::memory_order_relaxed);
    snap.step = ws.step.load(std::memory_order_relaxed);
    snap.actor = ws.actor.load(std::memory_order_relaxed);
    snap.waiting_edge = ws.waiting_edge.load(std::memory_order_relaxed);
    snap.waiting_side = ws.waiting_side.load(std::memory_order_relaxed);
    snap.done = ws.done.load(std::memory_order_relaxed);
  }
  return out;
}

std::string JobInstance::actor_display_name(std::int32_t actor) const {
  if (actor < 0 || static_cast<std::size_t>(actor) >= graph_.actor_count()) return {};
  return graph_.actor(actor).name;
}

std::string JobInstance::channel_display_name(std::int32_t edge) const {
  if (edge < 0 || static_cast<std::size_t>(edge) >= graph_.edge_count()) return {};
  if (const ChannelSpec* spec = plan_.find_channel(edge)) return spec->name;
  return graph_.edge(edge).name;
}

void JobInstance::refresh_channel_gauges() {
  for (std::size_t c = 0; c < plan_.channels.size(); ++c) {
    const auto ei = static_cast<std::size_t>(plan_.channels[c].edge);
    std::size_t depth = 0;
    std::size_t watermark = 0;
    if (spsc_[ei]) {
      depth = spsc_[ei]->size();
      watermark = spsc_[ei]->high_watermark();
    } else if (blocking_[ei]) {
      depth = blocking_[ei]->size();
      watermark = blocking_[ei]->high_watermark();
    }
    depth_gauges_[c]->set(static_cast<double>(depth));
    watermark_gauges_[c]->set(static_cast<double>(watermark));
  }
}

std::string JobInstance::runtime_status_json() const {
  std::string out = "{\"graph\":\"" + obs::detail::json_escaped(plan_.graph_name) + "\"";
  if (!label_.empty()) out += ",\"job\":\"" + obs::detail::json_escaped(label_) + "\"";
  out += ",\"running\":" + std::string(running_.load(std::memory_order_relaxed) ? "true"
                                                                                : "false");
  out += ",\"proc_count\":" + std::to_string(worker_count_);
  out += ",\"iterations_target\":" + std::to_string(run_iterations_);

  const std::vector<obs::WorkerSnapshot> workers = worker_snapshots();
  std::int64_t min_iteration = 0;
  std::int64_t min_completed = 0;
  std::int64_t max_started = 0;
  bool first = true;
  for (const obs::WorkerSnapshot& w : workers) {
    const std::int64_t progressed = w.done ? run_iterations_ : w.iteration;
    const std::int64_t started = w.done ? run_iterations_ : w.iteration + 1;
    if (first || progressed < min_iteration) min_iteration = progressed;
    if (first || w.completed < min_completed) min_completed = w.completed;
    if (first || started > max_started) max_started = started;
    first = false;
  }
  out += ",\"min_iteration\":" + std::to_string(min_iteration);
  // Pipelining window: iterations started somewhere but not yet
  // completed everywhere (0 when idle; bounded by
  // max_inflight_iterations when the run set a cap).
  out += ",\"inflight_iterations\":" +
         std::to_string(std::max<std::int64_t>(0, max_started - min_completed));
  out += ",\"max_inflight_iterations\":" + std::to_string(run_inflight_cap_);

  out += ",\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const obs::WorkerSnapshot& w = workers[i];
    if (i) out += ",";
    out += "{\"proc\":" + std::to_string(w.proc);
    out += ",\"epoch\":" + std::to_string(w.epoch);
    out += ",\"iteration\":" + std::to_string(w.iteration);
    out += ",\"completed\":" + std::to_string(w.completed);
    out += ",\"step\":" + std::to_string(w.step);
    out += ",\"actor\":" + std::to_string(w.actor);
    out += ",\"actor_name\":\"" + obs::detail::json_escaped(actor_display_name(w.actor));
    out += "\",\"waiting_edge\":" + std::to_string(w.waiting_edge);
    out += ",\"waiting_side\":" + std::to_string(w.waiting_side);
    out += std::string(",\"done\":") + (w.done ? "true" : "false") + "}";
  }
  out += "]";

  // Channel occupancy vs. the plan's bound: only IPC channels appear —
  // processor-local FIFOs are single-threaded state that cannot be read
  // from a scrape thread without a race.
  out += ",\"channels\":[";
  for (std::size_t c = 0; c < plan_.channels.size(); ++c) {
    const ChannelSpec& spec = plan_.channels[c];
    const auto ei = static_cast<std::size_t>(spec.edge);
    std::size_t depth = 0;
    std::size_t watermark = 0;
    std::size_t capacity = 0;
    const char* kind = "local";
    if (spsc_[ei]) {
      kind = "spsc";
      depth = spsc_[ei]->size();
      watermark = spsc_[ei]->high_watermark();
      capacity = spsc_[ei]->capacity();
    } else if (blocking_[ei]) {
      kind = "blocking";
      depth = blocking_[ei]->size();
      watermark = blocking_[ei]->high_watermark();
      capacity = blocking_[ei]->capacity();
    }
    if (c) out += ",";
    out += "{\"edge\":" + std::to_string(spec.edge);
    out += ",\"name\":\"" + obs::detail::json_escaped(spec.name);
    out += "\",\"kind\":\"" + std::string(kind);
    out += "\",\"depth_tokens\":" + std::to_string(depth);
    out += ",\"high_watermark_tokens\":" + std::to_string(watermark);
    out += ",\"capacity_tokens\":" + std::to_string(capacity);
    out += std::string(",\"reliable\":") + (spec.reliable ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

}  // namespace spi::core
