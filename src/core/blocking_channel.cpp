#include "core/blocking_channel.hpp"

#include <chrono>
#include <thread>

namespace spi::core {

namespace {

void sleep_us(std::int64_t micros) {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace

BlockingChannel::BlockingChannel(df::EdgeId edge, std::size_t capacity_tokens,
                                 std::atomic<bool>& abort, ChannelCounters counters)
    : edge_(edge), capacity_(capacity_tokens), abort_(abort), counters_(counters) {}

void BlockingChannel::enable_reliability(const sim::FaultPlan* plan,
                                         const sim::RetryPolicy& policy) {
  policy_ = &policy;
  sender_ = std::make_unique<ReliableSender>(edge_, plan, policy);
  receiver_ = std::make_unique<ReliableReceiver>(edge_);
}

void BlockingChannel::enqueue(Bytes frame, const ChannelFlightCtx* flight) {
  std::unique_lock lock(mutex_);
  if (queue_.size() >= capacity_) {
    if (counters_.producer_blocks) counters_.producer_blocks->inc();
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockBegin, flight->actor,
                               edge_, send_seq_, flight->iteration, /*aux=*/1);
    const std::int64_t t0 = counters_.producer_block_micros ? obs::monotonic_ns() : 0;
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || abort_.load(); });
    if (counters_.producer_block_micros)
      counters_.producer_block_micros->inc((obs::monotonic_ns() - t0) / 1000);
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockEnd, flight->actor,
                               edge_, send_seq_, flight->iteration, /*aux=*/1);
  }
  if (abort_.load()) throw ChannelInterrupted{};
  queue_.push_back(std::move(frame));
  if (queue_.size() > high_watermark_) high_watermark_ = queue_.size();
  not_empty_.notify_one();
}

std::size_t BlockingChannel::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t BlockingChannel::high_watermark() const {
  std::lock_guard lock(mutex_);
  return high_watermark_;
}

Bytes BlockingChannel::dequeue(const ChannelFlightCtx* flight) {
  std::unique_lock lock(mutex_);
  if (queue_.empty()) {
    if (counters_.consumer_blocks) counters_.consumer_blocks->inc();
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockBegin, flight->actor,
                               edge_, recv_seq_, flight->iteration, /*aux=*/0);
    const std::int64_t t0 = counters_.consumer_block_micros ? obs::monotonic_ns() : 0;
    if (policy_) {
      // Reliable mode: an empty channel past the deadline means the
      // peer is lost (or the wire eats everything) — degrade with a
      // typed error instead of hanging the worker forever.
      const bool signaled =
          not_empty_.wait_for(lock, std::chrono::microseconds(policy_->timeout_us),
                              [&] { return !queue_.empty() || abort_.load(); });
      if (counters_.consumer_block_micros)
        counters_.consumer_block_micros->inc((obs::monotonic_ns() - t0) / 1000);
      if (!signaled) {
        if (counters_.timeouts) counters_.timeouts->inc();
        throw sim::ChannelError(sim::ChannelErrorKind::kReceiveTimeout, edge_, 0,
                                "no frame within " + std::to_string(policy_->timeout_us) +
                                    "us");
      }
    } else {
      not_empty_.wait(lock, [&] { return !queue_.empty() || abort_.load(); });
      if (counters_.consumer_block_micros)
        counters_.consumer_block_micros->inc((obs::monotonic_ns() - t0) / 1000);
    }
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockEnd, flight->actor,
                               edge_, recv_seq_, flight->iteration, /*aux=*/0);
  }
  if (abort_.load() && queue_.empty()) throw ChannelInterrupted{};
  Bytes frame = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return frame;
}

void BlockingChannel::execute(const TransmitScript& script, std::int64_t payload_bytes,
                              const ChannelFlightCtx* flight) {
  for (const TransmitStep& step : script.steps) {
    // A long retransmission script (many attempts with backoff) must
    // not outlive a run abort — the watchdog relies on senders
    // unwinding at the next attempt boundary.
    if (abort_.load()) throw ChannelInterrupted{};
    sleep_us(step.delay_us);
    if (!step.dropped()) {
      enqueue(step.frame, flight);
      if (step.duplicate) enqueue(step.frame, flight);
    }
    if (step.backoff_us > 0) {
      sleep_us(step.backoff_us);
      if (counters_.backoff_histogram)
        counters_.backoff_histogram->observe(static_cast<double>(step.backoff_us));
    }
  }
  if (script.retries() > 0) {
    if (counters_.retries) counters_.retries->inc(script.retries());
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kRetry, flight->actor, edge_,
                               script.retries(), flight->iteration);
  }
  if (script.dropped > 0 && counters_.dropped_frames)
    counters_.dropped_frames->inc(script.dropped);
  if (script.total_backoff_us > 0 && counters_.backoff_micros)
    counters_.backoff_micros->inc(script.total_backoff_us);
  if (!script.delivered) {
    if (counters_.send_failures) counters_.send_failures->inc();
    throw sim::ChannelError(sim::ChannelErrorKind::kRetriesExhausted, edge_, script.attempts(),
                            "every transmission dropped or corrupted");
  }
  if (counters_.messages) counters_.messages->inc();
  if (counters_.payload_bytes) counters_.payload_bytes->inc(payload_bytes);
}

void BlockingChannel::push(Bytes token, const ChannelFlightCtx* flight) {
  const auto payload_bytes = static_cast<std::int64_t>(token.size());
  if (!sender_) {
    // Plain mode: message/byte accounting is batched per firing by the
    // runtime, not paid per token here.
    enqueue(std::move(token), flight);
  } else {
    execute(sender_->plan_transmit(token), payload_bytes, flight);
  }
  if (flight && flight->recorder) {
    // The token is now visible to the receiver: this is the causal
    // send edge the analyzer matches a consumer's wait against.
    flight->recorder->record(flight->proc, obs::FlightEventKind::kSend, flight->actor, edge_,
                             send_seq_, flight->iteration, /*aux=*/0);
  }
  ++send_seq_;
}

void BlockingChannel::push_faultless(Bytes token) {
  if (!sender_) {
    push(std::move(token));
    return;
  }
  const auto payload_bytes = static_cast<std::int64_t>(token.size());
  execute(sender_->plan_transmit_faultless(token), payload_bytes, nullptr);
  ++send_seq_;
}

Bytes BlockingChannel::pop(const ChannelFlightCtx* flight) {
  if (!receiver_) {
    Bytes token = dequeue(flight);
    if (flight && flight->recorder)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kReceive, flight->actor,
                               edge_, recv_seq_, flight->iteration, /*aux=*/0);
    ++recv_seq_;
    return token;
  }
  for (;;) {
    const Bytes frame = dequeue(flight);
    ReliableReceiver::Result result = receiver_->accept(frame);
    switch (result.verdict) {
      case ReliableReceiver::Verdict::kAccept:
        if (flight && flight->recorder)
          flight->recorder->record(flight->proc, obs::FlightEventKind::kReceive, flight->actor,
                                   edge_, recv_seq_, flight->iteration, /*aux=*/0);
        ++recv_seq_;
        return std::move(result.payload);
      case ReliableReceiver::Verdict::kCorrupt:
        if (counters_.crc_failures) counters_.crc_failures->inc();
        break;  // the sender already scheduled a retransmission
      case ReliableReceiver::Verdict::kDuplicate:
        if (counters_.duplicates) counters_.duplicates->inc();
        break;
    }
  }
}

void BlockingChannel::interrupt() {
  std::lock_guard lock(mutex_);
  not_full_.notify_all();
  not_empty_.notify_all();
}

}  // namespace spi::core
