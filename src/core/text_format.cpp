#include "core/text_format.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace spi::core {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::invalid_argument("parse_system: line " + std::to_string(line) + ": " + message);
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '#') break;  // comment
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::int64_t parse_int(std::size_t line, std::string_view s, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    fail(line, std::string("invalid ") + what + " '" + std::string(s) + "'");
  return value;
}

/// key=value attribute, returns value for the given key or nullopt.
std::map<std::string, std::string> parse_attrs(std::size_t line,
                                               std::span<const std::string> tokens) {
  std::map<std::string, std::string> attrs;
  for (const std::string& t : tokens) {
    const auto eq = t.find('=');
    if (eq == std::string::npos) fail(line, "expected key=value attribute, got '" + t + "'");
    attrs[t.substr(0, eq)] = t.substr(eq + 1);
  }
  return attrs;
}

/// "Name:3" (static rate 3) or "Name:dyn8" (dynamic, bound 8) or "Name"
/// (rate 1).
struct Endpoint {
  std::string actor;
  df::Rate rate = df::Rate::fixed(1);
};

Endpoint parse_endpoint(std::size_t line, std::string_view s) {
  Endpoint ep;
  const auto colon = s.find(':');
  if (colon == std::string_view::npos) {
    ep.actor = std::string(s);
    return ep;
  }
  ep.actor = std::string(s.substr(0, colon));
  std::string_view rate = s.substr(colon + 1);
  if (rate.starts_with("dyn")) {
    ep.rate = df::Rate::dynamic(parse_int(line, rate.substr(3), "dynamic bound"));
  } else {
    ep.rate = df::Rate::fixed(parse_int(line, rate, "rate"));
  }
  return ep;
}

}  // namespace

ParsedSystem parse_system(std::string_view text) {
  df::Graph graph;
  std::string graph_name;
  std::map<std::string, df::ActorId> actors;
  std::map<std::string, sched::Proc> procs;
  std::int32_t proc_count = 0;  // 0 = derive from assignments

  struct PendingEdge {
    std::size_t line;
    Endpoint src, snk;
    std::int64_t delay = 0;
    std::int64_t bytes = 4;
  };
  std::vector<PendingEdge> edges;

  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find('\n', begin);
    const std::string_view line =
        text.substr(begin, end == std::string_view::npos ? text.size() - begin : end - begin);
    begin = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];

    if (keyword == "graph") {
      if (tokens.size() != 2) fail(line_no, "usage: graph <name>");
      graph_name = tokens[1];
    } else if (keyword == "procs") {
      if (tokens.size() != 2) fail(line_no, "usage: procs <count>");
      proc_count = static_cast<std::int32_t>(parse_int(line_no, tokens[1], "processor count"));
      if (proc_count <= 0) fail(line_no, "processor count must be positive");
    } else if (keyword == "actor") {
      if (tokens.size() < 2) fail(line_no, "usage: actor <name> [exec=N]");
      if (actors.contains(tokens[1])) fail(line_no, "duplicate actor '" + tokens[1] + "'");
      std::int64_t exec = 1;
      const auto attrs = parse_attrs(line_no, std::span(tokens).subspan(2));
      for (const auto& [key, value] : attrs) {
        if (key == "exec")
          exec = parse_int(line_no, value, "exec");
        else
          fail(line_no, "unknown actor attribute '" + key + "'");
      }
      actors[tokens[1]] = graph.add_actor(tokens[1], exec);
    } else if (keyword == "edge") {
      // edge <src[:rate]> -> <snk[:rate]> [delay=N] [bytes=N]
      if (tokens.size() < 4 || tokens[2] != "->")
        fail(line_no, "usage: edge <src[:rate]> -> <snk[:rate]> [delay=N] [bytes=N]");
      PendingEdge e;
      e.line = line_no;
      e.src = parse_endpoint(line_no, tokens[1]);
      e.snk = parse_endpoint(line_no, tokens[3]);
      const auto attrs = parse_attrs(line_no, std::span(tokens).subspan(4));
      for (const auto& [key, value] : attrs) {
        if (key == "delay")
          e.delay = parse_int(line_no, value, "delay");
        else if (key == "bytes")
          e.bytes = parse_int(line_no, value, "bytes");
        else
          fail(line_no, "unknown edge attribute '" + key + "'");
      }
      edges.push_back(std::move(e));
    } else if (keyword == "proc") {
      // proc <actor> = <processor>
      if (tokens.size() != 4 || tokens[2] != "=") fail(line_no, "usage: proc <actor> = <n>");
      procs[tokens[1]] =
          static_cast<sched::Proc>(parse_int(line_no, tokens[3], "processor id"));
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  // Resolve edges after all actors are known (forward references OK).
  for (const PendingEdge& e : edges) {
    const auto src = actors.find(e.src.actor);
    if (src == actors.end()) fail(e.line, "unknown actor '" + e.src.actor + "'");
    const auto snk = actors.find(e.snk.actor);
    if (snk == actors.end()) fail(e.line, "unknown actor '" + e.snk.actor + "'");
    graph.connect(src->second, e.src.rate, snk->second, e.snk.rate, e.delay, e.bytes);
  }

  // Assignment: default processor 0; derive count when not declared.
  sched::Proc max_proc = 0;
  for (const auto& [name, proc] : procs) {
    if (!actors.contains(name))
      throw std::invalid_argument("parse_system: proc declaration for unknown actor '" + name +
                                  "'");
    if (proc < 0) throw std::invalid_argument("parse_system: negative processor id");
    max_proc = std::max(max_proc, proc);
  }
  if (proc_count == 0) proc_count = max_proc + 1;
  if (max_proc >= proc_count)
    throw std::invalid_argument("parse_system: proc id " + std::to_string(max_proc) +
                                " exceeds declared procs " + std::to_string(proc_count));

  ParsedSystem result{df::Graph(graph_name.empty() ? "parsed" : graph_name),
                      sched::Assignment(graph.actor_count(), proc_count)};
  // Rebuild the graph under its proper name (Graph has no rename).
  for (const df::Actor& a : graph.actors()) result.graph.add_actor(a.name, a.exec_cycles);
  for (const df::Edge& e : graph.edges())
    result.graph.connect(e.src, e.prod, e.snk, e.cons, e.delay, e.token_bytes, e.name);
  for (const auto& [name, proc] : procs) result.assignment.assign(actors.at(name), proc);
  return result;
}

std::string to_text(const df::Graph& graph, const sched::Assignment& assignment) {
  std::ostringstream out;
  out << "graph " << (graph.name().empty() ? "unnamed" : graph.name()) << "\n";
  out << "procs " << assignment.proc_count() << "\n";
  for (const df::Actor& a : graph.actors()) out << "actor " << a.name << " exec=" << a.exec_cycles << "\n";
  auto rate_text = [](const df::Rate& r) {
    return r.is_dynamic() ? "dyn" + std::to_string(r.bound()) : std::to_string(r.bound());
  };
  for (const df::Edge& e : graph.edges()) {
    out << "edge " << graph.actor(e.src).name << ":" << rate_text(e.prod) << " -> "
        << graph.actor(e.snk).name << ":" << rate_text(e.cons) << " delay=" << e.delay
        << " bytes=" << e.token_bytes << "\n";
  }
  for (std::size_t a = 0; a < graph.actor_count(); ++a)
    out << "proc " << graph.actor(static_cast<df::ActorId>(a)).name << " = "
        << assignment.proc_of(static_cast<df::ActorId>(a)) << "\n";
  return out.str();
}

}  // namespace spi::core
