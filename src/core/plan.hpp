/// \file plan.hpp
/// ExecutablePlan — the serializable compiled artifact of the SPI
/// pipeline (docs/architecture.md).
///
/// The paper's thesis is that SPI *compiles* an application's static
/// structure into lean, specialized communication actors instead of a
/// general-purpose runtime. The ExecutablePlan makes that compiled
/// artifact explicit: everything the execution engines need — the
/// VTS-converted graph, repetitions vector, PASS, per-processor firing
/// programs, synchronization graph, per-edge ChannelSpec (SPI mode,
/// BBS/UBS protocol, equation-1/2 capacities, token widths, elided
/// acks), cost-model parameters and the iteration message budget — in
/// one value type with full JSON round-trip serialization. A system is
/// compiled once (core/pipeline.hpp), optionally written to disk
/// (`spi_compile --emit-plan`), and executed later or elsewhere
/// (`--load-plan`) without re-running any analysis.
///
/// All four execution engines construct from `const ExecutablePlan&`:
/// FunctionalRuntime and ThreadedRuntime take it directly; the timed
/// self-timed simulator and the fully-static executor are driven through
/// the run_timed()/run_fully_static() wrappers below, which install the
/// plan's payload and channel-descriptor hooks into the sim layer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/channel.hpp"
#include "core/spi_backend.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/repetitions.hpp"
#include "dataflow/sdf_schedule.hpp"
#include "dataflow/vts.hpp"
#include "obs/metrics.hpp"
#include "sched/resync.hpp"
#include "sched/sync_graph.hpp"
#include "sim/static_executor.hpp"
#include "sim/timed_executor.hpp"

namespace spi::core {

/// Compile-time plan for one interprocessor dataflow edge. This is the
/// single source of truth for channel descriptors: the functional,
/// threaded and simulated engines all derive their per-channel
/// configuration (including sim::ChannelInfo) from it.
struct ChannelSpec {
  df::EdgeId edge = df::kInvalidEdge;
  std::string name;
  SpiMode mode = SpiMode::kStatic;
  sched::SyncProtocol protocol = sched::SyncProtocol::kUbs;
  std::int64_t b_max_bytes = 0;  ///< max bytes of one message payload
  std::int64_t c_bytes = 0;      ///< equation 1: c_sdf(e) · b_max(e)
  /// Equation 2 (BBS only): statically guaranteed buffer bound.
  std::optional<std::int64_t> bbs_capacity_tokens;
  std::optional<std::int64_t> bbs_capacity_bytes;
  /// Sync-graph edge indices realizing this dataflow edge (>1 when the
  /// HSDF expansion splits a multirate edge across firings).
  std::vector<std::size_t> sync_edges;
  std::size_t acks_total = 0;   ///< UBS ack edges created for this channel
  std::size_t acks_elided = 0;  ///< of those, removed by resynchronization
  /// Token geometry on the VTS-converted edge: bytes of one (packed)
  /// token, bytes of one raw token, tokens per producing firing and
  /// initial tokens. Lets engines size buffers without graph lookups.
  std::int64_t token_bytes = 0;
  std::int64_t raw_token_bytes = 0;
  std::int64_t prod_tokens = 1;
  std::int64_t delay_tokens = 0;
  std::int64_t src_firings_per_iteration = 1;  ///< q[src(e)]
  /// Reliability hook: whether the channel is wrapped by the reliable
  /// transport when a runtime enables it (docs/reliability.md).
  bool reliable = true;

  /// Worst-case payload of one message (prod tokens of token_bytes each).
  [[nodiscard]] std::int64_t payload_bound_bytes() const { return prod_tokens * token_bytes; }
  /// The sim-layer channel descriptor, derived here and nowhere else.
  [[nodiscard]] sim::ChannelInfo channel_info() const {
    return sim::ChannelInfo{edge, mode == SpiMode::kDynamic};
  }
};

/// Historical name, kept so existing callers of SpiSystem::channels()
/// keep compiling; the plan IR superset is the same type.
using ChannelPlan = ChannelSpec;

/// One firing in a processor's per-iteration program: which actor fires,
/// its invocation index within the iteration, and the edge bindings its
/// FiringContext sees.
struct FiringStep {
  df::ActorId actor = df::kInvalidActor;
  std::int32_t invocation = 0;  ///< 0 .. q[actor]-1 within one iteration
  std::vector<df::EdgeId> in_edges;
  std::vector<df::EdgeId> out_edges;
};

/// FNV-1a fingerprints of a plan's compile inputs, stored in the emitted
/// JSON. `topology` covers everything except actor exec times (actor
/// names and count, edges, rates, delays, token geometry, the processor
/// assignment and the sync/resync options); `exec` covers the per-actor
/// exec cycles alone. Incremental recompilation (core/pipeline.hpp)
/// reuses a cached plan's stages when `topology` matches and only `exec`
/// changed; a plan-serving daemon can make the same check without
/// recompiling.
struct PlanFingerprints {
  std::uint64_t topology = 0;
  std::uint64_t exec = 0;
};

/// The compiled, serializable SPI system.
struct ExecutablePlan {
  /// Schema version of the JSON encoding; bumped on breaking changes.
  static constexpr int kSchemaVersion = 1;

  std::string graph_name;       ///< original application graph name
  std::int32_t proc_count = 1;
  SpiCostParams costs;          ///< SPI backend cost parameters
  df::VtsResult vts;            ///< converted pure-SDF graph + per-edge VTS info
  df::Repetitions repetitions;
  df::SequentialSchedule pass;
  std::vector<sched::Proc> proc_of_actor;  ///< actor -> processor
  sched::SyncGraph sync_graph{{}, {}, 1};
  sched::ProcOrder proc_order;
  std::optional<sched::ResyncReport> resync;
  std::vector<ChannelSpec> channels;
  /// programs[p] = processor p's firing sequence for one iteration.
  std::vector<std::vector<FiringStep>> programs;
  /// Iteration message budget: data + surviving ack + resync messages.
  std::size_t messages_per_iteration = 0;
  /// Edge-id -> index into channels (-1 = processor-local edge). Built
  /// once at plan emission; makes channel_for() O(1).
  std::vector<std::int32_t> channel_index;
  /// Input fingerprints for incremental-recompile / cache-match checks.
  PlanFingerprints fingerprints;

  /// Stable identity of this compiled plan: one FNV-1a round over the
  /// schema version and the topology/exec input fingerprints. Two plans
  /// share a content hash exactly when they were compiled from identical
  /// inputs under the same schema — the key the serving layer's
  /// PlanCache deduplicates on, surfaced in the spi_compile report and
  /// in the plan JSON (fingerprints.content). Stable across processes
  /// and serialization round-trips.
  [[nodiscard]] std::uint64_t content_hash() const;
  /// content_hash() as the fixed-width lowercase hex string used in
  /// JSON, reports and cache-lookup requests.
  [[nodiscard]] std::string content_hash_hex() const;

  [[nodiscard]] sched::Proc proc_of(df::ActorId a) const {
    return proc_of_actor.at(static_cast<std::size_t>(a));
  }

  /// O(1) channel lookup; nullptr for processor-local edges.
  [[nodiscard]] const ChannelSpec* find_channel(df::EdgeId edge) const;
  /// Throwing variant (std::out_of_range for non-interprocessor edges).
  [[nodiscard]] const ChannelSpec& channel_for(df::EdgeId edge) const;
  /// Rebuilds channel_index from channels (called by the pipeline's plan
  /// emission and by from_json()).
  void rebuild_channel_index();

  /// The schedule's predicted iteration-period bound: the sync graph's
  /// maximum cycle mean after resynchronization (cycles/iteration, the
  /// spi_plan_resync_mcm_after gauge). The critical-path analyzer
  /// compares a run's realized period against it.
  [[nodiscard]] double predicted_mcm() const {
    return resync ? resync->mcm_after : sync_graph.max_cycle_mean();
  }

  /// Edges the SPI backend treats as dynamic (VTS-converted).
  [[nodiscard]] std::unordered_set<df::EdgeId> dynamic_edges() const;
  /// The SPI cost-model backend configured for this plan's channels.
  [[nodiscard]] std::unique_ptr<SpiBackend> make_backend() const;

  /// Human-readable compilation report (channels, protocols, bounds,
  /// resynchronization summary).
  [[nodiscard]] std::string report() const;

  /// Serializes the whole plan as JSON (round-trip format; see
  /// docs/architecture.md for the field-by-field schema). Deterministic:
  /// the same plan always produces byte-identical output, so emitted
  /// plans can be golden-filed and diffed.
  [[nodiscard]] std::string to_json() const;

  /// Parses a plan previously produced by to_json(). Throws
  /// std::invalid_argument with a descriptive message on malformed input
  /// or schema mismatch. The result passes validate().
  [[nodiscard]] static ExecutablePlan from_json(std::string_view text);

  /// Internal-consistency check (sizes, index maps, message budget).
  /// Throws std::invalid_argument naming the first violated invariant.
  void validate() const;

  /// Publishes the compile-time plan as gauges (spi_plan_*); see
  /// docs/observability.md.
  void publish_metrics(obs::MetricRegistry& registry) const;

  /// Fills null workload hooks with the plan's defaults: worst-case
  /// per-edge payload bytes and the ChannelSpec-derived ChannelInfo
  /// descriptor (the one place sim::ChannelInfo is built from the plan).
  void install_workload_defaults(sim::WorkloadModel& workload) const;
};

/// Runs the timed self-timed platform simulation from a plan.
[[nodiscard]] sim::ExecStats run_timed(const ExecutablePlan& plan,
                                       const sim::CommBackend& backend,
                                       const sim::TimedExecutorOptions& options,
                                       sim::WorkloadModel workload = {});

/// Runs the fully-static (clock-driven) executor from a plan.
[[nodiscard]] sim::StaticRunResult run_fully_static(const ExecutablePlan& plan,
                                                    const sim::CommBackend& backend,
                                                    sim::WorkloadModel wcet,
                                                    sim::WorkloadModel actual,
                                                    const sim::TimedExecutorOptions& options);

}  // namespace spi::core
