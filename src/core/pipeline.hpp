/// \file pipeline.hpp
/// The SPI compile pipeline as explicit, typed stages
/// (docs/architecture.md):
///
///   VtsStage -> ScheduleStage -> SyncStage -> ProtocolStage -> plan_emit
///
/// Each stage function consumes the previous stage's typed result and
/// produces its own; compile_plan() chains them all and returns the
/// serializable ExecutablePlan (core/plan.hpp). SpiSystem is a thin
/// facade over compile_plan() that keeps the historical accessor API.
///
/// Stage boundaries match the paper's structure: VTS conversion
/// (Section 3), repetitions/PASS/HSDF/self-timed order, the IPC and
/// synchronization graph with optional resynchronization (Section 4 and
/// 4.1), and BBS/UBS protocol selection with the equation-1/2 buffer
/// bounds.
#pragma once

#include <optional>
#include <vector>

#include "core/plan.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/repetitions.hpp"
#include "dataflow/sdf_schedule.hpp"
#include "dataflow/vts.hpp"
#include "obs/metrics.hpp"
#include "sched/assignment.hpp"
#include "sched/hsdf.hpp"
#include "sched/resync.hpp"
#include "sched/sync_graph.hpp"

namespace spi::core {

struct SpiSystemOptions {
  bool resynchronize = true;
  sched::ResyncOptions resync;
  sched::SyncGraphOptions sync;
  SpiCostParams costs;
  /// Policy for the sequential PASS the per-processor self-timed orders
  /// are derived from. kFirstFireable follows actor-id order — an
  /// application can shape its processors' schedules (e.g. issue all
  /// sends before any receive) by choosing actor creation order;
  /// kMinBufferDemand greedily minimizes buffer occupancy instead.
  df::SchedulePolicy pass_policy = df::SchedulePolicy::kMinBufferDemand;
  /// Optional observability sink (docs/observability.md). When set, the
  /// pipeline records per-phase wall-clock timings
  /// (`spi_compile_phase_seconds{phase=...}`) and publishes the
  /// plan-level gauges on completion. Not owned; must outlive the
  /// compile.
  obs::MetricRegistry* metrics = nullptr;
};

/// Stage 1 — VTS conversion: dynamic rates become packed rate-1/1 SDF
/// edges with byte bounds (paper Section 3).
struct VtsStage {
  df::VtsResult vts;
};

/// Stage 2 — scheduling analyses on the converted graph: repetitions
/// vector (consistency), sequential PASS (admissibility), HSDF
/// expansion, and the per-processor self-timed firing order.
struct ScheduleStage {
  df::Repetitions repetitions;
  df::SequentialSchedule pass;
  sched::HsdfGraph hsdf;
  sched::ProcOrder proc_order;
};

/// Stage 3 — the IPC/synchronization graph plus the optional
/// resynchronization transformation (paper Sections 4, 4.1).
struct SyncStage {
  sched::SyncGraphBuild build;
  std::optional<sched::ResyncReport> resync;
};

/// Stage 4 — per-channel protocol selection: SPI mode, BBS/UBS,
/// equation-1/2 capacities, token geometry, ack accounting.
struct ProtocolStage {
  std::vector<ChannelSpec> channels;
};

/// Throws std::invalid_argument on inconsistent graphs (repetitions) or
/// deadlock (PASS), like the historical SpiSystem constructor.
[[nodiscard]] VtsStage run_vts_stage(const df::Graph& application,
                                     const SpiSystemOptions& options = {});
[[nodiscard]] ScheduleStage run_schedule_stage(const VtsStage& stage,
                                               const sched::Assignment& assignment,
                                               const SpiSystemOptions& options = {});
[[nodiscard]] SyncStage run_sync_stage(const ScheduleStage& stage,
                                       const sched::Assignment& assignment,
                                       const SpiSystemOptions& options = {});
[[nodiscard]] ProtocolStage run_protocol_stage(const VtsStage& vts, const ScheduleStage& sched,
                                               const SyncStage& sync);

/// Stage 5 — assembles the ExecutablePlan: per-processor firing
/// programs, the O(1) channel index, the iteration message budget and
/// all plan-level metadata. Stages are moved into the plan.
[[nodiscard]] ExecutablePlan plan_emit(const df::Graph& application,
                                       const sched::Assignment& assignment,
                                       const SpiSystemOptions& options, VtsStage vts,
                                       ScheduleStage sched, SyncStage sync,
                                       ProtocolStage protocol);

/// Runs the whole pipeline. Throws std::invalid_argument on a mismatched
/// assignment, an inconsistent graph, or deadlock. When
/// options.metrics is set, records the per-phase and total compile
/// timings and publishes the spi_plan_* gauges.
[[nodiscard]] ExecutablePlan compile_plan(const df::Graph& application,
                                          const sched::Assignment& assignment,
                                          const SpiSystemOptions& options = {});

}  // namespace spi::core
