/// \file pipeline.hpp
/// The SPI compile pipeline as explicit, typed stages
/// (docs/architecture.md):
///
///   VtsStage -> ScheduleStage -> SyncStage -> ProtocolStage -> plan_emit
///
/// Each stage function consumes the previous stage's typed result and
/// produces its own; compile_plan() chains them all and returns the
/// serializable ExecutablePlan (core/plan.hpp). SpiSystem is a thin
/// facade over compile_plan() that keeps the historical accessor API.
///
/// Stage boundaries match the paper's structure: VTS conversion
/// (Section 3), repetitions/PASS/HSDF/self-timed order, the IPC and
/// synchronization graph with optional resynchronization (Section 4 and
/// 4.1), and BBS/UBS protocol selection with the equation-1/2 buffer
/// bounds.
#pragma once

#include <optional>
#include <vector>

#include "core/plan.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/repetitions.hpp"
#include "dataflow/sdf_schedule.hpp"
#include "dataflow/vts.hpp"
#include "obs/metrics.hpp"
#include "sched/assignment.hpp"
#include "sched/hsdf.hpp"
#include "sched/resync.hpp"
#include "sched/sync_graph.hpp"

namespace spi::core {

struct SpiSystemOptions {
  bool resynchronize = true;
  sched::ResyncOptions resync;
  sched::SyncGraphOptions sync;
  SpiCostParams costs;
  /// Policy for the sequential PASS the per-processor self-timed orders
  /// are derived from. kFirstFireable follows actor-id order — an
  /// application can shape its processors' schedules (e.g. issue all
  /// sends before any receive) by choosing actor creation order;
  /// kMinBufferDemand greedily minimizes buffer occupancy instead.
  df::SchedulePolicy pass_policy = df::SchedulePolicy::kMinBufferDemand;
  /// Optional observability sink (docs/observability.md). When set, the
  /// pipeline records per-phase wall-clock timings
  /// (`spi_compile_phase_seconds{phase=...}`) and publishes the
  /// plan-level gauges on completion. Not owned; must outlive the
  /// compile.
  obs::MetricRegistry* metrics = nullptr;
};

/// Stage 1 — VTS conversion: dynamic rates become packed rate-1/1 SDF
/// edges with byte bounds (paper Section 3).
struct VtsStage {
  df::VtsResult vts;
};

/// Stage 2 — scheduling analyses on the converted graph: repetitions
/// vector (consistency), sequential PASS (admissibility), HSDF
/// expansion, and the per-processor self-timed firing order.
struct ScheduleStage {
  df::Repetitions repetitions;
  df::SequentialSchedule pass;
  sched::HsdfGraph hsdf;
  sched::ProcOrder proc_order;
};

/// Stage 3 — the IPC/synchronization graph plus the optional
/// resynchronization transformation (paper Sections 4, 4.1). The trace
/// records the resynchronizer's decision sequence; incremental
/// recompilation replays it instead of re-searching (resync.hpp).
struct SyncStage {
  sched::SyncGraphBuild build;
  std::optional<sched::ResyncReport> resync;
  sched::ResyncTrace trace;
};

/// Stage 4 — per-channel protocol selection: SPI mode, BBS/UBS,
/// equation-1/2 capacities, token geometry, ack accounting.
struct ProtocolStage {
  std::vector<ChannelSpec> channels;
};

/// Throws std::invalid_argument on inconsistent graphs (repetitions) or
/// deadlock (PASS), like the historical SpiSystem constructor.
[[nodiscard]] VtsStage run_vts_stage(const df::Graph& application,
                                     const SpiSystemOptions& options = {});
[[nodiscard]] ScheduleStage run_schedule_stage(const VtsStage& stage,
                                               const sched::Assignment& assignment,
                                               const SpiSystemOptions& options = {});
[[nodiscard]] SyncStage run_sync_stage(const ScheduleStage& stage,
                                       const sched::Assignment& assignment,
                                       const SpiSystemOptions& options = {});
[[nodiscard]] ProtocolStage run_protocol_stage(const VtsStage& vts, const ScheduleStage& sched,
                                               const SyncStage& sync);

/// Stage 5 — assembles the ExecutablePlan: per-processor firing
/// programs, the O(1) channel index, the iteration message budget and
/// all plan-level metadata. Stages are moved into the plan.
[[nodiscard]] ExecutablePlan plan_emit(const df::Graph& application,
                                       const sched::Assignment& assignment,
                                       const SpiSystemOptions& options, VtsStage vts,
                                       ScheduleStage sched, SyncStage sync,
                                       ProtocolStage protocol);

/// Runs the whole pipeline. Throws std::invalid_argument on a mismatched
/// assignment, an inconsistent graph, or deadlock. When
/// options.metrics is set, records the per-phase and total compile
/// timings and publishes the spi_plan_* gauges.
[[nodiscard]] ExecutablePlan compile_plan(const df::Graph& application,
                                          const sched::Assignment& assignment,
                                          const SpiSystemOptions& options = {});

/// Fingerprints of the compile inputs (PlanFingerprints in plan.hpp):
/// `topology` hashes everything a stage other than exec-time analysis
/// depends on — actors, edges, rates, delays, token geometry, processor
/// assignment, sync/resync options; `exec` hashes the per-actor exec
/// cycles alone. FNV-1a, stable across runs.
[[nodiscard]] std::uint64_t topology_fingerprint(const df::Graph& g,
                                                 const sched::Assignment& assignment,
                                                 const SpiSystemOptions& options);
[[nodiscard]] std::uint64_t exec_fingerprint(const df::Graph& g);

/// One actor's new exec-cycles value for IncrementalCompiler::recompile().
struct ExecUpdate {
  df::ActorId actor = df::kInvalidActor;
  std::int64_t exec_cycles = 1;
};

/// Incremental recompilation driver (docs/architecture.md, "Incremental
/// recompilation"). Owns the application graph and the last full
/// compile's plan + resynchronization trace, and re-runs only the stages
/// an edit invalidates:
///
///  * exec-only edits (recompile()) — the common scenario-retune case —
///    reuse VTS, repetitions, PASS, HSDF, the sync-graph structure, the
///    protocol/channel stage and the firing programs wholesale. Only the
///    exec-dependent values are recomputed: task exec times are patched
///    in place, the resynchronizer's recorded decision trace is replayed
///    with the throughput verdicts re-checked against the new exec
///    profile (a few warm policy-iteration solves), and the MCM scalars
///    plus witness cycle are re-derived. The result is byte-identical
///    (to_json) to a from-scratch compile of the edited graph.
///  * when a replayed verdict flips (the edit changed which candidate
///    edges preserve throughput), the fast path is abandoned and a full
///    compile runs — still correct, just not incremental.
///
/// With options.metrics set, recompiles record
/// spi_recompile_phase_seconds{phase=patch_exec|resync_replay} gauges,
/// spi_recompile_total_seconds and spi_recompile_full (1 = fell back).
class IncrementalCompiler {
 public:
  IncrementalCompiler(df::Graph application, sched::Assignment assignment,
                      SpiSystemOptions options = {});

  /// Full staged compile of the current graph; (re)caches the plan and
  /// the resynchronization trace. Same throwing behaviour as
  /// compile_plan().
  const ExecutablePlan& compile();

  /// The last compiled plan; throws std::logic_error before compile().
  [[nodiscard]] const ExecutablePlan& plan() const;

  /// Applies per-actor exec updates and recompiles. Takes the fast path
  /// described above when possible; falls back to compile() when a
  /// resynchronization verdict flips (or nothing is cached yet).
  const ExecutablePlan& recompile(const std::vector<ExecUpdate>& updates);

  /// True when the last recompile() reused the cached stages; false when
  /// it fell back to a full compile.
  [[nodiscard]] bool last_recompile_incremental() const { return last_incremental_; }

  [[nodiscard]] const df::Graph& application() const { return app_; }

 private:
  bool try_incremental();

  df::Graph app_;
  sched::Assignment assignment_;
  SpiSystemOptions options_;
  ExecutablePlan plan_;
  sched::ResyncTrace trace_;
  bool compiled_ = false;
  bool last_incremental_ = false;
};

}  // namespace spi::core
