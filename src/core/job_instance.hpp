/// \file job_instance.hpp
/// Per-job execution state of a compiled plan: channels, firing
/// contexts, worker heartbeats, statistics — everything one run of one
/// plan instance needs, separated from the threads that execute it.
///
/// The execution stack is three layers (docs/serving.md):
///
///   WorkerPool      persistent threads, gang-scheduled (worker_pool.hpp)
///   JobInstance     this file — one plan instance's channels + contexts
///   ThreadedRuntime facade for the classic one-plan/one-runtime API
///                   (threaded_runtime.hpp)
///
/// A JobInstance is built once from an ExecutablePlan and executed many
/// times: `run(pool, options)` borrows plan.programs.size() pool workers
/// as a gang (the pre-serving one-thread-per-processor behavior without
/// the thread churn), while `run_colocated(...)` executes the whole
/// iteration on the *calling* thread by walking the plan's PASS in its
/// admissible sequential order through the very same channels. Dataflow
/// determinacy makes both orders produce bit-identical token streams —
/// the serve layer exploits that to batch many queued jobs into one
/// program traversal without a single cross-thread handoff.
///
/// Instances are isolated: each owns its channel slabs and freelists, so
/// concurrent JobInstances of the same (or different) plans never share
/// a buffer. When several instances feed one MetricRegistry, pass a
/// distinct `label` so their per-channel series do not collide.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/blocking_channel.hpp"
#include "core/functional.hpp"
#include "core/spsc_channel.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime_trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/fault.hpp"

namespace spi::core {

class WorkerPool;

/// Turns the runtime's interprocessor channels into reliable links.
struct ReliabilityOptions {
  bool enabled = false;
  /// Deterministic fault injection on every interprocessor wire. Not
  /// owned; must outlive the runtime. Null = perfect wire (the protocol
  /// still frames, sequences and CRC-checks every message).
  const sim::FaultPlan* faults = nullptr;
  /// Retry/backoff/timeout knobs. When `faults` is set its embedded
  /// retry() policy wins, so one fault-plan file configures everything.
  sim::RetryPolicy retry;

  [[nodiscard]] const sim::RetryPolicy& policy() const {
    return faults ? faults->retry() : retry;
  }
};

/// Which channel implementation plain (non-reliable) IPC edges get.
enum class ChannelPolicy : std::uint8_t {
  kAuto,          ///< lock-free SpscChannel; BlockingChannel only where the
                  ///< reliable protocol demands it (the default)
  kBlockingOnly,  ///< mutex-based BlockingChannel everywhere (the
                  ///< pre-slab behavior; parity tests and fallback)
};

/// Aggregated channel statistics of one run() (see JobInstance::stats).
/// Derived from the registry counters: the difference between their
/// values at run() entry and exit.
struct ThreadedRunStats {
  std::int64_t messages = 0;         ///< interprocessor tokens moved
  std::int64_t payload_bytes = 0;
  std::int64_t producer_blocks = 0;  ///< times a sender hit a full channel
  std::int64_t consumer_blocks = 0;  ///< times a receiver waited for data
  std::int64_t producer_block_micros = 0;  ///< wall-clock µs senders spent blocked
  std::int64_t consumer_block_micros = 0;  ///< wall-clock µs receivers spent blocked
  // Reliability protocol (all zero when reliability is off):
  std::int64_t retries = 0;          ///< retransmissions after a failed attempt
  std::int64_t dropped_frames = 0;   ///< attempts the faulty wire swallowed
  std::int64_t crc_failures = 0;     ///< corrupted frames rejected by the receiver
  std::int64_t duplicates = 0;       ///< stale-sequence frames discarded
  std::int64_t timeouts = 0;         ///< receive deadlines that expired
  std::int64_t backoff_micros = 0;   ///< wall-clock µs senders spent backing off
};

/// Everything one run() needs beyond the iteration count: the live
/// telemetry endpoint and the progress watchdog (docs/observability.md,
/// "Live telemetry"). The plain-iteration overload run(n) is equivalent
/// to run({.iterations = n}).
struct RunOptions {
  std::int64_t iterations = 1;
  /// Cross-iteration pipelining cap (docs/architecture.md): under
  /// run(pool, ...) each worker free-runs into iteration i+1 as soon as
  /// its own channels permit — the eq.-2 channel capacities already bound
  /// the skew in tokens. This caps it in *iterations*: a worker may start
  /// iteration i only once every worker has completed iteration
  /// i - max_inflight_iterations, so at most that many iterations are
  /// ever in flight. 0 (default) = unbounded (capacity-limited only);
  /// 1 = barriered lockstep (every iteration fully drains before the
  /// next starts — the pipelining-off baseline perf gates compare
  /// against). Ignored by run_colocated(), which is sequential.
  std::int64_t max_inflight_iterations = 0;
  /// >= 0: serve /metrics, /metrics.json, /healthz and /runtime on this
  /// TCP port for the duration of the run (0 = kernel-assigned
  /// ephemeral port — see on_obs_start). < 0 (default): no server.
  int obs_port = -1;
  std::string obs_bind = "127.0.0.1";
  /// Called once the telemetry server is listening, with the bound
  /// port (resolves obs_port = 0).
  std::function<void(int)> on_obs_start;
  /// Stall detection (watchdog.enabled). On stall: post-mortems are
  /// dumped, watchdog.on_stall fires, and with abort_on_stall the run
  /// is interrupted and run() throws obs::StallError.
  obs::WatchdogOptions watchdog;
  /// >= 0: bracket this run's flight-recorder stream with
  /// kBatchBegin/kBatchEnd markers carrying this id (seq) and the
  /// iteration count (aux), so the serve layer's request spans can be
  /// matched to their causal firing log (request_trace.hpp).
  std::int64_t batch_id = -1;
};

/// Construction knobs beyond the plan itself.
struct JobInstanceOptions {
  ChannelPolicy policy = ChannelPolicy::kAuto;
  ReliabilityOptions reliability;
  /// Registry receiving the per-channel counters (spi_threaded_* — see
  /// docs/observability.md). Not owned; must outlive the instance.
  /// Null = the instance owns a private registry.
  obs::MetricRegistry* metrics = nullptr;
  /// Extra {"job": label} metric label on every per-channel series.
  /// Mandatory in spirit whenever several instances share a registry —
  /// without it their counters collide on the channel name.
  std::string label;
};

/// One plan instance's complete execution state.
class JobInstance {
 public:
  /// The plan must outlive the instance.
  explicit JobInstance(const ExecutablePlan& plan, JobInstanceOptions options = {});
  JobInstance(const JobInstance&) = delete;
  JobInstance& operator=(const JobInstance&) = delete;

  /// Registers an actor's computation (same contract as
  /// FunctionalRuntime::set_compute; must be called before run()).
  /// Compute functions for actors on different processors run
  /// concurrently under run(pool, ...) — they must not share mutable
  /// state without their own synchronization. Re-registering between
  /// runs is allowed (the serve layer rewires per batch).
  void set_compute(df::ActorId actor, ComputeFn fn);

  /// Attaches a wall-clock trace recorder: every firing is recorded as a
  /// span (tid = processor). Not owned; must outlive run(). Null
  /// detaches.
  void set_trace(obs::RuntimeTraceRecorder* trace) { trace_ = trace; }

  /// Attaches a flight recorder (docs/observability.md). The recorder's
  /// proc_count must cover the plan's. Not owned; must outlive run().
  /// Null detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder);

  /// Runs `options.iterations` graph iterations as a gang of
  /// plan.programs.size() workers borrowed from `pool`, joining the gang
  /// on every exit path. Exceptions thrown by compute functions or by
  /// the reliable transport (sim::ChannelError) are rethrown on the
  /// caller thread (first one wins). stats() is reset on entry and
  /// aggregated on every exit path. Optionally mounts the embedded
  /// telemetry server (options.obs_port) and the progress watchdog
  /// (options.watchdog) for the duration of the run.
  void run(WorkerPool& pool, const RunOptions& options);

  /// Colocated execution: the *calling* thread walks the plan's PASS —
  /// its admissible sequential order — through the same channels, so a
  /// whole batch of iterations executes with zero cross-thread traffic.
  /// Admissibility guarantees no channel operation ever waits. Same
  /// watchdog/stats/error semantics as run(); the embedded telemetry
  /// server is also honored (a serving daemon normally mounts its own
  /// HTTP front instead and leaves obs_port negative).
  void run_colocated(const RunOptions& options);
  void run_colocated(std::int64_t iterations);

  /// Resets the per-actor invocation counters that feed
  /// FiringContext::invocation. The classic runtime never calls this
  /// (invocations stay cumulative across runs); the serve layer resets
  /// per batch so computes can index batch inputs by invocation.
  void reset_invocations();

  /// The current per-worker heartbeat/state snapshot (relaxed reads of
  /// the workers' published atomics; meaningful during and after run()).
  [[nodiscard]] std::vector<obs::WorkerSnapshot> worker_snapshots() const;

  /// The /runtime endpoint body: graph identity, per-worker state and
  /// per-channel depth / high-watermark vs. capacity. Valid strict JSON.
  /// Callable from any thread while run() executes.
  [[nodiscard]] std::string runtime_status_json() const;

  /// Pushes every channel's current depth and high watermark into the
  /// spi_channel_* gauges (called by the server before each scrape;
  /// callable manually for registry-only consumers).
  void refresh_channel_gauges();

  /// Aggregated channel statistics of the last run() (partial if it
  /// threw).
  [[nodiscard]] const ThreadedRunStats& stats() const { return stats_; }

  /// Wall-clock nanoseconds the last completed run() / run_colocated()
  /// spent inside plan execution (gang or colocated walk), excluding
  /// watchdog/server mount and stats aggregation. The serve layer's
  /// exec-stage spans should closely bound this.
  [[nodiscard]] std::int64_t last_run_ns() const { return last_run_ns_; }

  [[nodiscard]] const ReliabilityOptions& reliability() const { return reliability_; }
  [[nodiscard]] ChannelPolicy channel_policy() const { return policy_; }
  /// How many IPC edges ride the lock-free SPSC path.
  [[nodiscard]] std::int64_t spsc_channel_count() const { return spsc_count_; }
  [[nodiscard]] const ExecutablePlan& plan() const { return plan_; }
  /// Workers a gang run needs (= the plan's processor count).
  [[nodiscard]] std::size_t proc_count() const { return worker_count_; }
  [[nodiscard]] const std::string& label() const { return label_; }

  /// Bytes of channel buffering this instance keeps resident — the sum
  /// of every channel's slab (equation-2/credit-window capacity × frame
  /// bound). This is the quantity the serve layer's AdmissionController
  /// budgets; computed from the plan alone so admission can reject
  /// *before* construction.
  [[nodiscard]] std::int64_t resident_bytes() const { return resident_channel_bytes(plan_); }
  [[nodiscard]] static std::int64_t resident_channel_bytes(const ExecutablePlan& plan);

  /// The registry the channel counters live in (the caller-provided one,
  /// or the instance's own). Counters are cumulative across runs and
  /// include initial-token placement at construction.
  [[nodiscard]] obs::MetricRegistry& metrics() { return *registry_; }
  [[nodiscard]] const obs::MetricRegistry& metrics() const { return *registry_; }

 private:
  /// Per-worker published state, one cache line per worker so heartbeat
  /// stores never contend: the worker writes with relaxed stores (the
  /// only hot-path cost), the watchdog/scrape threads read with relaxed
  /// loads. Approximate across fields by design — liveness needs only
  /// "does the epoch ever change".
  struct alignas(64) WorkerState {
    std::atomic<std::uint64_t> epoch{0};        ///< firings completed
    std::atomic<std::int64_t> iteration{0};
    std::atomic<std::int64_t> completed{0};     ///< graph iterations finished
    std::atomic<std::int32_t> step{-1};
    std::atomic<std::int32_t> actor{-1};        ///< -1 between firings
    std::atomic<std::int32_t> waiting_edge{-1}; ///< channel op in progress
    std::atomic<std::int32_t> waiting_side{-1}; ///< 0 consume / 1 produce
    std::atomic<bool> done{false};
  };

  void init();
  void interrupt_all();
  /// Smallest completed-iteration count over all workers — the floor of
  /// the pipelining window (relaxed reads; callers that need wake-up
  /// ordering hold inflight_mutex_).
  [[nodiscard]] std::int64_t min_completed_iterations() const;
  /// Parks the calling worker until iteration `iter` fits inside the
  /// run's in-flight cap (run_inflight_cap_); returns false when the run
  /// aborted while waiting. No-op when the cap is 0 (unbounded).
  [[nodiscard]] bool await_inflight_slot(std::int64_t iter);
  /// Shared run prologue/epilogue (abort/error/stats/heartbeat reset,
  /// watchdog + telemetry mounts, error rethrow) around `execute`,
  /// which must leave every worker body finished on every exit path.
  void run_with(const RunOptions& options, const std::function<void()>& execute);
  void worker(std::int32_t proc, std::int64_t iterations);
  /// The colocated worker body: PASS order, one thread, all procs.
  void colocated_body(std::int64_t iterations);
  void fire(const FiringStep& step, FiringContext& ctx, std::int32_t proc,
            std::int64_t iteration, WorkerState& ws);
  [[nodiscard]] ThreadedRunStats counter_totals() const;
  /// Writes the flight recorder's post-mortem dump when the pending
  /// first_error_ is a sim::ChannelError (recorder's postmortem_path
  /// verbatim) or an obs::StallError (same path with ".stall-<kind>"
  /// inserted before the extension) and a dump path is configured.
  void maybe_dump_flight_postmortem();
  /// Monitor-thread stall handling: writes the report + /runtime
  /// snapshot into dump_dir, dumps the flight log for non-aborting
  /// watchdogs, and on abort_on_stall records StallError and
  /// interrupts the workers.
  void handle_stall(const obs::StallReport& report, const obs::WatchdogOptions& options);
  [[nodiscard]] std::string actor_display_name(std::int32_t actor) const;
  [[nodiscard]] std::string channel_display_name(std::int32_t edge) const;

  const ExecutablePlan& plan_;
  const df::Graph& graph_;  ///< the VTS-converted graph
  ReliabilityOptions reliability_;
  ChannelPolicy policy_ = ChannelPolicy::kAuto;
  std::string label_;
  std::unique_ptr<obs::MetricRegistry> owned_registry_;  ///< when none was provided
  obs::MetricRegistry* registry_ = nullptr;
  obs::RuntimeTraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::vector<ComputeFn> compute_;
  /// Per-edge local FIFOs (touched only by the owning processor's
  /// thread) and cross-processor channels, all indexed by edge id.
  /// Exactly one of spsc_/blocking_ is non-null for an IPC edge; both
  /// null = processor-local edge. Direct indexing keeps the per-token
  /// hot path free of map lookups.
  std::vector<std::deque<Bytes>> local_fifo_;
  std::vector<std::unique_ptr<SpscChannel>> spsc_;
  std::vector<std::unique_ptr<BlockingChannel>> blocking_;
  std::int64_t spsc_count_ = 0;
  /// Per-edge message counters for the per-firing batch increments
  /// (indexed by edge id; null entries = local edge or reliable channel,
  /// which counts for itself).
  std::vector<obs::Counter*> edge_messages_;
  std::vector<obs::Counter*> edge_payload_bytes_;
  std::vector<ChannelCounters> channel_counters_;  ///< for stats aggregation
  /// Per-(proc, step) firing contexts, built once and reused every
  /// iteration so input/output buffers keep their heap capacity —
  /// steady-state firings allocate nothing on the channel path. Each
  /// context is touched only by its processor's thread.
  std::vector<std::vector<FiringContext>> contexts_;
  std::vector<std::int64_t> fired_;  ///< per actor, owned by its processor's thread
  /// The PASS as (proc, step) pairs — the colocated traversal order.
  /// Each processor's program is a subsequence, so the heartbeat and
  /// context bookkeeping is shared with the gang path.
  std::vector<std::pair<std::int32_t, std::int32_t>> colocated_order_;
  /// Heartbeat/wait state, one aligned slot per worker (see
  /// WorkerState). Allocated once in init(); reset at run() entry.
  std::unique_ptr<WorkerState[]> worker_state_;
  std::size_t worker_count_ = 0;
  std::vector<std::uint64_t> colocated_epochs_;  ///< per-proc scratch
  /// Depth/watermark gauges per plan channel (indexed like
  /// channel_counters_), refreshed on scrape — never on the hot path.
  std::vector<obs::Gauge*> depth_gauges_;
  std::vector<obs::Gauge*> watermark_gauges_;
  std::int64_t run_iterations_ = 0;  ///< written before workers/server start
  std::int64_t run_inflight_cap_ = 0;  ///< this run's max_inflight_iterations
  std::int64_t last_run_ns_ = 0;     ///< wall time of the last completed run
  /// Eventcount for the in-flight cap: workers that would exceed the cap
  /// park here; every completed iteration (and any abort) notifies. Only
  /// touched when run_inflight_cap_ > 0 — the unbounded default never
  /// takes the lock.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> abort_{false};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  ThreadedRunStats stats_;
};

}  // namespace spi::core
