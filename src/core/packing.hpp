/// \file packing.hpp
/// VTS runtime: packing raw tokens into variable-size packed tokens.
///
/// The dataflow-level VTS conversion (dataflow/vts.hpp) declares that a
/// dynamic port moves exactly one *packed* token per firing. This class
/// is the runtime half: the sending SPI actor packs the firing's raw
/// tokens (a run-time-varying count, bounded by the port's rate bound)
/// into one contiguous packed token, and the receiving actor splits it
/// back. Exceeding the declared bound is a hard error — the static
/// buffer allocation of equation 1 depends on it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/message.hpp"

namespace spi::core {

class TokenPacker {
 public:
  /// \param raw_token_bytes  size of one raw (unpacked) token
  /// \param max_raw_tokens   the port's dynamic-rate upper bound
  TokenPacker(std::int64_t raw_token_bytes, std::int64_t max_raw_tokens);

  [[nodiscard]] std::int64_t raw_token_bytes() const { return raw_token_bytes_; }
  [[nodiscard]] std::int64_t max_raw_tokens() const { return max_raw_tokens_; }
  /// b_max of equation 1.
  [[nodiscard]] std::int64_t max_packed_bytes() const {
    return raw_token_bytes_ * max_raw_tokens_;
  }

  /// Packs `count` raw tokens (concatenated in `raw`, each raw_token_bytes
  /// long) into one packed token. Throws std::length_error when count
  /// exceeds the declared bound and std::invalid_argument on size
  /// mismatch. count == 0 yields an empty packed token (a legal dynamic
  /// firing that transfers no data).
  [[nodiscard]] Bytes pack(std::span<const std::uint8_t> raw, std::int64_t count) const;

  /// Packs directly into a caller-provided buffer (e.g. an SpscChannel
  /// slot span) and returns the packed size — the zero-allocation
  /// counterpart of pack(). Same validation; additionally throws
  /// std::length_error when `dest` is smaller than the packed token.
  std::size_t pack_into(std::span<const std::uint8_t> raw, std::int64_t count,
                        std::span<std::uint8_t> dest) const;

  /// Splits a packed token back into raw tokens. Validates that the
  /// packed size is a whole number of raw tokens within the bound.
  [[nodiscard]] std::vector<Bytes> unpack(std::span<const std::uint8_t> packed) const;

  /// Raw-token count carried by a packed token of `packed_bytes`.
  [[nodiscard]] std::int64_t count_of(std::int64_t packed_bytes) const;

 private:
  std::int64_t raw_token_bytes_;
  std::int64_t max_raw_tokens_;
};

}  // namespace spi::core
