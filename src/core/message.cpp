#include "core/message.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace spi::core {

namespace {

constexpr std::uint8_t kDelimiter = 0x7E;
constexpr std::uint8_t kEscape = 0x7D;
constexpr std::uint8_t kEscapeXor = 0x20;

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

void put_u32_at(std::span<std::uint8_t> out, std::size_t offset, std::uint32_t v) {
  out[offset] = static_cast<std::uint8_t>(v & 0xFF);
  out[offset + 1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  out[offset + 2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  out[offset + 3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t offset) {
  if (offset + 4 > in.size()) throw std::runtime_error("SPI message: truncated header");
  return static_cast<std::uint32_t>(in[offset]) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 3]) << 24);
}

}  // namespace

Bytes encode_static(df::EdgeId edge, std::span<const std::uint8_t> payload) {
  if (edge < 0) throw std::invalid_argument("encode_static: invalid edge id");
  Bytes wire;
  wire.reserve(kStaticHeaderBytes + payload.size());
  put_u32(wire, static_cast<std::uint32_t>(edge));
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

Message decode_static(std::span<const std::uint8_t> wire, std::int64_t expected_payload) {
  Message m;
  m.edge = static_cast<df::EdgeId>(get_u32(wire, 0));
  const std::size_t payload_size = wire.size() - static_cast<std::size_t>(kStaticHeaderBytes);
  if (payload_size != static_cast<std::size_t>(expected_payload))
    throw std::runtime_error("decode_static: payload length mismatch (framing error)");
  m.payload.assign(wire.begin() + kStaticHeaderBytes, wire.end());
  return m;
}

Bytes encode_dynamic(df::EdgeId edge, std::span<const std::uint8_t> payload) {
  if (edge < 0) throw std::invalid_argument("encode_dynamic: invalid edge id");
  Bytes wire;
  wire.reserve(kDynamicHeaderBytes + payload.size());
  put_u32(wire, static_cast<std::uint32_t>(edge));
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  return wire;
}

std::size_t encode_static_into(df::EdgeId edge, std::span<const std::uint8_t> payload,
                               std::span<std::uint8_t> dest) {
  if (edge < 0) throw std::invalid_argument("encode_static_into: invalid edge id");
  const std::size_t wire_size = static_cast<std::size_t>(kStaticHeaderBytes) + payload.size();
  if (dest.size() < wire_size)
    throw std::length_error("encode_static_into: destination too small for the frame");
  put_u32_at(dest, 0, static_cast<std::uint32_t>(edge));
  if (!payload.empty())
    std::copy(payload.begin(), payload.end(), dest.begin() + kStaticHeaderBytes);
  return wire_size;
}

std::size_t encode_dynamic_into(df::EdgeId edge, std::span<const std::uint8_t> payload,
                                std::span<std::uint8_t> dest) {
  if (edge < 0) throw std::invalid_argument("encode_dynamic_into: invalid edge id");
  const std::size_t wire_size = static_cast<std::size_t>(kDynamicHeaderBytes) + payload.size();
  if (dest.size() < wire_size)
    throw std::length_error("encode_dynamic_into: destination too small for the frame");
  put_u32_at(dest, 0, static_cast<std::uint32_t>(edge));
  put_u32_at(dest, 4, static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty())
    std::copy(payload.begin(), payload.end(), dest.begin() + kDynamicHeaderBytes);
  return wire_size;
}

Message decode_dynamic(std::span<const std::uint8_t> wire) {
  Message m;
  m.edge = static_cast<df::EdgeId>(get_u32(wire, 0));
  const std::uint32_t size = get_u32(wire, 4);
  if (wire.size() != static_cast<std::size_t>(kDynamicHeaderBytes) + size)
    throw std::runtime_error("decode_dynamic: size header disagrees with wire length");
  m.payload.assign(wire.begin() + kDynamicHeaderBytes, wire.end());
  return m;
}

Bytes encode_delimited(df::EdgeId edge, std::span<const std::uint8_t> payload) {
  if (edge < 0) throw std::invalid_argument("encode_delimited: invalid edge id");
  Bytes wire;
  wire.reserve(kStaticHeaderBytes + payload.size() + 1);
  put_u32(wire, static_cast<std::uint32_t>(edge));
  for (std::uint8_t b : payload) {
    if (b == kDelimiter || b == kEscape) {
      wire.push_back(kEscape);
      wire.push_back(b ^ kEscapeXor);
    } else {
      wire.push_back(b);
    }
  }
  wire.push_back(kDelimiter);
  return wire;
}

Message decode_delimited(std::span<const std::uint8_t> wire, std::int64_t* scan_cost) {
  Message m;
  m.edge = static_cast<df::EdgeId>(get_u32(wire, 0));
  std::int64_t scanned = 0;
  bool escaped = false;
  bool terminated = false;
  for (std::size_t i = kStaticHeaderBytes; i < wire.size(); ++i) {
    ++scanned;  // the receiver must inspect every byte to find the frame end
    const std::uint8_t b = wire[i];
    if (escaped) {
      m.payload.push_back(b ^ kEscapeXor);
      escaped = false;
    } else if (b == kEscape) {
      escaped = true;
    } else if (b == kDelimiter) {
      terminated = true;
      if (i + 1 != wire.size())
        throw std::runtime_error("decode_delimited: trailing bytes after delimiter");
      break;
    } else {
      m.payload.push_back(b);
    }
  }
  if (!terminated || escaped)
    throw std::runtime_error("decode_delimited: unterminated frame");
  if (scan_cost) *scan_cost = scanned;
  return m;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  // Table computed once (IEEE 802.3 reflected polynomial 0xEDB88320).
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t b : data) crc = table[(crc ^ b) & 0xFFU] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFU;
}

Bytes encode_checked(df::EdgeId edge, std::span<const std::uint8_t> payload) {
  Bytes wire = encode_dynamic(edge, payload);
  put_u32(wire, crc32(payload));
  return wire;
}

Message decode_checked(std::span<const std::uint8_t> wire) {
  if (wire.size() < static_cast<std::size_t>(kCheckedHeaderBytes))
    throw std::runtime_error("decode_checked: truncated frame");
  const std::uint32_t stored = get_u32(wire, wire.size() - 4);
  Message m = decode_dynamic(wire.first(wire.size() - 4));
  if (crc32(m.payload) != stored)
    throw std::runtime_error("decode_checked: CRC mismatch (payload corrupted)");
  return m;
}

}  // namespace spi::core
