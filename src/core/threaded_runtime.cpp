#include "core/threaded_runtime.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace spi::core {

namespace {

/// Internal unwind signal when another worker failed.
struct Aborted : std::runtime_error {
  Aborted() : std::runtime_error("ThreadedRuntime: aborted") {}
};

void sleep_us(std::int64_t micros) {
  if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace

ThreadedRuntime::BlockingChannel::BlockingChannel(df::EdgeId edge, std::size_t capacity_tokens,
                                                  std::atomic<bool>& abort,
                                                  ChannelCounters counters)
    : edge_(edge), capacity_(capacity_tokens), abort_(abort), counters_(counters) {}

void ThreadedRuntime::BlockingChannel::enable_reliability(const sim::FaultPlan* plan,
                                                          const sim::RetryPolicy& policy) {
  policy_ = &policy;
  sender_ = std::make_unique<ReliableSender>(edge_, plan, policy);
  receiver_ = std::make_unique<ReliableReceiver>(edge_);
}

void ThreadedRuntime::BlockingChannel::enqueue(Bytes frame, const FlightCtx* flight) {
  std::unique_lock lock(mutex_);
  if (queue_.size() >= capacity_) {
    counters_.producer_blocks->inc();
    if (flight)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockBegin, flight->actor,
                               edge_, send_seq_, flight->iteration, /*aux=*/1);
    const std::int64_t t0 = obs::monotonic_ns();
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || abort_.load(); });
    counters_.producer_block_micros->inc((obs::monotonic_ns() - t0) / 1000);
    if (flight)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockEnd, flight->actor,
                               edge_, send_seq_, flight->iteration, /*aux=*/1);
  }
  if (abort_.load()) throw Aborted{};
  queue_.push_back(std::move(frame));
  not_empty_.notify_one();
}

Bytes ThreadedRuntime::BlockingChannel::dequeue(const FlightCtx* flight) {
  std::unique_lock lock(mutex_);
  if (queue_.empty()) {
    counters_.consumer_blocks->inc();
    if (flight)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockBegin, flight->actor,
                               edge_, recv_seq_, flight->iteration, /*aux=*/0);
    const std::int64_t t0 = obs::monotonic_ns();
    if (policy_) {
      // Reliable mode: an empty channel past the deadline means the
      // peer is lost (or the wire eats everything) — degrade with a
      // typed error instead of hanging the worker forever.
      const bool signaled =
          not_empty_.wait_for(lock, std::chrono::microseconds(policy_->timeout_us),
                              [&] { return !queue_.empty() || abort_.load(); });
      counters_.consumer_block_micros->inc((obs::monotonic_ns() - t0) / 1000);
      if (!signaled) {
        counters_.timeouts->inc();
        throw sim::ChannelError(sim::ChannelErrorKind::kReceiveTimeout, edge_, 0,
                                "no frame within " + std::to_string(policy_->timeout_us) +
                                    "us");
      }
    } else {
      not_empty_.wait(lock, [&] { return !queue_.empty() || abort_.load(); });
      counters_.consumer_block_micros->inc((obs::monotonic_ns() - t0) / 1000);
    }
    if (flight)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kBlockEnd, flight->actor,
                               edge_, recv_seq_, flight->iteration, /*aux=*/0);
  }
  if (abort_.load() && queue_.empty()) throw Aborted{};
  Bytes frame = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return frame;
}

void ThreadedRuntime::BlockingChannel::execute(const TransmitScript& script,
                                               std::int64_t payload_bytes,
                                               const FlightCtx* flight) {
  for (const TransmitStep& step : script.steps) {
    sleep_us(step.delay_us);
    if (!step.dropped()) {
      enqueue(step.frame, flight);
      if (step.duplicate) enqueue(step.frame, flight);
    }
    if (step.backoff_us > 0) {
      sleep_us(step.backoff_us);
      counters_.backoff_histogram->observe(static_cast<double>(step.backoff_us));
    }
  }
  if (script.retries() > 0) {
    counters_.retries->inc(script.retries());
    if (flight)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kRetry, flight->actor, edge_,
                               script.retries(), flight->iteration);
  }
  if (script.dropped > 0) counters_.dropped_frames->inc(script.dropped);
  if (script.total_backoff_us > 0) counters_.backoff_micros->inc(script.total_backoff_us);
  if (!script.delivered) {
    counters_.send_failures->inc();
    throw sim::ChannelError(sim::ChannelErrorKind::kRetriesExhausted, edge_, script.attempts(),
                            "every transmission dropped or corrupted");
  }
  counters_.messages->inc();
  counters_.payload_bytes->inc(payload_bytes);
}

void ThreadedRuntime::BlockingChannel::push(Bytes token, const FlightCtx* flight) {
  const auto payload_bytes = static_cast<std::int64_t>(token.size());
  if (!sender_) {
    counters_.messages->inc();
    counters_.payload_bytes->inc(payload_bytes);
    enqueue(std::move(token), flight);
  } else {
    execute(sender_->plan_transmit(token), payload_bytes, flight);
  }
  if (flight) {
    // The token is now visible to the receiver: this is the causal
    // send edge the analyzer matches a consumer's wait against.
    flight->recorder->record(flight->proc, obs::FlightEventKind::kSend, flight->actor, edge_,
                             send_seq_, flight->iteration, /*aux=*/0);
  }
  ++send_seq_;
}

void ThreadedRuntime::BlockingChannel::push_faultless(Bytes token) {
  if (!sender_) {
    push(std::move(token));
    return;
  }
  const auto payload_bytes = static_cast<std::int64_t>(token.size());
  execute(sender_->plan_transmit_faultless(token), payload_bytes, nullptr);
  ++send_seq_;
}

Bytes ThreadedRuntime::BlockingChannel::pop(const FlightCtx* flight) {
  if (!receiver_) {
    Bytes token = dequeue(flight);
    if (flight)
      flight->recorder->record(flight->proc, obs::FlightEventKind::kReceive, flight->actor,
                               edge_, recv_seq_, flight->iteration, /*aux=*/0);
    ++recv_seq_;
    return token;
  }
  for (;;) {
    const Bytes frame = dequeue(flight);
    ReliableReceiver::Result result = receiver_->accept(frame);
    switch (result.verdict) {
      case ReliableReceiver::Verdict::kAccept:
        if (flight)
          flight->recorder->record(flight->proc, obs::FlightEventKind::kReceive, flight->actor,
                                   edge_, recv_seq_, flight->iteration, /*aux=*/0);
        ++recv_seq_;
        return std::move(result.payload);
      case ReliableReceiver::Verdict::kCorrupt:
        counters_.crc_failures->inc();
        break;  // the sender already scheduled a retransmission
      case ReliableReceiver::Verdict::kDuplicate:
        counters_.duplicates->inc();
        break;
    }
  }
}

void ThreadedRuntime::BlockingChannel::interrupt() {
  std::lock_guard lock(mutex_);
  not_full_.notify_all();
  not_empty_.notify_all();
}

ThreadedRuntime::ThreadedRuntime(const ExecutablePlan& plan, obs::MetricRegistry* metrics)
    : ThreadedRuntime(plan, ReliabilityOptions{}, metrics) {}

ThreadedRuntime::ThreadedRuntime(const ExecutablePlan& plan, ReliabilityOptions reliability,
                                 obs::MetricRegistry* metrics)
    : plan_(plan),
      graph_(plan.vts.graph),
      reliability_(reliability),
      owned_registry_(metrics ? nullptr : std::make_unique<obs::MetricRegistry>()),
      registry_(metrics ? metrics : owned_registry_.get()),
      compute_(graph_.actor_count()),
      local_fifo_(graph_.edge_count()),
      channels_(graph_.edge_count()),
      fired_(graph_.actor_count(), 0) {
  if (reliability_.enabled) reliability_.policy().validate();
  init();
}

void ThreadedRuntime::init() {
  // Bounded channels for every interprocessor edge. Capacity: the BBS
  // bound (equation 2, converted to tokens) or the UBS credit window,
  // plus the edge's initial tokens.
  for (const ChannelSpec& spec : plan_.channels) {
    const std::int64_t per_iter = spec.prod_tokens * spec.src_firings_per_iteration;
    const std::int64_t window = spec.bbs_capacity_tokens.value_or(1);
    const std::int64_t capacity = window * per_iter + spec.delay_tokens;

    const obs::Labels labels{{"channel", spec.name}};
    ChannelCounters counters;
    counters.messages = &registry_->counter(
        "spi_threaded_messages_total", labels,
        "Interprocessor tokens moved through one blocking SPI channel");
    counters.payload_bytes = &registry_->counter(
        "spi_threaded_payload_bytes_total", labels,
        "Payload bytes moved through one blocking SPI channel");
    counters.producer_blocks =
        &registry_->counter("spi_threaded_producer_blocks_total", labels,
                            "Times a sender hit the channel's capacity and waited");
    counters.consumer_blocks =
        &registry_->counter("spi_threaded_consumer_blocks_total", labels,
                            "Times a receiver found the channel empty and waited");
    counters.producer_block_micros =
        &registry_->counter("spi_threaded_producer_block_micros_total", labels,
                            "Wall-clock microseconds senders spent blocked on the channel");
    counters.consumer_block_micros =
        &registry_->counter("spi_threaded_consumer_block_micros_total", labels,
                            "Wall-clock microseconds receivers spent blocked on the channel");
    if (reliability_.enabled) {
      counters.retries = &registry_->counter(
          "spi_reliable_retries_total", labels,
          "Retransmissions after a dropped or corrupted attempt");
      counters.dropped_frames = &registry_->counter(
          "spi_reliable_dropped_frames_total", labels,
          "Transmission attempts the faulty wire swallowed");
      counters.crc_failures = &registry_->counter(
          "spi_reliable_crc_failures_total", labels,
          "Frames the receiver rejected on CRC or framing");
      counters.duplicates = &registry_->counter(
          "spi_reliable_duplicates_total", labels,
          "Stale-sequence frames the receiver discarded");
      counters.timeouts = &registry_->counter(
          "spi_reliable_timeouts_total", labels,
          "Receive deadlines that expired on an empty channel");
      counters.send_failures = &registry_->counter(
          "spi_reliable_send_failures_total", labels,
          "Messages whose retry budget was exhausted (typed failure)");
      counters.backoff_micros = &registry_->counter(
          "spi_reliable_backoff_micros_total", labels,
          "Wall-clock microseconds senders spent in retry backoff");
      counters.backoff_histogram = &registry_->histogram(
          "spi_reliable_backoff_micros", obs::Histogram::exponential_bounds(50.0, 2.0, 10),
          labels, "Distribution of individual retry backoff pauses (microseconds)");
    }
    channel_counters_.push_back(counters);

    auto channel = std::make_unique<BlockingChannel>(
        spec.edge, static_cast<std::size_t>(std::max<std::int64_t>(1, capacity)), abort_,
        counters);
    if (reliability_.enabled && spec.reliable)
      channel->enable_reliability(reliability_.faults, reliability_.policy());
    channels_[static_cast<std::size_t>(spec.edge)] = std::move(channel);
  }

  // Initial tokens. Placed through the faultless path: delay tokens are
  // part of the compiled system, not traffic the fault plan may eat.
  for (std::size_t i = 0; i < graph_.edge_count(); ++i) {
    const df::Edge& e = graph_.edge(static_cast<df::EdgeId>(i));
    const bool dynamic = plan_.vts.edges[i].converted;
    for (std::int64_t d = 0; d < e.delay; ++d) {
      Bytes token = dynamic ? Bytes{} : Bytes(static_cast<std::size_t>(e.token_bytes), 0);
      if (channels_[i])
        channels_[i]->push_faultless(std::move(token));
      else
        local_fifo_[i].push_back(std::move(token));
    }
  }
}

void ThreadedRuntime::interrupt_all() {
  for (auto& channel : channels_)
    if (channel) channel->interrupt();
}

void ThreadedRuntime::set_compute(df::ActorId actor, ComputeFn fn) {
  compute_.at(static_cast<std::size_t>(actor)) = std::move(fn);
}

void ThreadedRuntime::set_flight_recorder(obs::FlightRecorder* recorder) {
  flight_ = recorder;
  if (!flight_) return;
  if (flight_->proc_count() < static_cast<std::int32_t>(plan_.programs.size()))
    throw std::invalid_argument("ThreadedRuntime: flight recorder has fewer rings than procs");
  std::vector<std::string> actor_names(graph_.actor_count());
  for (std::size_t a = 0; a < graph_.actor_count(); ++a)
    actor_names[a] = graph_.actor(static_cast<df::ActorId>(a)).name;
  std::vector<std::string> edge_names(graph_.edge_count());
  for (std::size_t i = 0; i < graph_.edge_count(); ++i)
    edge_names[i] = graph_.edge(static_cast<df::EdgeId>(i)).name;
  for (const ChannelSpec& spec : plan_.channels)
    if (spec.edge >= 0 && static_cast<std::size_t>(spec.edge) < edge_names.size())
      edge_names[static_cast<std::size_t>(spec.edge)] = spec.name;
  flight_->set_names(std::move(actor_names), std::move(edge_names));
}

ThreadedRunStats ThreadedRuntime::counter_totals() const {
  ThreadedRunStats totals;
  for (const ChannelCounters& c : channel_counters_) {
    totals.messages += c.messages->value();
    totals.payload_bytes += c.payload_bytes->value();
    totals.producer_blocks += c.producer_blocks->value();
    totals.consumer_blocks += c.consumer_blocks->value();
    totals.producer_block_micros += c.producer_block_micros->value();
    totals.consumer_block_micros += c.consumer_block_micros->value();
    if (c.retries) {
      totals.retries += c.retries->value();
      totals.dropped_frames += c.dropped_frames->value();
      totals.crc_failures += c.crc_failures->value();
      totals.duplicates += c.duplicates->value();
      totals.timeouts += c.timeouts->value();
      totals.backoff_micros += c.backoff_micros->value();
    }
  }
  return totals;
}

void ThreadedRuntime::fire(const FiringStep& step, std::int32_t proc, std::int64_t iteration) {
  const df::ActorId actor = step.actor;
  const auto a = static_cast<std::size_t>(actor);
  const std::int64_t span_start_us = trace_ ? trace_->now_us() : 0;
  const FlightCtx flight_ctx{flight_, proc, actor, iteration};
  const FlightCtx* flight = flight_ ? &flight_ctx : nullptr;
  if (flight)
    flight_->record(proc, obs::FlightEventKind::kFireBegin, actor, -1, 0, iteration);
  FiringContext ctx;
  ctx.actor = actor;
  ctx.invocation = fired_[a]++;
  ctx.in_edges = step.in_edges;
  ctx.out_edges = step.out_edges;

  ctx.inputs.resize(ctx.in_edges.size());
  for (std::size_t i = 0; i < ctx.in_edges.size(); ++i) {
    const df::EdgeId eid = ctx.in_edges[i];
    const df::Edge& e = graph_.edge(eid);
    BlockingChannel* channel = channels_[static_cast<std::size_t>(eid)].get();
    ctx.inputs[i].reserve(static_cast<std::size_t>(e.cons.value()));
    for (std::int64_t t = 0; t < e.cons.value(); ++t) {
      if (channel) {
        ctx.inputs[i].push_back(channel->pop(flight));
      } else {
        auto& fifo = local_fifo_[static_cast<std::size_t>(eid)];
        if (fifo.empty())
          throw std::logic_error("ThreadedRuntime: local token underflow on " + e.name);
        ctx.inputs[i].push_back(std::move(fifo.front()));
        fifo.pop_front();
      }
    }
  }

  ctx.outputs.resize(ctx.out_edges.size());
  if (compute_[a]) {
    compute_[a](ctx);
  } else {
    for (std::size_t i = 0; i < ctx.out_edges.size(); ++i) {
      const df::Edge& e = graph_.edge(ctx.out_edges[i]);
      for (std::int64_t t = 0; t < e.prod.value(); ++t)
        ctx.outputs[i].emplace_back(static_cast<std::size_t>(e.token_bytes), 0);
    }
  }

  for (std::size_t i = 0; i < ctx.out_edges.size(); ++i) {
    const df::EdgeId eid = ctx.out_edges[i];
    const df::Edge& e = graph_.edge(eid);
    const df::VtsEdgeInfo& info = plan_.vts.edges[static_cast<std::size_t>(eid)];
    if (static_cast<std::int64_t>(ctx.outputs[i].size()) != e.prod.value())
      throw std::logic_error("ThreadedRuntime: wrong token count on " + e.name);
    BlockingChannel* channel = channels_[static_cast<std::size_t>(eid)].get();
    for (Bytes& token : ctx.outputs[i]) {
      if (info.converted && static_cast<std::int64_t>(token.size()) > info.b_max_bytes)
        throw std::length_error("ThreadedRuntime: packed token exceeds b_max on " + e.name);
      if (channel)
        channel->push(std::move(token), flight);
      else
        local_fifo_[static_cast<std::size_t>(eid)].push_back(std::move(token));
    }
  }

  if (flight)
    flight_->record(proc, obs::FlightEventKind::kFireEnd, actor, -1, 0, iteration);
  if (trace_)
    trace_->record({graph_.actor(actor).name, "firing", proc, span_start_us, trace_->now_us(),
                    iteration});
}

void ThreadedRuntime::worker(std::int32_t proc, std::int64_t iterations) {
  try {
    const std::vector<FiringStep>& program = plan_.programs[static_cast<std::size_t>(proc)];
    for (std::int64_t iter = 0; iter < iterations && !abort_.load(); ++iter)
      for (const FiringStep& step : program) fire(step, proc, iter);
  } catch (const Aborted&) {
    // Unwound by another worker's failure; nothing to record.
  } catch (...) {
    {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    abort_.store(true);
    interrupt_all();
  }
}

void ThreadedRuntime::run(std::int64_t iterations) {
  if (iterations < 0) throw std::invalid_argument("ThreadedRuntime::run: negative iterations");
  abort_.store(false);
  first_error_ = nullptr;
  // Reset at entry, aggregate on every exit path: stats() is never stale
  // from a previous run, even when this run throws.
  stats_ = ThreadedRunStats{};
  const ThreadedRunStats base = counter_totals();

  // Every spawned worker is joined on every exit path. Channel or
  // compute failures unwind inside worker() (abort flag + interrupt),
  // so the join loop below always terminates; if spawning itself fails
  // partway, the already-running workers are aborted and joined before
  // the exception leaves — no detached or leaked threads, which is also
  // what makes the TSan job's reports trustworthy.
  std::vector<std::thread> threads;
  threads.reserve(plan_.programs.size());
  try {
    for (std::size_t p = 0; p < plan_.programs.size(); ++p)
      threads.emplace_back(
          [this, p, iterations] { worker(static_cast<std::int32_t>(p), iterations); });
  } catch (...) {
    abort_.store(true);
    interrupt_all();
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
    throw;
  }
  for (std::thread& t : threads) t.join();

  const ThreadedRunStats now = counter_totals();
  stats_.messages = now.messages - base.messages;
  stats_.payload_bytes = now.payload_bytes - base.payload_bytes;
  stats_.producer_blocks = now.producer_blocks - base.producer_blocks;
  stats_.consumer_blocks = now.consumer_blocks - base.consumer_blocks;
  stats_.producer_block_micros = now.producer_block_micros - base.producer_block_micros;
  stats_.consumer_block_micros = now.consumer_block_micros - base.consumer_block_micros;
  stats_.retries = now.retries - base.retries;
  stats_.dropped_frames = now.dropped_frames - base.dropped_frames;
  stats_.crc_failures = now.crc_failures - base.crc_failures;
  stats_.duplicates = now.duplicates - base.duplicates;
  stats_.timeouts = now.timeouts - base.timeouts;
  stats_.backoff_micros = now.backoff_micros - base.backoff_micros;
  if (first_error_) {
    maybe_dump_flight_postmortem();
    std::rethrow_exception(first_error_);
  }
}

void ThreadedRuntime::maybe_dump_flight_postmortem() {
  if (!flight_ || flight_->postmortem_path().empty()) return;
  try {
    std::rethrow_exception(first_error_);
  } catch (const sim::ChannelError&) {
    // Channel-level death is what the flight recorder exists for: dump
    // everything captured so the analyzer can reconstruct the final
    // moments. Best effort — a failing dump must not mask the error.
    try {
      std::ofstream out(flight_->postmortem_path(), std::ios::binary);
      if (out) out << flight_->collect().to_json();
    } catch (...) {
    }
  } catch (...) {
    // Compute exceptions and internal errors: no dump.
  }
}

}  // namespace spi::core
