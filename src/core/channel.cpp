#include "core/channel.hpp"

#include <stdexcept>

namespace spi::core {

SpiChannel::SpiChannel(ChannelConfig config) : config_(config) {
  if (config_.edge < 0) throw std::invalid_argument("SpiChannel: invalid edge id");
  if (config_.payload_bound_bytes <= 0)
    throw std::invalid_argument("SpiChannel: payload bound must be positive");
  if (config_.protocol == sched::SyncProtocol::kBbs && config_.capacity_messages <= 0)
    throw std::invalid_argument("SpiChannel: BBS channel requires a positive static capacity");
}

void SpiChannel::send(std::span<const std::uint8_t> payload) {
  const auto size = static_cast<std::int64_t>(payload.size());
  if (config_.mode == SpiMode::kStatic) {
    if (size != config_.payload_bound_bytes)
      throw std::invalid_argument(
          "SpiChannel: static channel payload must equal the compile-time size");
  } else if (size > config_.payload_bound_bytes) {
    throw std::length_error("SpiChannel: packed token exceeds b_max");
  }
  if (config_.protocol == sched::SyncProtocol::kBbs &&
      occupancy() + 1 > config_.capacity_messages) {
    throw std::runtime_error(
        "SpiChannel: BBS capacity exceeded — equation 2 bound violated (analysis bug)");
  }
  const std::size_t header = config_.mode == SpiMode::kStatic
                                 ? static_cast<std::size_t>(kStaticHeaderBytes)
                                 : static_cast<std::size_t>(kDynamicHeaderBytes);
  Bytes wire = take_buffer(header + payload.size());
  if (config_.mode == SpiMode::kStatic)
    encode_static_into(config_.edge, payload, {wire.data(), wire.size()});
  else
    encode_dynamic_into(config_.edge, payload, {wire.data(), wire.size()});
  stats_.wire_bytes += static_cast<std::int64_t>(wire.size());
  stats_.payload_bytes += size;
  stats_.messages += 1;
  queue_.push_back(std::move(wire));
  stats_.max_occupancy = std::max(stats_.max_occupancy, occupancy());
}

std::optional<Bytes> SpiChannel::receive() {
  if (queue_.empty()) return std::nullopt;
  Bytes wire = std::move(queue_.front());
  queue_.pop_front();
  Message m = config_.mode == SpiMode::kStatic
                  ? decode_static(wire, config_.payload_bound_bytes)
                  : decode_dynamic(wire);
  recycle(std::move(wire));
  if (m.edge != config_.edge)
    throw std::runtime_error("SpiChannel: edge-id header mismatch (routing error)");
  if (config_.protocol == sched::SyncProtocol::kUbs && !config_.ack_elided) stats_.acks += 1;
  return std::move(m.payload);
}

Bytes SpiChannel::take_buffer(std::size_t size) {
  if (pool_) return pool_->take(size);
  Bytes wire;
  if (!freelist_.empty()) {
    wire = std::move(freelist_.back());
    freelist_.pop_back();
  } else {
    wire.reserve(size);
  }
  wire.resize(size);
  return wire;
}

void SpiChannel::recycle(Bytes&& buffer) {
  if (pool_) {
    pool_->recycle(std::move(buffer));
    return;
  }
  // A small cap bounds idle memory; under it the send/receive cycle of a
  // warmed-up channel never touches the allocator.
  constexpr std::size_t kMaxFreeBuffers = 16;
  if (freelist_.size() < kMaxFreeBuffers) freelist_.push_back(std::move(buffer));
}

}  // namespace spi::core
