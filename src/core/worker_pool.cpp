#include "core/worker_pool.hpp"

#include <chrono>
#include <stdexcept>

namespace spi::core {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  submit_cv_.notify_all();
  for (std::thread& t : threads_)
    if (t.joinable()) t.join();
}

std::size_t WorkerPool::idle() const {
  std::lock_guard lock(mutex_);
  return idle_ - claimed_;
}

std::int64_t WorkerPool::gangs_run() const {
  std::lock_guard lock(mutex_);
  return gangs_;
}

std::int64_t WorkerPool::gang_busy_ns() const {
  std::lock_guard lock(mutex_);
  return gang_ns_;
}

void WorkerPool::run(std::span<const std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() > threads_.size())
    throw std::invalid_argument("WorkerPool: gang wider than the pool (" +
                                std::to_string(tasks.size()) + " tasks, " +
                                std::to_string(threads_.size()) + " workers)");
  Gang gang;
  gang.tasks = tasks.data();
  gang.count = tasks.size();

  std::unique_lock lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  waiting_.push_back(ticket);
  // Head of the FIFO *and* enough unclaimed workers for the whole gang:
  // the all-or-nothing reservation that keeps co-scheduled workers from
  // deadlocking on each other's channels.
  submit_cv_.wait(lock, [&] {
    return stop_ || (waiting_.front() == ticket && idle_ - claimed_ >= gang.count);
  });
  waiting_.pop_front();
  if (stop_) {
    submit_cv_.notify_all();
    throw std::runtime_error("WorkerPool: pool is shutting down");
  }
  claimed_ += gang.count;
  active_.push_back(&gang);
  ++gangs_;
  const auto gang_begin = std::chrono::steady_clock::now();
  worker_cv_.notify_all();
  // The next queued caller may also fit once workers free up; it is
  // re-woken by workers returning to idle.
  done_cv_.wait(lock, [&] { return gang.done == gang.count; });
  gang_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - gang_begin)
                  .count();
}

void WorkerPool::run_one(const std::function<void()>& task) { run({&task, 1}); }

void WorkerPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    ++idle_;
    submit_cv_.notify_all();
    worker_cv_.wait(lock, [&] { return stop_ || !active_.empty(); });
    if (stop_ && active_.empty()) {
      --idle_;
      return;
    }
    Gang* gang = active_.front();
    const std::size_t index = gang->next++;
    if (gang->next == gang->count) active_.pop_front();
    --idle_;
    --claimed_;
    lock.unlock();
    gang->tasks[index]();
    lock.lock();
    if (++gang->done == gang->count) done_cv_.notify_all();
  }
}

}  // namespace spi::core
