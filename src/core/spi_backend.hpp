/// \file spi_backend.hpp
/// Timing cost model of the HDL SPI library (paper Section 5.1).
///
/// SPI_send / SPI_receive are dedicated hardware actors: the computation
/// PE only pays a small enqueue cost per message, after which the
/// communication actor streams the message onto the link — the paper's
/// "efficient separation between communication and computation". Header
/// overhead is 4 bytes for SPI_static (edge ID) and 8 for SPI_dynamic
/// (edge ID + size); datatype is compile-time knowledge and never
/// travels. No handshake round trips: buffer safety comes from the
/// BBS/UBS analysis, not from rendezvous.
#pragma once

#include <unordered_set>

#include "core/message.hpp"
#include "sim/comm_backend.hpp"

namespace spi::core {

struct SpiCostParams {
  /// PE cycles to hand a message descriptor to the SPI actor.
  std::int64_t send_enqueue_cycles = 2;
  /// SPI actor pipeline cycles before the first word hits the link.
  std::int64_t offload_fixed_cycles = 4;
  /// Acknowledgements are header-only messages (edge ID).
  std::int64_t ack_wire_bytes = kStaticHeaderBytes;
};

class SpiBackend final : public sim::CommBackend {
 public:
  SpiBackend(SpiCostParams params, std::unordered_set<df::EdgeId> dynamic_edges)
      : params_(params), dynamic_edges_(std::move(dynamic_edges)) {}

  [[nodiscard]] sim::MessageCost data_message(const sim::ChannelInfo& channel,
                                              std::int64_t payload_bytes) const override {
    const bool dynamic =
        channel.dynamic || dynamic_edges_.contains(channel.edge);
    const std::int64_t header = dynamic ? kDynamicHeaderBytes : kStaticHeaderBytes;
    return sim::MessageCost{params_.send_enqueue_cycles, params_.offload_fixed_cycles,
                            header + payload_bytes, 0};
  }

  [[nodiscard]] sim::MessageCost sync_message(const sim::ChannelInfo&) const override {
    return sim::MessageCost{params_.send_enqueue_cycles, params_.offload_fixed_cycles,
                            params_.ack_wire_bytes, 0};
  }

  [[nodiscard]] const char* name() const override { return "SPI"; }

 private:
  SpiCostParams params_;
  std::unordered_set<df::EdgeId> dynamic_edges_;
};

}  // namespace spi::core
