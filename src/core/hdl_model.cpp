#include "core/hdl_model.hpp"

#include <stdexcept>

namespace spi::core {

namespace {

/// Packs bytes into little-endian 32-bit wire words (zero-padded tail).
std::vector<std::uint32_t> to_words(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint32_t> words;
  words.reserve((bytes.size() + 3) / 4);
  for (std::size_t i = 0; i < bytes.size(); i += 4) {
    std::uint32_t w = 0;
    for (std::size_t b = 0; b < 4 && i + b < bytes.size(); ++b)
      w |= static_cast<std::uint32_t>(bytes[i + b]) << (8 * b);
    words.push_back(w);
  }
  return words;
}

void append_word_bytes(Bytes& out, std::uint32_t word, std::int64_t remaining) {
  for (int b = 0; b < 4 && remaining > 0; ++b, --remaining)
    out.push_back(static_cast<std::uint8_t>((word >> (8 * b)) & 0xFF));
}

}  // namespace

bool WireModel::ready(sim::SimTime) const {
  // Shift-register capacity: the pipeline depth plus a small skid buffer.
  return static_cast<sim::SimTime>(words_.size()) < depth_ + 4;
}

void WireModel::push(sim::SimTime now, std::uint32_t word) {
  if (!ready(now)) throw std::logic_error("WireModel: push while not ready");
  words_.push_back(Word{now + depth_, word});
}

std::optional<std::uint32_t> WireModel::pop(sim::SimTime now) {
  if (words_.empty() || words_.front().arrival > now) return std::nullopt;
  const std::uint32_t value = words_.front().value;
  words_.pop_front();
  return value;
}

void SpiSendFsm::tick(sim::SimTime now) {
  switch (state_) {
    case State::kIdle: {
      if (queue_.empty()) return;
      // Latch the next message: header word(s) then payload words.
      const Bytes payload = std::move(queue_.front());
      queue_.pop_front();
      words_.clear();
      words_.push_back(static_cast<std::uint32_t>(edge_));
      if (dynamic_) words_.push_back(static_cast<std::uint32_t>(payload.size()));
      const auto payload_words = to_words(payload);
      words_.insert(words_.end(), payload_words.begin(), payload_words.end());
      cursor_ = 0;
      state_ = State::kHeader;
      stats_.busy_cycles += 1;  // the latch cycle
      return;
    }
    case State::kHeader:
    case State::kPayload: {
      stats_.busy_cycles += 1;
      if (!wire_.ready(now)) {
        stats_.stall_cycles += 1;
        return;
      }
      wire_.push(now, words_[cursor_++]);
      stats_.words += 1;
      const std::size_t header_words = dynamic_ ? 2 : 1;
      if (cursor_ >= words_.size()) {
        state_ = State::kIdle;
        stats_.messages += 1;
      } else if (cursor_ >= header_words) {
        state_ = State::kPayload;
      }
      return;
    }
  }
}

void SpiReceiveFsm::tick(sim::SimTime now) {
  const auto word = wire_.pop(now);
  if (!word) {
    if (state_ != State::kIdle) stats_.stall_cycles += 1;
    return;
  }
  stats_.words += 1;
  stats_.busy_cycles += 1;
  switch (state_) {
    case State::kIdle: {
      if (static_cast<df::EdgeId>(*word) != edge_)
        throw std::runtime_error("SpiReceiveFsm: edge-id header mismatch (routing error)");
      if (dynamic_) {
        state_ = State::kSize;
      } else {
        expected_bytes_ = static_payload_bytes_;
        assembling_.clear();
        state_ = expected_bytes_ > 0 ? State::kPayload : State::kIdle;
        if (expected_bytes_ == 0) finish();
      }
      return;
    }
    case State::kSize: {
      expected_bytes_ = static_cast<std::int64_t>(*word);
      assembling_.clear();
      if (expected_bytes_ == 0) {
        state_ = State::kIdle;
        finish();
      } else {
        state_ = State::kPayload;
      }
      return;
    }
    case State::kPayload: {
      const std::int64_t remaining = expected_bytes_ - static_cast<std::int64_t>(assembling_.size());
      append_word_bytes(assembling_, *word, remaining);
      if (static_cast<std::int64_t>(assembling_.size()) >= expected_bytes_) {
        state_ = State::kIdle;
        finish();
      }
      return;
    }
  }
}

void SpiReceiveFsm::finish() {
  stats_.messages += 1;
  deliver_(std::move(assembling_));
  assembling_.clear();
}

HdlChannelRun run_hdl_channel(df::EdgeId edge, bool dynamic, std::int64_t static_payload_bytes,
                              sim::SimTime wire_depth, const std::vector<Bytes>& messages) {
  HdlChannelRun run;
  WireModel wire(wire_depth);
  SpiSendFsm send(edge, dynamic, wire);
  SpiReceiveFsm receive(edge, dynamic, static_payload_bytes, wire,
                        [&run](Bytes payload) { run.delivered.push_back(std::move(payload)); });
  for (const Bytes& m : messages) send.submit(m);

  sim::SimTime t = 0;
  const sim::SimTime limit = 1'000'000;
  while (run.delivered.size() < messages.size()) {
    receive.tick(t);
    send.tick(t);
    if (++t > limit) throw std::runtime_error("run_hdl_channel: no progress (FSM bug)");
  }
  run.cycles = t;
  run.send = send.stats();
  run.receive = receive.stats();
  return run;
}

}  // namespace spi::core
