/// \file buffer_pool.hpp
/// Per-job recycled wire-buffer pool for the functional SPI channels.
///
/// SpiChannel used to keep its own private freelist of consumed wire
/// buffers. That was safe but siloed: a job's channels could not share
/// warm buffers, and — more importantly for the serving refactor — the
/// ownership contract was implicit. BufferPool makes it explicit: the
/// pool belongs to exactly one job instance (one FunctionalRuntime, one
/// request), every channel of that job recycles through it, and two
/// concurrent jobs can never cross-recycle a buffer because they never
/// see each other's pool. The pool is deliberately NOT thread-safe —
/// handing one pool to two threads is a bug, and TSan (which the CI
/// soak runs) will say so, rather than a mutex silently serializing it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/message.hpp"

namespace spi::core {

/// A bounded stack of reusable Bytes buffers.
class BufferPool {
 public:
  /// `max_buffers` bounds idle memory; under it the send/receive cycle
  /// of a warmed-up job never touches the allocator.
  explicit BufferPool(std::size_t max_buffers = 64) : max_buffers_(max_buffers) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A recycled buffer resized to `size` (one-shot resize, capacity
  /// reused), or a fresh one when the pool is empty.
  [[nodiscard]] Bytes take(std::size_t size) {
    Bytes buffer;
    if (!free_.empty()) {
      buffer = std::move(free_.back());
      free_.pop_back();
    } else {
      buffer.reserve(size);
    }
    buffer.resize(size);
    return buffer;
  }

  /// Returns a consumed buffer for reuse (dropped once full).
  void recycle(Bytes&& buffer) {
    if (free_.size() < max_buffers_) free_.push_back(std::move(buffer));
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  [[nodiscard]] std::size_t capacity() const { return max_buffers_; }

 private:
  std::vector<Bytes> free_;
  std::size_t max_buffers_;
};

}  // namespace spi::core
