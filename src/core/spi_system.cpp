#include "core/spi_system.hpp"

#include <utility>

namespace spi::core {

SpiSystem::SpiSystem(const df::Graph& application, sched::Assignment assignment,
                     SpiSystemOptions options)
    : app_(application),
      assignment_(std::move(assignment)),
      plan_(compile_plan(app_, assignment_, options)),
      backend_(plan_.make_backend()) {}

sim::ExecStats SpiSystem::run_timed(const sim::TimedExecutorOptions& options,
                                    sim::WorkloadModel workload) const {
  return run_timed_with(*backend_, options, std::move(workload));
}

sim::ExecStats SpiSystem::run_timed_with(const sim::CommBackend& backend,
                                         const sim::TimedExecutorOptions& options,
                                         sim::WorkloadModel workload) const {
  return core::run_timed(plan_, backend, options, std::move(workload));
}

}  // namespace spi::core
