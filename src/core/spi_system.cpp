#include "core/spi_system.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace spi::core {

namespace {

df::Repetitions checked_repetitions(const df::Graph& g) {
  df::Repetitions reps = df::compute_repetitions(g);
  if (!reps.consistent) {
    std::string edge = reps.conflict_edge != df::kInvalidEdge
                           ? g.edge(reps.conflict_edge).name
                           : std::string("<structural>");
    throw std::invalid_argument("SpiSystem: inconsistent dataflow graph after VTS conversion"
                                " (balance equation fails at edge " + edge + ")");
  }
  return reps;
}

df::SequentialSchedule checked_pass(const df::Graph& g, const df::Repetitions& reps,
                                    df::SchedulePolicy policy) {
  df::SequentialSchedule s = df::build_sequential_schedule(g, reps, policy);
  if (!s.admissible)
    throw std::invalid_argument("SpiSystem: graph deadlocks (insufficient delay on a cycle)");
  return s;
}

/// Runs one compile phase, recording its wall-clock seconds into
/// `spi_compile_phase_seconds{phase=...}` when a registry is attached.
template <typename F>
auto timed_phase(obs::MetricRegistry* registry, const char* phase, F&& f) {
  if (!registry) return f();
  obs::ScopedTimer timer(&registry->gauge(
      "spi_compile_phase_seconds", {{"phase", phase}},
      "Wall-clock seconds spent in one phase of the SPI compile pipeline"));
  return f();
}

}  // namespace

SpiSystem::SpiSystem(const df::Graph& application, sched::Assignment assignment,
                     SpiSystemOptions options)
    : app_(application),
      assignment_(std::move(assignment)),
      options_(options),
      vts_(timed_phase(options.metrics, "vts_convert", [&] { return df::vts_convert(app_); })),
      reps_(timed_phase(options.metrics, "repetitions",
                        [&] { return checked_repetitions(vts_.graph); })),
      pass_(timed_phase(options.metrics, "pass_schedule",
                        [&] { return checked_pass(vts_.graph, reps_, options.pass_policy); })),
      hsdf_(timed_phase(options.metrics, "hsdf_expand",
                        [&] { return sched::hsdf_expand(vts_.graph, reps_); })),
      proc_order_(timed_phase(options.metrics, "proc_order",
                              [&] {
                                return sched::proc_order_from_pass(hsdf_, pass_.firings,
                                                                   assignment_);
                              })),
      sync_build_(timed_phase(options.metrics, "sync_graph", [&] {
        return sched::build_sync_graph(hsdf_, assignment_, proc_order_, options_.sync);
      })) {
  if (assignment_.actor_count() != app_.actor_count())
    throw std::invalid_argument("SpiSystem: assignment size does not match the graph");

  if (options_.resynchronize)
    resync_report_ = timed_phase(options_.metrics, "resynchronize", [&] {
      return sched::resynchronize(sync_build_.graph, options_.resync);
    });

  obs::ScopedTimer plan_timer(
      options_.metrics ? &options_.metrics->gauge(
                             "spi_compile_phase_seconds", {{"phase", "channel_plan"}},
                             "Wall-clock seconds spent in one phase of the SPI compile pipeline")
                       : nullptr);

  // --- channel plan (one per interprocessor dataflow edge) --------------
  const std::vector<std::int64_t> c_bytes = df::packed_buffer_byte_bounds(vts_);
  std::map<df::EdgeId, ChannelPlan> plans;
  for (const auto& [sync_index, protocol] : sync_build_.ipc_edges) {
    const sched::SyncEdge& se = sync_build_.graph.edges()[sync_index];
    ChannelPlan& plan = plans[se.dataflow_edge];
    if (plan.edge == df::kInvalidEdge) {
      const df::Edge& original = app_.edge(se.dataflow_edge);
      plan.edge = se.dataflow_edge;
      plan.name = original.name;
      plan.mode = original.is_dynamic() ? SpiMode::kDynamic : SpiMode::kStatic;
      plan.b_max_bytes = vts_.edges[static_cast<std::size_t>(se.dataflow_edge)].b_max_bytes;
      plan.c_bytes = c_bytes[static_cast<std::size_t>(se.dataflow_edge)];
      plan.protocol = sched::SyncProtocol::kBbs;  // demoted to UBS below if any arc needs it
    }
    plan.sync_edges.push_back(sync_index);
    if (protocol == sched::SyncProtocol::kUbs) plan.protocol = sched::SyncProtocol::kUbs;
  }

  // Equation 2 bounds for BBS channels; ack bookkeeping for UBS channels.
  for (auto& [edge, plan] : plans) {
    if (plan.protocol == sched::SyncProtocol::kBbs) {
      std::int64_t tokens = 0;
      for (std::size_t idx : plan.sync_edges) {
        const auto bound = sched::ipc_buffer_bound_tokens(sync_build_.graph, idx);
        if (!bound) {  // should not happen for a BBS-classified edge
          plan.protocol = sched::SyncProtocol::kUbs;
          tokens = 0;
          break;
        }
        tokens = std::max(tokens, *bound);
      }
      if (plan.protocol == sched::SyncProtocol::kBbs) {
        plan.bbs_capacity_tokens = tokens;
        plan.bbs_capacity_bytes = tokens * plan.b_max_bytes;
      }
    }
  }
  for (const sched::SyncEdge& se : sync_build_.graph.edges()) {
    if (se.kind != sched::SyncEdgeKind::kAck) continue;
    auto it = plans.find(se.dataflow_edge);
    if (it == plans.end()) continue;
    it->second.acks_total += 1;
    if (se.removed) it->second.acks_elided += 1;
  }

  channels_.reserve(plans.size());
  for (auto& [edge, plan] : plans) channels_.push_back(std::move(plan));

  std::unordered_set<df::EdgeId> dynamic_edges;
  for (df::EdgeId e : app_.dynamic_edges()) dynamic_edges.insert(e);
  backend_ = std::make_unique<SpiBackend>(options_.costs, std::move(dynamic_edges));

  if (options_.metrics) {
    options_.metrics
        ->gauge("spi_compile_total_seconds", {},
                "Wall-clock seconds of the whole SPI compile pipeline")
        .set(static_cast<double>(obs::monotonic_ns() - compile_start_ns_) * 1e-9);
    publish_plan_metrics(*options_.metrics);
  }
}

void SpiSystem::publish_plan_metrics(obs::MetricRegistry& registry) const {
  static constexpr const char* kModes[] = {"static", "dynamic"};
  static constexpr const char* kProtocols[] = {"bbs", "ubs"};
  // Zero-initialize the full mode x protocol matrix so exports always
  // carry every combination.
  for (const char* mode : kModes)
    for (const char* protocol : kProtocols)
      registry
          .gauge("spi_plan_channels", {{"mode", mode}, {"protocol", protocol}},
                 "Interprocessor channels in the compiled plan by SPI mode and sync protocol")
          .set(0.0);

  std::int64_t acks_total = 0, acks_elided = 0, eq1_bytes = 0, eq2_bytes = 0;
  for (const ChannelPlan& plan : channels_) {
    const char* mode = plan.mode == SpiMode::kDynamic ? "dynamic" : "static";
    const char* protocol = plan.protocol == sched::SyncProtocol::kBbs ? "bbs" : "ubs";
    registry.gauge("spi_plan_channels", {{"mode", mode}, {"protocol", protocol}}).add(1.0);

    const obs::Labels channel{{"channel", plan.name}};
    registry
        .gauge("spi_plan_channel_acks", channel,
               "UBS acknowledgement edges created for one channel")
        .set(static_cast<double>(plan.acks_total));
    registry
        .gauge("spi_plan_channel_acks_elided", channel,
               "Acknowledgement edges removed from one channel by resynchronization")
        .set(static_cast<double>(plan.acks_elided));
    registry
        .gauge("spi_plan_channel_b_max_bytes", channel,
               "Maximum bytes of one message payload (VTS bound)")
        .set(static_cast<double>(plan.b_max_bytes));
    registry
        .gauge("spi_plan_channel_c_bytes", channel,
               "Equation-1 static buffer bytes c_sdf(e) * b_max(e)")
        .set(static_cast<double>(plan.c_bytes));
    if (plan.bbs_capacity_bytes)
      registry
          .gauge("spi_plan_channel_bbs_capacity_bytes", channel,
                 "Equation-2 statically guaranteed BBS buffer bound in bytes")
          .set(static_cast<double>(*plan.bbs_capacity_bytes));
    acks_total += static_cast<std::int64_t>(plan.acks_total);
    acks_elided += static_cast<std::int64_t>(plan.acks_elided);
    eq1_bytes += plan.c_bytes;
    eq2_bytes += plan.bbs_capacity_bytes.value_or(0);
  }

  registry.gauge("spi_plan_acks", {}, "UBS acknowledgement edges created across all channels")
      .set(static_cast<double>(acks_total));
  registry
      .gauge("spi_plan_acks_elided", {},
             "Acknowledgement edges removed across all channels by resynchronization")
      .set(static_cast<double>(acks_elided));
  registry.gauge("spi_plan_eq1_buffer_bytes", {}, "Sum of equation-1 buffer bounds in bytes")
      .set(static_cast<double>(eq1_bytes));
  registry
      .gauge("spi_plan_eq2_buffer_bytes", {},
             "Sum of equation-2 (BBS) statically guaranteed buffer bounds in bytes")
      .set(static_cast<double>(eq2_bytes));
  registry
      .gauge("spi_plan_messages_per_iteration", {},
             "Synchronization messages per graph iteration under the compiled plan")
      .set(static_cast<double>(messages_per_iteration()));
  if (resync_report_) {
    registry.gauge("spi_plan_resync_acks_before", {}, "Ack edges before resynchronization")
        .set(static_cast<double>(resync_report_->acks_before));
    registry.gauge("spi_plan_resync_acks_after", {}, "Ack edges after resynchronization")
        .set(static_cast<double>(resync_report_->acks_after));
    registry.gauge("spi_plan_resync_mcm_before", {}, "Maximum cycle mean before resynchronization")
        .set(resync_report_->mcm_before);
    registry.gauge("spi_plan_resync_mcm_after", {}, "Maximum cycle mean after resynchronization")
        .set(resync_report_->mcm_after);
  }
}

const ChannelPlan& SpiSystem::channel_for(df::EdgeId edge) const {
  for (const ChannelPlan& plan : channels_)
    if (plan.edge == edge) return plan;
  throw std::out_of_range("SpiSystem::channel_for: edge is not interprocessor");
}

std::size_t SpiSystem::messages_per_iteration() const {
  const auto& graph = sync_build_.graph;
  return graph.count_active(sched::SyncEdgeKind::kIpc) +
         graph.count_active(sched::SyncEdgeKind::kAck) +
         graph.count_active(sched::SyncEdgeKind::kResync);
}

void SpiSystem::install_default_payloads(sim::WorkloadModel& workload) const {
  if (workload.payload_bytes) return;
  workload.payload_bytes = [this](const sched::SyncEdge& e, std::int64_t) -> std::int64_t {
    if (e.dataflow_edge == df::kInvalidEdge) return 0;
    const df::Edge& edge = vts_.graph.edge(e.dataflow_edge);
    return edge.prod.value() * edge.token_bytes;  // worst case for dynamic channels
  };
}

sim::ExecStats SpiSystem::run_timed(const sim::TimedExecutorOptions& options,
                                    sim::WorkloadModel workload) const {
  return run_timed_with(*backend_, options, std::move(workload));
}

sim::ExecStats SpiSystem::run_timed_with(const sim::CommBackend& backend,
                                         const sim::TimedExecutorOptions& options,
                                         sim::WorkloadModel workload) const {
  install_default_payloads(workload);
  return sim::run_timed(sync_build_.graph, proc_order_, backend, workload, options);
}

std::string SpiSystem::report() const {
  std::ostringstream out;
  out << "SPI system: " << app_.name() << "\n";
  out << "  actors: " << app_.actor_count() << ", edges: " << app_.edge_count()
      << ", processors: " << assignment_.proc_count() << "\n";
  out << "  tasks (HSDF): " << hsdf_.tasks.size()
      << ", firings/iteration: " << reps_.total_firings() << "\n";
  out << "  interprocessor channels: " << channels_.size() << "\n";
  for (const ChannelPlan& plan : channels_) {
    out << "    [" << plan.edge << "] " << plan.name << ": "
        << (plan.mode == SpiMode::kDynamic ? "SPI_dynamic" : "SPI_static") << " / "
        << (plan.protocol == sched::SyncProtocol::kBbs ? "BBS" : "UBS")
        << ", b_max=" << plan.b_max_bytes << "B, c(e)=" << plan.c_bytes << "B";
    if (plan.bbs_capacity_tokens)
      out << ", B(e)=" << *plan.bbs_capacity_tokens << " msgs (" << *plan.bbs_capacity_bytes
          << "B)";
    if (plan.acks_total > 0)
      out << ", acks " << (plan.acks_total - plan.acks_elided) << "/" << plan.acks_total
          << " (elided " << plan.acks_elided << ")";
    out << "\n";
  }
  if (resync_report_) {
    out << "  resynchronization: +" << resync_report_->edges_added << " sync edges, -"
        << resync_report_->edges_removed << " redundant, acks " << resync_report_->acks_before
        << " -> " << resync_report_->acks_after << ", MCM " << resync_report_->mcm_before
        << " -> " << resync_report_->mcm_after << "\n";
  }
  out << "  messages/iteration: " << messages_per_iteration() << "\n";
  return out.str();
}

std::string SpiSystem::plan_json() const {
  std::ostringstream out;
  auto escape = [](const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"' || c == '\\') r.push_back('\\');
      r.push_back(c);
    }
    return r;
  };
  out << "{\n  \"graph\": \"" << escape(app_.name()) << "\",\n";
  out << "  \"processors\": " << assignment_.proc_count() << ",\n";
  out << "  \"messages_per_iteration\": " << messages_per_iteration() << ",\n";
  if (resync_report_) {
    out << "  \"resynchronization\": {\"acks_before\": " << resync_report_->acks_before
        << ", \"acks_after\": " << resync_report_->acks_after
        << ", \"edges_added\": " << resync_report_->edges_added
        << ", \"mcm_before\": " << resync_report_->mcm_before
        << ", \"mcm_after\": " << resync_report_->mcm_after << "},\n";
  }
  out << "  \"channels\": [";
  bool first = true;
  for (const ChannelPlan& plan : channels_) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"edge\": " << plan.edge << ", \"name\": \"" << escape(plan.name)
        << "\", \"mode\": \""
        << (plan.mode == SpiMode::kDynamic ? "SPI_dynamic" : "SPI_static")
        << "\", \"protocol\": \""
        << (plan.protocol == sched::SyncProtocol::kBbs ? "BBS" : "UBS")
        << "\", \"b_max_bytes\": " << plan.b_max_bytes << ", \"c_bytes\": " << plan.c_bytes;
    if (plan.bbs_capacity_tokens)
      out << ", \"capacity_messages\": " << *plan.bbs_capacity_tokens
          << ", \"capacity_bytes\": " << *plan.bbs_capacity_bytes;
    out << ", \"acks_total\": " << plan.acks_total << ", \"acks_elided\": " << plan.acks_elided
        << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace spi::core
