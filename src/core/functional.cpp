#include "core/functional.hpp"

#include <algorithm>
#include <stdexcept>

namespace spi::core {

std::size_t FiringContext::input_index(df::EdgeId e) const {
  const auto it = std::find(in_edges.begin(), in_edges.end(), e);
  if (it == in_edges.end()) throw std::out_of_range("FiringContext: not an input edge");
  return static_cast<std::size_t>(it - in_edges.begin());
}

std::size_t FiringContext::output_index(df::EdgeId e) const {
  const auto it = std::find(out_edges.begin(), out_edges.end(), e);
  if (it == out_edges.end()) throw std::out_of_range("FiringContext: not an output edge");
  return static_cast<std::size_t>(it - out_edges.begin());
}

FunctionalRuntime::FunctionalRuntime(const ExecutablePlan& plan)
    : plan_(plan),
      graph_(plan.vts.graph),
      compute_(graph_.actor_count()),
      fired_(graph_.actor_count(), 0),
      fifo_(graph_.edge_count()) {
  // Interprocessor channels per the compiled plan.
  for (const ChannelSpec& spec : plan_.channels) {
    ChannelConfig config;
    config.edge = spec.edge;
    config.mode = spec.mode;
    config.protocol = spec.protocol;
    config.payload_bound_bytes = spec.payload_bound_bytes();
    if (spec.bbs_capacity_tokens) {
      // Equation 2 counts iterations the producer may run ahead; each
      // iteration emits q[src] messages on this channel.
      config.capacity_messages = *spec.bbs_capacity_tokens * spec.src_firings_per_iteration;
    }
    config.ack_elided = spec.acks_total > 0 && spec.acks_elided == spec.acks_total;
    auto [it, inserted] = channels_.emplace(spec.edge, SpiChannel(config));
    // All of this runtime's channels recycle wire buffers through one
    // pool owned by this runtime — per-job by construction, so two
    // concurrent runtimes can never cross-recycle a buffer.
    if (inserted) it->second.set_buffer_pool(&pool_);
  }
  // Initial tokens (delays) start in the receiver-side FIFOs.
  for (std::size_t i = 0; i < graph_.edge_count(); ++i) {
    const df::Edge& e = graph_.edge(static_cast<df::EdgeId>(i));
    const bool dynamic = plan_.vts.edges[i].converted;
    for (std::int64_t d = 0; d < e.delay; ++d)
      fifo_[i].push_back(dynamic ? Bytes{} : Bytes(static_cast<std::size_t>(e.token_bytes), 0));
  }
}

void FunctionalRuntime::set_compute(df::ActorId actor, ComputeFn fn) {
  compute_.at(static_cast<std::size_t>(actor)) = std::move(fn);
}

void FunctionalRuntime::run(std::int64_t iterations) {
  if (iterations < 0) throw std::invalid_argument("FunctionalRuntime::run: negative iterations");
  for (std::int64_t iter = 0; iter < iterations; ++iter)
    for (df::ActorId actor : plan_.pass.firings) fire(actor);
}

Bytes FunctionalRuntime::take_token(df::EdgeId edge) {
  auto& fifo = fifo_[static_cast<std::size_t>(edge)];
  if (fifo.empty()) {
    const auto it = channels_.find(edge);
    if (it == channels_.end())
      throw std::logic_error("FunctionalRuntime: token underflow on local edge " +
                             graph_.edge(edge).name + " (schedule bug)");
    auto payload = it->second.receive();
    if (!payload)
      throw std::logic_error("FunctionalRuntime: SPI channel empty on " +
                             graph_.edge(edge).name + " (schedule bug)");
    const df::Edge& e = graph_.edge(edge);
    if (it->second.config().mode == SpiMode::kDynamic) {
      fifo.push_back(std::move(*payload));  // one packed token per message
    } else {
      // A static message carries the producing firing's prod tokens.
      const auto token_bytes = static_cast<std::size_t>(e.token_bytes);
      for (std::int64_t t = 0; t < e.prod.value(); ++t) {
        const std::size_t off = static_cast<std::size_t>(t) * token_bytes;
        fifo.emplace_back(payload->begin() + static_cast<std::ptrdiff_t>(off),
                          payload->begin() + static_cast<std::ptrdiff_t>(off + token_bytes));
      }
    }
  }
  Bytes token = std::move(fifo.front());
  fifo.pop_front();
  return token;
}

void FunctionalRuntime::put_tokens(df::EdgeId edge, std::vector<Bytes>&& tokens) {
  const auto it = channels_.find(edge);
  if (it == channels_.end()) {
    auto& fifo = fifo_[static_cast<std::size_t>(edge)];
    for (Bytes& t : tokens) fifo.push_back(std::move(t));
    return;
  }
  // Interprocessor: one SPI message per firing carrying all its tokens.
  if (it->second.config().mode == SpiMode::kDynamic) {
    // Converted dynamic edges are rate 1/1: exactly one packed token.
    it->second.send(tokens.front());
  } else {
    Bytes payload;
    for (const Bytes& t : tokens) payload.insert(payload.end(), t.begin(), t.end());
    it->second.send(payload);
  }
}

void FunctionalRuntime::fire(df::ActorId actor) {
  const auto a = static_cast<std::size_t>(actor);
  FiringContext ctx;
  ctx.actor = actor;
  ctx.invocation = fired_[a]++;
  ctx.in_edges = graph_.in_edges(actor);
  ctx.out_edges = graph_.out_edges(actor);

  ctx.inputs.resize(ctx.in_edges.size());
  for (std::size_t i = 0; i < ctx.in_edges.size(); ++i) {
    const df::Edge& e = graph_.edge(ctx.in_edges[i]);
    ctx.inputs[i].reserve(static_cast<std::size_t>(e.cons.value()));
    for (std::int64_t t = 0; t < e.cons.value(); ++t)
      ctx.inputs[i].push_back(take_token(ctx.in_edges[i]));
  }

  ctx.outputs.resize(ctx.out_edges.size());
  if (compute_[a]) {
    compute_[a](ctx);
  } else {
    // Default: zero-filled full-rate tokens.
    for (std::size_t i = 0; i < ctx.out_edges.size(); ++i) {
      const df::Edge& e = graph_.edge(ctx.out_edges[i]);
      for (std::int64_t t = 0; t < e.prod.value(); ++t)
        ctx.outputs[i].emplace_back(static_cast<std::size_t>(e.token_bytes), 0);
    }
  }

  // Validate and route outputs.
  for (std::size_t i = 0; i < ctx.out_edges.size(); ++i) {
    const df::EdgeId eid = ctx.out_edges[i];
    const df::Edge& e = graph_.edge(eid);
    const df::VtsEdgeInfo& info = plan_.vts.edges[static_cast<std::size_t>(eid)];
    if (static_cast<std::int64_t>(ctx.outputs[i].size()) != e.prod.value())
      throw std::logic_error("FunctionalRuntime: actor " + graph_.actor(actor).name +
                             " produced wrong token count on " + e.name);
    for (const Bytes& token : ctx.outputs[i]) {
      const auto size = static_cast<std::int64_t>(token.size());
      if (info.converted) {
        if (size > info.b_max_bytes)
          throw std::length_error("FunctionalRuntime: packed token exceeds b_max on " + e.name);
        if (size % info.raw_token_bytes != 0)
          throw std::logic_error(
              "FunctionalRuntime: packed token is not a whole number of raw tokens on " + e.name);
      } else if (size != e.token_bytes) {
        throw std::logic_error("FunctionalRuntime: token size mismatch on " + e.name);
      }
    }
    put_tokens(eid, std::move(ctx.outputs[i]));
  }
}

const SpiChannel& FunctionalRuntime::channel(df::EdgeId edge) const {
  const auto it = channels_.find(edge);
  if (it == channels_.end())
    throw std::out_of_range("FunctionalRuntime::channel: edge is not interprocessor");
  return it->second;
}

}  // namespace spi::core
