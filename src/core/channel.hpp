/// \file channel.hpp
/// Functional SPI channels with BBS/UBS buffer-synchronization semantics.
///
/// The paper's SPI_BBS protocol applies when an IPC buffer provably never
/// exceeds a precomputed size (equation 2): the buffer is allocated
/// statically and the forward data message is the only synchronization.
/// SPI_UBS applies otherwise: the receiver returns acknowledgements so
/// the sender can bound its outstanding messages (back-pressure).
///
/// This functional layer moves real bytes and *checks* the protocol
/// invariants (capacity, FIFO order, framing); the timing consequences
/// are modeled separately by the SpiBackend + timed executor.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "core/buffer_pool.hpp"
#include "core/message.hpp"
#include "sched/sync_graph.hpp"

namespace spi::core {

/// Which SPI interface component serves the edge (paper Section 5.1).
enum class SpiMode : std::uint8_t {
  kStatic,   ///< SPI_static: compile-time payload size, edge-id header
  kDynamic,  ///< SPI_dynamic: VTS packed tokens, edge-id + size header
};

struct ChannelConfig {
  df::EdgeId edge = df::kInvalidEdge;
  SpiMode mode = SpiMode::kStatic;
  sched::SyncProtocol protocol = sched::SyncProtocol::kUbs;
  /// Static mode: the exact payload size of every message.
  /// Dynamic mode: b_max — the maximum packed-token size.
  std::int64_t payload_bound_bytes = 4;
  /// BBS only: statically guaranteed buffer capacity in messages
  /// (equation 2's token bound). Ignored for UBS.
  std::int64_t capacity_messages = 0;
  /// UBS only: whether the receiver's acknowledgement is elided because
  /// resynchronization proved it redundant.
  bool ack_elided = false;
};

/// Channel statistics used by reports and tests.
struct ChannelStats {
  std::int64_t messages = 0;
  std::int64_t payload_bytes = 0;
  std::int64_t wire_bytes = 0;   ///< payload + headers
  std::int64_t acks = 0;         ///< acknowledgements actually produced
  std::int64_t max_occupancy = 0;
};

/// A point-to-point SPI channel. Send encodes the configured wire format;
/// receive decodes and validates it. Protocol invariants are enforced:
/// a BBS channel throws if occupancy would exceed its static capacity
/// (which a correctly analyzed system can never trigger — tests use this
/// as an oracle), and a dynamic channel rejects payloads beyond b_max.
class SpiChannel {
 public:
  explicit SpiChannel(ChannelConfig config);

  /// Shares a per-job BufferPool: consumed wire buffers are recycled
  /// through `pool` instead of the channel's private freelist, so every
  /// channel of one job draws from one warm pool — and never from
  /// another job's (the pool must belong to exactly this channel's job
  /// and outlive it). Null reverts to the private freelist.
  void set_buffer_pool(BufferPool* pool) { pool_ = pool; }

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t occupancy() const { return static_cast<std::int64_t>(queue_.size()); }

  /// Sends one message with the given payload (a packed token for
  /// dynamic channels, the fixed-size record for static ones).
  void send(std::span<const std::uint8_t> payload);

  /// Receives the oldest message; std::nullopt when the channel is empty
  /// (the receiving actor must block). UBS channels count an
  /// acknowledgement per receive unless it was elided.
  [[nodiscard]] std::optional<Bytes> receive();

 private:
  /// A recycled wire buffer sized to `size` (one-shot resize, capacity
  /// reused), or a fresh one when the freelist is empty.
  [[nodiscard]] Bytes take_buffer(std::size_t size);
  void recycle(Bytes&& buffer);

  ChannelConfig config_;
  ChannelStats stats_;
  std::deque<Bytes> queue_;  ///< encoded wire messages, FIFO
  /// Consumed wire buffers kept for reuse: in steady state send()
  /// encodes into a recycled buffer instead of allocating one per
  /// message. Bounded so a bursty channel cannot hoard memory. Unused
  /// (and empty) while a per-job BufferPool is attached.
  std::vector<Bytes> freelist_;
  BufferPool* pool_ = nullptr;  ///< per-job pool; not owned
};

}  // namespace spi::core
