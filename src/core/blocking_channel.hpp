/// \file blocking_channel.hpp
/// Mutex + condition-variable bounded token FIFO — the threaded
/// runtime's reliable-transport channel and the general-purpose fallback
/// the lock-free SpscChannel is measured against (bench/micro_channel).
///
/// Historically this was ThreadedRuntime's only channel. It remains the
/// right structure when the edge speaks the reliable protocol
/// (docs/reliability.md): retransmission scripts need to requeue frames,
/// receive timeouts need a deadline wait, and both sit naturally on a
/// condvar'd deque. Plain (non-reliable) edges use SpscChannel instead —
/// see docs/architecture.md, "Channel selection".
///
/// Hot-path counter policy (all registry handles nullable): the channel
/// only touches block counters when a wait actually happens, and only
/// reads the monotonic clock when a block-duration counter is attached.
/// Per-token message/byte counters are *not* incremented here for plain
/// pushes — the runtime batches them per firing; the reliable transmit
/// path (execute) keeps its own accounting because retries, drops and
/// backoff are per-attempt facts.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "core/reliable_link.hpp"
#include "core/spsc_channel.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"

namespace spi::core {

/// Lock-free registry handles of one channel's counters. All nullable:
/// a null handle skips that accounting entirely. Reliability pointers
/// are null when the protocol is off.
struct ChannelCounters {
  obs::Counter* messages = nullptr;
  obs::Counter* payload_bytes = nullptr;
  obs::Counter* producer_blocks = nullptr;
  obs::Counter* consumer_blocks = nullptr;
  obs::Counter* producer_block_micros = nullptr;
  obs::Counter* consumer_block_micros = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* dropped_frames = nullptr;
  obs::Counter* crc_failures = nullptr;
  obs::Counter* duplicates = nullptr;
  obs::Counter* timeouts = nullptr;
  obs::Counter* send_failures = nullptr;
  obs::Counter* backoff_micros = nullptr;
  obs::Histogram* backoff_histogram = nullptr;

  [[nodiscard]] SpscCounters spsc() const {
    return SpscCounters{producer_blocks, consumer_blocks, producer_block_micros,
                        consumer_block_micros};
  }
};

/// Thread-safe bounded FIFO for one interprocessor edge. In plain mode
/// it moves raw tokens; in reliable mode it moves sequenced frames
/// produced/consumed by the per-edge protocol state machines (each
/// touched only by its single producing / consuming thread).
class BlockingChannel {
 public:
  BlockingChannel(df::EdgeId edge, std::size_t capacity_tokens, std::atomic<bool>& abort,
                  ChannelCounters counters = {});

  /// Enables the reliable protocol. `plan` may be null (perfect wire);
  /// `policy` must outlive the channel.
  void enable_reliability(const sim::FaultPlan* plan, const sim::RetryPolicy& policy);

  [[nodiscard]] bool reliable() const { return sender_ != nullptr; }

  [[nodiscard]] df::EdgeId edge() const { return edge_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Queued-but-unconsumed frames right now (takes the channel mutex —
  /// scrape-path cost, not worker-path cost).
  [[nodiscard]] std::size_t size() const;
  /// Highest queue depth ever reached (frames). Tracked in enqueue()
  /// under the mutex the enqueue already holds, so it adds no extra
  /// synchronization to the worker path.
  [[nodiscard]] std::size_t high_watermark() const;

  void push(Bytes token, const ChannelFlightCtx* flight = nullptr);
  /// Initial-token placement: sequenced framing without fault
  /// injection, so construction cannot fail under a hostile plan.
  void push_faultless(Bytes token);
  [[nodiscard]] Bytes pop(const ChannelFlightCtx* flight = nullptr);
  void interrupt();  ///< wake all waiters (used on abort)

 private:
  void enqueue(Bytes frame, const ChannelFlightCtx* flight);  ///< capacity-blocking raw enqueue
  /// Blocking raw dequeue (timeout in reliable mode).
  [[nodiscard]] Bytes dequeue(const ChannelFlightCtx* flight);
  void execute(const TransmitScript& script, std::int64_t payload_bytes,
               const ChannelFlightCtx* flight);

  df::EdgeId edge_;
  mutable std::mutex mutex_;  ///< mutable: const depth/watermark accessors lock it
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Bytes> queue_;
  std::size_t capacity_;
  std::size_t high_watermark_ = 0;  ///< guarded by mutex_
  std::atomic<bool>& abort_;
  ChannelCounters counters_;
  // Reliable mode (null/empty otherwise). Sender state is touched only
  // by the edge's producing thread, receiver state only by its
  // consuming thread — dataflow edges are single-producer,
  // single-consumer by construction.
  std::unique_ptr<ReliableSender> sender_;
  std::unique_ptr<ReliableReceiver> receiver_;
  const sim::RetryPolicy* policy_ = nullptr;
  /// Flight-event sequence numbers. send_seq_ is touched only by the
  /// edge's producing thread, recv_seq_ only by its consuming thread
  /// (channels are SPSC by construction), so plain int64 suffices.
  /// Initial tokens advance send_seq_ unrecorded, which is correct:
  /// delay tokens are initially available, not sent during the run.
  std::int64_t send_seq_ = 0;
  std::int64_t recv_seq_ = 0;
};

}  // namespace spi::core
