/// \file reliable_link.hpp
/// Reliability protocol over an unreliable SPI wire: per-edge sequence
/// numbers, CRC-checked sequenced frames, bounded retry with
/// exponential backoff + deterministic jitter, duplicate suppression.
///
/// The paper's links are lossless on-chip wires; this layer is what a
/// production deployment puts on every *unreliable* hop. It is split
/// into pure, single-threaded state machines so the protocol is testable
/// without threads and identical wherever it is embedded:
///
///  * ReliableSender — assigns the next sequence number and, given a
///    FaultPlan, precomputes the deterministic transmission script of
///    one message (which attempts reach the wire, corrupted or intact,
///    duplicated or delayed, and the backoff before each retry). The
///    embedding transport executes the script: sleeps, queue pushes,
///    metric increments. Exhausting the retry budget is surfaced as a
///    typed sim::ChannelError — never a hang.
///  * ReliableReceiver — validates each arriving frame (CRC over the
///    whole frame, so header and sequence corruption are caught too),
///    discards duplicates by sequence number, and releases payloads
///    exactly once, in order.
///
/// Because every fault decision is keyed by (edge, sequence, attempt) —
/// not by wall clock or thread interleaving — a lossy run delivers
/// exactly the same payload sequence as a lossless run, whatever the
/// scheduling. The parity tests assert this.
///
/// Sequenced frame format (CRC-32 covers everything before the trailer):
///     [seq:u32le][edge:u32le][size:u32le][payload][crc32:u32le]
#pragma once

#include <cstdint>
#include <vector>

#include "core/message.hpp"
#include "sim/fault.hpp"

namespace spi::core {

/// Header + trailer bytes of a sequenced frame.
inline constexpr std::int64_t kSequencedOverheadBytes = 16;

struct SequencedMessage {
  std::uint32_t seq = 0;
  df::EdgeId edge = df::kInvalidEdge;
  Bytes payload;
};

/// Encodes a sequenced frame; CRC-32 over seq+edge+size+payload.
[[nodiscard]] Bytes encode_sequenced(df::EdgeId edge, std::uint32_t seq,
                                     std::span<const std::uint8_t> payload);

/// Decodes and validates a sequenced frame; throws std::runtime_error on
/// truncation, length mismatch or CRC failure.
[[nodiscard]] SequencedMessage decode_sequenced(std::span<const std::uint8_t> wire);

/// One transmission attempt the embedding transport must replay, in
/// order: optional transport delay, then delivery (unless the wire
/// dropped the frame), then the sender's backoff before the next try.
struct TransmitStep {
  Bytes frame;                  ///< bytes arriving (corrupted when the plan says so);
                                ///< empty = the wire dropped this attempt
  bool corrupted = false;       ///< receiver's CRC will reject this copy
  bool duplicate = false;       ///< deliver the frame a second time
  std::int64_t delay_us = 0;    ///< transport latency before delivery
  std::int64_t backoff_us = 0;  ///< sender sleep after this attempt (0 on success)

  [[nodiscard]] bool dropped() const { return frame.empty(); }
};

/// The full deterministic script for sending one message.
struct TransmitScript {
  std::uint32_t seq = 0;
  std::vector<TransmitStep> steps;  ///< one per attempt, in order
  int dropped = 0;                  ///< attempts the wire swallowed
  int corrupted = 0;                ///< attempts delivered but damaged
  bool delivered = false;           ///< false = retry budget exhausted
  std::int64_t total_backoff_us = 0;

  [[nodiscard]] int attempts() const { return static_cast<int>(steps.size()); }
  [[nodiscard]] int retries() const { return attempts() - 1; }
};

/// Sender half of the protocol for one edge. Single-threaded by
/// construction: a dataflow edge has exactly one producing actor.
class ReliableSender {
 public:
  /// `plan` may be null (perfect wire: one intact attempt per message).
  /// Neither pointer is owned; both must outlive the sender.
  ReliableSender(df::EdgeId edge, const sim::FaultPlan* plan, const sim::RetryPolicy& policy)
      : edge_(edge), plan_(plan), policy_(policy) {}

  [[nodiscard]] std::uint32_t next_seq() const { return next_seq_; }

  /// Consumes the next sequence number and lays out the transmission
  /// script for `payload` under the fault plan. The script's `delivered`
  /// flag tells the caller whether to raise sim::ChannelError after
  /// executing the steps.
  [[nodiscard]] TransmitScript plan_transmit(std::span<const std::uint8_t> payload);

  /// Same, ignoring the fault plan (one intact attempt). Used for
  /// initial-token placement, which must not fail under a hostile plan.
  [[nodiscard]] TransmitScript plan_transmit_faultless(std::span<const std::uint8_t> payload);

 private:
  [[nodiscard]] TransmitScript plan_with(const sim::FaultPlan* plan,
                                         std::span<const std::uint8_t> payload);

  df::EdgeId edge_;
  const sim::FaultPlan* plan_;
  const sim::RetryPolicy& policy_;
  std::uint32_t next_seq_ = 0;
};

/// Receiver half: CRC validation + duplicate suppression for one edge.
class ReliableReceiver {
 public:
  explicit ReliableReceiver(df::EdgeId edge) : edge_(edge) {}

  enum class Verdict : std::uint8_t {
    kAccept,     ///< payload released to the application
    kCorrupt,    ///< CRC or framing failure; frame discarded
    kDuplicate,  ///< stale sequence number; frame discarded
  };

  struct Result {
    Verdict verdict = Verdict::kAccept;
    Bytes payload;  ///< valid only when verdict == kAccept
  };

  /// Inspects one arriving frame. Out-of-order-but-new frames resync the
  /// expected sequence (an in-order transport only produces them after
  /// an accepted gap, which the sender's typed failure already reported).
  [[nodiscard]] Result accept(std::span<const std::uint8_t> frame);

  [[nodiscard]] std::uint32_t expected_seq() const { return expected_seq_; }

 private:
  df::EdgeId edge_;
  std::uint32_t expected_seq_ = 0;
};

}  // namespace spi::core
