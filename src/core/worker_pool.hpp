/// \file worker_pool.hpp
/// Persistent gang-scheduled worker threads for plan execution.
///
/// The pre-serving runtime spawned one std::thread per modeled processor
/// on every run() and joined them at the end — fine for a library that
/// executes one plan once, hopeless for a daemon executing thousands of
/// job instances per second. WorkerPool owns the threads for the life of
/// the process; a JobInstance borrows them per run.
///
/// Scheduling is *gang, all-or-nothing, FIFO*: run(tasks) blocks until
/// tasks.size() workers are simultaneously free and this caller is at
/// the head of the submission queue, then starts every task at once.
/// All-or-nothing matters for correctness, not just fairness — a plan's
/// workers block on each other's channels, so starting a 3-processor
/// job on 2 free workers deadlocks the pool. FIFO tickets make the wait
/// starvation-free when several jobs contend.
///
/// Tasks must not throw (JobInstance's worker bodies trap everything
/// and record the first error themselves); a throwing task terminates.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace spi::core {

class WorkerPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). They idle on a
  /// condition variable until work arrives.
  explicit WorkerPool(std::size_t threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  /// Waits for in-flight gangs to finish, then joins every thread.
  ~WorkerPool();

  [[nodiscard]] std::size_t size() const { return threads_.size(); }
  /// Workers currently parked (approximate; diagnostics only).
  [[nodiscard]] std::size_t idle() const;
  /// Gangs executed since construction.
  [[nodiscard]] std::int64_t gangs_run() const;
  /// Cumulative wall nanoseconds from gang activation to gang
  /// completion, summed over every run() — the pool-side "exec" span
  /// the serving layer's request tracer brackets (request_trace.hpp).
  [[nodiscard]] std::int64_t gang_busy_ns() const;

  /// Runs every task on a pool worker and returns when all of them have
  /// returned. Throws std::invalid_argument when tasks.size() exceeds
  /// the pool width (such a gang could never be co-scheduled). Safe to
  /// call from several threads concurrently — gangs queue FIFO.
  void run(std::span<const std::function<void()>> tasks);

  /// Convenience for a single-task gang (colocated job execution).
  void run_one(const std::function<void()>& task);

 private:
  struct Gang {
    const std::function<void()>* tasks = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;  ///< next task index to hand to a worker
    std::size_t done = 0;  ///< tasks completed
  };

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable submit_cv_;  ///< queued callers waiting for their turn
  std::condition_variable worker_cv_;  ///< parked workers waiting for tasks
  std::condition_variable done_cv_;    ///< callers waiting for gang completion
  std::deque<std::uint64_t> waiting_;  ///< FIFO submission tickets
  std::deque<Gang*> active_;           ///< gangs with tasks not yet all taken
  std::uint64_t next_ticket_ = 0;
  std::size_t idle_ = 0;    ///< workers parked in worker_cv_
  std::size_t claimed_ = 0; ///< tasks activated but not yet taken by a worker
  std::int64_t gangs_ = 0;
  std::int64_t gang_ns_ = 0;  ///< cumulative activation-to-done wall ns
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace spi::core
