/// \file spi_system.hpp
/// SpiSystem — the library's top-level entry point (the role SPI_init
/// plays in the paper's HDL library).
///
/// Given an application dataflow graph (static and/or dynamic rates) and
/// an actor-to-processor assignment, construction runs the full SPI
/// compilation pipeline:
///
///   1. VTS conversion          (Section 3; dynamic rates -> packed SDF)
///   2. repetitions vector + consistency check
///   3. sequential PASS         (admissibility / deadlock check)
///   4. HSDF expansion + per-processor self-timed order
///   5. IPC / synchronization graph                     (Section 4)
///   6. BBS/UBS protocol selection, equations 1 and 2 buffer bounds
///   7. resynchronization (optional)                    (Section 4.1)
///
/// The result is a *channel plan* — per interprocessor edge: SPI_static
/// or SPI_dynamic interface, BBS or UBS protocol, static buffer bytes,
/// elided acknowledgements — plus handles to run the system on the timed
/// platform model with SPI (or any other) communication backend.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/channel.hpp"
#include "core/spi_backend.hpp"
#include "dataflow/graph.hpp"
#include "obs/metrics.hpp"
#include "dataflow/repetitions.hpp"
#include "dataflow/sdf_schedule.hpp"
#include "dataflow/vts.hpp"
#include "sched/assignment.hpp"
#include "sched/resync.hpp"
#include "sched/sync_graph.hpp"
#include "sim/timed_executor.hpp"

namespace spi::core {

struct SpiSystemOptions {
  bool resynchronize = true;
  sched::ResyncOptions resync;
  sched::SyncGraphOptions sync;
  SpiCostParams costs;
  /// Policy for the sequential PASS the per-processor self-timed orders
  /// are derived from. kFirstFireable follows actor-id order — an
  /// application can shape its processors' schedules (e.g. issue all
  /// sends before any receive) by choosing actor creation order;
  /// kMinBufferDemand greedily minimizes buffer occupancy instead.
  df::SchedulePolicy pass_policy = df::SchedulePolicy::kMinBufferDemand;
  /// Optional observability sink (docs/observability.md). When set, the
  /// constructor records per-phase wall-clock timings
  /// (`spi_compile_phase_seconds{phase=...}`) and publishes the
  /// plan-level gauges on completion. Not owned; must outlive the
  /// SpiSystem.
  obs::MetricRegistry* metrics = nullptr;
};

/// Compile-time plan for one interprocessor dataflow edge.
struct ChannelPlan {
  df::EdgeId edge = df::kInvalidEdge;
  std::string name;
  SpiMode mode = SpiMode::kStatic;
  sched::SyncProtocol protocol = sched::SyncProtocol::kUbs;
  std::int64_t b_max_bytes = 0;  ///< max bytes of one message payload
  std::int64_t c_bytes = 0;      ///< equation 1: c_sdf(e) · b_max(e)
  /// Equation 2 (BBS only): statically guaranteed buffer bound.
  std::optional<std::int64_t> bbs_capacity_tokens;
  std::optional<std::int64_t> bbs_capacity_bytes;
  /// Sync-graph edge indices realizing this dataflow edge (>1 when the
  /// HSDF expansion splits a multirate edge across firings).
  std::vector<std::size_t> sync_edges;
  std::size_t acks_total = 0;    ///< UBS ack edges created for this channel
  std::size_t acks_elided = 0;   ///< of those, removed by resynchronization
};

class SpiSystem {
 public:
  SpiSystem(const df::Graph& application, sched::Assignment assignment,
            SpiSystemOptions options = {});

  // --- analysis results -------------------------------------------------
  [[nodiscard]] const df::Graph& application() const { return app_; }
  [[nodiscard]] const df::VtsResult& vts() const { return vts_; }
  [[nodiscard]] const df::Repetitions& repetitions() const { return reps_; }
  [[nodiscard]] const df::SequentialSchedule& pass() const { return pass_; }
  [[nodiscard]] const sched::Assignment& assignment() const { return assignment_; }
  [[nodiscard]] const sched::SyncGraph& sync_graph() const { return sync_build_.graph; }
  [[nodiscard]] const sched::ProcOrder& proc_order() const { return proc_order_; }
  [[nodiscard]] const std::optional<sched::ResyncReport>& resync_report() const {
    return resync_report_;
  }
  [[nodiscard]] const std::vector<ChannelPlan>& channels() const { return channels_; }
  [[nodiscard]] const ChannelPlan& channel_for(df::EdgeId edge) const;

  /// Synchronization messages per graph iteration under the current plan
  /// (data messages + surviving acks + resynchronization messages).
  [[nodiscard]] std::size_t messages_per_iteration() const;

  // --- execution ---------------------------------------------------------
  /// The SPI cost-model backend configured for this system's channels.
  [[nodiscard]] const SpiBackend& backend() const { return *backend_; }

  /// Runs the timed platform simulation with the SPI backend. A null
  /// workload payload hook defaults to each channel's static payload
  /// (worst case for dynamic channels).
  [[nodiscard]] sim::ExecStats run_timed(const sim::TimedExecutorOptions& options,
                                         sim::WorkloadModel workload = {}) const;

  /// Same, with an alternative protocol backend (e.g. the MPI baseline)
  /// — the controlled comparison DESIGN.md describes.
  [[nodiscard]] sim::ExecStats run_timed_with(const sim::CommBackend& backend,
                                              const sim::TimedExecutorOptions& options,
                                              sim::WorkloadModel workload = {}) const;

  /// Human-readable compilation report (channels, protocols, bounds,
  /// resynchronization summary).
  [[nodiscard]] std::string report() const;

  /// Machine-readable channel plan (JSON): per channel the mode,
  /// protocol, b_max, c(e), equation-2 capacity and ack accounting, plus
  /// the resynchronization summary. Consumed by downstream tooling
  /// (`spi_compile --json`).
  [[nodiscard]] std::string plan_json() const;

  /// Publishes the compile-time plan as gauges: channel counts by
  /// mode/protocol, per-channel and aggregate ack/elision counts, and
  /// the equation-1 / equation-2 buffer-byte bounds. Called
  /// automatically on the registry in SpiSystemOptions::metrics;
  /// callable explicitly for any other registry.
  void publish_plan_metrics(obs::MetricRegistry& registry) const;

 private:
  void install_default_payloads(sim::WorkloadModel& workload) const;

  df::Graph app_;
  sched::Assignment assignment_;
  SpiSystemOptions options_;
  /// Stamped before the analysis members construct — the compile
  /// pipeline's wall-clock origin for spi_compile_total_seconds.
  std::int64_t compile_start_ns_ = obs::monotonic_ns();
  df::VtsResult vts_;
  df::Repetitions reps_;
  df::SequentialSchedule pass_;
  sched::HsdfGraph hsdf_;
  sched::ProcOrder proc_order_;
  sched::SyncGraphBuild sync_build_;
  std::optional<sched::ResyncReport> resync_report_;
  std::vector<ChannelPlan> channels_;
  std::unique_ptr<SpiBackend> backend_;
};

}  // namespace spi::core
