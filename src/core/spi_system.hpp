/// \file spi_system.hpp
/// SpiSystem — the library's top-level entry point (the role SPI_init
/// plays in the paper's HDL library).
///
/// Given an application dataflow graph (static and/or dynamic rates) and
/// an actor-to-processor assignment, construction runs the full SPI
/// compilation pipeline (core/pipeline.hpp):
///
///   1. VTS conversion          (Section 3; dynamic rates -> packed SDF)
///   2. repetitions vector + consistency check
///   3. sequential PASS         (admissibility / deadlock check)
///   4. HSDF expansion + per-processor self-timed order
///   5. IPC / synchronization graph                     (Section 4)
///   6. BBS/UBS protocol selection, equations 1 and 2 buffer bounds
///   7. resynchronization (optional)                    (Section 4.1)
///
/// The result is the serializable ExecutablePlan (core/plan.hpp) —
/// per interprocessor edge: SPI_static or SPI_dynamic interface, BBS or
/// UBS protocol, static buffer bytes, elided acknowledgements — plus
/// handles to run the system on the timed platform model with SPI (or
/// any other) communication backend. SpiSystem itself is a thin facade:
/// every accessor delegates into plan().
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/plan.hpp"
#include "core/spi_backend.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/repetitions.hpp"
#include "dataflow/sdf_schedule.hpp"
#include "dataflow/vts.hpp"
#include "obs/metrics.hpp"
#include "sched/assignment.hpp"
#include "sched/resync.hpp"
#include "sched/sync_graph.hpp"
#include "sim/timed_executor.hpp"

namespace spi::core {

class SpiSystem {
 public:
  SpiSystem(const df::Graph& application, sched::Assignment assignment,
            SpiSystemOptions options = {});

  // --- the compiled artifact ---------------------------------------------
  /// The serializable compiled plan every accessor below reads from.
  [[nodiscard]] const ExecutablePlan& plan() const { return plan_; }

  // --- analysis results -------------------------------------------------
  [[nodiscard]] const df::Graph& application() const { return app_; }
  [[nodiscard]] const df::VtsResult& vts() const { return plan_.vts; }
  [[nodiscard]] const df::Repetitions& repetitions() const { return plan_.repetitions; }
  [[nodiscard]] const df::SequentialSchedule& pass() const { return plan_.pass; }
  [[nodiscard]] const sched::Assignment& assignment() const { return assignment_; }
  [[nodiscard]] const sched::SyncGraph& sync_graph() const { return plan_.sync_graph; }
  [[nodiscard]] const sched::ProcOrder& proc_order() const { return plan_.proc_order; }
  [[nodiscard]] const std::optional<sched::ResyncReport>& resync_report() const {
    return plan_.resync;
  }
  [[nodiscard]] const std::vector<ChannelPlan>& channels() const { return plan_.channels; }
  /// O(1) via the plan's edge-id index.
  [[nodiscard]] const ChannelPlan& channel_for(df::EdgeId edge) const {
    return plan_.channel_for(edge);
  }

  /// Synchronization messages per graph iteration under the current plan
  /// (data messages + surviving acks + resynchronization messages).
  [[nodiscard]] std::size_t messages_per_iteration() const {
    return plan_.messages_per_iteration;
  }

  // --- execution ---------------------------------------------------------
  /// The SPI cost-model backend configured for this system's channels.
  [[nodiscard]] const SpiBackend& backend() const { return *backend_; }

  /// Runs the timed platform simulation with the SPI backend. A null
  /// workload payload hook defaults to each channel's static payload
  /// (worst case for dynamic channels).
  [[nodiscard]] sim::ExecStats run_timed(const sim::TimedExecutorOptions& options,
                                         sim::WorkloadModel workload = {}) const;

  /// Same, with an alternative protocol backend (e.g. the MPI baseline)
  /// — the controlled comparison DESIGN.md describes.
  [[nodiscard]] sim::ExecStats run_timed_with(const sim::CommBackend& backend,
                                              const sim::TimedExecutorOptions& options,
                                              sim::WorkloadModel workload = {}) const;

  /// Human-readable compilation report (channels, protocols, bounds,
  /// resynchronization summary).
  [[nodiscard]] std::string report() const { return plan_.report(); }

  /// Machine-readable plan (JSON round-trip format, see
  /// ExecutablePlan::to_json). Consumed by downstream tooling
  /// (`spi_compile --json` / `--emit-plan`).
  [[nodiscard]] std::string plan_json() const { return plan_.to_json(); }

  /// Publishes the compile-time plan as gauges: channel counts by
  /// mode/protocol, per-channel and aggregate ack/elision counts, and
  /// the equation-1 / equation-2 buffer-byte bounds. Called
  /// automatically on the registry in SpiSystemOptions::metrics;
  /// callable explicitly for any other registry.
  void publish_plan_metrics(obs::MetricRegistry& registry) const {
    plan_.publish_metrics(registry);
  }

 private:
  df::Graph app_;
  sched::Assignment assignment_;
  ExecutablePlan plan_;
  std::unique_ptr<SpiBackend> backend_;
};

}  // namespace spi::core
