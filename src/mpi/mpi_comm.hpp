/// \file mpi_comm.hpp
/// A miniature general-purpose message-passing layer in the style of MPI
/// point-to-point communication — the baseline SPI is measured against.
///
/// Faithful to the *costs* the paper attributes to MPI in the signal
/// processing setting: every message carries a full envelope (source,
/// destination, tag, datatype, element count) even though a dataflow
/// channel's peer, length and type never change; receivers perform
/// run-time envelope matching (with an unexpected-message queue) even
/// though arrival order per channel is fixed; and buffers are managed
/// dynamically because the library cannot know static bounds. None of
/// this work exists in SPI_static, which is the paper's point.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace spi::mpi {

using Bytes = std::vector<std::uint8_t>;
using Rank = std::int32_t;
using Tag = std::int32_t;

inline constexpr Tag kAnyTag = -1;
inline constexpr Rank kAnySource = -1;

/// MPI-style datatype identifier (travels in every envelope).
enum class Datatype : std::int32_t { kByte = 0, kInt32 = 1, kFloat32 = 2, kFloat64 = 3 };
[[nodiscard]] std::int64_t datatype_size(Datatype t);

/// The wire envelope of every message (what SPI strips down to a 4- or
/// 8-byte header).
struct Envelope {
  Rank source = 0;
  Rank dest = 0;
  Tag tag = 0;
  Datatype datatype = Datatype::kByte;
  std::int64_t count = 0;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Envelope bytes on the wire: 4 (src) + 4 (dst) + 4 (tag) + 4 (type) +
/// 8 (count) = 24.
inline constexpr std::int64_t kEnvelopeBytes = 24;

struct MpiStats {
  std::int64_t sends = 0;
  std::int64_t receives = 0;
  std::int64_t wire_bytes = 0;
  std::int64_t matches_scanned = 0;   ///< envelopes examined during matching
  std::int64_t unexpected_enqueued = 0;
};

/// In-process mailbox fabric connecting `size` ranks.
class MpiComm {
 public:
  explicit MpiComm(std::int32_t size);

  [[nodiscard]] std::int32_t size() const { return static_cast<std::int32_t>(mailbox_.size()); }
  [[nodiscard]] const MpiStats& stats() const { return stats_; }

  /// Non-blocking-style send: the message (envelope + payload copy) is
  /// queued at the destination. `count` elements of `type` must match
  /// payload.size().
  void send(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
            const Bytes& payload);

  /// Matching receive: returns the oldest queued message whose envelope
  /// matches (source, tag), where kAnySource / kAnyTag are wildcards.
  /// Returns std::nullopt when nothing matches (caller would block).
  /// Non-matching messages scanned on the way are counted as matching
  /// work and remain queued (the unexpected-message queue).
  [[nodiscard]] std::optional<std::pair<Envelope, Bytes>> receive(Rank self, Rank source, Tag tag);

  /// Messages currently queued at a rank (diagnostics).
  [[nodiscard]] std::size_t pending(Rank self) const;

 private:
  struct Queued {
    Envelope envelope;
    Bytes payload;
  };
  std::vector<std::deque<Queued>> mailbox_;
  MpiStats stats_;
};

}  // namespace spi::mpi
