/// \file mpi_comm.hpp
/// A miniature general-purpose message-passing layer in the style of MPI
/// point-to-point communication — the baseline SPI is measured against.
///
/// Faithful to the *costs* the paper attributes to MPI in the signal
/// processing setting: every message carries a full envelope (source,
/// destination, tag, datatype, element count) even though a dataflow
/// channel's peer, length and type never change; receivers perform
/// run-time envelope matching (with an unexpected-message queue) even
/// though arrival order per channel is fixed; and buffers are managed
/// dynamically because the library cannot know static bounds. None of
/// this work exists in SPI_static, which is the paper's point.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "sim/fault.hpp"

namespace spi::mpi {

using Bytes = std::vector<std::uint8_t>;
using Rank = std::int32_t;
using Tag = std::int32_t;

inline constexpr Tag kAnyTag = -1;
inline constexpr Rank kAnySource = -1;

/// MPI-style datatype identifier (travels in every envelope).
enum class Datatype : std::int32_t { kByte = 0, kInt32 = 1, kFloat32 = 2, kFloat64 = 3 };
[[nodiscard]] std::int64_t datatype_size(Datatype t);

/// The wire envelope of every message (what SPI strips down to a 4- or
/// 8-byte header).
struct Envelope {
  Rank source = 0;
  Rank dest = 0;
  Tag tag = 0;
  Datatype datatype = Datatype::kByte;
  std::int64_t count = 0;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Envelope bytes on the wire: 4 (src) + 4 (dst) + 4 (tag) + 4 (type) +
/// 8 (count) = 24.
inline constexpr std::int64_t kEnvelopeBytes = 24;

struct MpiStats {
  std::int64_t sends = 0;
  std::int64_t receives = 0;
  std::int64_t wire_bytes = 0;
  std::int64_t matches_scanned = 0;   ///< envelopes examined during matching
  std::int64_t unexpected_enqueued = 0;
  // Fault-plan effects (zero without set_faults):
  std::int64_t dropped = 0;          ///< messages the wire swallowed
  std::int64_t corrupted = 0;        ///< payloads delivered with flipped bits
  std::int64_t duplicated = 0;       ///< extra copies delivered
  std::int64_t retransmissions = 0;  ///< send_reliable retries
  std::int64_t backoff_us = 0;       ///< modeled backoff time of send_reliable
};

/// In-process mailbox fabric connecting `size` ranks.
class MpiComm {
 public:
  explicit MpiComm(std::int32_t size);

  [[nodiscard]] std::int32_t size() const { return static_cast<std::int32_t>(mailbox_.size()); }
  [[nodiscard]] const MpiStats& stats() const { return stats_; }

  /// Attaches a deterministic fault plan to the fabric (null detaches).
  /// The plan is keyed by message *tag* (the MPI analogue of SPI's edge
  /// id) and the per-(dest, tag) send sequence, so lossy runs are
  /// reproducible. Not owned; must outlive the comm.
  void set_faults(const sim::FaultPlan* plan) { faults_ = plan; }

  /// Non-blocking-style send: the message (envelope + payload copy) is
  /// queued at the destination. `count` elements of `type` must match
  /// payload.size().
  ///
  /// Under a fault plan this is the *unprotected* baseline path: dropped
  /// messages vanish, corrupted payloads are delivered silently (generic
  /// MPI carries no integrity check — the contrast to SPI's CRC-checked
  /// reliable transport), duplicates arrive twice. Stats record each.
  void send(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
            const Bytes& payload);

  /// Acknowledged transfer: retries dropped/corrupted attempts under the
  /// plan's RetryPolicy (backoff is accounted in stats, not slept — the
  /// fabric is a single-threaded model). Exactly one intact copy is
  /// delivered, plus any duplicates. Throws sim::ChannelError when the
  /// retry budget is exhausted. Without a fault plan it equals send().
  void send_reliable(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
                     const Bytes& payload);

  /// Matching receive: returns the oldest queued message whose envelope
  /// matches (source, tag), where kAnySource / kAnyTag are wildcards.
  /// Returns std::nullopt when nothing matches (caller would block).
  /// Non-matching messages scanned on the way are counted as matching
  /// work and remain queued (the unexpected-message queue).
  [[nodiscard]] std::optional<std::pair<Envelope, Bytes>> receive(Rank self, Rank source, Tag tag);

  /// Messages currently queued at a rank (diagnostics).
  [[nodiscard]] std::size_t pending(Rank self) const;

 private:
  struct Queued {
    Envelope envelope;
    Bytes payload;
  };

  void validate_send(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
                     const Bytes& payload) const;
  void deliver(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
               Bytes payload);

  std::vector<std::deque<Queued>> mailbox_;
  MpiStats stats_;
  const sim::FaultPlan* faults_ = nullptr;
  /// Per-(dest, tag) message sequence feeding the fault plan's draws.
  std::map<std::pair<Rank, Tag>, std::int64_t> next_seq_;
};

}  // namespace spi::mpi
