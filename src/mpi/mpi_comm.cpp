#include "mpi/mpi_comm.hpp"

#include <stdexcept>

namespace spi::mpi {

std::int64_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kByte: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kFloat32: return 4;
    case Datatype::kFloat64: return 8;
  }
  throw std::invalid_argument("datatype_size: unknown datatype");
}

MpiComm::MpiComm(std::int32_t size) {
  if (size <= 0) throw std::invalid_argument("MpiComm: size must be positive");
  mailbox_.resize(static_cast<std::size_t>(size));
}

void MpiComm::validate_send(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
                            const Bytes& payload) const {
  if (source < 0 || source >= size() || dest < 0 || dest >= size())
    throw std::out_of_range("MpiComm::send: invalid rank");
  if (tag < 0) throw std::invalid_argument("MpiComm::send: negative tag");
  if (count * datatype_size(type) != static_cast<std::int64_t>(payload.size()))
    throw std::invalid_argument("MpiComm::send: count/datatype disagree with payload size");
}

void MpiComm::deliver(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
                      Bytes payload) {
  mailbox_[static_cast<std::size_t>(dest)].push_back(
      Queued{Envelope{source, dest, tag, type, count}, std::move(payload)});
}

void MpiComm::send(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
                   const Bytes& payload) {
  validate_send(source, dest, tag, type, count, payload);
  stats_.sends += 1;
  stats_.wire_bytes += kEnvelopeBytes + static_cast<std::int64_t>(payload.size());
  if (!faults_) {
    deliver(source, dest, tag, type, count, payload);
    return;
  }

  const std::int64_t seq = next_seq_[{dest, tag}]++;
  const sim::FaultOutcome outcome = faults_->outcome(static_cast<df::EdgeId>(tag), seq, 0);
  if (outcome.kind == sim::FaultOutcome::Kind::kDrop) {
    stats_.dropped += 1;  // generic MPI: the loss is silent
    return;
  }
  Bytes delivered = payload;
  if (outcome.kind == sim::FaultOutcome::Kind::kCorrupt && !delivered.empty()) {
    // No envelope CRC in the generic baseline: the flipped byte reaches
    // the application undetected (the contrast SPI's checked transport
    // exists to make).
    delivered[static_cast<std::size_t>(outcome.entropy % delivered.size())] ^=
        static_cast<std::uint8_t>(1 + (outcome.entropy >> 32) % 255);
    stats_.corrupted += 1;
  }
  deliver(source, dest, tag, type, count, delivered);
  if (outcome.duplicate) {
    stats_.duplicated += 1;
    stats_.wire_bytes += kEnvelopeBytes + static_cast<std::int64_t>(payload.size());
    deliver(source, dest, tag, type, count, std::move(delivered));
  }
}

void MpiComm::send_reliable(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
                            const Bytes& payload) {
  validate_send(source, dest, tag, type, count, payload);
  if (!faults_) {
    send(source, dest, tag, type, count, payload);
    return;
  }

  const auto edge = static_cast<df::EdgeId>(tag);
  const std::int64_t seq = next_seq_[{dest, tag}]++;
  const sim::RetryPolicy& policy = faults_->retry();
  for (int attempt = 0; attempt < policy.attempts; ++attempt) {
    stats_.sends += 1;
    stats_.wire_bytes += kEnvelopeBytes + static_cast<std::int64_t>(payload.size());
    const sim::FaultOutcome outcome = faults_->outcome(edge, seq, attempt);
    if (outcome.kind == sim::FaultOutcome::Kind::kDeliver) {
      deliver(source, dest, tag, type, count, payload);
      if (outcome.duplicate) {
        stats_.duplicated += 1;
        stats_.wire_bytes += kEnvelopeBytes + static_cast<std::int64_t>(payload.size());
        deliver(source, dest, tag, type, count, payload);
      }
      return;
    }
    // Dropped or corrupted: the acknowledged transfer detects it and
    // retries; the damaged copy is never surfaced to the receiver.
    if (outcome.kind == sim::FaultOutcome::Kind::kDrop)
      stats_.dropped += 1;
    else
      stats_.corrupted += 1;
    if (attempt + 1 < policy.attempts) {
      stats_.retransmissions += 1;
      stats_.backoff_us += policy.backoff_us(attempt + 1, faults_->jitter_key(edge, seq, attempt));
    }
  }
  throw sim::ChannelError(sim::ChannelErrorKind::kRetriesExhausted, edge, policy.attempts,
                          "MpiComm::send_reliable: every attempt dropped or corrupted");
}

std::optional<std::pair<Envelope, Bytes>> MpiComm::receive(Rank self, Rank source, Tag tag) {
  if (self < 0 || self >= size()) throw std::out_of_range("MpiComm::receive: invalid rank");
  auto& queue = mailbox_[static_cast<std::size_t>(self)];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    stats_.matches_scanned += 1;
    const bool source_ok = source == kAnySource || it->envelope.source == source;
    const bool tag_ok = tag == kAnyTag || it->envelope.tag == tag;
    if (source_ok && tag_ok) {
      auto result = std::make_pair(it->envelope, std::move(it->payload));
      queue.erase(it);
      stats_.receives += 1;
      return result;
    }
    stats_.unexpected_enqueued += 1;  // scanned but left for a later receive
  }
  return std::nullopt;
}

std::size_t MpiComm::pending(Rank self) const {
  return mailbox_.at(static_cast<std::size_t>(self)).size();
}

}  // namespace spi::mpi
