#include "mpi/mpi_comm.hpp"

#include <stdexcept>

namespace spi::mpi {

std::int64_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kByte: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kFloat32: return 4;
    case Datatype::kFloat64: return 8;
  }
  throw std::invalid_argument("datatype_size: unknown datatype");
}

MpiComm::MpiComm(std::int32_t size) {
  if (size <= 0) throw std::invalid_argument("MpiComm: size must be positive");
  mailbox_.resize(static_cast<std::size_t>(size));
}

void MpiComm::send(Rank source, Rank dest, Tag tag, Datatype type, std::int64_t count,
                   const Bytes& payload) {
  if (source < 0 || source >= size() || dest < 0 || dest >= size())
    throw std::out_of_range("MpiComm::send: invalid rank");
  if (tag < 0) throw std::invalid_argument("MpiComm::send: negative tag");
  if (count * datatype_size(type) != static_cast<std::int64_t>(payload.size()))
    throw std::invalid_argument("MpiComm::send: count/datatype disagree with payload size");
  mailbox_[static_cast<std::size_t>(dest)].push_back(
      Queued{Envelope{source, dest, tag, type, count}, payload});
  stats_.sends += 1;
  stats_.wire_bytes += kEnvelopeBytes + static_cast<std::int64_t>(payload.size());
}

std::optional<std::pair<Envelope, Bytes>> MpiComm::receive(Rank self, Rank source, Tag tag) {
  if (self < 0 || self >= size()) throw std::out_of_range("MpiComm::receive: invalid rank");
  auto& queue = mailbox_[static_cast<std::size_t>(self)];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    stats_.matches_scanned += 1;
    const bool source_ok = source == kAnySource || it->envelope.source == source;
    const bool tag_ok = tag == kAnyTag || it->envelope.tag == tag;
    if (source_ok && tag_ok) {
      auto result = std::make_pair(it->envelope, std::move(it->payload));
      queue.erase(it);
      stats_.receives += 1;
      return result;
    }
    stats_.unexpected_enqueued += 1;  // scanned but left for a later receive
  }
  return std::nullopt;
}

std::size_t MpiComm::pending(Rank self) const {
  return mailbox_.at(static_cast<std::size_t>(self)).size();
}

}  // namespace spi::mpi
