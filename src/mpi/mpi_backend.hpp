/// \file mpi_backend.hpp
/// Timing cost model of the generic MPI-style baseline.
///
/// A software message-passing stack runs *on the processing element*: the
/// PE itself executes the send path (envelope construction, buffer
/// management, protocol decision) and pays a per-byte copy into the
/// library's staging buffer — communication is not separated from
/// computation. Large payloads switch from the eager protocol to
/// rendezvous, adding a request-to-send / clear-to-send round trip before
/// data moves (standard MPI behaviour, and the overhead TMD-MPI-style
/// FPGA ports inherit). Matching cost on the receive side delays message
/// availability.
#pragma once

#include "mpi/mpi_comm.hpp"
#include "sim/comm_backend.hpp"

namespace spi::mpi {

struct MpiCostParams {
  std::int64_t send_sw_cycles = 120;      ///< send-path software overhead on the PE
  std::int64_t copy_bytes_per_cycle = 4;  ///< staging-buffer copy bandwidth
  std::int64_t match_cycles = 60;         ///< receive-side envelope matching latency
  std::int64_t eager_threshold_bytes = 1024;  ///< above this: rendezvous protocol
};

class MpiBackend final : public sim::CommBackend {
 public:
  explicit MpiBackend(MpiCostParams params = {}) : params_(params) {}

  [[nodiscard]] sim::MessageCost data_message(const sim::ChannelInfo&,
                                              std::int64_t payload_bytes) const override {
    sim::MessageCost cost;
    cost.pe_block_cycles =
        params_.send_sw_cycles + payload_bytes / params_.copy_bytes_per_cycle;
    cost.offload_cycles = params_.match_cycles;  // receive-side matching delay
    cost.wire_bytes = kEnvelopeBytes + payload_bytes;
    cost.handshake_roundtrips = payload_bytes > params_.eager_threshold_bytes ? 1 : 0;
    return cost;
  }

  [[nodiscard]] sim::MessageCost sync_message(const sim::ChannelInfo& channel) const override {
    return data_message(channel, 0);  // a zero-byte message still pays the full stack
  }

  [[nodiscard]] const char* name() const override { return "MPI-generic"; }

 private:
  MpiCostParams params_;
};

}  // namespace spi::mpi
