#include "dataflow/looped_schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "dataflow/graph_algos.hpp"

namespace spi::df {

ScheduleNode ScheduleNode::loop(std::int64_t count, std::vector<ScheduleNode> body) {
  if (count <= 0) throw std::invalid_argument("ScheduleNode::loop: count must be positive");
  if (count == 1 && body.size() == 1) return std::move(body.front());  // trivial loop folding
  ScheduleNode n;
  n.count_ = count;
  n.body_ = std::move(body);
  return n;
}

void ScheduleNode::expand(std::vector<ActorId>& out) const {
  if (is_actor()) {
    out.push_back(actor_);
    return;
  }
  for (std::int64_t i = 0; i < count_; ++i)
    for (const ScheduleNode& child : body_) child.expand(out);
}

std::size_t ScheduleNode::appearances() const {
  if (is_actor()) return 1;
  std::size_t n = 0;
  for (const ScheduleNode& child : body_) n += child.appearances();
  return n;
}

std::string ScheduleNode::str(const Graph& g) const {
  if (is_actor()) return g.actor(actor_).name;
  std::ostringstream out;
  out << "(" << count_;
  for (const ScheduleNode& child : body_) out << " " << child.str(g);
  out << ")";
  return out.str();
}

bool is_valid_schedule(const Graph& g, const Repetitions& reps, const LoopedSchedule& schedule) {
  if (!reps.consistent) return false;
  std::vector<std::int64_t> tokens(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    tokens[e] = g.edge(static_cast<EdgeId>(e)).delay;
  std::vector<std::int64_t> fired(g.actor_count(), 0);
  for (ActorId a : schedule.firings()) {
    for (EdgeId e : g.in_edges(a)) {
      tokens[static_cast<std::size_t>(e)] -= g.edge(e).cons.value();
      if (tokens[static_cast<std::size_t>(e)] < 0) return false;
    }
    for (EdgeId e : g.out_edges(a)) tokens[static_cast<std::size_t>(e)] += g.edge(e).prod.value();
    ++fired[static_cast<std::size_t>(a)];
  }
  for (std::size_t a = 0; a < g.actor_count(); ++a)
    if (fired[a] != reps.of(static_cast<ActorId>(a))) return false;
  return true;
}

std::vector<std::int64_t> buffer_bounds_under(const Graph& g, const LoopedSchedule& schedule) {
  std::vector<std::int64_t> tokens(g.edge_count());
  std::vector<std::int64_t> peak(g.edge_count());
  for (std::size_t e = 0; e < g.edge_count(); ++e)
    tokens[e] = peak[e] = g.edge(static_cast<EdgeId>(e)).delay;
  for (ActorId a : schedule.firings()) {
    for (EdgeId e : g.in_edges(a)) tokens[static_cast<std::size_t>(e)] -= g.edge(e).cons.value();
    for (EdgeId e : g.out_edges(a)) {
      auto& t = tokens[static_cast<std::size_t>(e)];
      t += g.edge(e).prod.value();
      peak[static_cast<std::size_t>(e)] = std::max(peak[static_cast<std::size_t>(e)], t);
    }
  }
  return peak;
}

namespace {

/// APGAN working state over a shrinking cluster DAG.
struct ClusterGraph {
  struct Cluster {
    std::int64_t reps = 1;
    ScheduleNode tree = ScheduleNode::actor(0);
    bool alive = false;
  };
  std::vector<Cluster> clusters;
  /// Directed cluster adjacency derived from the SDF edges; parallel
  /// edges collapse.
  std::vector<std::pair<std::int32_t, std::int32_t>> arcs;

  [[nodiscard]] bool has_arc(std::int32_t u, std::int32_t v) const {
    return std::find(arcs.begin(), arcs.end(), std::make_pair(u, v)) != arcs.end();
  }

  /// True when a u ~> v path exists that uses at least one intermediate
  /// cluster (i.e. not only the direct arc). Contracting (u, v) then
  /// creates a cycle.
  [[nodiscard]] bool indirect_path(std::int32_t u, std::int32_t v) const {
    std::vector<std::int32_t> stack;
    std::vector<bool> seen(clusters.size(), false);
    for (const auto& [from, to] : arcs)
      if (from == u && to != v && !seen[static_cast<std::size_t>(to)]) {
        seen[static_cast<std::size_t>(to)] = true;
        stack.push_back(to);
      }
    while (!stack.empty()) {
      const std::int32_t x = stack.back();
      stack.pop_back();
      if (x == v) return true;
      for (const auto& [from, to] : arcs)
        if (from == x && !seen[static_cast<std::size_t>(to)]) {
          seen[static_cast<std::size_t>(to)] = true;
          stack.push_back(to);
        }
    }
    return false;
  }

  /// Contracts v into u (u precedes v in the merged body).
  void contract(std::int32_t u, std::int32_t v) {
    auto& cu = clusters[static_cast<std::size_t>(u)];
    auto& cv = clusters[static_cast<std::size_t>(v)];
    const std::int64_t g = std::gcd(cu.reps, cv.reps);
    std::vector<ScheduleNode> body;
    body.push_back(ScheduleNode::loop(cu.reps / g, {std::move(cu.tree)}));
    body.push_back(ScheduleNode::loop(cv.reps / g, {std::move(cv.tree)}));
    cu.tree = ScheduleNode::loop(1, std::move(body));
    cu.reps = g;
    cv.alive = false;
    for (auto& [from, to] : arcs) {
      if (from == v) from = u;
      if (to == v) to = u;
    }
    // Drop self-loops and duplicates.
    arcs.erase(std::remove_if(arcs.begin(), arcs.end(),
                              [](const auto& a) { return a.first == a.second; }),
               arcs.end());
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  }
};

}  // namespace

LoopedSchedule apgan_schedule(const Graph& g, const Repetitions& reps) {
  if (!g.is_sdf()) throw std::invalid_argument("apgan_schedule: dynamic graph (VTS-convert first)");
  if (!reps.consistent) throw std::invalid_argument("apgan_schedule: inconsistent graph");
  {
    WeightedDigraph zero(g.actor_count());
    for (const Edge& e : g.edges()) zero.add_arc(e.src, e.snk, 0);
    if (!topological_order(zero).has_value())
      throw std::invalid_argument("apgan_schedule: graph has cycles (not supported)");
  }

  ClusterGraph cg;
  cg.clusters.resize(g.actor_count());
  for (std::size_t a = 0; a < g.actor_count(); ++a) {
    cg.clusters[a].reps = reps.of(static_cast<ActorId>(a));
    cg.clusters[a].tree = ScheduleNode::actor(static_cast<ActorId>(a));
    cg.clusters[a].alive = true;
  }
  for (const Edge& e : g.edges())
    if (e.src != e.snk) cg.arcs.emplace_back(e.src, e.snk);
  std::sort(cg.arcs.begin(), cg.arcs.end());
  cg.arcs.erase(std::unique(cg.arcs.begin(), cg.arcs.end()), cg.arcs.end());

  // Greedy contraction: adjacent pair with the maximum repetition gcd
  // whose contraction keeps the cluster graph acyclic.
  while (true) {
    std::int32_t best_u = -1, best_v = -1;
    std::int64_t best_gcd = 0;
    for (const auto& [u, v] : cg.arcs) {
      if (cg.indirect_path(u, v)) continue;  // contraction would close a cycle
      const std::int64_t rho = std::gcd(cg.clusters[static_cast<std::size_t>(u)].reps,
                                        cg.clusters[static_cast<std::size_t>(v)].reps);
      if (rho > best_gcd) {
        best_gcd = rho;
        best_u = u;
        best_v = v;
      }
    }
    if (best_u < 0) break;
    cg.contract(best_u, best_v);
  }

  // Assemble surviving clusters (one per connected component, plus any
  // arcs that could not be contracted — emit in topological order).
  std::vector<std::int32_t> survivors;
  for (std::size_t c = 0; c < cg.clusters.size(); ++c)
    if (cg.clusters[c].alive) survivors.push_back(static_cast<std::int32_t>(c));
  // Topological order of survivors w.r.t. remaining arcs.
  std::stable_sort(survivors.begin(), survivors.end(), [&](std::int32_t a, std::int32_t b) {
    if (cg.has_arc(a, b)) return true;
    if (cg.has_arc(b, a)) return false;
    return a < b;
  });
  // (stable_sort with a partial order is only a heuristic; do an exact
  // Kahn pass instead when arcs survive.)
  if (!cg.arcs.empty()) {
    std::vector<std::int32_t> order;
    std::vector<std::int32_t> indegree(cg.clusters.size(), 0);
    for (const auto& [u, v] : cg.arcs) ++indegree[static_cast<std::size_t>(v)];
    std::vector<std::int32_t> ready;
    for (std::int32_t c : survivors)
      if (indegree[static_cast<std::size_t>(c)] == 0) ready.push_back(c);
    std::vector<bool> emitted(cg.clusters.size(), false);
    while (!ready.empty()) {
      std::sort(ready.begin(), ready.end());
      const std::int32_t c = ready.front();
      ready.erase(ready.begin());
      order.push_back(c);
      emitted[static_cast<std::size_t>(c)] = true;
      for (const auto& [u, v] : cg.arcs)
        if (u == c && --indegree[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
    if (order.size() == survivors.size()) survivors = std::move(order);
  }

  std::vector<ScheduleNode> roots;
  roots.reserve(survivors.size());
  for (std::int32_t c : survivors) {
    auto& cluster = cg.clusters[static_cast<std::size_t>(c)];
    roots.push_back(ScheduleNode::loop(cluster.reps, {std::move(cluster.tree)}));
  }
  LoopedSchedule schedule;
  schedule.root = ScheduleNode::loop(1, std::move(roots));
  return schedule;
}

}  // namespace spi::df
