/// \file rational.hpp
/// Exact rational arithmetic used by the SDF balance-equation solver.
///
/// Repetitions vectors must be computed exactly: floating point would
/// mis-classify graphs as (in)consistent for large co-prime rates. The
/// class keeps values normalized (gcd-reduced, denominator > 0) so that
/// equality is structural.
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>

namespace spi::df {

/// Exact rational number over 64-bit integers, always stored normalized.
class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT: implicit by design
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    if (den_ == 0) throw std::invalid_argument("Rational: zero denominator");
    normalize();
  }

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }
  [[nodiscard]] constexpr bool is_integer() const { return den_ == 1; }
  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }

  /// Integer value; throws unless is_integer().
  [[nodiscard]] std::int64_t to_integer() const {
    if (!is_integer()) throw std::domain_error("Rational: not an integer: " + str());
    return num_;
  }

  [[nodiscard]] Rational reciprocal() const {
    if (num_ == 0) throw std::domain_error("Rational: reciprocal of zero");
    return {den_, num_};
  }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return {a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_};
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return {a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_};
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return {a.num_ * b.num_, a.den_ * b.den_};
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    return a * b.reciprocal();
  }
  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }
  friend bool operator<(const Rational& a, const Rational& b) {
    return a.num_ * b.den_ < b.num_ * a.den_;
  }

  [[nodiscard]] std::string str() const {
    return is_integer() ? std::to_string(num_)
                        : std::to_string(num_) + "/" + std::to_string(den_);
  }

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// Least common multiple that guards against the zero cases the std
/// version leaves undefined for our usage.
inline std::int64_t lcm_positive(std::int64_t a, std::int64_t b) {
  if (a <= 0 || b <= 0) throw std::invalid_argument("lcm_positive: non-positive input");
  return std::lcm(a, b);
}

}  // namespace spi::df
