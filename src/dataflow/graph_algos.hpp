/// \file graph_algos.hpp
/// Generic directed-graph algorithms shared by the dataflow, scheduling
/// and synchronization layers: Tarjan SCC, topological sort, and
/// minimum-delay path computation (the Γ term of the paper's equation 2,
/// and the redundancy test of resynchronization both reduce to it).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "dataflow/graph.hpp"

namespace spi::df {

/// Lightweight adjacency-list digraph with non-negative integer edge
/// weights ("delays"). Dataflow, IPC and synchronization graphs all
/// project onto this structure for analysis.
class WeightedDigraph {
 public:
  struct Arc {
    std::int32_t to = 0;
    std::int64_t weight = 0;
  };

  explicit WeightedDigraph(std::size_t node_count) : adj_(node_count) {}

  void add_arc(std::int32_t from, std::int32_t to, std::int64_t weight) {
    if (weight < 0) throw std::invalid_argument("WeightedDigraph: negative weight");
    adj_.at(static_cast<std::size_t>(from)).push_back(Arc{to, weight});
  }

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] const std::vector<Arc>& arcs(std::int32_t from) const {
    return adj_.at(static_cast<std::size_t>(from));
  }

  /// Projects a dataflow graph: one node per actor, one arc per edge,
  /// weighted by the edge delay (initial tokens).
  static WeightedDigraph from_dataflow(const Graph& g);

 private:
  std::vector<std::vector<Arc>> adj_;
};

inline constexpr std::int64_t kUnreachable = std::numeric_limits<std::int64_t>::max();

/// Single-source minimum-delay distances (Dijkstra; weights are
/// non-negative by construction). dist[v] == kUnreachable when v is not
/// reachable from source.
[[nodiscard]] std::vector<std::int64_t> min_delay_from(const WeightedDigraph& g, std::int32_t source);

/// All-pairs minimum delay; result[u][v]. O(V·(E log V)).
[[nodiscard]] std::vector<std::vector<std::int64_t>> all_pairs_min_delay(const WeightedDigraph& g);

/// Strongly connected components (Tarjan). Returns component index per
/// node; components are numbered in reverse topological order of the
/// component DAG (i.e. a component only reaches components with smaller
/// or equal index... specifically, Tarjan emission order).
struct SccResult {
  std::vector<std::int32_t> component;  ///< node -> component id
  std::int32_t count = 0;
};
[[nodiscard]] SccResult strongly_connected_components(const WeightedDigraph& g);

/// Topological order of a DAG; std::nullopt when the graph has a cycle.
[[nodiscard]] std::optional<std::vector<std::int32_t>> topological_order(const WeightedDigraph& g);

/// True when `to` is reachable from `from` along arcs of any weight.
[[nodiscard]] bool reachable(const WeightedDigraph& g, std::int32_t from, std::int32_t to);

}  // namespace spi::df
