/// \file graph.hpp
/// Coarse-grain dataflow graph model underlying SPI.
///
/// The model follows the paper's terminology: a graph of *actors* connected
/// by *edges* (FIFO channels). Each edge endpoint has a token *rate*; rates
/// are either static (classic SDF, Lee/Messerschmitt) or *dynamic with a
/// known upper bound* — the precondition for the paper's Variable Token
/// Size (VTS) conversion (Section 3). Edges carry a token width in bytes
/// and an initial token count (*delay*).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace spi::df {

using ActorId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr ActorId kInvalidActor = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// Token production/consumption rate of one edge endpoint.
///
/// A static rate transfers exactly `bound()` tokens per firing. A dynamic
/// rate transfers a run-time-determined number of tokens in [0, bound()];
/// the bound must be finite and known at compile time, as required for VTS
/// conversion (the paper disallows unbounded dynamic ports).
class Rate {
 public:
  static Rate fixed(std::int64_t tokens) {
    if (tokens <= 0) throw std::invalid_argument("Rate::fixed: rate must be positive");
    return Rate{tokens, false};
  }
  static Rate dynamic(std::int64_t upper_bound) {
    if (upper_bound <= 0) throw std::invalid_argument("Rate::dynamic: bound must be positive");
    return Rate{upper_bound, true};
  }

  [[nodiscard]] std::int64_t bound() const { return bound_; }
  [[nodiscard]] bool is_dynamic() const { return dynamic_; }

  /// Static rate value; throws for dynamic rates (callers must VTS-convert
  /// the graph before running SDF analyses).
  [[nodiscard]] std::int64_t value() const {
    if (dynamic_) throw std::domain_error("Rate::value: dynamic rate has no static value");
    return bound_;
  }

  friend bool operator==(const Rate&, const Rate&) = default;

 private:
  Rate(std::int64_t bound, bool dynamic) : bound_(bound), dynamic_(dynamic) {}
  std::int64_t bound_ = 1;
  bool dynamic_ = false;
};

/// A dataflow actor (task). `exec_cycles` is the default firing duration
/// used by the timing simulator; applications may override it per firing.
struct Actor {
  std::string name;
  std::int64_t exec_cycles = 1;
};

/// A dataflow edge: FIFO channel src -> snk.
struct Edge {
  ActorId src = kInvalidActor;
  ActorId snk = kInvalidActor;
  Rate prod = Rate::fixed(1);   ///< tokens produced per src firing
  Rate cons = Rate::fixed(1);   ///< tokens consumed per snk firing
  std::int64_t delay = 0;       ///< initial tokens on the channel
  std::int64_t token_bytes = 4; ///< bytes per (raw, unpacked) token
  std::string name;

  [[nodiscard]] bool is_dynamic() const { return prod.is_dynamic() || cons.is_dynamic(); }
};

/// Application dataflow graph. Actors and edges are identified by dense
/// integer ids; adjacency lists are maintained incrementally.
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  ActorId add_actor(std::string name, std::int64_t exec_cycles = 1);

  /// Connects src -> snk with the given endpoint rates.
  EdgeId connect(ActorId src, Rate prod, ActorId snk, Rate cons,
                 std::int64_t delay = 0, std::int64_t token_bytes = 4,
                 std::string edge_name = {});

  /// Convenience for homogeneous (rate-1/1) edges.
  EdgeId connect_simple(ActorId src, ActorId snk, std::int64_t delay = 0,
                        std::int64_t token_bytes = 4) {
    return connect(src, Rate::fixed(1), snk, Rate::fixed(1), delay, token_bytes);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Actor& actor(ActorId id) const { return actors_.at(checked(id, actors_.size(), "actor")); }
  [[nodiscard]] Actor& actor(ActorId id) { return actors_.at(checked(id, actors_.size(), "actor")); }
  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_.at(checked(id, edges_.size(), "edge")); }
  [[nodiscard]] Edge& edge(EdgeId id) { return edges_.at(checked(id, edges_.size(), "edge")); }

  [[nodiscard]] std::span<const Actor> actors() const { return actors_; }
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Edge ids leaving / entering an actor.
  [[nodiscard]] std::span<const EdgeId> out_edges(ActorId a) const { return out_.at(static_cast<std::size_t>(a)); }
  [[nodiscard]] std::span<const EdgeId> in_edges(ActorId a) const { return in_.at(static_cast<std::size_t>(a)); }

  /// True when every endpoint rate is static — i.e. the graph is pure SDF
  /// and all classic SDF analyses (repetitions, bounds, PASS) apply.
  [[nodiscard]] bool is_sdf() const;

  /// Ids of all edges with at least one dynamic endpoint.
  [[nodiscard]] std::vector<EdgeId> dynamic_edges() const;

  /// Looks up an actor by name; returns kInvalidActor when absent.
  [[nodiscard]] ActorId find_actor(std::string_view name) const;

 private:
  static std::size_t checked(std::int32_t id, std::size_t size, const char* what) {
    if (id < 0 || static_cast<std::size_t>(id) >= size)
      throw std::out_of_range(std::string("Graph: invalid ") + what + " id " + std::to_string(id));
    return static_cast<std::size_t>(id);
  }

  std::string name_;
  std::vector<Actor> actors_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace spi::df
