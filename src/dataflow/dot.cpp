#include "dataflow/dot.hpp"

#include <sstream>

namespace spi::df {

namespace {
std::string rate_label(const Rate& r) {
  return r.is_dynamic() ? "<=" + std::to_string(r.bound()) : std::to_string(r.bound());
}
}  // namespace

std::string to_dot(const Graph& g) {
  std::ostringstream out;
  out << "digraph \"" << g.name() << "\" {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t a = 0; a < g.actor_count(); ++a)
    out << "  a" << a << " [label=\"" << g.actor(static_cast<ActorId>(a)).name << "\"];\n";
  for (const Edge& e : g.edges()) {
    out << "  a" << e.src << " -> a" << e.snk << " [label=\"" << rate_label(e.prod) << ":"
        << rate_label(e.cons);
    if (e.delay > 0) out << " d=" << e.delay;
    out << "\"";
    if (e.is_dynamic()) out << ", style=dashed";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace spi::df
