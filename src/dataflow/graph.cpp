#include "dataflow/graph.hpp"

namespace spi::df {

ActorId Graph::add_actor(std::string name, std::int64_t exec_cycles) {
  if (exec_cycles <= 0) throw std::invalid_argument("Graph::add_actor: exec_cycles must be positive");
  actors_.push_back(Actor{std::move(name), exec_cycles});
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<ActorId>(actors_.size() - 1);
}

EdgeId Graph::connect(ActorId src, Rate prod, ActorId snk, Rate cons,
                      std::int64_t delay, std::int64_t token_bytes,
                      std::string edge_name) {
  checked(src, actors_.size(), "actor");
  checked(snk, actors_.size(), "actor");
  if (delay < 0) throw std::invalid_argument("Graph::connect: negative delay");
  if (token_bytes <= 0) throw std::invalid_argument("Graph::connect: token_bytes must be positive");
  if (edge_name.empty())
    edge_name = actors_[static_cast<std::size_t>(src)].name + "->" +
                actors_[static_cast<std::size_t>(snk)].name;
  edges_.push_back(Edge{src, snk, prod, cons, delay, token_bytes, std::move(edge_name)});
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(snk)].push_back(id);
  return id;
}

bool Graph::is_sdf() const {
  for (const Edge& e : edges_)
    if (e.is_dynamic()) return false;
  return true;
}

std::vector<EdgeId> Graph::dynamic_edges() const {
  std::vector<EdgeId> result;
  for (std::size_t i = 0; i < edges_.size(); ++i)
    if (edges_[i].is_dynamic()) result.push_back(static_cast<EdgeId>(i));
  return result;
}

ActorId Graph::find_actor(std::string_view name) const {
  for (std::size_t i = 0; i < actors_.size(); ++i)
    if (actors_[i].name == name) return static_cast<ActorId>(i);
  return kInvalidActor;
}

}  // namespace spi::df
