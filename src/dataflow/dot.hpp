/// \file dot.hpp
/// Graphviz DOT export for dataflow graphs — used by the examples to make
/// application topologies and VTS conversions inspectable.
#pragma once

#include <string>

#include "dataflow/graph.hpp"

namespace spi::df {

/// Renders the graph in DOT syntax. Dynamic ports are annotated with
/// their bounds (`≤ b`), static ports with their rates; edge labels show
/// delay (initial tokens) when non-zero.
[[nodiscard]] std::string to_dot(const Graph& g);

}  // namespace spi::df
