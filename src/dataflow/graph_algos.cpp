#include "dataflow/graph_algos.hpp"

#include <algorithm>
#include <queue>
#include <stack>

namespace spi::df {

WeightedDigraph WeightedDigraph::from_dataflow(const Graph& g) {
  WeightedDigraph wd(g.actor_count());
  for (const Edge& e : g.edges()) wd.add_arc(e.src, e.snk, e.delay);
  return wd;
}

std::vector<std::int64_t> min_delay_from(const WeightedDigraph& g, std::int32_t source) {
  const std::size_t n = g.node_count();
  std::vector<std::int64_t> dist(n, kUnreachable);
  using Entry = std::pair<std::int64_t, std::int32_t>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist.at(static_cast<std::size_t>(source)) = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const auto& arc : g.arcs(u)) {
      const std::int64_t nd = d + arc.weight;
      auto& slot = dist[static_cast<std::size_t>(arc.to)];
      if (nd < slot) {
        slot = nd;
        heap.emplace(nd, arc.to);
      }
    }
  }
  return dist;
}

std::vector<std::vector<std::int64_t>> all_pairs_min_delay(const WeightedDigraph& g) {
  std::vector<std::vector<std::int64_t>> result;
  result.reserve(g.node_count());
  for (std::size_t u = 0; u < g.node_count(); ++u)
    result.push_back(min_delay_from(g, static_cast<std::int32_t>(u)));
  return result;
}

namespace {

/// Iterative Tarjan to avoid deep recursion on large graphs.
struct TarjanState {
  const WeightedDigraph& g;
  std::vector<std::int32_t> index, lowlink, component;
  std::vector<bool> on_stack;
  std::stack<std::int32_t> stack;
  std::int32_t next_index = 0;
  std::int32_t component_count = 0;

  explicit TarjanState(const WeightedDigraph& graph)
      : g(graph),
        index(graph.node_count(), -1),
        lowlink(graph.node_count(), -1),
        component(graph.node_count(), -1),
        on_stack(graph.node_count(), false) {}

  void run(std::int32_t root) {
    struct Frame {
      std::int32_t node;
      std::size_t arc_pos;
    };
    std::stack<Frame> frames;
    frames.push({root, 0});
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!frames.empty()) {
      Frame& frame = frames.top();
      const auto u = static_cast<std::size_t>(frame.node);
      const auto& arcs = g.arcs(frame.node);
      if (frame.arc_pos < arcs.size()) {
        const std::int32_t v = arcs[frame.arc_pos++].to;
        const auto vi = static_cast<std::size_t>(v);
        if (index[vi] < 0) {
          index[vi] = lowlink[vi] = next_index++;
          stack.push(v);
          on_stack[vi] = true;
          frames.push({v, 0});
        } else if (on_stack[vi]) {
          lowlink[u] = std::min(lowlink[u], index[vi]);
        }
      } else {
        if (lowlink[u] == index[u]) {
          while (true) {
            const std::int32_t w = stack.top();
            stack.pop();
            on_stack[static_cast<std::size_t>(w)] = false;
            component[static_cast<std::size_t>(w)] = component_count;
            if (w == frame.node) break;
          }
          ++component_count;
        }
        const std::int32_t done = frame.node;
        frames.pop();
        if (!frames.empty()) {
          const auto parent = static_cast<std::size_t>(frames.top().node);
          lowlink[parent] = std::min(lowlink[parent], lowlink[static_cast<std::size_t>(done)]);
        }
      }
    }
  }
};

}  // namespace

SccResult strongly_connected_components(const WeightedDigraph& g) {
  TarjanState state(g);
  for (std::size_t u = 0; u < g.node_count(); ++u)
    if (state.index[u] < 0) state.run(static_cast<std::int32_t>(u));
  return SccResult{std::move(state.component), state.component_count};
}

std::optional<std::vector<std::int32_t>> topological_order(const WeightedDigraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::int32_t> in_degree(n, 0);
  for (std::size_t u = 0; u < n; ++u)
    for (const auto& arc : g.arcs(static_cast<std::int32_t>(u)))
      ++in_degree[static_cast<std::size_t>(arc.to)];

  std::vector<std::int32_t> order;
  order.reserve(n);
  std::queue<std::int32_t> ready;
  for (std::size_t u = 0; u < n; ++u)
    if (in_degree[u] == 0) ready.push(static_cast<std::int32_t>(u));
  while (!ready.empty()) {
    const std::int32_t u = ready.front();
    ready.pop();
    order.push_back(u);
    for (const auto& arc : g.arcs(u))
      if (--in_degree[static_cast<std::size_t>(arc.to)] == 0) ready.push(arc.to);
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool reachable(const WeightedDigraph& g, std::int32_t from, std::int32_t to) {
  if (from == to) return true;
  std::vector<bool> seen(g.node_count(), false);
  std::queue<std::int32_t> frontier;
  seen[static_cast<std::size_t>(from)] = true;
  frontier.push(from);
  while (!frontier.empty()) {
    const std::int32_t u = frontier.front();
    frontier.pop();
    for (const auto& arc : g.arcs(u)) {
      if (arc.to == to) return true;
      if (!seen[static_cast<std::size_t>(arc.to)]) {
        seen[static_cast<std::size_t>(arc.to)] = true;
        frontier.push(arc.to);
      }
    }
  }
  return false;
}

}  // namespace spi::df
