#include "dataflow/vts.hpp"

#include <numeric>
#include <stdexcept>

#include "dataflow/repetitions.hpp"
#include "dataflow/sdf_schedule.hpp"

namespace spi::df {

VtsResult vts_convert(const Graph& g) {
  VtsResult result;
  result.graph = Graph(g.name() + "+vts");
  result.edges.reserve(g.edge_count());

  for (const Actor& a : g.actors()) result.graph.add_actor(a.name, a.exec_cycles);

  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    const Edge& e = g.edge(static_cast<EdgeId>(i));
    VtsEdgeInfo info;
    info.raw_token_bytes = e.token_bytes;
    info.prod_rate_bound = e.prod.bound();
    info.cons_rate_bound = e.cons.bound();

    if (e.is_dynamic()) {
      info.converted = true;
      // One packed token carries all raw tokens of a single firing; its
      // size is bounded by the larger endpoint rate bound (the producer
      // defines packing; the consumer must accept the largest packet).
      const std::int64_t max_rate = std::max(e.prod.bound(), e.cons.bound());
      info.b_max_bytes = max_rate * e.token_bytes;
      // Both endpoints become rate 1 (paper figure 1): one firing moves
      // exactly one packed token, whose *size* carries the dynamism.
      result.graph.connect(e.src, Rate::fixed(1), e.snk, Rate::fixed(1), e.delay,
                           info.b_max_bytes, e.name);
    } else {
      info.converted = false;
      info.b_max_bytes = e.token_bytes;
      result.graph.connect(e.src, e.prod, e.snk, e.cons, e.delay, e.token_bytes, e.name);
    }
    result.edges.push_back(info);
  }
  return result;
}

std::vector<std::int64_t> packed_buffer_byte_bounds(const VtsResult& vts) {
  const std::vector<std::int64_t> c_sdf = sdf_buffer_bounds(vts.graph);
  std::vector<std::int64_t> c_bytes(c_sdf.size());
  for (std::size_t e = 0; e < c_sdf.size(); ++e)
    c_bytes[e] = c_sdf[e] * vts.edges[e].b_max_bytes;  // equation 1
  return c_bytes;
}

VtsMemoryComparison compare_vts_memory(const Graph& original, const VtsResult& vts) {
  VtsMemoryComparison cmp;
  for (std::int64_t b : packed_buffer_byte_bounds(vts)) cmp.vts_bytes += b;

  // Naive alternative: freeze every dynamic rate at its upper bound and
  // size raw-token buffers for that worst case.
  Graph worst(original.name() + "+worstcase");
  for (const Actor& a : original.actors()) worst.add_actor(a.name, a.exec_cycles);
  for (const Edge& e : original.edges()) {
    const Rate prod = e.prod.is_dynamic() ? Rate::fixed(e.prod.bound()) : e.prod;
    const Rate cons = e.cons.is_dynamic() ? Rate::fixed(e.cons.bound()) : e.cons;
    worst.connect(e.src, prod, e.snk, cons, e.delay, e.token_bytes, e.name);
  }
  try {
    const std::vector<std::int64_t> bounds = sdf_buffer_bounds(worst);
    cmp.worst_case_static_bytes = total_buffer_bytes(worst, bounds);
  } catch (const std::logic_error&) {
    // Frozen worst-case rates made the graph inconsistent or deadlocked —
    // fall back to the classic conservative per-edge bound
    // prod + cons - gcd + delay (tokens), which needs no global schedule.
    for (const Edge& e : worst.edges()) {
      const std::int64_t p = e.prod.value(), c = e.cons.value();
      const std::int64_t tokens = p + c - std::gcd(p, c) + e.delay;
      cmp.worst_case_static_bytes += tokens * e.token_bytes;
    }
  }
  return cmp;
}

}  // namespace spi::df
