#include "dataflow/sdf_schedule.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace spi::df {

namespace {

/// Token state of the PASS simulation.
struct SimState {
  std::vector<std::int64_t> tokens;      // per edge
  std::vector<std::int64_t> remaining;   // per actor: firings left this iteration
  std::vector<std::int64_t> max_tokens;  // per edge: high-water mark

  explicit SimState(const Graph& g, const Repetitions& reps)
      : tokens(g.edge_count()), remaining(reps.q.begin(), reps.q.end()),
        max_tokens(g.edge_count()) {
    for (std::size_t e = 0; e < g.edge_count(); ++e)
      tokens[e] = max_tokens[e] = g.edge(static_cast<EdgeId>(e)).delay;
  }
};

bool fireable(const Graph& g, const SimState& s, ActorId a) {
  if (s.remaining[static_cast<std::size_t>(a)] <= 0) return false;
  for (EdgeId eid : g.in_edges(a)) {
    const Edge& e = g.edge(eid);
    // Self-loops consume before producing within a firing.
    if (s.tokens[static_cast<std::size_t>(eid)] < e.cons.value()) return false;
  }
  return true;
}

void fire(const Graph& g, SimState& s, ActorId a) {
  for (EdgeId eid : g.in_edges(a))
    s.tokens[static_cast<std::size_t>(eid)] -= g.edge(eid).cons.value();
  for (EdgeId eid : g.out_edges(a)) {
    auto& t = s.tokens[static_cast<std::size_t>(eid)];
    t += g.edge(eid).prod.value();
    s.max_tokens[static_cast<std::size_t>(eid)] =
        std::max(s.max_tokens[static_cast<std::size_t>(eid)], t);
  }
  --s.remaining[static_cast<std::size_t>(a)];
}

/// Buffer-demand score of firing `a`: net token change across its edges,
/// used by the kMinBufferDemand heuristic (smaller is better).
std::int64_t demand_score(const Graph& g, ActorId a) {
  std::int64_t score = 0;
  for (EdgeId eid : g.out_edges(a)) score += g.edge(eid).prod.value();
  for (EdgeId eid : g.in_edges(a)) score -= g.edge(eid).cons.value();
  return score;
}

}  // namespace

SequentialSchedule build_sequential_schedule(const Graph& g, const Repetitions& reps,
                                             SchedulePolicy policy) {
  if (!g.is_sdf())
    throw std::logic_error("build_sequential_schedule: graph is not pure SDF (VTS-convert first)");
  if (!reps.consistent)
    throw std::logic_error("build_sequential_schedule: inconsistent repetitions vector");

  SequentialSchedule schedule;
  SimState state(g, reps);
  const std::int64_t total = reps.total_firings();
  schedule.firings.reserve(static_cast<std::size_t>(total));

  // Both policies pick the fireable actor minimizing a static key:
  // (demand_score, id) for kMinBufferDemand, (0, id) — i.e. lowest id —
  // for kFirstFireable. Since an actor's fireability is destroyed only by
  // firing that actor itself (each edge has a single consumer, so its
  // input tokens never shrink otherwise), a min-heap over the fireable
  // set with in-queue flags reproduces the former full scan's choice
  // exactly, in O(deg + log V) per firing instead of O(V·deg).
  std::vector<std::int64_t> key(g.actor_count(), 0);
  if (policy == SchedulePolicy::kMinBufferDemand)
    for (std::size_t a = 0; a < g.actor_count(); ++a)
      key[a] = demand_score(g, static_cast<ActorId>(a));

  using Entry = std::pair<std::int64_t, ActorId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> fireable_heap;
  std::vector<char> queued(g.actor_count(), 0);
  const auto enqueue_if_fireable = [&](ActorId id) {
    const auto slot = static_cast<std::size_t>(id);
    if (!queued[slot] && fireable(g, state, id)) {
      queued[slot] = 1;
      fireable_heap.emplace(key[slot], id);
    }
  };
  for (std::size_t a = 0; a < g.actor_count(); ++a)
    enqueue_if_fireable(static_cast<ActorId>(a));

  for (std::int64_t step = 0; step < total; ++step) {
    if (fireable_heap.empty()) {
      schedule.admissible = false;  // deadlock before quota completion
      schedule.firings.clear();
      return schedule;
    }
    const ActorId chosen = fireable_heap.top().second;
    fireable_heap.pop();
    queued[static_cast<std::size_t>(chosen)] = 0;
    fire(g, state, chosen);
    schedule.firings.push_back(chosen);
    // Firing affects only the fired actor (tokens consumed, quota spent)
    // and the consumers of its output edges (tokens produced).
    enqueue_if_fireable(chosen);
    for (EdgeId eid : g.out_edges(chosen)) enqueue_if_fireable(g.edge(eid).snk);
  }

  schedule.admissible = true;
  schedule.buffer_bound = std::move(state.max_tokens);
  return schedule;
}

std::vector<std::int64_t> sdf_buffer_bounds(const Graph& g) {
  const Repetitions reps = compute_repetitions(g);
  if (!reps.consistent) throw std::logic_error("sdf_buffer_bounds: inconsistent graph");
  const SequentialSchedule s =
      build_sequential_schedule(g, reps, SchedulePolicy::kMinBufferDemand);
  if (!s.admissible) throw std::logic_error("sdf_buffer_bounds: graph deadlocks");
  return s.buffer_bound;
}

std::int64_t total_buffer_bytes(const Graph& g, const std::vector<std::int64_t>& bounds) {
  if (bounds.size() != g.edge_count())
    throw std::invalid_argument("total_buffer_bytes: bounds size mismatch");
  std::int64_t bytes = 0;
  for (std::size_t e = 0; e < bounds.size(); ++e)
    bytes += bounds[e] * g.edge(static_cast<EdgeId>(e)).token_bytes;
  return bytes;
}

}  // namespace spi::df
