/// \file looped_schedule.hpp
/// Looped schedules and the APGAN single-appearance heuristic.
///
/// Embedded software synthesis from SDF (the body of work the paper's
/// buffer-bound machinery cites — Bhattacharyya et al.) represents
/// schedules as *schedule trees*: a loop node `(n B1 B2 ...)` executes
/// its body n times. A *single-appearance schedule* (SAS) names every
/// actor exactly once, minimizing code size; among SASs, buffer memory
/// varies widely, and APGAN (Adjacent Pairwise Grouping of Actors)
/// greedily clusters the adjacent actor pair with the largest
/// repetition-count gcd — provably optimal on a broad graph class and a
/// strong heuristic elsewhere.
///
/// This module provides the schedule tree, its evaluation (firing
/// expansion, buffer-memory under lexical execution, code-size metric),
/// and APGAN for consistent acyclic SDF graphs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/graph.hpp"
#include "dataflow/repetitions.hpp"

namespace spi::df {

/// A node of a looped schedule: either a single actor firing or a loop
/// over child nodes.
class ScheduleNode {
 public:
  static ScheduleNode actor(ActorId id) {
    ScheduleNode n;
    n.actor_ = id;
    return n;
  }
  static ScheduleNode loop(std::int64_t count, std::vector<ScheduleNode> body);

  [[nodiscard]] bool is_actor() const { return actor_ != kInvalidActor; }
  [[nodiscard]] ActorId actor_id() const { return actor_; }
  [[nodiscard]] std::int64_t loop_count() const { return count_; }
  [[nodiscard]] const std::vector<ScheduleNode>& body() const { return body_; }

  /// Flat firing sequence the node denotes.
  void expand(std::vector<ActorId>& out) const;

  /// Number of actor appearances in the (unexpanded) schedule text.
  [[nodiscard]] std::size_t appearances() const;

  /// Schedule text, e.g. "(2 A (3 B C))".
  [[nodiscard]] std::string str(const Graph& g) const;

 private:
  ActorId actor_ = kInvalidActor;
  std::int64_t count_ = 1;
  std::vector<ScheduleNode> body_;
};

struct LoopedSchedule {
  ScheduleNode root = ScheduleNode::loop(1, {});

  [[nodiscard]] std::vector<ActorId> firings() const {
    std::vector<ActorId> out;
    root.expand(out);
    return out;
  }
  [[nodiscard]] std::size_t appearances() const { return root.appearances(); }
  [[nodiscard]] std::string str(const Graph& g) const { return root.str(g); }
};

/// True when the flat expansion of the schedule is a valid PASS of g
/// (never underflows an edge and fires each actor its repetition count).
[[nodiscard]] bool is_valid_schedule(const Graph& g, const Repetitions& reps,
                                     const LoopedSchedule& schedule);

/// Per-edge maximum token occupancy when executing the schedule's flat
/// expansion (the buffer model of inlined software synthesis).
[[nodiscard]] std::vector<std::int64_t> buffer_bounds_under(const Graph& g,
                                                            const LoopedSchedule& schedule);

/// APGAN: builds a single-appearance looped schedule for a consistent,
/// *acyclic* pure-SDF graph. Throws std::invalid_argument on cyclic or
/// dynamic graphs (VTS-convert first; cycles need clustering theory out
/// of scope here).
[[nodiscard]] LoopedSchedule apgan_schedule(const Graph& g, const Repetitions& reps);

}  // namespace spi::df
