/// \file vts.hpp
/// Variable Token Size (VTS) conversion — Section 3 of the paper.
///
/// A dynamic port transfers a run-time-varying number of raw tokens per
/// firing, bounded above (e.g. `x ≤ 10` in the paper's figure 1). VTS
/// *repacks* those raw tokens into a single packed token per firing whose
/// *size* varies (bounded by `b_max = rate_bound · raw_token_bytes`) while
/// the token *rate* becomes the static constant 1. The converted graph is
/// pure SDF, so the whole SDF toolbox (repetitions vector, PASS, buffer
/// bounds, self-timed scheduling, resynchronization) applies — this is the
/// paper's key distinction from BDDF, which bounds *rates* instead and
/// forfeits SDF analyzability.
///
/// Equation 1: the byte bound of an edge buffer after conversion is
///   c(e) = c_sdf(e) · b_max(e)
/// where c_sdf(e) is an SDF token bound computed on the *converted* graph.
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/graph.hpp"

namespace spi::df {

/// Per-edge record of what VTS conversion did.
struct VtsEdgeInfo {
  bool converted = false;          ///< true when the edge had a dynamic endpoint
  std::int64_t b_max_bytes = 0;    ///< max bytes in one packed token (raw token bytes when !converted)
  std::int64_t raw_token_bytes = 0;///< bytes of one raw (unpacked) token
  std::int64_t prod_rate_bound = 0;///< raw-token bound of the producing port
  std::int64_t cons_rate_bound = 0;///< raw-token bound of the consuming port
};

/// Result of VTS conversion. Edge ids of `graph` correspond 1:1 (same
/// index) to the edges of the original graph.
struct VtsResult {
  Graph graph;                     ///< pure SDF graph (is_sdf() holds)
  std::vector<VtsEdgeInfo> edges;  ///< indexed by EdgeId
};

/// Converts every dynamic edge: a dynamic endpoint becomes rate 1 and the
/// edge's token width becomes b_max(e) = rate_bound · raw_token_bytes
/// (upper bound of one packed token). Static endpoints and static edges
/// are untouched. Actor set and edge topology are preserved.
[[nodiscard]] VtsResult vts_convert(const Graph& g);

/// Equation 1: per-edge byte bound c(e) = c_sdf(e)·b_max(e) over the
/// converted graph. Requires the converted graph to be consistent and
/// deadlock-free.
[[nodiscard]] std::vector<std::int64_t> packed_buffer_byte_bounds(const VtsResult& vts);

/// Total byte memory of the VTS buffers vs. the naive alternative of
/// statically sizing every dynamic edge for its worst-case raw rate on
/// both endpoints (what one would do without VTS). Used by the VTS
/// ablation bench.
struct VtsMemoryComparison {
  std::int64_t vts_bytes = 0;
  std::int64_t worst_case_static_bytes = 0;
};
[[nodiscard]] VtsMemoryComparison compare_vts_memory(const Graph& original, const VtsResult& vts);

}  // namespace spi::df
