/// \file repetitions.hpp
/// SDF repetitions vector and consistency analysis.
///
/// For an SDF graph, the repetitions vector q assigns each actor the
/// (minimal, positive-integer) number of firings per graph iteration such
/// that every edge is in balance: prod(e)·q[src(e)] = cons(e)·q[snk(e)].
/// A graph with no such vector is *inconsistent* and cannot execute in
/// bounded memory (Lee & Messerschmitt 1987). SPI requires consistency
/// after VTS conversion.
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/graph.hpp"

namespace spi::df {

/// Result of the balance-equation solve.
struct Repetitions {
  bool consistent = false;
  /// Inconsistent edge witness (first edge whose balance equation failed),
  /// kInvalidEdge when consistent or when inconsistency is structural.
  EdgeId conflict_edge = kInvalidEdge;
  /// q[a] = firings of actor a per iteration; empty when inconsistent.
  std::vector<std::int64_t> q;

  [[nodiscard]] std::int64_t of(ActorId a) const { return q.at(static_cast<std::size_t>(a)); }
  /// Total firings per iteration (sum of q).
  [[nodiscard]] std::int64_t total_firings() const;
};

/// Solves the balance equations. Requires graph.is_sdf(); throws otherwise
/// (dynamic graphs must be VTS-converted first — see vts.hpp).
/// Disconnected graphs are handled per connected component, each normalized
/// to the smallest positive integer solution.
[[nodiscard]] Repetitions compute_repetitions(const Graph& g);

/// Total tokens produced on edge e per graph iteration (= consumed, by
/// balance). Requires a consistent repetitions vector.
[[nodiscard]] std::int64_t tokens_per_iteration(const Graph& g, const Repetitions& reps, EdgeId e);

}  // namespace spi::df
