/// \file sdf_schedule.hpp
/// Sequential SDF scheduling and buffer-bound analysis.
///
/// Implements the classic class-S construction (Lee & Messerschmitt): fire
/// any fireable actor that has not yet completed its repetitions-vector
/// quota; the graph deadlocks iff no actor is fireable before all quotas
/// complete. The simulation simultaneously yields `c_sdf(e)` — an upper
/// bound on tokens simultaneously resident on each edge — which the paper
/// plugs into equation 1 (`c(e) = c_sdf(e)·b_max(e)`).
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/graph.hpp"
#include "dataflow/repetitions.hpp"

namespace spi::df {

/// A flat periodic admissible sequential schedule: actor firing order for
/// one graph iteration (length = sum of repetitions vector).
struct SequentialSchedule {
  bool admissible = false;          ///< false => graph deadlocks
  std::vector<ActorId> firings;     ///< firing sequence for one iteration
  std::vector<std::int64_t> buffer_bound;  ///< per-edge c_sdf(e) under this schedule
};

/// Scheduling policy: which fireable actor is selected next.
enum class SchedulePolicy {
  kFirstFireable,   ///< lowest actor id (deterministic, canonical)
  kMinBufferDemand, ///< greedy heuristic: prefer firings that shrink buffers
};

/// Builds a flat PASS for one iteration of a consistent SDF graph and
/// records per-edge maximum occupancy. Throws if `reps` is inconsistent
/// or the graph is not pure SDF.
[[nodiscard]] SequentialSchedule build_sequential_schedule(
    const Graph& g, const Repetitions& reps,
    SchedulePolicy policy = SchedulePolicy::kFirstFireable);

/// Convenience: c_sdf(e) for every edge under the (buffer-greedy) schedule.
/// This is the bound the VTS analysis of Section 3 consumes.
[[nodiscard]] std::vector<std::int64_t> sdf_buffer_bounds(const Graph& g);

/// Total buffer memory in bytes for an SDF graph under the given per-edge
/// token bounds (bound[e] tokens × token_bytes).
[[nodiscard]] std::int64_t total_buffer_bytes(const Graph& g,
                                              const std::vector<std::int64_t>& bounds);

}  // namespace spi::df
