#include "dataflow/repetitions.hpp"

#include <numeric>
#include <queue>
#include <stdexcept>

#include "dataflow/rational.hpp"

namespace spi::df {

std::int64_t Repetitions::total_firings() const {
  return std::accumulate(q.begin(), q.end(), std::int64_t{0});
}

Repetitions compute_repetitions(const Graph& g) {
  if (!g.is_sdf())
    throw std::logic_error(
        "compute_repetitions: graph has dynamic rates; apply VTS conversion first");

  const std::size_t n = g.actor_count();
  Repetitions result;
  if (n == 0) {
    result.consistent = true;
    return result;
  }

  // Propagate rational firing ratios over the undirected reachability
  // structure (BFS per connected component), then check all edges.
  std::vector<Rational> ratio(n, Rational{0});
  std::vector<bool> visited(n, false);

  for (std::size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    ratio[root] = Rational{1};
    visited[root] = true;
    std::queue<ActorId> frontier;
    frontier.push(static_cast<ActorId>(root));
    while (!frontier.empty()) {
      const ActorId a = frontier.front();
      frontier.pop();
      auto relax = [&](EdgeId eid, bool forward) {
        const Edge& e = g.edge(eid);
        const ActorId other = forward ? e.snk : e.src;
        // balance: q[src]·prod = q[snk]·cons
        const Rational derived =
            forward ? ratio[static_cast<std::size_t>(a)] * Rational{e.prod.value(), e.cons.value()}
                    : ratio[static_cast<std::size_t>(a)] * Rational{e.cons.value(), e.prod.value()};
        auto& slot = ratio[static_cast<std::size_t>(other)];
        if (!visited[static_cast<std::size_t>(other)]) {
          slot = derived;
          visited[static_cast<std::size_t>(other)] = true;
          frontier.push(other);
        } else if (slot != derived) {
          result.consistent = false;
          result.conflict_edge = eid;
        }
      };
      for (EdgeId eid : g.out_edges(a)) relax(eid, /*forward=*/true);
      for (EdgeId eid : g.in_edges(a)) relax(eid, /*forward=*/false);
      if (result.conflict_edge != kInvalidEdge) return result;
    }
  }

  // Scale each component so all entries are minimal positive integers.
  // First clear denominators with the component-wide LCM, then divide by
  // the component-wide GCD. Components are identified by re-walking from
  // each unnormalized root.
  std::vector<std::int64_t> q(n, 0);
  std::vector<bool> scaled(n, false);
  for (std::size_t root = 0; root < n; ++root) {
    if (scaled[root]) continue;
    // Collect the component membership.
    std::vector<std::size_t> members;
    std::queue<std::size_t> frontier;
    frontier.push(root);
    scaled[root] = true;
    while (!frontier.empty()) {
      const std::size_t a = frontier.front();
      frontier.pop();
      members.push_back(a);
      auto visit = [&](std::size_t other) {
        if (!scaled[other]) {
          scaled[other] = true;
          frontier.push(other);
        }
      };
      for (EdgeId eid : g.out_edges(static_cast<ActorId>(a)))
        visit(static_cast<std::size_t>(g.edge(eid).snk));
      for (EdgeId eid : g.in_edges(static_cast<ActorId>(a)))
        visit(static_cast<std::size_t>(g.edge(eid).src));
    }
    std::int64_t denom_lcm = 1;
    for (std::size_t m : members) denom_lcm = lcm_positive(denom_lcm, ratio[m].den());
    std::int64_t num_gcd = 0;
    for (std::size_t m : members) {
      const Rational scaled_ratio = ratio[m] * Rational{denom_lcm};
      q[m] = scaled_ratio.to_integer();
      num_gcd = std::gcd(num_gcd, q[m]);
    }
    if (num_gcd > 1)
      for (std::size_t m : members) q[m] /= num_gcd;
  }

  result.consistent = true;
  result.q = std::move(q);
  return result;
}

std::int64_t tokens_per_iteration(const Graph& g, const Repetitions& reps, EdgeId e) {
  if (!reps.consistent) throw std::logic_error("tokens_per_iteration: inconsistent graph");
  const Edge& edge = g.edge(e);
  return edge.prod.value() * reps.of(edge.src);
}

}  // namespace spi::df
