#include "dsp/linalg.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/kernels.hpp"

namespace spi::dsp {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  std::vector<double> y(rows_, 0.0);
  if (!scalar_kernels()) {
    // Four rows per pass: each row keeps its own accumulator (the same
    // c-ascending addition order as the scalar path, so bit-identical),
    // and the shared x[c] load plus four independent FMA chains give the
    // vectorizer/scheduler real ILP to work with.
    const double* a = data_.data();
    std::size_t r = 0;
    for (; r + 4 <= rows_; r += 4) {
      const double* r0 = a + r * cols_;
      const double* r1 = r0 + cols_;
      const double* r2 = r1 + cols_;
      const double* r3 = r2 + cols_;
      double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) {
        const double xc = x[c];
        a0 += r0[c] * xc;
        a1 += r1[c] * xc;
        a2 += r2[c] * xc;
        a3 += r3[c] * xc;
      }
      y[r] = a0;
      y[r + 1] = a1;
      y[r + 2] = a2;
      y[r + 3] = a3;
    }
    for (; r < rows_; ++r) {
      const double* row = a + r * cols_;
      double acc = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
    return y;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuDecomposition: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_.at(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-12) throw std::domain_error("LuDecomposition: singular matrix");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_.at(pivot, c), lu_.at(k, c));
      std::swap(perm_[pivot], perm_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    // Rank-1 update through row pointers: same element-wise arithmetic as
    // indexing via at(), but the hoisted bases let the compiler vectorize
    // the trailing-row axpy.
    double* pivot_row = &lu_.at(k, 0);
    for (std::size_t r = k + 1; r < n; ++r) {
      double* row = &lu_.at(r, 0);
      const double factor = row[k] / pivot_row[k];
      row[k] = factor;  // store L below the diagonal
      for (std::size_t c = k + 1; c < n; ++c) row[c] -= factor * pivot_row[c];
    }
  }
}

double LuDecomposition::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < order(); ++i) det *= lu_.at(i, i);
  return det;
}

std::vector<double> LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = order();
  if (b.size() != n) throw std::invalid_argument("LuDecomposition::solve: dimension mismatch");
  // Apply permutation, then forward (L) and back (U) substitution.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_.at(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_.at(ii, j) * x[j];
    x[ii] = acc / lu_.at(ii, ii);
  }
  return x;
}

std::vector<double> lu_solve(Matrix a, std::span<const double> b) {
  return LuDecomposition(std::move(a)).solve(b);
}

}  // namespace spi::dsp
