/// \file fft.hpp
/// Fast Fourier transform (actor B of the paper's speech-compression
/// application computes an FFT over each input frame).
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace spi::dsp {

using Complex = std::complex<double>;

/// True when n is a power of two (the radix-2 requirement).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// In-place iterative radix-2 decimation-in-time FFT. data.size() must be
/// a power of two.
void fft_inplace(std::span<Complex> data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft_inplace(std::span<Complex> data);

/// Out-of-place convenience wrappers.
[[nodiscard]] std::vector<Complex> fft(std::span<const Complex> data);
[[nodiscard]] std::vector<Complex> ifft(std::span<const Complex> data);

/// FFT of a real signal (zero imaginary parts).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> data);

/// O(N^2) reference DFT, the oracle the tests compare against.
[[nodiscard]] std::vector<Complex> dft_reference(std::span<const Complex> data);

/// Power spectrum |X[k]|^2 of a real frame (zero-padded to the next power
/// of two when needed).
[[nodiscard]] std::vector<double> power_spectrum(std::span<const double> frame);

/// Next power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// Number of per-size FFT plans (twiddle + bit-reversal tables) currently
/// cached. The cache is bounded (see fft.cpp); exposed for tests.
[[nodiscard]] std::size_t fft_plan_cache_size();

/// Drops every cached FFT plan (tests exercising the cache bound).
void fft_plan_cache_clear();

}  // namespace spi::dsp
