/// \file particle_filter.hpp
/// Particle filtering for crack-failure prognosis — the mathematics of
/// the paper's Application 2 (tracking crack length in turbine-engine
/// blades, after Orchard/Wu/Vachtsevanos). The filter's E (estimate),
/// U (update) and S (select/resample) steps parallelize over PEs except
/// resampling, which the paper splits into three phases: exchange of
/// partial (local) weight statistics, local resampling, and
/// intra-resampling — the communication of excess particles so every PE
/// re-enters the next iteration with the same particle count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/rng.hpp"

namespace spi::dsp {

/// Paris-law crack growth with Gaussian process/observation noise:
///   L_{k+1} = L_k + C (beta * dsigma * sqrt(pi * L_k))^m + w_k
///   y_k     = L_k + v_k
struct CrackModel {
  double c = 0.005;
  double m = 1.3;
  double beta = 1.0;
  double dsigma = 1.0;
  double process_noise = 0.01;
  double obs_noise = 0.05;
  double initial_length = 1.0;

  /// Deterministic growth increment at crack length `length`.
  [[nodiscard]] double growth(double length) const;
  /// One stochastic state transition.
  [[nodiscard]] double step(double length, Rng& rng) const;
  /// One noisy observation of the true length.
  [[nodiscard]] double observe(double length, Rng& rng) const;
  /// Likelihood p(obs | length) under the Gaussian observation model.
  [[nodiscard]] double likelihood(double obs, double length) const;
};

/// Generates a ground-truth crack trajectory and its noisy observations.
struct CrackTrajectory {
  std::vector<double> truth;
  std::vector<double> observations;
};
[[nodiscard]] CrackTrajectory simulate_crack(const CrackModel& model, std::size_t steps,
                                             Rng& rng);

/// Systematic resampling: draws `count` particles with multiplicities
/// proportional to `weights`, using the single uniform offset `u0` in
/// [0,1) (deterministic given u0 — the property tests rely on it).
[[nodiscard]] std::vector<double> systematic_resample(std::span<const double> particles,
                                                      std::span<const double> weights,
                                                      std::int64_t count, double u0);

/// Largest-remainder apportionment of `total` particles across PEs
/// proportionally to their local weight sums; the result sums to exactly
/// `total` (phase 1+2 arithmetic of the distributed resampling scheme).
[[nodiscard]] std::vector<std::int64_t> proportional_targets(
    std::span<const double> local_weight_sums, std::int64_t total);

/// Sequential (single-processor) bootstrap particle filter — the
/// reference implementation and the n=1 configuration of Figure 7.
class ParticleFilter {
 public:
  ParticleFilter(std::size_t particle_count, CrackModel model, std::uint64_t seed);

  [[nodiscard]] std::span<const double> particles() const { return particles_; }
  [[nodiscard]] std::span<const double> weights() const { return weights_; }
  [[nodiscard]] const CrackModel& model() const { return model_; }

  /// E step: propagate every particle through the state model.
  void predict();
  /// U step: reweight by the likelihood of `observation`; weights are
  /// normalized afterwards.
  void update(double observation);
  /// Posterior mean estimate of the crack length.
  [[nodiscard]] double estimate() const;
  /// Effective sample size (resampling trigger diagnostics).
  [[nodiscard]] double effective_sample_size() const;
  /// S step: systematic resampling back to uniform weights.
  void resample();

  /// Convenience: one full E-U-S iteration; returns the estimate.
  double step(double observation);

 private:
  CrackModel model_;
  Rng rng_;
  std::vector<double> particles_;
  std::vector<double> weights_;
};

/// Root-mean-square error between two equal-length series.
[[nodiscard]] double rmse(std::span<const double> a, std::span<const double> b);

}  // namespace spi::dsp
