#include "dsp/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "dsp/kernels.hpp"

namespace spi::dsp {

void BitWriter::put_bits(std::uint32_t value, int count) {
  if (count < 0 || count > 32) throw std::invalid_argument("BitWriter: bad bit count");
  if (!scalar_kernels()) {
    put_bits64(value, count);
    return;
  }
  // Scalar reference: one bit per pass (SPI_SCALAR_KERNELS).
  for (int i = count - 1; i >= 0; --i) {
    const int bit = static_cast<int>((value >> i) & 1U);
    const std::size_t byte_index = bit_count_ / 8;
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(0x80U >> (bit_count_ % 8));
    ++bit_count_;
  }
}

void BitWriter::put_bits64(std::uint64_t value, int count) {
  if (count < 0 || count > 64) throw std::invalid_argument("BitWriter: bad bit count");
  if (count == 0) return;
  if (count < 64) value &= (1ULL << count) - 1;
  std::size_t bit = bit_count_;
  bit_count_ += static_cast<std::size_t>(count);
  // Same sizing rule as the per-bit path: bytes() spans ceil(bit_count/8).
  bytes_.resize((bit_count_ + 7) / 8, 0);
  int remaining = count;
  while (remaining > 0) {
    const std::size_t byte_index = bit / 8;
    const int room = 8 - static_cast<int>(bit % 8);
    const int take = remaining < room ? remaining : room;
    const auto chunk = static_cast<unsigned>((value >> (remaining - take)) &
                                             ((1ULL << take) - 1));
    bytes_[byte_index] |= static_cast<std::uint8_t>(chunk << (room - take));
    bit += static_cast<std::size_t>(take);
    remaining -= take;
  }
}

int BitReader::next_bit() {
  if (position_ >= bit_count_) throw std::out_of_range("BitReader: past end of stream");
  const std::uint8_t byte = bytes_[position_ / 8];
  const int bit = (byte >> (7 - position_ % 8)) & 1;
  ++position_;
  return bit;
}

namespace {

/// Huffman code lengths from frequencies (priority-queue construction;
/// deterministic tie-break on node id so codes are reproducible).
std::vector<std::uint8_t> code_lengths(std::span<const std::uint64_t> freq) {
  struct Node {
    std::uint64_t weight;
    std::int32_t id;      // tie-break
    std::int32_t left = -1, right = -1;
    std::int32_t symbol = -1;
  };
  std::vector<Node> nodes;
  using Entry = std::pair<std::uint64_t, std::int32_t>;  // (weight, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back(Node{freq[s], static_cast<std::int32_t>(nodes.size()), -1, -1,
                         static_cast<std::int32_t>(s)});
    heap.emplace(freq[s], static_cast<std::int32_t>(nodes.size() - 1));
  }

  std::vector<std::uint8_t> lengths(freq.size(), 0);
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {  // degenerate: a single symbol still needs one bit
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }

  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{wa + wb, static_cast<std::int32_t>(nodes.size()), a, b, -1});
    heap.emplace(wa + wb, static_cast<std::int32_t>(nodes.size() - 1));
  }

  // Depth-first walk to record leaf depths.
  struct Frame {
    std::int32_t node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(f.node)];
    if (n.symbol >= 0) {
      lengths[static_cast<std::size_t>(n.symbol)] = f.depth;
    } else {
      stack.push_back({n.left, static_cast<std::uint8_t>(f.depth + 1)});
      stack.push_back({n.right, static_cast<std::uint8_t>(f.depth + 1)});
    }
  }
  return lengths;
}

}  // namespace

HuffmanCode HuffmanCode::from_frequencies(std::span<const std::uint64_t> freq) {
  HuffmanCode code;
  code.lengths_ = code_lengths(freq);
  code.build_canonical();
  return code;
}

HuffmanCode HuffmanCode::from_lengths(std::span<const std::uint8_t> lengths) {
  HuffmanCode code;
  code.lengths_.assign(lengths.begin(), lengths.end());
  code.build_canonical();
  return code;
}

void HuffmanCode::build_canonical() {
  const std::uint8_t max_len =
      lengths_.empty() ? 0 : *std::max_element(lengths_.begin(), lengths_.end());
  codes_.assign(lengths_.size(), 0);
  count_.assign(static_cast<std::size_t>(max_len) + 1, 0);
  first_code_.assign(static_cast<std::size_t>(max_len) + 1, 0);
  first_index_.assign(static_cast<std::size_t>(max_len) + 1, 0);
  sorted_symbols_.clear();

  for (std::uint8_t len : lengths_)
    if (len > 0) ++count_[len];

  // Kraft check guards against corrupt length tables from a decoder.
  std::uint64_t kraft = 0;
  for (std::size_t len = 1; len <= max_len; ++len)
    kraft += static_cast<std::uint64_t>(count_[len]) << (max_len - len);
  if (max_len > 0 && kraft > (1ULL << max_len))
    throw std::invalid_argument("HuffmanCode: code lengths violate the Kraft inequality");

  // Canonical first codes per length.
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (std::size_t len = 1; len <= max_len; ++len) {
    code = (code + (len > 1 ? count_[len - 1] : 0)) << 1;
    first_code_[len] = code;
    first_index_[len] = index;
    index += count_[len];
  }

  // Symbols sorted by (length, symbol) receive consecutive codes.
  sorted_symbols_.reserve(index);
  std::vector<std::uint32_t> next = first_code_;
  std::vector<std::uint32_t> fill = first_index_;
  sorted_symbols_.resize(index);
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    const std::uint8_t len = lengths_[s];
    if (len == 0) continue;
    codes_[s] = next[len]++;
    sorted_symbols_[fill[len]++] = static_cast<std::uint32_t>(s);
  }
}

void HuffmanCode::encode(std::span<const std::size_t> symbols, BitWriter& out) const {
  if (scalar_kernels()) {
    // Scalar reference: one put_bits call (one bit-at-a-time append) per
    // symbol.
    for (std::size_t s : symbols) {
      if (s >= lengths_.size() || lengths_[s] == 0)
        throw std::invalid_argument("HuffmanCode::encode: symbol has no codeword");
      out.put_bits(codes_[s], lengths_[s]);
    }
    return;
  }
  // Table-driven packing: shift each codeword (codes_/lengths_ lookup, no
  // per-bit branching) into a 64-bit accumulator and flush whole words.
  // Concatenating MSB-first codewords commutes with the split into
  // put_bits64 calls, so the byte stream is identical to the reference.
  std::uint64_t acc = 0;
  int nbits = 0;
  for (std::size_t s : symbols) {
    if (s >= lengths_.size() || lengths_[s] == 0)
      throw std::invalid_argument("HuffmanCode::encode: symbol has no codeword");
    const int len = lengths_[s];
    if (len > 32) throw std::invalid_argument("BitWriter: bad bit count");
    if (nbits + len > 64) {
      out.put_bits64(acc, nbits);
      acc = 0;
      nbits = 0;
    }
    acc = (acc << len) | codes_[s];
    nbits += len;
  }
  if (nbits > 0) out.put_bits64(acc, nbits);
}

std::vector<std::size_t> HuffmanCode::decode(BitReader& in, std::size_t count) const {
  const std::size_t max_len = count_.size() - 1;
  std::vector<std::size_t> symbols;
  symbols.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t code = 0;
    std::size_t len = 0;
    while (true) {
      code = (code << 1) | static_cast<std::uint32_t>(in.next_bit());
      ++len;
      if (len > max_len) throw std::runtime_error("HuffmanCode::decode: invalid bitstream");
      if (count_[len] != 0 && code - first_code_[len] < count_[len]) {
        symbols.push_back(sorted_symbols_[first_index_[len] + (code - first_code_[len])]);
        break;
      }
    }
  }
  return symbols;
}

std::uint64_t HuffmanCode::total_bits(std::span<const std::uint64_t> freq) const {
  if (freq.size() != lengths_.size())
    throw std::invalid_argument("HuffmanCode::total_bits: alphabet size mismatch");
  std::uint64_t bits = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] == 0) continue;
    if (lengths_[s] == 0)
      throw std::invalid_argument("HuffmanCode::total_bits: frequency on absent symbol");
    bits += freq[s] * lengths_[s];
  }
  return bits;
}

double entropy_bits(std::span<const std::uint64_t> freq) {
  std::uint64_t total = 0;
  for (std::uint64_t f : freq) total += f;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::uint64_t f : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace spi::dsp
