/// \file huffman.hpp
/// Canonical Huffman entropy coding (actor E of the paper's speech
/// application Huffman-codes the quantized prediction error).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace spi::dsp {

/// MSB-first bit stream.
class BitWriter {
 public:
  void put_bits(std::uint32_t value, int count);

  /// Appends the low `count` bits of `value` MSB-first, up to 64 at a
  /// time. Produces the byte-identical stream of the equivalent put_bits
  /// sequence; this is the word-at-a-time path HuffmanCode::encode packs
  /// whole codeword runs through.
  void put_bits64(std::uint64_t value, int count);
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(std::span<const std::uint8_t> bytes, std::size_t bit_count)
      : bytes_(bytes), bit_count_(bit_count) {}

  [[nodiscard]] int next_bit();
  [[nodiscard]] std::size_t bits_remaining() const { return bit_count_ - position_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t bit_count_;
  std::size_t position_ = 0;
};

/// A canonical Huffman code over a fixed 0-based alphabet. Symbols with
/// zero frequency get no codeword and must not be encoded.
class HuffmanCode {
 public:
  /// Builds an optimal prefix code from symbol frequencies.
  [[nodiscard]] static HuffmanCode from_frequencies(std::span<const std::uint64_t> freq);

  /// Rebuilds the (canonical) code from its code lengths — this is what a
  /// decoder reconstructs from a transmitted header.
  [[nodiscard]] static HuffmanCode from_lengths(std::span<const std::uint8_t> lengths);

  [[nodiscard]] std::span<const std::uint8_t> lengths() const { return lengths_; }
  [[nodiscard]] std::size_t alphabet_size() const { return lengths_.size(); }

  /// Encodes a symbol sequence; throws std::invalid_argument for symbols
  /// without a codeword.
  void encode(std::span<const std::size_t> symbols, BitWriter& out) const;

  /// Decodes exactly `count` symbols.
  [[nodiscard]] std::vector<std::size_t> decode(BitReader& in, std::size_t count) const;

  /// Total bits to encode the given frequency profile with this code.
  [[nodiscard]] std::uint64_t total_bits(std::span<const std::uint64_t> freq) const;

 private:
  std::vector<std::uint8_t> lengths_;           // per symbol; 0 = absent
  std::vector<std::uint32_t> codes_;            // canonical codewords
  // Canonical decode tables indexed by code length (1-based).
  std::vector<std::uint32_t> first_code_;       // smallest code of each length
  std::vector<std::uint32_t> first_index_;      // index into sorted_symbols_
  std::vector<std::uint32_t> count_;            // codes of each length
  std::vector<std::uint32_t> sorted_symbols_;   // symbols sorted by (length, symbol)

  void build_canonical();
};

/// Shannon entropy in bits/symbol of a frequency profile (lower bound the
/// Huffman optimality test compares against).
[[nodiscard]] double entropy_bits(std::span<const std::uint64_t> freq);

}  // namespace spi::dsp
