/// \file rng.hpp
/// Deterministic random number generation for workloads and tests.
///
/// Every stochastic element of the reproduction (synthetic speech, crack
/// observations, dynamic message sizes) draws from an explicitly seeded
/// generator so experiments are bit-reproducible run to run.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <random>

namespace spi::dsp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return std::generate_canonical<double, 53>(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal via Box–Muller (avoids distribution-object state so
  /// results are identical across standard libraries).
  [[nodiscard]] double gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  [[nodiscard]] double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace spi::dsp
