#include "dsp/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spi::dsp {

UniformQuantizer::UniformQuantizer(double step, std::int32_t max_symbol)
    : step_(step), max_symbol_(max_symbol) {
  if (step <= 0.0) throw std::invalid_argument("UniformQuantizer: step must be positive");
  if (max_symbol <= 0) throw std::invalid_argument("UniformQuantizer: max_symbol must be positive");
}

std::int32_t UniformQuantizer::quantize(double x) const {
  const double scaled = std::round(x / step_);
  const double clipped =
      std::clamp(scaled, -static_cast<double>(max_symbol_), static_cast<double>(max_symbol_));
  return static_cast<std::int32_t>(clipped);
}

double UniformQuantizer::dequantize(std::int32_t symbol) const {
  return static_cast<double>(symbol) * step_;
}

std::vector<std::int32_t> UniformQuantizer::quantize(std::span<const double> x) const {
  std::vector<std::int32_t> out;
  out.reserve(x.size());
  for (double v : x) out.push_back(quantize(v));
  return out;
}

std::vector<double> UniformQuantizer::dequantize(std::span<const std::int32_t> symbols) const {
  std::vector<double> out;
  out.reserve(symbols.size());
  for (std::int32_t s : symbols) out.push_back(dequantize(s));
  return out;
}

}  // namespace spi::dsp
