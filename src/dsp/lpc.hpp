/// \file lpc.hpp
/// Linear predictive coding — the mathematics of the paper's Application
/// 1 (LPC-based acoustic data compression): per input frame, predictor
/// coefficients are derived (actor C solves the normal equations via LU
/// decomposition), the prediction error is computed over the samples
/// (actor D, the part the paper parallelizes across PEs), and the
/// quantized error is entropy-coded (actor E).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/rng.hpp"

namespace spi::dsp {

/// Biased autocorrelation r[k] = sum_n x[n] x[n-k] / N, k = 0..max_lag.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> frame,
                                                  std::size_t max_lag);

/// Hamming window applied in place (standard LPC front end).
void hamming_window(std::span<double> frame);

/// LPC coefficients a[1..order] minimizing the forward prediction error,
/// computed by solving the Toeplitz normal equations R a = r with a
/// general LU solver (the paper's actor C performs LU decomposition).
/// Returns `order` coefficients; prediction is
///   x_hat[n] = sum_{k=1..order} a[k-1] * x[n-k].
[[nodiscard]] std::vector<double> lpc_coefficients_lu(std::span<const double> frame,
                                                      std::size_t order);

/// Same system solved by Levinson–Durbin recursion (O(order^2)); used as
/// a cross-check oracle and for the DSP microbenchmarks.
[[nodiscard]] std::vector<double> lpc_coefficients_levinson(std::span<const double> frame,
                                                            std::size_t order);

/// Prediction error e[n] = x[n] - x_hat[n] over samples
/// [begin, begin+count) of the frame (history of `order` samples before
/// `begin` must exist inside `frame` or is taken as zero). This is
/// exactly the per-PE work unit of the paper's parallelized actor D: PE i
/// computes the errors of its overlapping frame subsection.
[[nodiscard]] std::vector<double> prediction_error(std::span<const double> frame,
                                                   std::span<const double> coeffs,
                                                   std::size_t begin, std::size_t count);

/// Reconstructs samples from the prediction error (decoder side; used by
/// round-trip tests): x[n] = e[n] + sum a[k-1] x[n-k].
[[nodiscard]] std::vector<double> lpc_reconstruct(std::span<const double> error,
                                                  std::span<const double> coeffs);

/// Synthetic speech-like test signal: a few damped harmonics with slow
/// formant drift plus AR(1)-filtered noise (short-time correlated, which
/// is all LPC needs — DESIGN.md substitution for real acoustic data).
[[nodiscard]] std::vector<double> synthetic_speech(std::size_t samples, Rng& rng);

/// Signal-to-noise ratio in dB between a reference and a reconstruction.
[[nodiscard]] double snr_db(std::span<const double> reference, std::span<const double> actual);

}  // namespace spi::dsp
