/// \file fir.hpp
/// FIR filtering and multirate helpers (decimation / interpolation).
///
/// Used by the multirate sample-rate-converter example to exercise
/// SPI channels whose static rates exceed 1 — the multirate half of SDF
/// that the paper's two applications (rate-1 after VTS) do not cover.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spi::dsp {

/// Causal FIR convolution: y[n] = sum_k taps[k] * x[n-k] (zero history
/// before the block).
[[nodiscard]] std::vector<double> fir_filter(std::span<const double> x,
                                             std::span<const double> taps);

/// Windowed-sinc lowpass design. `cutoff` is the normalized cutoff in
/// (0, 0.5) (fraction of the sample rate); `taps` must be odd for a
/// symmetric (linear-phase) filter.
[[nodiscard]] std::vector<double> design_lowpass(std::size_t taps, double cutoff);

/// Keeps every m-th sample starting at `phase`.
[[nodiscard]] std::vector<double> downsample(std::span<const double> x, std::size_t m,
                                             std::size_t phase = 0);

/// Zero-stuffs m-1 zeros after every sample (gain is NOT compensated;
/// follow with a lowpass scaled by m).
[[nodiscard]] std::vector<double> upsample(std::span<const double> x, std::size_t m);

/// Streaming FIR with persistent history — the block-processing form the
/// dataflow actors use so block boundaries are seamless.
class FirState {
 public:
  explicit FirState(std::vector<double> taps);

  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

  /// Filters one block, carrying history across calls.
  [[nodiscard]] std::vector<double> process(std::span<const double> block);

  void reset();

 private:
  std::vector<double> taps_;
  std::vector<double> history_;  ///< last taps-1 input samples
};

}  // namespace spi::dsp
