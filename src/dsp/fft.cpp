#include "dsp/fft.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

#include "dsp/kernels.hpp"

namespace spi::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  if (n == 0) throw std::invalid_argument("next_power_of_two: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

/// Scalar reference transform (SPI_SCALAR_KERNELS). Recomputes wlen powers
/// per butterfly — kept verbatim as the differential-testing baseline.
void transform_scalar(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& x : data) x *= inv_n;
  }
}

/// Precomputed per-size tables: the bit-reversal permutation and the
/// forward twiddles w_k = exp(-2*pi*i*k/len) for every stage, concatenated
/// (stage len has len/2 entries at offset len/2 - 1; n - 1 entries total).
/// Twiddles come from direct cos/sin per index instead of the scalar
/// path's iterated w *= wlen product, so cached results differ from the
/// reference by at most a few ULP per butterfly (the iterated product
/// accumulates ~O(len) rounding; direct evaluation is the more accurate
/// of the two). The speech parity test is the end-to-end gate.
struct FftPlan {
  std::size_t n = 0;
  std::vector<std::uint32_t> bitrev;  // bitrev[i] = bit-reversed index of i
  std::vector<double> wre, wim;       // forward twiddles, all stages
};

std::shared_ptr<const FftPlan> make_plan(std::size_t n) {
  auto plan = std::make_shared<FftPlan>();
  plan->n = n;
  plan->bitrev.resize(n);
  plan->bitrev[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    plan->bitrev[i] = static_cast<std::uint32_t>(j);
  }
  plan->wre.resize(n - 1);
  plan->wim.resize(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    double* wre = plan->wre.data() + (half - 1);
    double* wim = plan->wim.data() + (half - 1);
    const double step = -2.0 * std::numbers::pi / static_cast<double>(len);
    for (std::size_t k = 0; k < half; ++k) {
      const double angle = step * static_cast<double>(k);
      wre[k] = std::cos(angle);
      wim[k] = std::sin(angle);
    }
  }
  return plan;
}

// Bounded plan cache: one entry per FFT size seen. Real applications use
// a handful of sizes (the paper apps use one), so the bound exists only
// to keep a size-sweeping caller from growing the map without limit —
// on overflow the cache drops an arbitrary other entry first.
constexpr std::size_t kMaxCachedPlans = 32;
std::mutex g_plan_mutex;
std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>>& plan_cache() {
  static auto* cache =
      new std::unordered_map<std::size_t, std::shared_ptr<const FftPlan>>();
  return *cache;
}

std::shared_ptr<const FftPlan> get_plan(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  auto& cache = plan_cache();
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  if (cache.size() >= kMaxCachedPlans) cache.erase(cache.begin());
  auto plan = make_plan(n);
  cache.emplace(n, plan);
  return plan;
}

/// Cached-plan transform: gathers into structure-of-arrays scratch through
/// the precomputed permutation, then runs a flat butterfly loop over
/// separate re/im arrays that the auto-vectorizer turns into SIMD (unit
/// stride, no complex-number abstraction, no data-dependent w recurrence).
void transform_vectorized(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  const auto plan = get_plan(n);

  thread_local std::vector<double> scratch;
  scratch.resize(2 * n);
  double* re = scratch.data();
  double* im = scratch.data() + n;

  const std::uint32_t* rev = plan->bitrev.data();
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = data[rev[i]].real();
    im[i] = data[rev[i]].imag();
  }

  // sign folds the conjugation for the inverse transform into the twiddle
  // imaginary part; the tables always hold forward twiddles.
  const double sign = inverse ? -1.0 : 1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wre = plan->wre.data() + (half - 1);
    const double* wim = plan->wim.data() + (half - 1);
    for (std::size_t i = 0; i < n; i += len) {
      double* ar = re + i;
      double* ai = im + i;
      double* br = ar + half;
      double* bi = ai + half;
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = wre[k];
        const double wi = sign * wim[k];
        const double vr = br[k] * wr - bi[k] * wi;
        const double vi = br[k] * wi + bi[k] * wr;
        const double ur = ar[k];
        const double ui = ai[k];
        ar[k] = ur + vr;
        ai[k] = ui + vi;
        br[k] = ur - vr;
        bi[k] = ui - vi;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = Complex(re[i] * inv_n, im[i] * inv_n);
  } else {
    for (std::size_t i = 0; i < n; ++i) data[i] = Complex(re[i], im[i]);
  }
}

void transform(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) throw std::invalid_argument("fft: size must be a power of two");
  if (n == 1 || scalar_kernels()) {
    transform_scalar(data, inverse);
    return;
  }
  transform_vectorized(data, inverse);
}

}  // namespace

std::size_t fft_plan_cache_size() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  return plan_cache().size();
}

void fft_plan_cache_clear() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  plan_cache().clear();
}

void fft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/false); }
void ifft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/true); }

std::vector<Complex> fft(std::span<const Complex> data) {
  std::vector<Complex> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<Complex> ifft(std::span<const Complex> data) {
  std::vector<Complex> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

std::vector<Complex> fft_real(std::span<const double> data) {
  std::vector<Complex> out;
  out.reserve(data.size());
  for (double x : data) out.emplace_back(x, 0.0);
  fft_inplace(out);
  return out;
}

std::vector<Complex> dft_reference(std::span<const Complex> data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> power_spectrum(std::span<const double> frame) {
  const std::size_t n = next_power_of_two(frame.size());
  std::vector<Complex> padded(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < frame.size(); ++i) padded[i] = Complex(frame[i], 0.0);
  fft_inplace(padded);
  std::vector<double> power(n);
  for (std::size_t k = 0; k < n; ++k) power[k] = std::norm(padded[k]);
  return power;
}

}  // namespace spi::dsp
