#include "dsp/fft.hpp"

#include <numbers>
#include <stdexcept>

namespace spi::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  if (n == 0) throw std::invalid_argument("next_power_of_two: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

void transform(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (Complex& x : data) x *= inv_n;
  }
}

}  // namespace

void fft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/false); }
void ifft_inplace(std::span<Complex> data) { transform(data, /*inverse=*/true); }

std::vector<Complex> fft(std::span<const Complex> data) {
  std::vector<Complex> out(data.begin(), data.end());
  fft_inplace(out);
  return out;
}

std::vector<Complex> ifft(std::span<const Complex> data) {
  std::vector<Complex> out(data.begin(), data.end());
  ifft_inplace(out);
  return out;
}

std::vector<Complex> fft_real(std::span<const double> data) {
  std::vector<Complex> out;
  out.reserve(data.size());
  for (double x : data) out.emplace_back(x, 0.0);
  fft_inplace(out);
  return out;
}

std::vector<Complex> dft_reference(std::span<const Complex> data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> power_spectrum(std::span<const double> frame) {
  const std::size_t n = next_power_of_two(frame.size());
  std::vector<Complex> padded(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < frame.size(); ++i) padded[i] = Complex(frame[i], 0.0);
  fft_inplace(padded);
  std::vector<double> power(n);
  for (std::size_t k = 0; k < n; ++k) power[k] = std::norm(padded[k]);
  return power;
}

}  // namespace spi::dsp
