#include "dsp/particle_filter.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

namespace spi::dsp {

double CrackModel::growth(double length) const {
  const double delta_k = beta * dsigma * std::sqrt(std::numbers::pi * std::max(length, 1e-9));
  return c * std::pow(delta_k, m);
}

double CrackModel::step(double length, Rng& rng) const {
  const double next = length + growth(length) + rng.gaussian(0.0, process_noise);
  return std::max(next, 1e-6);  // crack length stays physical
}

double CrackModel::observe(double length, Rng& rng) const {
  return length + rng.gaussian(0.0, obs_noise);
}

double CrackModel::likelihood(double obs, double length) const {
  const double d = (obs - length) / obs_noise;
  return std::exp(-0.5 * d * d) / (obs_noise * std::sqrt(2.0 * std::numbers::pi));
}

CrackTrajectory simulate_crack(const CrackModel& model, std::size_t steps, Rng& rng) {
  CrackTrajectory t;
  t.truth.reserve(steps);
  t.observations.reserve(steps);
  double length = model.initial_length;
  for (std::size_t k = 0; k < steps; ++k) {
    length = model.step(length, rng);
    t.truth.push_back(length);
    t.observations.push_back(model.observe(length, rng));
  }
  return t;
}

std::vector<double> systematic_resample(std::span<const double> particles,
                                        std::span<const double> weights, std::int64_t count,
                                        double u0) {
  if (particles.size() != weights.size())
    throw std::invalid_argument("systematic_resample: size mismatch");
  if (count < 0) throw std::invalid_argument("systematic_resample: negative count");
  if (u0 < 0.0 || u0 >= 1.0) throw std::invalid_argument("systematic_resample: u0 not in [0,1)");
  std::vector<double> out;
  if (count == 0) return out;
  if (particles.empty()) throw std::invalid_argument("systematic_resample: empty input");

  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::domain_error("systematic_resample: non-positive weight sum");

  out.reserve(static_cast<std::size_t>(count));
  const double stride = total / static_cast<double>(count);
  double pointer = u0 * stride;
  double cumulative = weights[0];
  std::size_t index = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    while (cumulative < pointer && index + 1 < particles.size()) {
      ++index;
      cumulative += weights[index];
    }
    out.push_back(particles[index]);
    pointer += stride;
  }
  return out;
}

std::vector<std::int64_t> proportional_targets(std::span<const double> local_weight_sums,
                                               std::int64_t total) {
  if (local_weight_sums.empty())
    throw std::invalid_argument("proportional_targets: no processors");
  const double sum = std::accumulate(local_weight_sums.begin(), local_weight_sums.end(), 0.0);
  if (sum <= 0.0) throw std::domain_error("proportional_targets: non-positive weight sum");

  const std::size_t p = local_weight_sums.size();
  std::vector<std::int64_t> targets(p, 0);
  std::vector<std::pair<double, std::size_t>> remainders;  // (-remainder, pe) for sorting
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const double exact = static_cast<double>(total) * local_weight_sums[i] / sum;
    targets[i] = static_cast<std::int64_t>(std::floor(exact));
    assigned += targets[i];
    remainders.emplace_back(-(exact - std::floor(exact)), i);
  }
  std::sort(remainders.begin(), remainders.end());  // largest remainder first, pe id tie-break
  for (std::int64_t extra = total - assigned; extra > 0; --extra)
    targets[remainders[static_cast<std::size_t>(total - assigned - extra)].second] += 1;
  return targets;
}

ParticleFilter::ParticleFilter(std::size_t particle_count, CrackModel model, std::uint64_t seed)
    : model_(model), rng_(seed) {
  if (particle_count == 0) throw std::invalid_argument("ParticleFilter: need >= 1 particle");
  particles_.reserve(particle_count);
  for (std::size_t i = 0; i < particle_count; ++i)
    particles_.push_back(std::max(1e-6, model_.initial_length +
                                            rng_.gaussian(0.0, 5.0 * model_.process_noise)));
  weights_.assign(particle_count, 1.0 / static_cast<double>(particle_count));
}

void ParticleFilter::predict() {
  for (double& p : particles_) p = model_.step(p, rng_);
}

void ParticleFilter::update(double observation) {
  double total = 0.0;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    weights_[i] *= model_.likelihood(observation, particles_[i]);
    total += weights_[i];
  }
  if (total <= 0.0) {
    // Degenerate update (all particles far from the observation): reset
    // to uniform rather than dividing by zero.
    std::fill(weights_.begin(), weights_.end(), 1.0 / static_cast<double>(weights_.size()));
    return;
  }
  for (double& w : weights_) w /= total;
}

double ParticleFilter::estimate() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < particles_.size(); ++i) acc += weights_[i] * particles_[i];
  return acc;
}

double ParticleFilter::effective_sample_size() const {
  double sq = 0.0;
  for (double w : weights_) sq += w * w;
  return sq > 0.0 ? 1.0 / sq : 0.0;
}

void ParticleFilter::resample() {
  particles_ = systematic_resample(particles_, weights_,
                                   static_cast<std::int64_t>(particles_.size()), rng_.uniform());
  std::fill(weights_.begin(), weights_.end(), 1.0 / static_cast<double>(weights_.size()));
}

double ParticleFilter::step(double observation) {
  predict();
  update(observation);
  const double est = estimate();
  resample();
  return est;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace spi::dsp
