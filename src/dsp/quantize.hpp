/// \file quantize.hpp
/// Uniform scalar quantization of prediction-error samples (the paper's
/// Application 1 quantizes the prediction error and its coefficients;
/// the quantized symbols feed the Huffman coder).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace spi::dsp {

/// Midtread uniform quantizer with a symmetric clip range.
class UniformQuantizer {
 public:
  /// \param step       quantization step size (> 0)
  /// \param max_symbol symbols are clipped to [-max_symbol, +max_symbol]
  UniformQuantizer(double step, std::int32_t max_symbol);

  [[nodiscard]] double step() const { return step_; }
  [[nodiscard]] std::int32_t max_symbol() const { return max_symbol_; }
  /// Alphabet size = 2*max_symbol + 1 (symbols re-indexed to 0-based for
  /// entropy coding: index = symbol + max_symbol).
  [[nodiscard]] std::size_t alphabet_size() const {
    return static_cast<std::size_t>(2 * max_symbol_ + 1);
  }

  [[nodiscard]] std::int32_t quantize(double x) const;
  [[nodiscard]] double dequantize(std::int32_t symbol) const;

  [[nodiscard]] std::vector<std::int32_t> quantize(std::span<const double> x) const;
  [[nodiscard]] std::vector<double> dequantize(std::span<const std::int32_t> symbols) const;

  /// 0-based alphabet index of a symbol (for the Huffman coder).
  [[nodiscard]] std::size_t index_of(std::int32_t symbol) const {
    return static_cast<std::size_t>(symbol + max_symbol_);
  }
  [[nodiscard]] std::int32_t symbol_of(std::size_t index) const {
    return static_cast<std::int32_t>(index) - max_symbol_;
  }

 private:
  double step_;
  std::int32_t max_symbol_;
};

}  // namespace spi::dsp
