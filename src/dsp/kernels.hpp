/// \file kernels.hpp
/// Kernel-path selection for the DSP library.
///
/// Every hot kernel (FFT, FIR, linalg, Huffman bit packing) ships two
/// implementations: the original scalar reference and a blocked /
/// structure-of-arrays rewrite laid out so the compiler's auto-vectorizer
/// can use SIMD (no intrinsics). The vectorized paths are bit-identical to
/// the scalar references — they perform the same floating-point additions
/// in the same order, only restructured for instruction-level parallelism —
/// except the FFT, whose cached-twiddle path differs by a few ULP (see
/// fft.cpp for the documented bound; the speech parity test is the
/// end-to-end gate).
///
/// The scalar references stay selectable for differential testing:
///   * environment: SPI_SCALAR_KERNELS=1 (read once, on first use);
///   * programmatic: set_scalar_kernels(true/false) overrides the
///     environment (used by the scalar-vs-vectorized unit tests and the
///     micro_dsp benchmark pairs).
#pragma once

namespace spi::dsp {

/// True when the scalar reference kernels are active (SPI_SCALAR_KERNELS
/// env var, or a set_scalar_kernels(true) override).
[[nodiscard]] bool scalar_kernels();

/// Forces the kernel path for this process; overrides the environment.
/// Thread-safe, but flipping it concurrently with kernel calls gives
/// per-call (not per-operation) granularity — tests flip it between runs.
void set_scalar_kernels(bool scalar);

}  // namespace spi::dsp
