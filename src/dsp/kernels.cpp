#include "dsp/kernels.hpp"

#include <atomic>
#include <cstdlib>

namespace spi::dsp {

namespace {

// -1 = unset (consult the environment on first read), 0 = vectorized,
// 1 = scalar reference.
std::atomic<int> g_scalar_override{-1};

bool env_scalar() {
  static const bool scalar = [] {
    const char* v = std::getenv("SPI_SCALAR_KERNELS");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return scalar;
}

}  // namespace

bool scalar_kernels() {
  const int o = g_scalar_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_scalar();
}

void set_scalar_kernels(bool scalar) {
  g_scalar_override.store(scalar ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace spi::dsp
