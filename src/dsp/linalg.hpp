/// \file linalg.hpp
/// Dense linear algebra: LU decomposition with partial pivoting.
///
/// Actor C of the paper's speech application computes LPC predictor
/// coefficients by solving the normal equations via LU decomposition.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace spi::dsp {

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Matrix-vector product (x.size() must equal cols()).
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU decomposition with partial pivoting: PA = LU, stored packed.
class LuDecomposition {
 public:
  /// Factorizes a square matrix. Throws std::domain_error when the matrix
  /// is numerically singular.
  explicit LuDecomposition(Matrix a);

  [[nodiscard]] std::size_t order() const { return lu_.rows(); }
  [[nodiscard]] int pivot_sign() const { return pivot_sign_; }
  [[nodiscard]] double determinant() const;

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int pivot_sign_ = 1;
};

/// Convenience: solve A x = b in one call.
[[nodiscard]] std::vector<double> lu_solve(Matrix a, std::span<const double> b);

}  // namespace spi::dsp
