#include "dsp/fir.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/kernels.hpp"

namespace spi::dsp {

namespace {

/// Tap-outer convolution over a contiguous signal: y[n] += taps[k] *
/// sig[n - k], accumulated k-ascending exactly like the scalar n-outer
/// form (so the result is bit-identical), but with a unit-stride inner
/// loop over n that auto-vectorizes. `sig` and `y` may have different
/// lengths; the first `y.size()` outputs are produced, reading
/// sig[offset + n - k] (offset lets FirState filter [history | block]
/// while emitting only the block's span).
void fir_tap_outer(const double* sig, std::size_t offset, std::span<const double> taps,
                   std::span<double> y) {
  for (std::size_t k = 0; k < taps.size(); ++k) {
    const double t = taps[k];
    // y[n] uses sig[offset + n - k]; valid while offset + n >= k.
    const std::size_t first = k > offset ? k - offset : 0;
    const double* src = sig + offset + first - k;
    double* dst = y.data() + first;
    const std::size_t count = y.size() > first ? y.size() - first : 0;
    for (std::size_t n = 0; n < count; ++n) dst[n] += t * src[n];
  }
}

}  // namespace

std::vector<double> fir_filter(std::span<const double> x, std::span<const double> taps) {
  if (taps.empty()) throw std::invalid_argument("fir_filter: empty taps");
  std::vector<double> y(x.size(), 0.0);
  if (!scalar_kernels()) {
    fir_tap_outer(x.data(), 0, taps, y);
    return y;
  }
  for (std::size_t n = 0; n < x.size(); ++n) {
    double acc = 0.0;
    const std::size_t kmax = std::min(taps.size() - 1, n);
    for (std::size_t k = 0; k <= kmax; ++k) acc += taps[k] * x[n - k];
    y[n] = acc;
  }
  return y;
}

std::vector<double> design_lowpass(std::size_t taps, double cutoff) {
  if (taps < 3 || taps % 2 == 0)
    throw std::invalid_argument("design_lowpass: taps must be odd and >= 3");
  if (cutoff <= 0.0 || cutoff >= 0.5)
    throw std::invalid_argument("design_lowpass: cutoff must be in (0, 0.5)");
  std::vector<double> h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t n = 0; n < taps; ++n) {
    const double t = static_cast<double>(n) - mid;
    const double sinc = t == 0.0 ? 2.0 * cutoff
                                 : std::sin(2.0 * std::numbers::pi * cutoff * t) /
                                       (std::numbers::pi * t);
    // Hamming window.
    const double w = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(n) /
                                            static_cast<double>(taps - 1));
    h[n] = sinc * w;
    sum += h[n];
  }
  for (double& v : h) v /= sum;  // unity DC gain
  return h;
}

std::vector<double> downsample(std::span<const double> x, std::size_t m, std::size_t phase) {
  if (m == 0) throw std::invalid_argument("downsample: m must be >= 1");
  if (phase >= m) throw std::invalid_argument("downsample: phase must be < m");
  std::vector<double> y;
  y.reserve(x.size() / m + 1);
  for (std::size_t n = phase; n < x.size(); n += m) y.push_back(x[n]);
  return y;
}

std::vector<double> upsample(std::span<const double> x, std::size_t m) {
  if (m == 0) throw std::invalid_argument("upsample: m must be >= 1");
  std::vector<double> y(x.size() * m, 0.0);
  for (std::size_t n = 0; n < x.size(); ++n) y[n * m] = x[n];
  return y;
}

FirState::FirState(std::vector<double> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirState: empty taps");
  history_.assign(taps_.size() - 1, 0.0);
}

std::vector<double> FirState::process(std::span<const double> block) {
  // Filter over [history | block] and emit only the block's span.
  std::vector<double> extended;
  extended.reserve(history_.size() + block.size());
  extended.insert(extended.end(), history_.begin(), history_.end());
  extended.insert(extended.end(), block.begin(), block.end());

  std::vector<double> y(block.size(), 0.0);
  if (!scalar_kernels()) {
    fir_tap_outer(extended.data(), history_.size(), taps_, y);
  } else {
    for (std::size_t n = 0; n < block.size(); ++n) {
      const std::size_t pos = n + history_.size();
      double acc = 0.0;
      for (std::size_t k = 0; k < taps_.size() && k <= pos; ++k)
        acc += taps_[k] * extended[pos - k];
      y[n] = acc;
    }
  }

  // Slide the history window.
  if (block.size() >= history_.size()) {
    std::copy(block.end() - static_cast<std::ptrdiff_t>(history_.size()), block.end(),
              history_.begin());
  } else {
    history_.erase(history_.begin(), history_.begin() + static_cast<std::ptrdiff_t>(block.size()));
    history_.insert(history_.end(), block.begin(), block.end());
  }
  return y;
}

void FirState::reset() { history_.assign(history_.size(), 0.0); }

}  // namespace spi::dsp
