#include "dsp/lpc.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/linalg.hpp"

namespace spi::dsp {

std::vector<double> autocorrelation(std::span<const double> frame, std::size_t max_lag) {
  if (frame.empty()) throw std::invalid_argument("autocorrelation: empty frame");
  if (max_lag >= frame.size())
    throw std::invalid_argument("autocorrelation: lag exceeds frame length");
  std::vector<double> r(max_lag + 1, 0.0);
  const double inv_n = 1.0 / static_cast<double>(frame.size());
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t n = k; n < frame.size(); ++n) acc += frame[n] * frame[n - k];
    r[k] = acc * inv_n;
  }
  return r;
}

void hamming_window(std::span<double> frame) {
  const std::size_t n = frame.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                            static_cast<double>(n - 1));
    frame[i] *= w;
  }
}

std::vector<double> lpc_coefficients_lu(std::span<const double> frame, std::size_t order) {
  if (order == 0) throw std::invalid_argument("lpc_coefficients_lu: order must be >= 1");
  const std::vector<double> r = autocorrelation(frame, order);
  // Normal equations: Toeplitz system R a = r with R[i][j] = r[|i-j|],
  // right-hand side r[1..order]. A tiny diagonal load keeps silence
  // frames non-singular.
  Matrix big_r(order, order);
  for (std::size_t i = 0; i < order; ++i)
    for (std::size_t j = 0; j < order; ++j)
      big_r.at(i, j) = r[static_cast<std::size_t>(std::llabs(static_cast<long long>(i) -
                                                             static_cast<long long>(j)))];
  for (std::size_t i = 0; i < order; ++i) big_r.at(i, i) += 1e-9 * (r[0] + 1.0);
  const std::vector<double> rhs(r.begin() + 1, r.end());
  return lu_solve(std::move(big_r), rhs);
}

std::vector<double> lpc_coefficients_levinson(std::span<const double> frame, std::size_t order) {
  if (order == 0) throw std::invalid_argument("lpc_coefficients_levinson: order must be >= 1");
  std::vector<double> r = autocorrelation(frame, order);
  r[0] += 1e-9 * (r[0] + 1.0);  // same regularization as the LU path
  std::vector<double> a(order, 0.0);
  double err = r[0];
  for (std::size_t i = 0; i < order; ++i) {
    double acc = r[i + 1];
    for (std::size_t j = 0; j < i; ++j) acc -= a[j] * r[i - j];
    const double k = acc / err;
    std::vector<double> a_new(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(i));
    for (std::size_t j = 0; j < i; ++j) a_new[j] = a[j] - k * a[i - 1 - j];
    for (std::size_t j = 0; j < i; ++j) a[j] = a_new[j];
    a[i] = k;
    err *= (1.0 - k * k);
    if (err <= 0.0) err = 1e-12;  // numerically degenerate frame
  }
  return a;
}

std::vector<double> prediction_error(std::span<const double> frame,
                                     std::span<const double> coeffs, std::size_t begin,
                                     std::size_t count) {
  if (begin + count > frame.size())
    throw std::out_of_range("prediction_error: section exceeds frame");
  std::vector<double> error(count);
  for (std::size_t n = begin; n < begin + count; ++n) {
    double pred = 0.0;
    for (std::size_t k = 1; k <= coeffs.size(); ++k) {
      if (n >= k) pred += coeffs[k - 1] * frame[n - k];
    }
    error[n - begin] = frame[n] - pred;
  }
  return error;
}

std::vector<double> lpc_reconstruct(std::span<const double> error,
                                    std::span<const double> coeffs) {
  std::vector<double> x(error.size(), 0.0);
  for (std::size_t n = 0; n < error.size(); ++n) {
    double pred = 0.0;
    for (std::size_t k = 1; k <= coeffs.size(); ++k) {
      if (n >= k) pred += coeffs[k - 1] * x[n - k];
    }
    x[n] = error[n] + pred;
  }
  return x;
}

std::vector<double> synthetic_speech(std::size_t samples, Rng& rng) {
  std::vector<double> x(samples, 0.0);
  // Three drifting "formants" with distinct amplitudes.
  const double base[3] = {0.031, 0.083, 0.157};   // normalized frequencies
  const double amp[3] = {0.9, 0.5, 0.25};
  double phase[3] = {rng.uniform(0.0, 6.28), rng.uniform(0.0, 6.28), rng.uniform(0.0, 6.28)};
  double drift[3] = {0.0, 0.0, 0.0};
  double ar = 0.0;  // AR(1) noise state
  for (std::size_t n = 0; n < samples; ++n) {
    double s = 0.0;
    for (int f = 0; f < 3; ++f) {
      drift[f] += rng.gaussian(0.0, 1e-5);
      phase[f] += 2.0 * std::numbers::pi * (base[f] + drift[f]);
      s += amp[f] * std::sin(phase[f]);
    }
    ar = 0.95 * ar + rng.gaussian(0.0, 0.05);
    // Slow amplitude envelope mimicking syllable energy.
    const double env =
        0.6 + 0.4 * std::sin(2.0 * std::numbers::pi * static_cast<double>(n) / 2048.0);
    x[n] = env * (s + ar);
  }
  return x;
}

double snr_db(std::span<const double> reference, std::span<const double> actual) {
  if (reference.size() != actual.size()) throw std::invalid_argument("snr_db: size mismatch");
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    signal += reference[i] * reference[i];
    const double d = reference[i] - actual[i];
    noise += d * d;
  }
  if (noise == 0.0) return 300.0;  // exact reconstruction
  return 10.0 * std::log10(signal / noise);
}

}  // namespace spi::dsp
