#include "serve/plan_cache.hpp"

#include <stdexcept>
#include <utility>

#include "core/job_instance.hpp"

namespace spi::serve {

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("PlanCache: capacity must be positive");
}

void PlanCache::touch(const std::string& key) {
  auto& [entry, pos] = entries_.at(key);
  (void)entry;
  lru_.splice(lru_.begin(), lru_, pos);
  pos = lru_.begin();
}

std::shared_ptr<const CachedPlan> PlanCache::insert(core::ExecutablePlan plan) {
  const std::string key = plan.content_hash_hex();
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    touch(key);
    return it->second.first;
  }

  auto entry = std::make_shared<CachedPlan>();
  entry->key = key;
  entry->resident_bytes = core::JobInstance::resident_channel_bytes(plan);
  entry->plan = std::make_shared<const core::ExecutablePlan>(std::move(plan));

  if (entries_.size() >= capacity_) {
    const std::string& victim = lru_.back();
    const auto vit = entries_.find(victim);
    resident_bytes_ -= vit->second.first->resident_bytes;
    evicted_bytes_ += vit->second.first->resident_bytes;
    ++evictions_;
    entries_.erase(vit);
    lru_.pop_back();
  }

  lru_.push_front(key);
  resident_bytes_ += entry->resident_bytes;
  auto [it, inserted] = entries_.emplace(key, std::make_pair(entry, lru_.begin()));
  (void)inserted;
  return it->second.first;
}

std::shared_ptr<const CachedPlan> PlanCache::find(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch(key);
  return it->second.first;
}

std::int64_t PlanCache::take_evicted_bytes() { return std::exchange(evicted_bytes_, 0); }

}  // namespace spi::serve
