/// \file plan_server.hpp
/// The multi-tenant plan server (docs/serving.md).
///
/// One persistent process serves many plan instances:
///
///   POST /plan      — submit a compiled plan JSON; cached by content
///                     hash (PlanCache), its equation-2 resident channel
///                     memory reserved against the admission budget.
///   POST /job       — run one job on a built-in model ("speech" or
///                     "particle"); jobs admitted from one HTTP read
///                     burst are queued per tenant and drained as ONE
///                     batched colocated firing per app.
///   GET  /metrics   — Prometheus exposition of the serve + runtime
///                     counters; /metrics.json for the JSON form.
///   GET  /runtime   — live server status JSON (cache, admission,
///                     tenants, models).
///   GET  /healthz   — liveness.
///
/// The server is synchronous and single-threaded by design: the target
/// is one hardware thread, where the fastest schedule is to batch the
/// pipelined requests of each read burst through one program traversal
/// (HTTP/1.1 pipelining + BatchHandler + JobInstance::run_colocated)
/// rather than to context-switch between worker threads. Every request
/// is serialized through the poll thread, which is what makes the
/// single-threaded PlanCache/JobQueue/BufferPool contracts sound.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "apps/particle_app.hpp"
#include "apps/speech_app.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "serve/admission.hpp"
#include "serve/job_queue.hpp"
#include "serve/plan_cache.hpp"

namespace spi::serve {

struct PlanServerOptions {
  int port = 0;  ///< 0 = ephemeral
  std::string bind_address = "127.0.0.1";
  AdmissionController::Options admission;
  std::size_t plan_cache_capacity = 64;
  /// Built-in model shapes (small defaults sized for one serving core;
  /// the bounds cap per-job input sizes).
  std::int32_t speech_pes = 2;
  apps::SpeechParams speech_params{.frame_size = 64,
                                   .max_frame_size = 256,
                                   .order = 4,
                                   .max_order = 8};
  std::int32_t particle_pes = 2;
  apps::ParticleParams particle_params{.particles = 16, .max_particles = 64, .model = {}};
  /// Watchdog over each batch run (0 = off): a batch making no progress
  /// for this window dumps a flight post-mortem into
  /// `flight_dump_dir` and counts spi_serve_stalls_total — without
  /// aborting the batch (abort_on_stall stays false so one wedged job
  /// cannot take the server down with it).
  std::int64_t watchdog_ms = 0;
  std::string flight_dump_dir;
  obs::MetricRegistry* metrics = nullptr;  ///< optional external registry
  /// Request-lifecycle tracing (GET /trace, /tenants — see
  /// obs/request_trace.hpp). On by default; the serve bench holds the
  /// traced-vs-bare throughput regression under 2%.
  obs::RequestTracerOptions trace;
};

class PlanServer {
 public:
  explicit PlanServer(PlanServerOptions options = {});
  ~PlanServer();
  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return http_ && http_->running(); }
  [[nodiscard]] int port() const { return http_ ? http_->port() : -1; }

  /// The batch handler: routes every request of one read burst, then
  /// drains the tenant queues app by app as batched firings. Public so
  /// tests (and in-process embedders) can drive the server without a
  /// socket — `responses` is filled with exactly one response per
  /// request, in order.
  void handle_burst(std::span<obs::HttpRequest> requests,
                    std::vector<obs::HttpResponse>& responses);

  [[nodiscard]] const PlanCache& plan_cache() const { return cache_; }
  [[nodiscard]] const AdmissionController& admission() const { return admission_; }
  [[nodiscard]] obs::MetricRegistry& metrics() { return *metrics_; }
  [[nodiscard]] std::int64_t jobs_served() const { return jobs_served_; }
  [[nodiscard]] std::string runtime_json() const;
  /// The GET /tenants body: per-tenant queue facts merged with the
  /// tracer's per-stage rollups.
  [[nodiscard]] std::string tenants_json() const;
  [[nodiscard]] const obs::RequestTracer& tracer() const { return *tracer_; }
  /// Content hashes of the built-in model plans (pre-cached at startup).
  [[nodiscard]] const std::string& speech_plan_key() const { return speech_plan_key_; }
  [[nodiscard]] const std::string& particle_plan_key() const { return particle_plan_key_; }

 private:
  struct SpeechModel;
  struct ParticleModel;

  /// One tenant's serving state: the queue plus the tracer's cached
  /// instrument handles (resolved once — per-request stamping must not
  /// take the registry lock).
  struct TenantState {
    explicit TenantState(std::string tenant) : queue(std::move(tenant)) {}
    JobQueue queue;
    obs::TenantSeries* series = nullptr;
  };

  [[nodiscard]] obs::HttpResponse handle_get(const obs::HttpRequest& request);
  [[nodiscard]] obs::HttpResponse handle_plan_post(const obs::HttpRequest& request);
  /// Parses and queues one POST /job, or answers it immediately (400 /
  /// 429) in `responses`.
  void route_job(std::size_t index, const obs::HttpRequest& request,
                 std::vector<obs::HttpResponse>& responses);
  void drain_queue(TenantState& tenant, std::vector<obs::HttpResponse>& responses);

  PlanServerOptions options_;
  std::unique_ptr<obs::MetricRegistry> owned_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;

  PlanCache cache_;
  AdmissionController admission_;
  std::map<std::string, TenantState> tenants_;
  std::unique_ptr<obs::RequestTracer> tracer_;
  std::int64_t next_batch_id_ = 0;
  std::int64_t burst_ingest_ns_ = 0;  ///< tracer stamp at handle_burst entry
  /// Shared enqueue stamp, taken lazily at the burst's first admitted
  /// job (-1 = not yet): one clock read per burst, not per job.
  std::int64_t burst_admit_ns_ = -1;
  std::vector<std::uint64_t> span_ids_scratch_;  ///< reused per drained batch

  std::unique_ptr<SpeechModel> speech_;
  std::unique_ptr<ParticleModel> particle_;
  std::string speech_plan_key_;
  std::string particle_plan_key_;

  std::unique_ptr<obs::HttpServer> http_;
  std::int64_t jobs_served_ = 0;
  std::int64_t bursts_ = 0;
  std::int64_t stalls_ = 0;
};

}  // namespace spi::serve
