#include "serve/plan_server.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "core/job_instance.hpp"
#include "dsp/particle_filter.hpp"
#include "dsp/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/text_escape.hpp"
#include "serve/request.hpp"

namespace spi::serve {

namespace {

/// Deterministic synthetic speech frame: a splitmix-style stream keyed
/// by the job seed, so identical requests produce identical jobs (the
/// loadgen relies on this for cheap request bodies).
std::vector<double> synth_frame(std::uint64_t seed, std::size_t n) {
  std::vector<double> frame(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    frame[i] = static_cast<double>((x >> 33) % 2000) / 1000.0 - 1.0;
  }
  return frame;
}

std::vector<double> synth_coeffs(std::size_t order) {
  std::vector<double> coeffs(order);
  for (std::size_t j = 0; j < order; ++j) coeffs[j] = 0.5 / static_cast<double>(j + 1);
  return coeffs;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_doubles(std::string& out, std::span<const double> values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, values[i]);
  }
  out += ']';
}

obs::HttpResponse json_response(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

obs::HttpResponse reject_response(const std::string& reason) {
  return json_response(429, "{\"error\": \"" + reason + "\"}\n");
}

obs::HttpResponse bad_request(const std::string& what) {
  return json_response(400, "{\"error\": \"" + obs::detail::json_escaped(what) + "\"}\n");
}

std::string_view path_of(const obs::HttpRequest& request) {
  const std::string_view target = request.target;
  const std::size_t query = target.find('?');
  return query == std::string_view::npos ? target : target.substr(0, query);
}

// Stage indices into RequestSpan::stage_ns (request_trace.hpp).
constexpr auto kStAdmission = static_cast<std::size_t>(obs::RequestStage::kAdmission);
constexpr auto kStQueue = static_cast<std::size_t>(obs::RequestStage::kQueue);
constexpr auto kStBatch = static_cast<std::size_t>(obs::RequestStage::kBatch);
constexpr auto kStExec = static_cast<std::size_t>(obs::RequestStage::kExec);
constexpr auto kStReply = static_cast<std::size_t>(obs::RequestStage::kReply);

}  // namespace

/// A built-in model: the app, one persistent JobInstance executing every
/// batch, and that instance's flight recorder (armed continuously when
/// the stall watchdog may dump a post-mortem, else only around the
/// trace bridge's captured batches).
struct PlanServer::SpeechModel {
  apps::ErrorGenApp app;
  obs::FlightRecorder flight;
  core::JobInstance instance;
  core::RunOptions run_options;

  SpeechModel(const PlanServerOptions& options, obs::MetricRegistry* metrics)
      : app(options.speech_pes, options.speech_params),
        flight(app.system().plan().proc_count),
        instance(app.system().plan(),
                 core::JobInstanceOptions{
                     core::ChannelPolicy::kAuto, {}, metrics, "speech"}) {
    instance.set_flight_recorder(&flight);
  }
};

struct PlanServer::ParticleModel {
  apps::ParticleFilterApp app;
  obs::FlightRecorder flight;
  core::JobInstance instance;
  core::RunOptions run_options;

  ParticleModel(const PlanServerOptions& options, obs::MetricRegistry* metrics)
      : app(options.particle_pes, options.particle_params),
        flight(app.system().plan().proc_count),
        instance(app.system().plan(),
                 core::JobInstanceOptions{
                     core::ChannelPolicy::kAuto, {}, metrics, "particle"}) {
    instance.set_flight_recorder(&flight);
  }
};

PlanServer::PlanServer(PlanServerOptions options)
    : options_(std::move(options)),
      cache_(options_.plan_cache_capacity),
      admission_(options_.admission) {
  if (options_.metrics) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = std::make_unique<obs::RequestTracer>(options_.trace, *metrics_);

  speech_ = std::make_unique<SpeechModel>(options_, metrics_);
  particle_ = std::make_unique<ParticleModel>(options_, metrics_);
  // The recorders stay attached for the server's lifetime but record
  // only when somebody will drain the events: continuously when the
  // stall watchdog may dump a post-mortem, else just around captured
  // batches (the flight bridge arms/disarms per capture).
  const bool continuous_flight = options_.watchdog_ms > 0;
  speech_->flight.set_armed(continuous_flight);
  particle_->flight.set_armed(continuous_flight);
  for (auto* run_options : {&speech_->run_options, &particle_->run_options}) {
    if (options_.watchdog_ms > 0) {
      run_options->watchdog.enabled = true;
      run_options->watchdog.window_ms = options_.watchdog_ms;
      run_options->watchdog.dump_dir = options_.flight_dump_dir;
      run_options->watchdog.abort_on_stall = false;  // survive a wedged batch
      run_options->watchdog.on_stall = [this](const obs::StallReport&) {
        ++stalls_;
        metrics_->counter("spi_serve_stalls_total").inc();
      };
    }
  }

  // The built-in plans take the same admission + cache path tenant plans
  // do — the server refuses to start with a budget its own models bust.
  for (const auto* plan :
       {&speech_->app.system().plan(), &particle_->app.system().plan()}) {
    const auto resident = core::JobInstance::resident_channel_bytes(*plan);
    if (!admission_.admit_plan(resident).admitted)
      throw std::invalid_argument(
          "PlanServer: memory budget below the built-in models' resident bytes");
    (void)cache_.insert(*plan);
  }
  speech_plan_key_ = speech_->app.system().plan().content_hash_hex();
  particle_plan_key_ = particle_->app.system().plan().content_hash_hex();
}

PlanServer::~PlanServer() { stop(); }

void PlanServer::start() {
  if (http_) return;
  obs::HttpServer::Options http;
  http.port = options_.port;
  http.bind_address = options_.bind_address;
  http.batch_handler = [this](std::span<obs::HttpRequest> requests,
                              std::vector<obs::HttpResponse>& responses) {
    handle_burst(requests, responses);
  };
  http_ = std::make_unique<obs::HttpServer>(std::move(http));
  http_->start();
}

void PlanServer::stop() {
  if (!http_) return;
  http_->stop();
  http_.reset();
}

obs::HttpResponse PlanServer::handle_get(const obs::HttpRequest& request) {
  const std::string_view path = path_of(request);
  if (path == "/healthz") {
    metrics_->counter("spi_serve_requests_total", {{"route", "healthz"}}).inc();
    obs::HttpResponse response;
    response.body = "ok\n";
    return response;
  }
  if (path == "/metrics" || path == "/metrics.json") {
    metrics_->counter("spi_serve_requests_total", {{"route", "metrics"}}).inc();
    metrics_->gauge("spi_serve_plan_cache_entries").set(static_cast<double>(cache_.size()));
    metrics_->gauge("spi_serve_plan_cache_hits").set(static_cast<double>(cache_.hits()));
    metrics_->gauge("spi_serve_plan_cache_misses").set(static_cast<double>(cache_.misses()));
    metrics_->gauge("spi_serve_plan_cache_evictions").set(static_cast<double>(cache_.evictions()));
    metrics_->gauge("spi_serve_resident_reserved_bytes")
        .set(static_cast<double>(admission_.reserved_bytes()));
    speech_->instance.refresh_channel_gauges();
    particle_->instance.refresh_channel_gauges();
    for (const auto& [tenant, state] : tenants_) {
      const obs::Labels tenant_label{{"tenant", tenant}};
      metrics_->gauge("spi_serve_queue_depth", tenant_label)
          .set(static_cast<double>(state.queue.depth()));
      metrics_->gauge("spi_serve_queue_depth_watermark", tenant_label)
          .set(static_cast<double>(state.queue.depth_watermark()));
    }
    obs::HttpResponse response;
    if (path == "/metrics.json") {
      response.content_type = "application/json";
      response.body = metrics_->to_json();
    } else {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = metrics_->to_prometheus();
    }
    return response;
  }
  if (path == "/runtime") {
    metrics_->counter("spi_serve_requests_total", {{"route", "runtime"}}).inc();
    return json_response(200, runtime_json());
  }
  if (path == "/trace") {
    metrics_->counter("spi_serve_requests_total", {{"route", "trace"}}).inc();
    return json_response(200, tracer_->trace_json());
  }
  if (path == "/trace/flight") {
    metrics_->counter("spi_serve_requests_total", {{"route", "trace"}}).inc();
    if (!tracer_->has_flight())
      return json_response(404, "{\"error\": \"no sampled flight log captured yet\"}\n");
    return json_response(200, tracer_->flight_json());
  }
  if (path == "/tenants") {
    metrics_->counter("spi_serve_requests_total", {{"route", "tenants"}}).inc();
    return json_response(200, tenants_json());
  }
  metrics_->counter("spi_serve_requests_total", {{"route", "other"}}).inc();
  return json_response(404, "{\"error\": \"not found\"}\n");
}

obs::HttpResponse PlanServer::handle_plan_post(const obs::HttpRequest& request) {
  metrics_->counter("spi_serve_requests_total", {{"route", "plan"}}).inc();
  core::ExecutablePlan plan;
  try {
    plan = core::ExecutablePlan::from_json(request.body);
  } catch (const std::exception& e) {
    return bad_request(e.what());
  }

  const std::string key = plan.content_hash_hex();
  const bool cached = cache_.contains(key);
  std::int64_t resident = 0;
  if (!cached) {
    resident = core::JobInstance::resident_channel_bytes(plan);
    const AdmissionDecision decision = admission_.admit_plan(resident);
    if (!decision.admitted) {
      metrics_->counter("spi_serve_rejects_total", {{"reason", decision.reason}}).inc();
      return reject_response(decision.reason);
    }
  }
  const auto entry = cache_.insert(std::move(plan));
  // Evictions hand their reservation back to the budget.
  admission_.release_plan(cache_.take_evicted_bytes());

  std::string body = "{\"plan\": \"" + entry->key + "\", \"cached\": ";
  body += cached ? "true" : "false";
  body += ", \"resident_bytes\": " + std::to_string(entry->resident_bytes) + "}\n";
  return json_response(cached ? 200 : 201, std::move(body));
}

void PlanServer::route_job(std::size_t index, const obs::HttpRequest& request,
                           std::vector<obs::HttpResponse>& responses) {
  metrics_->counter("spi_serve_requests_total", {{"route", "job"}}).inc();
  const auto app = json_string_field(request.body, "app");
  if (!app || (*app != "speech" && *app != "particle")) {
    responses[index] = bad_request("job requires \"app\": \"speech\" or \"particle\"");
    return;
  }
  std::string tenant = json_string_field(request.body, "tenant").value_or("default");
  auto [it, inserted] = tenants_.try_emplace(tenant, TenantState(tenant));
  TenantState& state = it->second;
  if (inserted) state.series = tracer_->tenant_series(tenant);
  JobQueue& queue = state.queue;
  const AdmissionDecision decision = admission_.admit_job(queue.depth());
  if (!decision.admitted) {
    metrics_->counter("spi_serve_rejects_total", {{"reason", decision.reason}}).inc();
    responses[index] = reject_response(decision.reason);
    if (state.series != nullptr) {
      // A 429 is a complete (short) lifecycle: ingest -> admission
      // verdict -> reply. Rejects show up in the per-tenant rollups.
      obs::RequestSpan span;
      span.id = tracer_->begin_span();
      span.sampled = tracer_->is_sampled(span.id);
      span.status = 429;
      span.ingest_ns = burst_ingest_ns_;
      span.stage_ns[kStAdmission] = tracer_->now_ns() - burst_ingest_ns_;
      tracer_->complete(*state.series, span, tenant, *app);
    }
    return;
  }
  QueuedJob job{index, *app, request.body, 0, 0, 0};
  if (state.series != nullptr) {
    job.span_id = tracer_->begin_span();
    job.ingest_ns = burst_ingest_ns_;
    // One enqueue stamp per burst, taken at the first admitted job: the
    // per-job clock read was the largest per-request tracing cost, and
    // sharing the stamp only moves sibling-routing time from the
    // admission stage into the queue stage (time spent waiting for the
    // rest of the burst to route IS batch-formation wait). Stage tiling
    // is unaffected — the stamp still falls between ingest and drain.
    if (burst_admit_ns_ < 0) burst_admit_ns_ = tracer_->now_ns();
    job.enqueued_ns = burst_admit_ns_;
  }
  queue.push(std::move(job));
}

void PlanServer::drain_queue(TenantState& tenant, std::vector<obs::HttpResponse>& responses) {
  JobQueue& queue = tenant.queue;
  if (queue.empty()) return;
  obs::TenantSeries* series = tenant.series;
  const bool traced = series != nullptr;
  const std::int64_t drain_ns = traced ? tracer_->now_ns() : 0;

  struct SpeechParsed {
    std::size_t index;
    bool explicit_io;
    std::uint64_t span_id;
    std::int64_t ingest_ns;
    std::int64_t enqueued_ns;
  };
  struct ParticleParsed {
    std::size_t index;
    bool explicit_io;
    std::int64_t steps;
    std::uint64_t span_id;
    std::int64_t ingest_ns;
    std::int64_t enqueued_ns;
  };

  // Completes a span for a job rejected while parsing at drain time:
  // its lifecycle ends inside the batch-formation stage.
  const auto complete_drain_reject = [&](const QueuedJob& job, int status) {
    if (!traced || job.span_id == 0) return;
    obs::RequestSpan span;
    span.id = job.span_id;
    span.sampled = tracer_->is_sampled(job.span_id);
    span.status = status;
    span.ingest_ns = job.ingest_ns;
    span.stage_ns[kStAdmission] = job.enqueued_ns - job.ingest_ns;
    span.stage_ns[kStQueue] = drain_ns - job.enqueued_ns;
    span.stage_ns[kStBatch] = tracer_->now_ns() - drain_ns;
    tracer_->complete(*series, span, queue.tenant(), job.app);
  };
  std::vector<SpeechParsed> speech_meta;
  std::vector<apps::ErrorGenApp::SpeechJobSpec> speech_jobs;
  // Particle batches must share one trajectory length — group by it.
  std::map<std::int64_t,
           std::pair<std::vector<ParticleParsed>, std::vector<apps::ParticleFilterApp::ParticleJobSpec>>>
      particle_groups;

  const auto& speech_params = speech_->app.params();
  const auto& particle_params = particle_->app.params();
  std::int64_t drained = 0;

  while (!queue.empty()) {
    const QueuedJob job = queue.pop();
    ++drained;
    if (job.app == "speech") {
      apps::ErrorGenApp::SpeechJobSpec spec;
      const auto frame = json_array_field(job.body, "frame");
      const bool explicit_io = frame.has_value();
      if (explicit_io) {
        spec.frame = *frame;
        spec.coeffs = json_array_field(job.body, "coeffs").value_or(synth_coeffs(speech_params.order));
      } else {
        const auto n = static_cast<std::size_t>(
            json_number_field(job.body, "frame_size").value_or(static_cast<double>(speech_params.frame_size)));
        const auto order = static_cast<std::size_t>(
            json_number_field(job.body, "order").value_or(static_cast<double>(speech_params.order)));
        const auto seed =
            static_cast<std::uint64_t>(json_number_field(job.body, "seed").value_or(0.0));
        if (n == 0 || n > speech_params.max_frame_size || order == 0 ||
            order > speech_params.max_order) {
          responses[job.request_index] = bad_request("speech job exceeds the model bounds");
          complete_drain_reject(job, 400);
          continue;
        }
        spec.frame = synth_frame(seed, n);
        spec.coeffs = synth_coeffs(order);
      }
      if (spec.frame.empty() || spec.frame.size() > speech_params.max_frame_size ||
          spec.coeffs.empty() || spec.coeffs.size() > speech_params.max_order) {
        responses[job.request_index] = bad_request("speech job exceeds the model bounds");
        complete_drain_reject(job, 400);
        continue;
      }
      speech_meta.push_back(
          {job.request_index, explicit_io, job.span_id, job.ingest_ns, job.enqueued_ns});
      speech_jobs.push_back(std::move(spec));
    } else {
      apps::ParticleFilterApp::ParticleJobSpec spec;
      spec.seed = static_cast<std::uint64_t>(
          json_number_field(job.body, "seed").value_or(static_cast<double>(particle_params.seed)));
      const auto observations = json_array_field(job.body, "observations");
      const bool explicit_io = observations.has_value();
      if (explicit_io) {
        spec.trajectory.observations = *observations;
        spec.trajectory.truth = json_array_field(job.body, "truth")
                                    .value_or(std::vector<double>(spec.trajectory.observations.size(), 0.0));
      } else {
        const auto steps = static_cast<std::size_t>(
            json_number_field(job.body, "steps").value_or(8.0));
        if (steps == 0 || steps > 4096) {
          responses[job.request_index] = bad_request("particle job steps out of range");
          complete_drain_reject(job, 400);
          continue;
        }
        dsp::Rng rng(spec.seed + 1);
        spec.trajectory = dsp::simulate_crack(particle_params.model, steps, rng);
      }
      if (spec.trajectory.observations.empty()) {
        responses[job.request_index] = bad_request("particle job has no observations");
        complete_drain_reject(job, 400);
        continue;
      }
      const auto steps = static_cast<std::int64_t>(spec.trajectory.observations.size());
      auto& [meta, specs] = particle_groups[steps];
      meta.push_back(
          {job.request_index, explicit_io, steps, job.span_id, job.ingest_ns, job.enqueued_ns});
      specs.push_back(std::move(spec));
    }
  }
  queue.count_served(drained);

  if (!speech_jobs.empty()) {
    metrics_->counter("spi_serve_batches_total", {{"app", "speech"}}).inc();
    metrics_
        ->histogram("spi_serve_batch_jobs", obs::Histogram::exponential_bounds(1.0, 2.0, 11),
                    {{"app", "speech"}})
        .observe(static_cast<double>(speech_jobs.size()));
    const std::int64_t batch_id = next_batch_id_++;
    bool sample_batch = false;
    if (traced)
      for (const SpeechParsed& m : speech_meta)
        if (m.span_id != 0 && tracer_->is_sampled(m.span_id)) {
          sample_batch = true;
          break;
        }
    // Flight bridge, paced much coarser than span sampling (collect is
    // the one expensive capture): drop whatever the rings still hold,
    // tag the run, and collect right after — the captured log is
    // exactly this batch's causal firing stream (GET /trace/flight).
    const bool capture_flight = sample_batch && tracer_->want_flight();
    if (capture_flight) {
      speech_->flight.set_armed(true);
      speech_->flight.discard_all();
      speech_->run_options.batch_id = batch_id;
    } else {
      speech_->run_options.batch_id = -1;
    }
    const std::int64_t formed_ns = traced ? tracer_->now_ns() : 0;
    std::int64_t exec_end_ns = formed_ns;
    try {
      const auto results = speech_->app.compute_errors_batch(
          speech_jobs, speech_->instance, &speech_->run_options);
      exec_end_ns = traced ? tracer_->now_ns() : 0;
      for (std::size_t k = 0; k < speech_meta.size(); ++k) {
        std::string body = "{\"app\": \"speech\", ";
        if (speech_meta[k].explicit_io) {
          body += "\"errors\": ";
          append_doubles(body, results[k]);
        } else {
          double checksum = 0.0;
          for (const double e : results[k]) checksum += e;
          body += "\"n\": " + std::to_string(results[k].size()) + ", \"checksum\": ";
          append_double(body, checksum);
        }
        body += "}\n";
        responses[speech_meta[k].index] = json_response(200, std::move(body));
      }
      jobs_served_ += static_cast<std::int64_t>(speech_jobs.size());
      metrics_->counter("spi_serve_jobs_total", {{"app", "speech"}, {"tenant", queue.tenant()}})
          .inc(static_cast<std::int64_t>(speech_jobs.size()));
    } catch (const std::exception& e) {
      exec_end_ns = traced ? tracer_->now_ns() : 0;
      for (const SpeechParsed& meta : speech_meta)
        responses[meta.index] =
            json_response(500, "{\"error\": \"" + obs::detail::json_escaped(e.what()) + "\"}\n");
    }
    if (traced) {
      // Reply stamp first: flight collection is tracer bookkeeping, not
      // part of any request's lifecycle (serialization waits for the
      // GET /trace/flight scrape).
      const std::int64_t reply_ns = tracer_->now_ns();
      if (capture_flight) {
        tracer_->note_flight(batch_id, speech_->flight.collect());
        speech_->flight.set_armed(options_.watchdog_ms > 0);
      }
      span_ids_scratch_.clear();
      for (const SpeechParsed& m : speech_meta)
        if (m.span_id != 0) span_ids_scratch_.push_back(m.span_id);
      if (!span_ids_scratch_.empty()) {
        // One representative span for the whole batch: the jobs share
        // every stage boundary (batch stamps, the burst's enqueue stamp,
        // one status for the batched firing), so only the ids differ.
        const SpeechParsed& front = speech_meta.front();
        obs::RequestSpan span;
        span.status = responses[front.index].status;
        span.batch_id = batch_id;
        span.batch_size = static_cast<std::int32_t>(speech_jobs.size());
        span.ingest_ns = front.ingest_ns;
        span.stage_ns[kStAdmission] = front.enqueued_ns - front.ingest_ns;
        span.stage_ns[kStQueue] = drain_ns - front.enqueued_ns;
        span.stage_ns[kStBatch] = formed_ns - drain_ns;
        span.stage_ns[kStExec] = exec_end_ns - formed_ns;
        span.stage_ns[kStReply] = reply_ns - exec_end_ns;
        tracer_->complete_batch(*series, span, span_ids_scratch_, queue.tenant(), "speech");
      }
    }
  }

  for (auto& [steps, group] : particle_groups) {
    auto& [meta, specs] = group;
    metrics_->counter("spi_serve_batches_total", {{"app", "particle"}}).inc();
    metrics_
        ->histogram("spi_serve_batch_jobs", obs::Histogram::exponential_bounds(1.0, 2.0, 11),
                    {{"app", "particle"}})
        .observe(static_cast<double>(specs.size()));
    const std::int64_t batch_id = next_batch_id_++;
    bool sample_batch = false;
    if (traced)
      for (const ParticleParsed& m : meta)
        if (m.span_id != 0 && tracer_->is_sampled(m.span_id)) {
          sample_batch = true;
          break;
        }
    const bool capture_flight = sample_batch && tracer_->want_flight();
    if (capture_flight) {
      particle_->flight.set_armed(true);
      particle_->flight.discard_all();
      particle_->run_options.batch_id = batch_id;
    } else {
      particle_->run_options.batch_id = -1;
    }
    const std::int64_t formed_ns = traced ? tracer_->now_ns() : 0;
    std::int64_t exec_end_ns = formed_ns;
    try {
      const auto results =
          particle_->app.track_batch(specs, particle_->instance, &particle_->run_options);
      exec_end_ns = traced ? tracer_->now_ns() : 0;
      for (std::size_t k = 0; k < meta.size(); ++k) {
        const apps::TrackResult& r = results[k];
        std::string body = "{\"app\": \"particle\", ";
        if (meta[k].explicit_io) {
          body += "\"estimates\": ";
          append_doubles(body, r.estimates);
          body += ", \"rmse\": ";
          append_double(body, r.rmse_vs_truth);
          body += ", \"resample_steps\": " + std::to_string(r.resample_steps);
          body += ", \"particles_exchanged\": " + std::to_string(r.particles_exchanged);
        } else {
          body += "\"steps\": " + std::to_string(steps) + ", \"estimate\": ";
          append_double(body, r.estimates.empty() ? 0.0 : r.estimates.back());
          body += ", \"rmse\": ";
          append_double(body, r.rmse_vs_truth);
        }
        body += "}\n";
        responses[meta[k].index] = json_response(200, std::move(body));
      }
      jobs_served_ += static_cast<std::int64_t>(specs.size());
      metrics_->counter("spi_serve_jobs_total", {{"app", "particle"}, {"tenant", queue.tenant()}})
          .inc(static_cast<std::int64_t>(specs.size()));
    } catch (const std::exception& e) {
      exec_end_ns = traced ? tracer_->now_ns() : 0;
      for (const ParticleParsed& m : meta)
        responses[m.index] =
            json_response(500, "{\"error\": \"" + obs::detail::json_escaped(e.what()) + "\"}\n");
    }
    if (traced) {
      const std::int64_t reply_ns = tracer_->now_ns();
      if (capture_flight) {
        tracer_->note_flight(batch_id, particle_->flight.collect());
        particle_->flight.set_armed(options_.watchdog_ms > 0);
      }
      span_ids_scratch_.clear();
      for (const ParticleParsed& m : meta)
        if (m.span_id != 0) span_ids_scratch_.push_back(m.span_id);
      if (!span_ids_scratch_.empty()) {
        const ParticleParsed& front = meta.front();
        obs::RequestSpan span;
        span.status = responses[front.index].status;
        span.batch_id = batch_id;
        span.batch_size = static_cast<std::int32_t>(specs.size());
        span.ingest_ns = front.ingest_ns;
        span.stage_ns[kStAdmission] = front.enqueued_ns - front.ingest_ns;
        span.stage_ns[kStQueue] = drain_ns - front.enqueued_ns;
        span.stage_ns[kStBatch] = formed_ns - drain_ns;
        span.stage_ns[kStExec] = exec_end_ns - formed_ns;
        span.stage_ns[kStReply] = reply_ns - exec_end_ns;
        tracer_->complete_batch(*series, span, span_ids_scratch_, queue.tenant(), "particle");
      }
    }
  }
}

void PlanServer::handle_burst(std::span<obs::HttpRequest> requests,
                              std::vector<obs::HttpResponse>& responses) {
  const auto start = std::chrono::steady_clock::now();
  ++bursts_;
  burst_ingest_ns_ = tracer_->enabled() ? tracer_->now_ns() : 0;
  burst_admit_ns_ = -1;
  responses.resize(requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const obs::HttpRequest& request = requests[i];
    if (request.method == "GET") {
      responses[i] = handle_get(request);
      continue;
    }
    if (request.method != "POST") {
      responses[i] = json_response(405, "{\"error\": \"method not allowed\"}\n");
      continue;
    }
    const std::string_view path = path_of(request);
    if (path == "/plan") {
      responses[i] = handle_plan_post(request);
    } else if (path == "/job") {
      route_job(i, request, responses);
    } else {
      metrics_->counter("spi_serve_requests_total", {{"route", "other"}}).inc();
      responses[i] = json_response(404, "{\"error\": \"not found\"}\n");
    }
  }

  // Batched firing: each tenant queue drains as one colocated batch per
  // app (one program traversal amortized over all its queued jobs).
  for (auto& [tenant, state] : tenants_) drain_queue(state, responses);

  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  metrics_
      ->histogram("spi_serve_burst_seconds", obs::Histogram::exponential_bounds(1e-6, 4.0, 10))
      .observe(seconds);
}

std::string PlanServer::runtime_json() const {
  std::string out = "{\n  \"server\": \"spi_served\",\n";
  out += "  \"jobs_served\": " + std::to_string(jobs_served_) + ",\n";
  out += "  \"bursts\": " + std::to_string(bursts_) + ",\n";
  out += "  \"stalls\": " + std::to_string(stalls_) + ",\n";
  out += "  \"plan_cache\": {\"entries\": " + std::to_string(cache_.size()) +
         ", \"capacity\": " + std::to_string(cache_.capacity()) +
         ", \"hits\": " + std::to_string(cache_.hits()) +
         ", \"misses\": " + std::to_string(cache_.misses()) +
         ", \"evictions\": " + std::to_string(cache_.evictions()) +
         ", \"resident_bytes\": " + std::to_string(cache_.resident_bytes()) + "},\n";
  out += "  \"admission\": {\"reserved_bytes\": " + std::to_string(admission_.reserved_bytes()) +
         ", \"memory_budget_bytes\": " + std::to_string(admission_.options().memory_budget_bytes) +
         ", \"max_queue_depth\": " + std::to_string(admission_.options().max_queue_depth) +
         ", \"rejected_memory\": " + std::to_string(admission_.rejected_memory()) +
         ", \"rejected_queue\": " + std::to_string(admission_.rejected_queue()) + "},\n";
  out += "  \"models\": [\n";
  out += "    {\"app\": \"speech\", \"plan\": \"" + speech_plan_key_ +
         "\", \"resident_bytes\": " + std::to_string(speech_->instance.resident_bytes()) + "},\n";
  out += "    {\"app\": \"particle\", \"plan\": \"" + particle_plan_key_ +
         "\", \"resident_bytes\": " + std::to_string(particle_->instance.resident_bytes()) + "}\n";
  out += "  ],\n";
  out += "  \"tenants\": [";
  bool first = true;
  for (const auto& [tenant, state] : tenants_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"tenant\": \"" + obs::detail::json_escaped(tenant) +
           "\", \"depth_watermark\": " + std::to_string(state.queue.depth_watermark()) +
           ", \"jobs_served\": " + std::to_string(state.queue.jobs_served()) + "}";
  }
  out += "]\n}\n";
  return out;
}

std::string PlanServer::tenants_json() const {
  std::string out = "{\"schema\": 1, \"tracing\": ";
  out += tracer_->enabled() ? "true" : "false";
  out += ", \"requests_total\": " + std::to_string(tracer_->requests_total());
  out += ", \"sampled_total\": " + std::to_string(tracer_->sampled_total());
  out += ",\n \"tenants\": [\n";
  bool first = true;
  for (const auto& [tenant, state] : tenants_) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"tenant\": \"" + obs::detail::json_escaped(tenant) + "\"";
    out += ", \"queue_depth\": " + std::to_string(state.queue.depth());
    out += ", \"depth_watermark\": " + std::to_string(state.queue.depth_watermark());
    out += ", \"jobs_served\": " + std::to_string(state.queue.jobs_served());
    if (state.series != nullptr) {
      out += ", ";
      tracer_->append_rollup_json(out, *state.series);
    }
    out += "}";
  }
  out += "\n ]\n}\n";
  return out;
}

}  // namespace spi::serve
