/// \file job_queue.hpp
/// Per-tenant job queues for the plan server (docs/serving.md).
///
/// Jobs admitted from one HTTP read burst are queued per tenant, then
/// drained app by app so each drain is ONE batched firing: N queued
/// speech jobs become N colocated graph iterations through one
/// JobInstance — one program traversal amortized over the whole batch
/// (dataflow determinacy makes the per-job results bit-identical to N
/// separate runs; the serve tests assert it).
///
/// Single-threaded like the rest of the serve layer: queues live on the
/// server's poll thread.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

namespace spi::serve {

/// One admitted job waiting for its batch: which burst slot to answer,
/// which app to run, and the raw request body (parsed at drain time).
/// The trace fields are the job's request-lifecycle context
/// (obs/request_trace.hpp): span id plus the ingest and enqueue stamps,
/// carried through the queue so the drain can attribute queue wait.
struct QueuedJob {
  std::size_t request_index = 0;  ///< slot in the burst's response vector
  std::string app;                ///< "speech" or "particle"
  std::string body;               ///< request JSON
  std::uint64_t span_id = 0;      ///< 0 = untraced
  std::int64_t ingest_ns = 0;     ///< burst entry (tracer clock)
  std::int64_t enqueued_ns = 0;   ///< enqueue stamp (shared per burst)
};

class JobQueue {
 public:
  explicit JobQueue(std::string tenant) : tenant_(std::move(tenant)) {}

  void push(QueuedJob job) {
    queue_.push_back(std::move(job));
    depth_watermark_ = std::max<std::int64_t>(depth_watermark_, depth());
  }

  QueuedJob pop() {
    QueuedJob job = std::move(queue_.front());
    queue_.pop_front();
    return job;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::int64_t depth() const { return static_cast<std::int64_t>(queue_.size()); }
  /// High-water queue depth since construction (a gauge on /metrics —
  /// the closest the synchronous server gets to "queueing delay").
  [[nodiscard]] std::int64_t depth_watermark() const { return depth_watermark_; }
  /// Re-bases the watermark on the current depth (scrape-and-reset
  /// consumers). Monotonic between resets; never drops below depth().
  void reset_watermark() { depth_watermark_ = depth(); }
  [[nodiscard]] std::int64_t jobs_served() const { return jobs_served_; }
  void count_served(std::int64_t n) { jobs_served_ += n; }
  [[nodiscard]] const std::string& tenant() const { return tenant_; }

 private:
  std::string tenant_;
  std::deque<QueuedJob> queue_;
  std::int64_t depth_watermark_ = 0;
  std::int64_t jobs_served_ = 0;
};

}  // namespace spi::serve
