#include "serve/request.hpp"

#include <cstdlib>

namespace spi::serve {

namespace {

/// Position just past `"key":` (skipping whitespace), or npos.
std::size_t value_start(std::string_view body, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\"";
  std::size_t pos = 0;
  while ((pos = body.find(needle, pos)) != std::string_view::npos) {
    std::size_t p = pos + needle.size();
    while (p < body.size() && (body[p] == ' ' || body[p] == '\t' || body[p] == '\n')) ++p;
    if (p < body.size() && body[p] == ':') {
      ++p;
      while (p < body.size() && (body[p] == ' ' || body[p] == '\t' || body[p] == '\n')) ++p;
      return p;
    }
    pos += needle.size();  // a string value that merely contains the key
  }
  return std::string_view::npos;
}

}  // namespace

std::optional<std::string> json_string_field(std::string_view body, std::string_view key) {
  const std::size_t p = value_start(body, key);
  if (p == std::string_view::npos || p >= body.size() || body[p] != '"') return std::nullopt;
  const std::size_t end = body.find('"', p + 1);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(body.substr(p + 1, end - p - 1));
}

std::optional<double> json_number_field(std::string_view body, std::string_view key) {
  const std::size_t p = value_start(body, key);
  if (p == std::string_view::npos || p >= body.size()) return std::nullopt;
  const char* start = body.data() + p;
  char* parsed_end = nullptr;
  const double value = std::strtod(start, &parsed_end);
  if (parsed_end == start) return std::nullopt;
  return value;
}

std::optional<std::vector<double>> json_array_field(std::string_view body, std::string_view key) {
  const std::size_t p = value_start(body, key);
  if (p == std::string_view::npos || p >= body.size() || body[p] != '[') return std::nullopt;
  std::vector<double> values;
  const char* cursor = body.data() + p + 1;
  const char* const end = body.data() + body.size();
  while (cursor < end) {
    while (cursor < end && (*cursor == ' ' || *cursor == ',' || *cursor == '\t' ||
                            *cursor == '\n'))
      ++cursor;
    if (cursor >= end) return std::nullopt;  // unterminated array
    if (*cursor == ']') return values;
    char* parsed_end = nullptr;
    const double value = std::strtod(cursor, &parsed_end);
    if (parsed_end == cursor) return std::nullopt;  // not a number
    values.push_back(value);
    cursor = parsed_end;
  }
  return std::nullopt;
}

}  // namespace spi::serve
