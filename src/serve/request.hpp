/// \file request.hpp
/// Minimal flat-JSON field scanner for serve-layer request bodies.
///
/// Job bodies are small flat objects ({"app":"speech","frame":[...]});
/// at a >=100k req/s service rate a DOM parse per request would dominate
/// the batch handler, so fields are extracted by key scan, the same
/// technique core::ExecutablePlan::from_json uses. Keys are matched as
/// "<key>": at top nesting depth only; absent or malformed fields are
/// std::nullopt (the server answers 400). Not a general JSON parser —
/// strings must not contain escaped quotes, arrays are numbers only.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spi::serve {

[[nodiscard]] std::optional<std::string> json_string_field(std::string_view body,
                                                           std::string_view key);
[[nodiscard]] std::optional<double> json_number_field(std::string_view body, std::string_view key);
[[nodiscard]] std::optional<std::vector<double>> json_array_field(std::string_view body,
                                                                  std::string_view key);

}  // namespace spi::serve
