/// \file plan_cache.hpp
/// Content-addressed cache of compiled ExecutablePlans (docs/serving.md).
///
/// Tenants of the plan server submit plans by value (POST /plan); the
/// cache keys each one by ExecutablePlan::content_hash_hex() — the
/// FNV-1a digest of the schema version and the topology/exec
/// fingerprints — so re-submitting an identical plan is a hit that
/// costs one parse and no admission budget, while any semantic change
/// (different PASS, protocol selection, channel bounds...) produces a
/// new key. Capacity is bounded; insertion beyond it evicts the least
/// recently used entry (find() and a deduplicating insert() both count
/// as use).
///
/// The cache is deliberately single-threaded: it lives on the plan
/// server's poll thread, which serializes every request (the same
/// discipline the per-job BufferPool follows — TSan enforces it in the
/// soak tests).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "core/plan.hpp"

namespace spi::serve {

/// One cached plan plus the facts admission control needs about it.
struct CachedPlan {
  std::string key;  ///< content_hash_hex() of the plan
  std::shared_ptr<const core::ExecutablePlan> plan;
  /// Equation-2 resident channel memory of one runtime instance of this
  /// plan (JobInstance::resident_channel_bytes) — reserved against the
  /// server's memory budget while the entry is cached.
  std::int64_t resident_bytes = 0;
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64);

  /// Deduplicating insert: an already-cached content hash is a hit (the
  /// submitted copy is dropped, the entry is freshened); otherwise the
  /// plan is adopted and, at capacity, the least recently used entry is
  /// evicted. Returns the resident entry either way — callers holding
  /// the shared_ptr keep a plan alive across its eviction.
  std::shared_ptr<const CachedPlan> insert(core::ExecutablePlan plan);

  /// The entry with this content hash, freshened to most recently used;
  /// nullptr on miss (the miss counter only counts find() misses, not
  /// inserts of new content).
  [[nodiscard]] std::shared_ptr<const CachedPlan> find(const std::string& key);

  /// Resident bytes released by evictions since the last call (the
  /// server returns them to the admission budget).
  [[nodiscard]] std::int64_t take_evicted_bytes();

  /// Whether this content hash is cached — no counter or LRU effect
  /// (the admission path peeks before deciding to reserve budget).
  [[nodiscard]] bool contains(const std::string& key) const {
    return entries_.find(key) != entries_.end();
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t hits() const { return hits_; }
  [[nodiscard]] std::int64_t misses() const { return misses_; }
  [[nodiscard]] std::int64_t evictions() const { return evictions_; }
  /// Sum of resident_bytes over the currently cached entries.
  [[nodiscard]] std::int64_t resident_bytes() const { return resident_bytes_; }

 private:
  void touch(const std::string& key);

  std::size_t capacity_;
  /// Keys in recency order, most recent first; entries_ maps into it.
  std::list<std::string> lru_;
  std::map<std::string, std::pair<std::shared_ptr<const CachedPlan>, std::list<std::string>::iterator>>
      entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t resident_bytes_ = 0;
  std::int64_t evicted_bytes_ = 0;
};

}  // namespace spi::serve
