/// \file admission.hpp
/// Admission control for the plan server (docs/serving.md).
///
/// Two resources are budgeted, each producing a typed 429 reject:
///
///  * "memory-budget" — resident channel memory. Every cached plan
///    reserves its equation-2 bound (sum over interprocessor channels of
///    capacity x frame size — exactly what a JobInstance of that plan
///    allocates, computable from the plan alone, before instantiation).
///    A submission that would push the reserved total past the budget is
///    rejected instead of OOM-killing the co-tenants.
///
///  * "queue-depth" — per-tenant queued jobs. A tenant whose queue is
///    full is rejected without touching other tenants' budgets
///    (per-tenant isolation: one chatty tenant cannot starve the rest).
///
/// Rejections are backpressure, not errors: the client retries later,
/// and the loadgen's open-loop mode measures exactly this behavior.
#pragma once

#include <cstdint>
#include <string>

namespace spi::serve {

struct AdmissionDecision {
  bool admitted = true;
  /// Machine-readable reject reason ("memory-budget" or "queue-depth"),
  /// empty when admitted. Servers surface it in the 429 body and in the
  /// spi_serve_rejects_total{reason=...} counter.
  std::string reason;
};

class AdmissionController {
 public:
  struct Options {
    std::int64_t memory_budget_bytes = 64ll << 20;  ///< reserved-resident cap
    std::int64_t max_queue_depth = 4096;            ///< per tenant
  };

  AdmissionController() : AdmissionController(Options{}) {}
  explicit AdmissionController(Options options) : options_(options) {}

  /// Reserve `resident_bytes` of channel memory for a new plan; rejects
  /// with "memory-budget" when the reservation would exceed the budget.
  /// A single plan larger than the whole budget is always rejected.
  AdmissionDecision admit_plan(std::int64_t resident_bytes) {
    if (reserved_bytes_ + resident_bytes > options_.memory_budget_bytes) {
      ++rejected_memory_;
      return {false, "memory-budget"};
    }
    reserved_bytes_ += resident_bytes;
    return {};
  }

  /// Return an evicted/released plan's reservation to the budget.
  void release_plan(std::int64_t resident_bytes) { reserved_bytes_ -= resident_bytes; }

  /// Admit one job into a tenant queue currently holding `queued` jobs.
  AdmissionDecision admit_job(std::int64_t queued) {
    if (queued >= options_.max_queue_depth) {
      ++rejected_queue_;
      return {false, "queue-depth"};
    }
    return {};
  }

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] std::int64_t reserved_bytes() const { return reserved_bytes_; }
  [[nodiscard]] std::int64_t rejected_memory() const { return rejected_memory_; }
  [[nodiscard]] std::int64_t rejected_queue() const { return rejected_queue_; }

 private:
  Options options_;
  std::int64_t reserved_bytes_ = 0;
  std::int64_t rejected_memory_ = 0;
  std::int64_t rejected_queue_ = 0;
};

}  // namespace spi::serve
