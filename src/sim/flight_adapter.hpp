/// \file flight_adapter.hpp
/// Timed-simulator bridge into the flight-recorder event schema.
///
/// The threaded runtime records flight events natively (wall clock);
/// this adapter derives the *same* event stream from a timed-simulation
/// trace, in modeled time ("cycles" as the log's time_unit). The
/// critical-path analyzer then runs identically on both, so the
/// schedule's predicted bottleneck attribution and the realized one are
/// directly diffable — and over a simulator stream the analyzer's
/// critical-path length must reproduce the simulator's makespan exactly
/// (the parity test in tests/test_critical_path.cpp).
///
/// Event mapping:
///  * FiringRecord        -> kFireBegin / kFireEnd (actor = HSDF task id)
///  * MessageRecord       -> kSend on the source PE at send_time and
///                           kReceive on the destination PE at
///                           arrival_time, matched by (edge, aux, seq).
///
/// One dataflow edge can be realized by several sync-graph edges (HSDF
/// expansion) carrying both data and pure-sync messages, each an
/// independent sequence stream; aux = sync_edge_index * 2 + (0 data /
/// 1 sync) keeps the streams disjoint. Messages of edges without a
/// dataflow identity (resynchronization edges) get synthetic edge ids
/// past the real ones so their in-flight time is still attributable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "sched/sync_graph.hpp"
#include "sim/trace.hpp"

namespace spi::sim {

/// Converts a recorded timed simulation into a FlightLog (modeled time).
/// `edge_names` (indexed by dataflow EdgeId) overrides the default
/// "SrcTask->SnkTask" naming where provided — pass the plan's channel
/// names for reports that match the compile-side metrics labels.
[[nodiscard]] obs::FlightLog to_flight_log(const TraceRecorder& trace,
                                           const sched::SyncGraph& sync, std::int32_t pe_count,
                                           std::vector<std::string> edge_names = {});

}  // namespace spi::sim
