#include "sim/timed_executor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace spi::sim {

namespace {

/// Mutable run state; the free functions below operate on it through the
/// event kernel's callbacks.
struct RunState {
  const sched::SyncGraph& graph;
  const sched::ProcOrder& order;
  const CommBackend& backend;
  const WorkloadModel& workload;
  const TimedExecutorOptions& options;

  EventKernel kernel;
  LinkNetwork links;

  // Per task: completed invocations; started invocations.
  std::vector<std::int64_t> fired;
  std::vector<std::int64_t> started;
  // Per sync-edge index: messages delivered / occupancy tracking.
  std::vector<std::int64_t> delivered;
  std::vector<std::int64_t> max_occupancy;
  // Per task: incoming / outgoing active cross-processor sync edges.
  std::vector<std::vector<std::size_t>> in_sync;
  std::vector<std::vector<std::size_t>> out_sync;
  // Per processor.
  std::vector<std::size_t> position;     // index into order[p]
  std::vector<bool> busy;
  std::vector<SimTime> busy_cycles;
  std::vector<SimTime> stall_since;      // -1: not stalled
  std::vector<SimTime> stall_cycles;
  // Iteration bookkeeping.
  std::vector<std::int32_t> iter_pending;  // tasks not yet done with iteration k
  std::vector<SimTime> iter_complete;

  ExecStats stats;

  RunState(const sched::SyncGraph& g, const sched::ProcOrder& ord, const CommBackend& be,
           const WorkloadModel& wl, const TimedExecutorOptions& opt)
      : graph(g), order(ord), backend(be), workload(wl), options(opt), links(opt.link),
        fired(g.task_count(), 0), started(g.task_count(), 0),
        delivered(g.edges().size(), 0), max_occupancy(g.edges().size(), 0),
        in_sync(g.task_count()), out_sync(g.task_count()),
        position(ord.size(), 0), busy(ord.size(), false),
        busy_cycles(ord.size(), 0), stall_since(ord.size(), -1), stall_cycles(ord.size(), 0),
        iter_pending(static_cast<std::size_t>(opt.iterations),
                     static_cast<std::int32_t>(g.task_count())),
        iter_complete(static_cast<std::size_t>(opt.iterations), 0) {
    const auto& edges = g.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].removed || edges[i].kind == sched::SyncEdgeKind::kSequence) continue;
      in_sync[static_cast<std::size_t>(edges[i].snk)].push_back(i);
      out_sync[static_cast<std::size_t>(edges[i].src)].push_back(i);
    }
  }
};

std::int64_t exec_cycles_of(const RunState& s, std::int32_t task, std::int64_t iter) {
  std::int64_t cycles = s.workload.exec_cycles ? s.workload.exec_cycles(task, iter)
                                               : s.graph.task(task).exec_cycles;
  if (!s.options.pe_speed.empty()) {
    const double speed =
        s.options.pe_speed.at(static_cast<std::size_t>(s.graph.proc_of(task)));
    cycles = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(static_cast<double>(cycles) / speed)));
  }
  return cycles;
}

std::int64_t payload_of(const RunState& s, const sched::SyncEdge& e, std::int64_t iter) {
  if (s.workload.payload_bytes) return s.workload.payload_bytes(e, iter);
  return s.workload.default_payload_bytes;
}

/// Wait condition of equation 3: invocation k of the edge's sink needs
/// message k+1-delay to have been delivered.
bool edge_satisfied(const RunState& s, std::size_t edge_index, std::int64_t k) {
  const sched::SyncEdge& e = s.graph.edges()[edge_index];
  return s.delivered[edge_index] >= k + 1 - e.delay;
}

void try_advance(RunState& s, std::int32_t pe);

void complete_firing(RunState& s, std::int32_t pe, std::int32_t task, SimTime started) {
  const std::int64_t k = s.fired[static_cast<std::size_t>(task)]++;

  if (s.options.trace) {
    s.options.trace->record_firing(FiringRecord{task, pe, k, started, s.kernel.now(),
                                                s.graph.task(task).name});
  }

  // Iteration completion bookkeeping.
  if (k < s.options.iterations) {
    auto& pending = s.iter_pending[static_cast<std::size_t>(k)];
    if (--pending == 0) s.iter_complete[static_cast<std::size_t>(k)] = s.kernel.now();
  }

  // Emit one message per outgoing cross-processor sync edge. Sends
  // serialize on the PE for their pe_block cost; the communication actor
  // (offload + wire) then proceeds without occupying the PE.
  SimTime pe_time = s.kernel.now();
  for (std::size_t edge_index : s.out_sync[static_cast<std::size_t>(task)]) {
    const sched::SyncEdge& e = s.graph.edges()[edge_index];
    const ChannelInfo channel = channel_info_of(s.workload, e);
    MessageCost cost;
    if (e.kind == sched::SyncEdgeKind::kIpc) {
      cost = s.backend.data_message(channel, payload_of(s, e, k));
      ++s.stats.data_messages;
    } else {
      cost = s.backend.sync_message(channel);
      ++s.stats.sync_messages;
    }
    pe_time += cost.pe_block_cycles;
    s.busy_cycles[static_cast<std::size_t>(pe)] += cost.pe_block_cycles;
    const SimTime wire_ready = pe_time + cost.offload_cycles;
    const std::int32_t dst_pe = s.graph.proc_of(e.snk);
    const SimTime arrival = s.links.transfer(
        s.kernel, pe, dst_pe, wire_ready, cost.wire_bytes,
        cost.handshake_roundtrips, [&s, edge_index, dst_pe] {
                       auto& count = s.delivered[edge_index];
                       ++count;
                       const sched::SyncEdge& edge = s.graph.edges()[edge_index];
                       if (edge.kind == sched::SyncEdgeKind::kIpc) {
                         // Occupancy: delivered minus consumed (consumption
                         // happens at sink firing start, past the initial
                         // delay tokens).
                         const std::int64_t consumed = std::max<std::int64_t>(
                             0, s.started[static_cast<std::size_t>(edge.snk)] - edge.delay);
                         s.max_occupancy[edge_index] =
                             std::max(s.max_occupancy[edge_index], count - consumed);
                       }
                       try_advance(s, dst_pe);
                     });
    if (s.options.trace) {
      s.options.trace->record_message(MessageRecord{
          edge_index, pe, dst_pe, e.kind == sched::SyncEdgeKind::kIpc, pe_time, arrival,
          cost.wire_bytes});
    }
  }

  // The PE stays busy until its send-enqueue work drains.
  if (pe_time > s.kernel.now()) {
    s.kernel.schedule_at(pe_time, [&s, pe] {
      s.busy[static_cast<std::size_t>(pe)] = false;
      try_advance(s, pe);
    });
  } else {
    s.busy[static_cast<std::size_t>(pe)] = false;
    try_advance(s, pe);
  }
}

void try_advance(RunState& s, std::int32_t pe) {
  const auto p = static_cast<std::size_t>(pe);
  if (s.busy[p]) return;
  const auto& tasks = s.order[p];
  if (tasks.empty()) return;
  const std::int32_t task = tasks[s.position[p]];
  const std::int64_t k = s.fired[static_cast<std::size_t>(task)];
  if (k >= s.options.iterations) return;  // this PE finished its quota

  for (std::size_t edge_index : s.in_sync[static_cast<std::size_t>(task)]) {
    if (!edge_satisfied(s, edge_index, k)) {
      if (s.stall_since[p] < 0) s.stall_since[p] = s.kernel.now();
      return;  // blocked on synchronization
    }
  }
  if (s.stall_since[p] >= 0) {
    s.stall_cycles[p] += s.kernel.now() - s.stall_since[p];
    s.stall_since[p] = -1;
  }

  s.busy[p] = true;
  ++s.started[static_cast<std::size_t>(task)];
  s.position[p] = (s.position[p] + 1) % tasks.size();
  const std::int64_t exec = exec_cycles_of(s, task, k);
  s.busy_cycles[p] += exec;
  const SimTime started = s.kernel.now();
  s.kernel.schedule_in(exec, [&s, pe, task, started] { complete_firing(s, pe, task, started); });
}

}  // namespace

ExecStats run_timed(const sched::SyncGraph& graph, const sched::ProcOrder& order,
                    const CommBackend& backend, const WorkloadModel& workload,
                    const TimedExecutorOptions& options) {
  if (options.iterations <= 0)
    throw std::invalid_argument("run_timed: iterations must be positive");
  if (order.size() != static_cast<std::size_t>(graph.proc_count()))
    throw std::invalid_argument("run_timed: order/proc_count mismatch");
  if (!options.pe_speed.empty()) {
    if (options.pe_speed.size() != static_cast<std::size_t>(graph.proc_count()))
      throw std::invalid_argument("run_timed: pe_speed must have one entry per processor");
    for (double s : options.pe_speed)
      if (s <= 0.0) throw std::invalid_argument("run_timed: pe_speed entries must be positive");
  }

  RunState state(graph, order, backend, workload, options);
  for (std::int32_t pe = 0; pe < graph.proc_count(); ++pe) try_advance(state, pe);
  state.kernel.run();

  // Deadlock oracle: every task must have completed its quota.
  for (std::size_t t = 0; t < graph.task_count(); ++t) {
    if (state.fired[t] < options.iterations) {
      std::ostringstream msg;
      msg << "run_timed: deadlock — task '" << graph.task(static_cast<std::int32_t>(t)).name
          << "' completed " << state.fired[t] << "/" << options.iterations << " iterations";
      throw std::runtime_error(msg.str());
    }
  }

  ExecStats& stats = state.stats;
  stats.makespan = state.iter_complete.back();
  stats.avg_period_cycles =
      static_cast<double>(stats.makespan) / static_cast<double>(options.iterations);
  const std::size_t half = state.iter_complete.size() / 2;
  if (state.iter_complete.size() >= 2 && half < state.iter_complete.size() - 1) {
    stats.steady_period_cycles =
        static_cast<double>(state.iter_complete.back() - state.iter_complete[half]) /
        static_cast<double>(state.iter_complete.size() - 1 - half);
  } else {
    stats.steady_period_cycles = stats.avg_period_cycles;
  }
  stats.wire_bytes = state.links.total_wire_bytes();
  stats.pe_busy_cycles = std::move(state.busy_cycles);
  stats.pe_stall_cycles = std::move(state.stall_cycles);
  stats.max_occupancy = std::move(state.max_occupancy);
  stats.iteration_complete = std::move(state.iter_complete);
  return stats;
}

}  // namespace spi::sim
