#include "sim/fpga_area.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spi::sim {

const char* resource_class_name(int index) {
  switch (index) {
    case 0: return "Slices";
    case 1: return "Slice FFs";
    case 2: return "4 input LUTs";
    case 3: return "Block RAMs";
    case 4: return "DSP48s";
    default: throw std::out_of_range("resource_class_name: bad index");
  }
}

std::int64_t resource_class_of(const ResourceVector& v, int index) {
  switch (index) {
    case 0: return v.slices;
    case 1: return v.slice_ffs;
    case 2: return v.lut4;
    case 3: return v.bram;
    case 4: return v.dsp48;
    default: throw std::out_of_range("resource_class_of: bad index");
  }
}

FpgaDevice virtex4_sx35() {
  // XC4VSX35: 15,360 slices / 30,720 slice FFs / 30,720 4-input LUTs /
  // 192 block RAMs / 192 DSP48 blocks.
  return FpgaDevice{"Virtex-4 XC4VSX35 (-10)",
                    ResourceVector{15360, 30720, 30720, 192, 192}};
}

ResourceVector AreaReport::total() const {
  ResourceVector t;
  for (const ComponentArea& c : components_) t += c.area;
  return t;
}

ResourceVector AreaReport::spi_total() const {
  ResourceVector t;
  for (const ComponentArea& c : components_)
    if (c.is_spi) t += c.area;
  return t;
}

double AreaReport::system_percent_of_device(int resource_class) const {
  const std::int64_t cap = resource_class_of(device_.capacity, resource_class);
  if (cap == 0) return 0.0;
  return 100.0 * static_cast<double>(resource_class_of(total(), resource_class)) /
         static_cast<double>(cap);
}

double AreaReport::spi_percent_of_system(int resource_class) const {
  const std::int64_t sys = resource_class_of(total(), resource_class);
  if (sys == 0) return 0.0;
  return 100.0 * static_cast<double>(resource_class_of(spi_total(), resource_class)) /
         static_cast<double>(sys);
}

std::string AreaReport::to_table(const std::string& title) const {
  std::ostringstream out;
  out << title << " (device: " << device_.name << ")\n";
  out << std::left << std::setw(38) << "" << std::right;
  for (int r = 0; r < kResourceClassCount; ++r) out << std::setw(14) << resource_class_name(r);
  out << "\n" << std::left << std::setw(38) << "Full system (% of device)" << std::right
      << std::fixed << std::setprecision(2);
  for (int r = 0; r < kResourceClassCount; ++r)
    out << std::setw(13) << system_percent_of_device(r) << "%";
  out << "\n" << std::left << std::setw(38) << "SPI library (relative to full system)"
      << std::right;
  for (int r = 0; r < kResourceClassCount; ++r)
    out << std::setw(13) << spi_percent_of_system(r) << "%";
  out << "\n";
  return out.str();
}

void AreaReport::check_fits() const {
  const ResourceVector t = total();
  for (int r = 0; r < kResourceClassCount; ++r) {
    if (resource_class_of(t, r) > resource_class_of(device_.capacity, r)) {
      throw std::runtime_error("AreaReport: system exceeds device capacity in " +
                               std::string(resource_class_name(r)));
    }
  }
}

}  // namespace spi::sim
