#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace spi::sim {

namespace {

/// splitmix64 — the standard 64-bit finalizer; full avalanche, so
/// consecutive (edge, seq, attempt) keys produce independent draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t draw_key(std::uint64_t seed, df::EdgeId edge, std::int64_t seq, int attempt,
                       std::uint64_t purpose) {
  std::uint64_t h = mix64(seed ^ 0xA0761D6478BD642FULL);
  h = mix64(h ^ static_cast<std::uint64_t>(edge));
  h = mix64(h ^ static_cast<std::uint64_t>(seq));
  h = mix64(h ^ (static_cast<std::uint64_t>(attempt) | (purpose << 32)));
  return h;
}

/// Uniform double in [0, 1) from 53 high bits.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0))
    throw std::invalid_argument(std::string("FaultPlan: ") + what + " must be in [0,1]");
}

void validate_spec(const EdgeFaultSpec& spec) {
  check_probability(spec.drop, "drop");
  check_probability(spec.corrupt, "corrupt");
  check_probability(spec.duplicate, "duplicate");
  check_probability(spec.delay_prob, "delay_prob");
  if (spec.delay_us < 0) throw std::invalid_argument("FaultPlan: delay_us must be >= 0");
}

}  // namespace

std::int64_t RetryPolicy::backoff_us(int attempt, std::uint64_t jitter_key) const {
  double backoff = static_cast<double>(backoff_base_us) *
                   std::pow(backoff_multiplier, static_cast<double>(std::max(0, attempt - 1)));
  backoff = std::min(backoff, static_cast<double>(backoff_max_us));
  const double scale = 1.0 - jitter + 2.0 * jitter * to_unit(mix64(jitter_key));
  return static_cast<std::int64_t>(backoff * scale);
}

void RetryPolicy::validate() const {
  if (attempts < 1) throw std::invalid_argument("RetryPolicy: attempts must be >= 1");
  if (backoff_base_us < 0) throw std::invalid_argument("RetryPolicy: backoff_base_us < 0");
  if (backoff_multiplier < 1.0)
    throw std::invalid_argument("RetryPolicy: backoff_multiplier must be >= 1");
  if (backoff_max_us < backoff_base_us)
    throw std::invalid_argument("RetryPolicy: backoff_max_us < backoff_base_us");
  if (!(jitter >= 0.0 && jitter <= 1.0))
    throw std::invalid_argument("RetryPolicy: jitter must be in [0,1]");
  if (timeout_us <= 0) throw std::invalid_argument("RetryPolicy: timeout_us must be positive");
}

const EdgeFaultSpec& FaultPlan::spec_for(df::EdgeId edge) const {
  const auto it = per_edge_.find(edge);
  return it == per_edge_.end() ? default_ : it->second;
}

bool FaultPlan::faultless() const {
  if (!default_.faultless()) return false;
  return std::all_of(per_edge_.begin(), per_edge_.end(),
                     [](const auto& kv) { return kv.second.faultless(); });
}

FaultOutcome FaultPlan::outcome(df::EdgeId edge, std::int64_t seq, int attempt) const {
  const EdgeFaultSpec& spec = spec_for(edge);
  FaultOutcome out;
  out.entropy = draw_key(seed_, edge, seq, attempt, 4);
  if (to_unit(draw_key(seed_, edge, seq, attempt, 0)) < spec.drop) {
    out.kind = FaultOutcome::Kind::kDrop;
    return out;  // a dropped frame cannot also be duplicated or delayed
  }
  if (to_unit(draw_key(seed_, edge, seq, attempt, 1)) < spec.corrupt)
    out.kind = FaultOutcome::Kind::kCorrupt;
  out.duplicate = to_unit(draw_key(seed_, edge, seq, attempt, 2)) < spec.duplicate;
  if (to_unit(draw_key(seed_, edge, seq, attempt, 3)) < spec.delay_prob)
    out.delay_us = spec.delay_us;
  return out;
}

std::optional<int> FaultPlan::attempts_to_deliver(df::EdgeId edge, std::int64_t seq,
                                                  int max_attempts) const {
  for (int attempt = 0; attempt < max_attempts; ++attempt)
    if (outcome(edge, seq, attempt).kind == FaultOutcome::Kind::kDeliver) return attempt + 1;
  return std::nullopt;
}

std::uint64_t FaultPlan::jitter_key(df::EdgeId edge, std::int64_t seq, int attempt) const {
  return draw_key(seed_, edge, seq, attempt, 5);
}

namespace {

/// Parses "key=value" into spec fields; returns false on unknown key.
bool apply_spec_field(EdgeFaultSpec& spec, const std::string& key, const std::string& value) {
  try {
    if (key == "drop") spec.drop = std::stod(value);
    else if (key == "corrupt") spec.corrupt = std::stod(value);
    else if (key == "duplicate") spec.duplicate = std::stod(value);
    else if (key == "delay_prob") spec.delay_prob = std::stod(value);
    else if (key == "delay_us") spec.delay_us = std::stoll(value);
    else return false;
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad value '" + value + "' for " + key);
  }
  return true;
}

bool apply_retry_field(RetryPolicy& retry, const std::string& key, const std::string& value) {
  try {
    if (key == "attempts") retry.attempts = std::stoi(value);
    else if (key == "base_us") retry.backoff_base_us = std::stoll(value);
    else if (key == "multiplier") retry.backoff_multiplier = std::stod(value);
    else if (key == "max_us") retry.backoff_max_us = std::stoll(value);
    else if (key == "jitter") retry.jitter = std::stod(value);
    else if (key == "timeout_us") retry.timeout_us = std::stoll(value);
    else return false;
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad value '" + value + "' for " + key);
  }
  return true;
}

std::pair<std::string, std::string> split_kv(const std::string& token, int line_no) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == token.size())
    throw std::invalid_argument("FaultPlan line " + std::to_string(line_no) +
                                ": expected key=value, got '" + token + "'");
  return {token.substr(0, eq), token.substr(eq + 1)};
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank or comment-only line

    if (directive == "seed") {
      std::uint64_t seed = 0;
      if (!(tokens >> seed))
        throw std::invalid_argument("FaultPlan line " + std::to_string(line_no) +
                                    ": seed needs an integer");
      plan.set_seed(seed);
    } else if (directive == "retry") {
      std::string token;
      while (tokens >> token) {
        const auto [key, value] = split_kv(token, line_no);
        if (!apply_retry_field(plan.retry(), key, value))
          throw std::invalid_argument("FaultPlan line " + std::to_string(line_no) +
                                      ": unknown retry key '" + key + "'");
      }
      plan.retry().validate();
    } else if (directive == "default" || directive == "edge") {
      df::EdgeId edge = df::kInvalidEdge;
      if (directive == "edge") {
        long long id = -1;
        if (!(tokens >> id) || id < 0)
          throw std::invalid_argument("FaultPlan line " + std::to_string(line_no) +
                                      ": edge needs a non-negative integer id");
        edge = static_cast<df::EdgeId>(id);
      }
      EdgeFaultSpec spec;
      std::string token;
      while (tokens >> token) {
        const auto [key, value] = split_kv(token, line_no);
        if (!apply_spec_field(spec, key, value))
          throw std::invalid_argument("FaultPlan line " + std::to_string(line_no) +
                                      ": unknown fault key '" + key + "'");
      }
      validate_spec(spec);
      if (directive == "default")
        plan.set_default(spec);
      else
        plan.set_edge(edge, spec);
    } else {
      throw std::invalid_argument("FaultPlan line " + std::to_string(line_no) +
                                  ": unknown directive '" + directive + "'");
    }
  }
  return plan;
}

const char* to_string(ChannelErrorKind kind) {
  switch (kind) {
    case ChannelErrorKind::kRetriesExhausted: return "retries-exhausted";
    case ChannelErrorKind::kReceiveTimeout: return "receive-timeout";
  }
  return "unknown";
}

ChannelError::ChannelError(ChannelErrorKind kind, df::EdgeId edge, int attempts,
                           const std::string& detail)
    : std::runtime_error("ChannelError[" + std::string(to_string(kind)) + "] edge " +
                         std::to_string(edge) + " after " + std::to_string(attempts) +
                         " attempt(s): " + detail),
      kind_(kind),
      edge_(edge),
      attempts_(attempts) {}

FaultyBackend::FaultyBackend(const CommBackend& inner, const FaultPlan& plan,
                             obs::MetricRegistry* metrics)
    : inner_(inner), plan_(plan) {
  if (metrics) {
    retries_ = &metrics->counter("spi_faulty_backend_retries_total", {},
                                 "Retransmissions charged by the faulty cost-model decorator");
    drops_ = &metrics->counter("spi_faulty_backend_drops_total", {},
                               "Messages whose retry budget the fault plan exhausted");
    attempts_ = &metrics->histogram("spi_faulty_backend_attempts",
                                    obs::Histogram::linear_bounds(1.0, 1.0, 8), {},
                                    "Transmissions per message under the fault plan");
  }
}

MessageCost FaultyBackend::charge(const ChannelInfo& channel, MessageCost cost) const {
  const std::int64_t seq = next_seq_[channel.edge]++;
  const int budget = plan_.retry().attempts;
  const std::optional<int> delivered = plan_.attempts_to_deliver(channel.edge, seq, budget);
  const int attempts = delivered.value_or(budget);
  // The PE enqueues once; the communication actor re-runs its pipeline
  // and re-spends the wire per transmission, and every retry implies a
  // NAK/timeout round trip before the next copy leaves.
  cost.offload_cycles *= attempts;
  cost.wire_bytes *= attempts;
  cost.handshake_roundtrips += attempts - 1;
  if (retries_ && attempts > 1) retries_->inc(attempts - 1);
  if (drops_ && !delivered) drops_->inc();
  if (attempts_) attempts_->observe(static_cast<double>(attempts));
  return cost;
}

MessageCost FaultyBackend::data_message(const ChannelInfo& channel,
                                        std::int64_t payload_bytes) const {
  return charge(channel, inner_.data_message(channel, payload_bytes));
}

MessageCost FaultyBackend::sync_message(const ChannelInfo& channel) const {
  return charge(channel, inner_.sync_message(channel));
}

}  // namespace spi::sim
