#include "sim/power.hpp"

namespace spi::sim {

EnergyEstimate estimate_energy(const ExecStats& stats, const AreaReport& area,
                               const PowerParams& params) {
  EnergyEstimate e;
  for (std::size_t pe = 0; pe < stats.pe_busy_cycles.size(); ++pe) {
    const SimTime busy = stats.pe_busy_cycles[pe];
    const SimTime idle = stats.makespan > busy ? stats.makespan - busy : 0;
    e.dynamic_compute_nj += static_cast<double>(busy) * params.busy_nj_per_cycle +
                            static_cast<double>(idle) * params.idle_nj_per_cycle;
  }
  e.dynamic_comm_nj =
      static_cast<double>(stats.wire_bytes) * params.wire_nj_per_byte +
      static_cast<double>(stats.data_messages + stats.sync_messages) *
          params.msg_nj_per_message;
  const double seconds = static_cast<double>(stats.makespan) / (params.clock_mhz * 1e6);
  e.static_nj = static_cast<double>(area.total().slices) * params.leakage_nw_per_slice *
                seconds;  // nW * s = nJ
  return e;
}

}  // namespace spi::sim
