/// \file fault.hpp
/// Deterministic transport-fault model and retry policy.
///
/// The paper's SPI channels assume lossless on-chip links. Off-chip (or
/// merely unreliable) transports drop, corrupt, delay and duplicate
/// frames; a production runtime must recover from transient faults and
/// fail *typed* — never hang — on persistent ones. This header holds the
/// pieces every transport layer shares:
///
///  * FaultPlan — a seedable, per-edge fault specification. Every
///    decision is a pure function of (seed, edge, sequence number,
///    attempt), so a lossy run is bit-reproducible regardless of thread
///    scheduling, and the same plan drives the threaded runtime, the MPI
///    baseline and the simulator cost model identically.
///  * RetryPolicy — bounded retries with exponential backoff and
///    deterministic jitter, plus the receiver-side timeout.
///  * ChannelError — the typed failure surfaced when the policy is
///    exhausted (graceful degradation instead of a deadlock).
///  * FaultyBackend — a CommBackend decorator charging the cost-model
///    consequences of the same plan (retransmitted wire bytes, NAK
///    round trips) to the timed simulator.
///
/// Text form (see parse_fault_plan): one directive per line —
///
///     seed 42
///     retry attempts=8 base_us=100 multiplier=2 max_us=5000 jitter=0.1 timeout_us=200000
///     default drop=0.05 corrupt=0.01
///     edge 3 drop=1.0 duplicate=0.02 delay_us=50 delay_prob=0.5
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "dataflow/graph.hpp"
#include "obs/metrics.hpp"
#include "sim/comm_backend.hpp"

namespace spi::sim {

/// Fault probabilities of one edge's transport. All probabilities are
/// per transmission attempt and independent.
struct EdgeFaultSpec {
  double drop = 0.0;       ///< P(frame lost on the wire)
  double corrupt = 0.0;    ///< P(frame delivered with flipped bits)
  double duplicate = 0.0;  ///< P(frame delivered twice)
  double delay_prob = 0.0; ///< P(delivery delayed by delay_us)
  std::int64_t delay_us = 0;

  [[nodiscard]] bool faultless() const {
    return drop == 0.0 && corrupt == 0.0 && duplicate == 0.0 && delay_prob == 0.0;
  }
};

/// What the wire does to one transmission attempt.
struct FaultOutcome {
  enum class Kind : std::uint8_t {
    kDeliver,  ///< frame arrives intact
    kDrop,     ///< frame vanishes
    kCorrupt,  ///< frame arrives, bits flipped (receiver's CRC catches it)
  };
  Kind kind = Kind::kDeliver;
  bool duplicate = false;      ///< frame (or its corruption) arrives twice
  std::int64_t delay_us = 0;   ///< extra latency before delivery
  std::uint64_t entropy = 0;   ///< deterministic noise for corruption placement
};

/// Bounded-retry policy with exponential backoff and deterministic
/// jitter. Sender-side: `attempts` total transmissions of one frame
/// before the transport gives up; receiver-side: `timeout_us` of waiting
/// on an empty channel before declaring the peer lost.
struct RetryPolicy {
  int attempts = 8;
  std::int64_t backoff_base_us = 100;
  double backoff_multiplier = 2.0;
  std::int64_t backoff_max_us = 5000;
  double jitter = 0.1;  ///< backoff scaled by uniform [1-jitter, 1+jitter]
  std::int64_t timeout_us = 200000;

  /// Backoff before retry number `attempt` (1-based: after the first
  /// failed transmission attempt==1). `jitter_key` seeds the
  /// deterministic jitter draw.
  [[nodiscard]] std::int64_t backoff_us(int attempt, std::uint64_t jitter_key) const;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Seedable, reproducible fault plan: a default spec plus per-edge
/// overrides. Decisions are pure functions of (seed, edge, seq, attempt).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  [[nodiscard]] const RetryPolicy& retry() const { return retry_; }
  RetryPolicy& retry() { return retry_; }

  void set_default(EdgeFaultSpec spec) { default_ = spec; }
  void set_edge(df::EdgeId edge, EdgeFaultSpec spec) { per_edge_[edge] = spec; }
  [[nodiscard]] const EdgeFaultSpec& spec_for(df::EdgeId edge) const;
  [[nodiscard]] bool faultless() const;

  /// The wire's verdict on transmission `attempt` (0-based) of message
  /// `seq` on `edge`. Deterministic.
  [[nodiscard]] FaultOutcome outcome(df::EdgeId edge, std::int64_t seq, int attempt) const;

  /// Number of transmissions (1-based) until a frame of message `seq`
  /// is delivered intact, capped at `max_attempts`; std::nullopt when
  /// even the last attempt fails (the sender must surface ChannelError).
  [[nodiscard]] std::optional<int> attempts_to_deliver(df::EdgeId edge, std::int64_t seq,
                                                       int max_attempts) const;

  /// Deterministic jitter key for the sender backoff of (edge, seq,
  /// attempt) — distinct from the fault draws.
  [[nodiscard]] std::uint64_t jitter_key(df::EdgeId edge, std::int64_t seq, int attempt) const;

 private:
  std::uint64_t seed_ = 1;
  RetryPolicy retry_;
  EdgeFaultSpec default_;
  std::map<df::EdgeId, EdgeFaultSpec> per_edge_;
};

/// Parses the text form documented at the top of this file. Throws
/// std::invalid_argument with a line number on malformed input.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

/// Why a reliable channel gave up.
enum class ChannelErrorKind : std::uint8_t {
  kRetriesExhausted,  ///< sender: every attempt dropped or corrupted
  kReceiveTimeout,    ///< receiver: channel empty past the deadline
};

[[nodiscard]] const char* to_string(ChannelErrorKind kind);

/// Typed, non-fatal-to-the-process failure of one reliable channel:
/// the graceful-degradation surface callers catch instead of a hang.
class ChannelError : public std::runtime_error {
 public:
  ChannelError(ChannelErrorKind kind, df::EdgeId edge, int attempts,
               const std::string& detail);

  [[nodiscard]] ChannelErrorKind kind() const { return kind_; }
  [[nodiscard]] df::EdgeId edge() const { return edge_; }
  /// Transmissions made (sender) or frames inspected (receiver).
  [[nodiscard]] int attempts() const { return attempts_; }

 private:
  ChannelErrorKind kind_;
  df::EdgeId edge_;
  int attempts_;
};

/// CommBackend decorator: charges the timed simulator the deterministic
/// cost consequences of a FaultPlan — every dropped or corrupted attempt
/// re-spends the offload pipeline and the wire, and every retry costs a
/// NAK/timeout round trip. A message that exhausts the policy is charged
/// the full budget (the functional layers surface ChannelError; a cost
/// model can only price the failure).
///
/// Publishes `spi_faulty_backend_retries_total`,
/// `spi_faulty_backend_drops_total` and the attempt histogram
/// `spi_faulty_backend_attempts` into an optional registry.
class FaultyBackend final : public CommBackend {
 public:
  FaultyBackend(const CommBackend& inner, const FaultPlan& plan,
                obs::MetricRegistry* metrics = nullptr);

  [[nodiscard]] MessageCost data_message(const ChannelInfo& channel,
                                         std::int64_t payload_bytes) const override;
  [[nodiscard]] MessageCost sync_message(const ChannelInfo& channel) const override;
  [[nodiscard]] const char* name() const override { return "faulty"; }

 private:
  [[nodiscard]] MessageCost charge(const ChannelInfo& channel, MessageCost inner_cost) const;

  const CommBackend& inner_;
  const FaultPlan& plan_;
  obs::Counter* retries_ = nullptr;
  obs::Counter* drops_ = nullptr;
  obs::Histogram* attempts_ = nullptr;
  /// Per-edge message sequence, advanced per cost query: the timed
  /// executor is single-threaded, and determinism comes from the plan
  /// being keyed by (edge, seq).
  mutable std::map<df::EdgeId, std::int64_t> next_seq_;
};

}  // namespace spi::sim
