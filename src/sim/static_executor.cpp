#include "sim/static_executor.hpp"

#include <algorithm>
#include <stdexcept>

namespace spi::sim {

namespace {

std::int64_t exec_of(const sched::SyncGraph& g, const WorkloadModel& w, std::int32_t task,
                     std::int64_t iter) {
  if (w.exec_cycles) return w.exec_cycles(task, iter);
  return g.task(task).exec_cycles;
}

std::int64_t payload_of(const WorkloadModel& w, const sched::SyncEdge& e, std::int64_t iter) {
  if (w.payload_bytes) return w.payload_bytes(e, iter);
  return w.default_payload_bytes;
}

/// Contention-free transport latency of one message.
SimTime transport(const CommBackend& backend, const LinkParams& link,
                  const sched::SyncEdge& e, const WorkloadModel& w, std::int64_t iter) {
  const ChannelInfo channel = channel_info_of(w, e);
  const MessageCost cost = e.kind == sched::SyncEdgeKind::kIpc
                               ? backend.data_message(channel, payload_of(w, e, iter))
                               : backend.sync_message(channel);
  return cost.pe_block_cycles + cost.offload_cycles +
         static_cast<SimTime>(cost.handshake_roundtrips) * 2 * link.latency_cycles +
         link.serialization(cost.wire_bytes) + link.latency_cycles;
}

}  // namespace

StaticRunResult run_fully_static(const sched::SyncGraph& graph, const sched::ProcOrder& order,
                                 const CommBackend& backend, const WorkloadModel& wcet,
                                 const WorkloadModel& actual,
                                 const TimedExecutorOptions& options) {
  if (options.iterations <= 0)
    throw std::invalid_argument("run_fully_static: iterations must be positive");
  const std::size_t tasks = graph.task_count();
  const auto iterations = static_cast<std::size_t>(options.iterations);

  // ---- compile-time phase: scheduled start times under WCET -------------
  // Fixed-point over the synchronization constraints (equation 3 with
  // WCET completion times plus contention-free transport for
  // cross-processor edges, plus the processor sequence implied by order).
  std::vector<std::vector<SimTime>> start(tasks, std::vector<SimTime>(iterations, 0));
  std::vector<std::vector<std::size_t>> in_edges(tasks);
  for (std::size_t i = 0; i < graph.edges().size(); ++i) {
    const sched::SyncEdge& e = graph.edges()[i];
    if (e.removed || e.kind == sched::SyncEdgeKind::kSequence) continue;
    in_edges[static_cast<std::size_t>(e.snk)].push_back(i);
  }
  // Evaluate in a global order that respects all constraints: iterate
  // (iteration, processor position) sweeps until stable. Graphs are
  // deadlock-free, so a bounded number of sweeps converges; we iterate
  // until no start time changes.
  for (int sweep = 0; sweep < 1024; ++sweep) {
    bool changed = false;
    for (std::size_t k = 0; k < iterations; ++k) {
      for (const auto& proc_tasks : order) {
        SimTime proc_free = 0;
        for (std::size_t pos = 0; pos < proc_tasks.size(); ++pos) {
          const std::int32_t t = proc_tasks[pos];
          const auto ti = static_cast<std::size_t>(t);
          SimTime ready = 0;
          // Processor sequence: previous task this iteration, or own
          // previous iteration via the loop-back.
          if (pos > 0) {
            const auto prev = static_cast<std::size_t>(proc_tasks[pos - 1]);
            ready = start[prev][k] + exec_of(graph, wcet, proc_tasks[pos - 1],
                                             static_cast<std::int64_t>(k));
          } else if (k > 0) {
            const auto last = static_cast<std::size_t>(proc_tasks.back());
            ready = start[last][k - 1] + exec_of(graph, wcet, proc_tasks.back(),
                                                 static_cast<std::int64_t>(k) - 1);
          }
          ready = std::max(ready, proc_free);
          // Cross-processor synchronization constraints.
          for (std::size_t ei : in_edges[ti]) {
            const sched::SyncEdge& e = graph.edges()[ei];
            const std::int64_t src_iter = static_cast<std::int64_t>(k) - e.delay;
            if (src_iter < 0) continue;
            const auto si = static_cast<std::size_t>(e.src);
            const SimTime arrival =
                start[si][static_cast<std::size_t>(src_iter)] +
                exec_of(graph, wcet, e.src, src_iter) +
                transport(backend, options.link, e, wcet, src_iter);
            ready = std::max(ready, arrival);
          }
          if (ready != start[ti][k]) {
            start[ti][k] = std::max(start[ti][k], ready);
            changed = true;
          }
          proc_free = start[ti][k] + exec_of(graph, wcet, t, static_cast<std::int64_t>(k));
        }
      }
    }
    if (!changed) break;
  }

  // ---- run-time phase: execute at the scheduled instants ----------------
  StaticRunResult result;
  std::vector<std::vector<SimTime>> end(tasks, std::vector<SimTime>(iterations, 0));
  for (std::size_t t = 0; t < tasks; ++t)
    for (std::size_t k = 0; k < iterations; ++k)
      end[t][k] = start[t][k] + exec_of(graph, actual, static_cast<std::int32_t>(t),
                                        static_cast<std::int64_t>(k));

  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t k = 0; k < iterations; ++k) {
      for (std::size_t ei : in_edges[t]) {
        const sched::SyncEdge& e = graph.edges()[ei];
        const std::int64_t src_iter = static_cast<std::int64_t>(k) - e.delay;
        if (src_iter < 0) continue;
        const SimTime arrival =
            end[static_cast<std::size_t>(e.src)][static_cast<std::size_t>(src_iter)] +
            transport(backend, options.link, e, actual, src_iter);
        if (arrival > start[t][k]) ++result.precedence_violations;
      }
      result.stats.makespan = std::max(result.stats.makespan, end[t][k]);
    }
  }

  // Padding: processor time the static schedule leaves idle (the WCET
  // slack self-timed execution would reclaim), summed over processors.
  for (const auto& proc_tasks : order) {
    SimTime busy = 0;
    for (std::int32_t t : proc_tasks)
      for (std::size_t k = 0; k < iterations; ++k)
        busy += exec_of(graph, actual, t, static_cast<std::int64_t>(k));
    if (!proc_tasks.empty() && result.stats.makespan > busy)
      result.padding_cycles += result.stats.makespan - busy;
  }

  result.stats.avg_period_cycles =
      static_cast<double>(result.stats.makespan) / static_cast<double>(iterations);
  // Steady period of a fully-static schedule is its compile-time period:
  // slope of the scheduled starts over the second half.
  if (iterations >= 4 && !order.empty() && !order[0].empty()) {
    const auto probe = static_cast<std::size_t>(order[0][0]);
    const std::size_t half = iterations / 2;
    result.stats.steady_period_cycles =
        static_cast<double>(start[probe][iterations - 1] - start[probe][half]) /
        static_cast<double>(iterations - 1 - half);
  } else {
    result.stats.steady_period_cycles = result.stats.avg_period_cycles;
  }
  return result;
}

}  // namespace spi::sim
