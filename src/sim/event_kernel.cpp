#include "sim/event_kernel.hpp"

#include <stdexcept>
#include <utility>

namespace spi::sim {

void EventKernel::schedule_at(SimTime time, Action action) {
  if (time < now_) throw std::logic_error("EventKernel: scheduling into the past");
  queue_.push(Event{time, next_seq_++, std::move(action)});
}

bool EventKernel::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the action must be moved out, so copy
  // the wrapper (std::function copy) — cheap relative to event granularity.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

void EventKernel::run(std::uint64_t max_events) {
  while (step()) {
    if (executed_ > max_events)
      throw std::runtime_error("EventKernel::run: event budget exceeded (livelock?)");
  }
}

}  // namespace spi::sim
