/// \file static_executor.hpp
/// Fully-static (clock-driven) execution — the scheduling model the
/// paper *rejects* in favour of self-timed scheduling (Section 2), made
/// runnable so the choice can be evaluated.
///
/// Under fully-static scheduling every firing time is fixed at compile
/// time from worst-case execution times (WCET): processors fire on
/// schedule whether or not work completed early, so run-time variation
/// is absorbed as idle padding — and any actual time beyond its WCET
/// *violates* a precedence (data would be consumed before it arrives).
/// Self-timed execution instead synchronizes at run time and exploits
/// early completions, at the cost of the synchronization machinery SPI
/// then optimizes. `bench/ablation_scheduling_models` quantifies both
/// effects.
#pragma once

#include "sim/timed_executor.hpp"

namespace spi::sim {

struct StaticRunResult {
  ExecStats stats;
  /// Precedence violations: messages whose data would arrive after the
  /// consumer's scheduled start (actual time exceeded the WCET budget).
  /// A correct fully-static deployment requires this to be zero.
  std::int64_t precedence_violations = 0;
  /// Idle cycles spent waiting for the schedule despite being ready
  /// (the throughput self-timed execution recovers).
  SimTime padding_cycles = 0;
};

/// Executes a fully-static schedule. The schedule's firing times are
/// derived from a self-timed run under `wcet` (the compile-time budget);
/// execution then uses `actual` per-firing times. Message transport is
/// priced by `backend` without link contention (each channel is a
/// dedicated wire, the paper's point-to-point assumption).
[[nodiscard]] StaticRunResult run_fully_static(const sched::SyncGraph& graph,
                                               const sched::ProcOrder& order,
                                               const CommBackend& backend,
                                               const WorkloadModel& wcet,
                                               const WorkloadModel& actual,
                                               const TimedExecutorOptions& options);

}  // namespace spi::sim
