/// \file fpga_area.hpp
/// Parametric FPGA area model.
///
/// Stands in for the Xilinx ISE synthesis reports behind the paper's
/// Tables 1 and 2 (see DESIGN.md substitution table). Components declare
/// resource vectors over the Virtex-4 resource classes the paper reports
/// — slices, slice flip-flops, 4-input LUTs, block RAMs, DSP48s — and the
/// report aggregates device utilization of the full system plus the SPI
/// library's share of the system, the two quantities the paper tabulates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spi::sim {

/// Resource usage vector (Virtex-4 resource classes).
struct ResourceVector {
  std::int64_t slices = 0;
  std::int64_t slice_ffs = 0;
  std::int64_t lut4 = 0;
  std::int64_t bram = 0;
  std::int64_t dsp48 = 0;

  ResourceVector& operator+=(const ResourceVector& o) {
    slices += o.slices;
    slice_ffs += o.slice_ffs;
    lut4 += o.lut4;
    bram += o.bram;
    dsp48 += o.dsp48;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) { return a += b; }
  friend ResourceVector operator*(ResourceVector v, std::int64_t n) {
    v.slices *= n;
    v.slice_ffs *= n;
    v.lut4 *= n;
    v.bram *= n;
    v.dsp48 *= n;
    return v;
  }
};

/// Number of resource classes in ResourceVector (for tabular iteration).
inline constexpr int kResourceClassCount = 5;
[[nodiscard]] const char* resource_class_name(int index);
[[nodiscard]] std::int64_t resource_class_of(const ResourceVector& v, int index);

/// An FPGA device with its capacity vector.
struct FpgaDevice {
  std::string name;
  ResourceVector capacity;
};

/// Virtex-4 SX35 (a representative DSP-oriented Virtex-4, speed grade -10
/// matching the paper's target family).
[[nodiscard]] FpgaDevice virtex4_sx35();

/// One synthesized component of a system.
struct ComponentArea {
  std::string name;
  ResourceVector area;
  bool is_spi = false;  ///< part of the SPI communication library
};

/// Aggregated area report for a system on a device.
class AreaReport {
 public:
  explicit AreaReport(FpgaDevice device) : device_(std::move(device)) {}

  void add(ComponentArea component) { components_.push_back(std::move(component)); }
  void add(std::string name, ResourceVector area, bool is_spi = false) {
    components_.push_back(ComponentArea{std::move(name), area, is_spi});
  }

  [[nodiscard]] const FpgaDevice& device() const { return device_; }
  [[nodiscard]] const std::vector<ComponentArea>& components() const { return components_; }
  [[nodiscard]] ResourceVector total() const;
  [[nodiscard]] ResourceVector spi_total() const;

  /// Full-system utilization of the device, percent, per resource class
  /// (the paper's "Full system" row).
  [[nodiscard]] double system_percent_of_device(int resource_class) const;

  /// SPI library area relative to the full system, percent (the paper's
  /// "SPI library (relative to full system)" row). Returns 0 when the
  /// system uses none of the class.
  [[nodiscard]] double spi_percent_of_system(int resource_class) const;

  /// Renders the two-row table in the paper's format.
  [[nodiscard]] std::string to_table(const std::string& title) const;

  /// Throws std::runtime_error when the system exceeds device capacity in
  /// any class — the paper's "FPGA resources were not enough" situation.
  void check_fits() const;

 private:
  FpgaDevice device_;
  std::vector<ComponentArea> components_;
};

}  // namespace spi::sim
