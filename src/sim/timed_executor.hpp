/// \file timed_executor.hpp
/// Self-timed execution of a synchronization graph on the platform model.
///
/// Each processor loops over its compile-time task order (self-timed
/// scheduling, paper Section 2): task invocation k fires as soon as the
/// processor is free AND every active incoming synchronization edge
/// (vj -> vi, delay d) is satisfied, i.e. message k+1-d from vj has been
/// delivered (equation 3 with messages standing in for end-times).
/// Firing completion emits one message per outgoing cross-processor sync
/// edge: data messages on kIpc edges, pure sync messages on kAck/kResync
/// edges, each priced by the pluggable CommBackend and carried by the
/// LinkNetwork. The executor is the measurement instrument behind
/// Figures 6–7 and the resynchronization / SPI-vs-MPI ablations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sched/sync_graph.hpp"
#include "sim/comm_backend.hpp"
#include "sim/event_kernel.hpp"
#include "sim/link.hpp"
#include "sim/trace.hpp"

namespace spi::sim {

/// Per-invocation workload hooks. Null members fall back to the static
/// values recorded in the graphs.
struct WorkloadModel {
  /// Firing duration of task `t`, iteration `k` (cycles).
  std::function<std::int64_t(std::int32_t task, std::int64_t iteration)> exec_cycles;
  /// Payload bytes of the data message on a kIpc sync edge at iteration
  /// `k` (dynamic/VTS edges vary per iteration; static edges are fixed).
  std::function<std::int64_t(const sched::SyncEdge& edge, std::int64_t iteration)> payload_bytes;
  /// Channel descriptor the backend prices a message with. Null falls
  /// back to a static descriptor (the edge id, non-dynamic); the plan
  /// layer installs a ChannelSpec-derived hook here
  /// (core::ExecutablePlan::install_workload_defaults).
  std::function<ChannelInfo(const sched::SyncEdge& edge)> channel_info;
  std::int64_t default_payload_bytes = 4;
};

/// The channel descriptor for a sync edge under `w` (hook or fallback).
[[nodiscard]] inline ChannelInfo channel_info_of(const WorkloadModel& w,
                                                 const sched::SyncEdge& e) {
  if (w.channel_info) return w.channel_info(e);
  return ChannelInfo{e.dataflow_edge, false};
}

/// Execution statistics for one timed run.
struct ExecStats {
  SimTime makespan = 0;                 ///< completion time of the last firing
  double avg_period_cycles = 0.0;       ///< makespan / iterations
  double steady_period_cycles = 0.0;    ///< slope over the second half (warm-up excluded)
  std::int64_t data_messages = 0;
  std::int64_t sync_messages = 0;       ///< acks + resync messages
  std::int64_t wire_bytes = 0;
  std::vector<SimTime> pe_busy_cycles;  ///< per processor
  std::vector<SimTime> pe_stall_cycles; ///< per processor: ready-task-blocked time
  std::vector<std::int64_t> max_occupancy;  ///< per sync-edge index; kIpc edges only
  std::vector<SimTime> iteration_complete; ///< time iteration k fully finished
};

struct TimedExecutorOptions {
  std::int64_t iterations = 100;
  LinkParams link;
  ClockModel clock;
  /// Optional: record every firing and message for Gantt / Chrome-trace
  /// rendering (trace.hpp). Not owned; must outlive the run.
  TraceRecorder* trace = nullptr;
  /// Heterogeneous platforms (the paper targets FPGAs integrating CPUs
  /// with fabric): per-processor speed factor applied to firing
  /// durations — 2.0 halves a PE's execution times, 0.5 doubles them.
  /// Empty = homogeneous. Must have proc_count entries otherwise.
  std::vector<double> pe_speed;
};

/// Runs the synchronization graph to completion of `iterations` graph
/// iterations. Throws std::runtime_error on deadlock (with the stuck
/// tasks named) — which a correctly built sync graph cannot produce, so
/// tests use it as an oracle.
[[nodiscard]] ExecStats run_timed(const sched::SyncGraph& graph, const sched::ProcOrder& order,
                                  const CommBackend& backend, const WorkloadModel& workload,
                                  const TimedExecutorOptions& options);

}  // namespace spi::sim
