#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace spi::sim {

std::string to_ascii_gantt(const TraceRecorder& trace, std::int32_t pe_count,
                           SimTime max_cycles, std::size_t width) {
  if (pe_count <= 0 || width == 0) return {};
  std::ostringstream out;
  // A zero-firing trace has makespan 0; clamp so the chart stays
  // well-formed (all-idle rows) instead of degenerating.
  const SimTime span = std::max<SimTime>(1, max_cycles);
  const double scale = static_cast<double>(width) / static_cast<double>(span);
  std::vector<std::string> drawn;  // legend: tasks actually on the chart

  out << "time 0 .. " << std::max<SimTime>(0, max_cycles) << " cycles, '" << '.' << "' = idle\n";
  for (std::int32_t pe = 0; pe < pe_count; ++pe) {
    std::string row(width, '.');
    for (const FiringRecord& f : trace.firings()) {
      if (f.pe != pe || f.start >= span || f.start < 0) continue;
      const auto begin = static_cast<std::size_t>(static_cast<double>(f.start) * scale);
      const auto end = std::min(
          width, static_cast<std::size_t>(static_cast<double>(std::min(f.end, span)) *
                                          scale) +
                     1);
      const char mark = f.name.empty() ? '#' : f.name[0];
      for (std::size_t i = begin; i < end && i < width; ++i) row[i] = mark;
      if (std::find(drawn.begin(), drawn.end(), f.name) == drawn.end() && drawn.size() < 16)
        drawn.push_back(f.name);
    }
    out << "PE" << pe << " |" << row << "|\n";
  }
  // Legend: first occurrence of each drawn task name. Firings on PEs
  // outside [0, pe_count) or past the window never appear here, matching
  // the rows above.
  out << "legend:";
  for (const std::string& name : drawn)
    out << " " << (name.empty() ? "#" : name.substr(0, 1)) << "=" << name;
  out << "\n";
  return out.str();
}

namespace {

void append_escaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

std::string to_chrome_trace_json(const TraceRecorder& trace, const ClockModel& clock) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const FiringRecord& f : trace.firings()) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"";
    append_escaped(out, f.name);
    out << "\",\"cat\":\"firing\",\"ph\":\"X\",\"pid\":0,\"tid\":" << f.pe
        << ",\"ts\":" << clock.to_microseconds(f.start)
        << ",\"dur\":" << clock.to_microseconds(f.end - f.start) << ",\"args\":{\"iteration\":"
        << f.iteration << "}}";
  }
  for (const MessageRecord& m : trace.messages()) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << (m.is_data ? "data" : "sync") << " msg\",\"cat\":\"message\","
        << "\"ph\":\"X\",\"pid\":1,\"tid\":" << m.src_pe
        << ",\"ts\":" << clock.to_microseconds(m.send_time)
        << ",\"dur\":" << clock.to_microseconds(m.arrival_time - m.send_time)
        << ",\"args\":{\"dst_pe\":" << m.dst_pe << ",\"wire_bytes\":" << m.wire_bytes << "}}";
  }
  out << "\n]\n";
  return out.str();
}

std::string to_vcd(const TraceRecorder& trace, std::int32_t pe_count) {
  std::ostringstream out;
  out << "$timescale 1ns $end\n$scope module spi $end\n";
  for (std::int32_t pe = 0; pe < pe_count; ++pe) {
    out << "$var wire 1 b" << pe << " pe" << pe << "_busy $end\n";
    out << "$var reg 8 t" << pe << " pe" << pe << "_task [7:0] $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  // Merge firing start/end transitions into a time-ordered change list.
  struct Change {
    SimTime time;
    std::int32_t pe;
    bool start;
    std::int32_t task;
  };
  std::vector<Change> changes;
  changes.reserve(trace.firings().size() * 2);
  for (const FiringRecord& f : trace.firings()) {
    // Firings on PEs without a declared wire (recorder saw more PEs than
    // the caller asked for) would corrupt the dump — skip them.
    if (f.pe < 0 || f.pe >= pe_count) continue;
    changes.push_back(Change{f.start, f.pe, true, f.task});
    changes.push_back(Change{f.end, f.pe, false, f.task});
  }
  std::sort(changes.begin(), changes.end(), [](const Change& a, const Change& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.start < b.start;  // emit ends before starts at the same instant
  });

  auto put_task = [&](std::int32_t pe, std::int32_t task) {
    out << "b";
    for (int bit = 7; bit >= 0; --bit) out << ((task >> bit) & 1);
    out << " t" << pe << "\n";
  };

  out << "#0\n";
  for (std::int32_t pe = 0; pe < pe_count; ++pe) {
    out << "0b" << pe << "\n";
    put_task(pe, 0);
  }
  SimTime now = 0;
  for (const Change& c : changes) {
    if (c.time != now) {
      now = c.time;
      out << "#" << now << "\n";
    }
    out << (c.start ? "1b" : "0b") << c.pe << "\n";
    if (c.start) put_task(c.pe, c.task & 0xFF);
  }
  return out.str();
}

}  // namespace spi::sim
