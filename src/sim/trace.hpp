/// \file trace.hpp
/// Execution tracing for the timed executor.
///
/// When a TraceRecorder is attached to a run, every task firing and every
/// message transfer is recorded. Two renderers are provided: an ASCII
/// Gantt chart (quick terminal inspection of pipelining, stalls and
/// communication overlap) and Chrome trace-event JSON (open in
/// chrome://tracing or Perfetto for interactive inspection).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_kernel.hpp"

namespace spi::sim {

struct FiringRecord {
  std::int32_t task = 0;
  std::int32_t pe = 0;
  std::int64_t iteration = 0;
  SimTime start = 0;
  SimTime end = 0;
  std::string name;
};

struct MessageRecord {
  std::size_t sync_edge = 0;
  std::int32_t src_pe = 0;
  std::int32_t dst_pe = 0;
  bool is_data = true;  ///< data message (kIpc) vs sync message (ack/resync)
  SimTime send_time = 0;
  SimTime arrival_time = 0;
  std::int64_t wire_bytes = 0;
};

class TraceRecorder {
 public:
  void record_firing(FiringRecord r) { firings_.push_back(std::move(r)); }
  void record_message(MessageRecord r) { messages_.push_back(std::move(r)); }
  void clear() {
    firings_.clear();
    messages_.clear();
  }

  [[nodiscard]] const std::vector<FiringRecord>& firings() const { return firings_; }
  [[nodiscard]] const std::vector<MessageRecord>& messages() const { return messages_; }

 private:
  std::vector<FiringRecord> firings_;
  std::vector<MessageRecord> messages_;
};

/// Renders the firings of the first `max_cycles` simulated cycles as an
/// ASCII Gantt chart, one row per processor, `width` characters wide.
/// Busy spans show the task's first letter; '.' is idle.
[[nodiscard]] std::string to_ascii_gantt(const TraceRecorder& trace, std::int32_t pe_count,
                                         SimTime max_cycles, std::size_t width = 100);

/// Chrome trace-event JSON ("X" duration events per firing, flow-style
/// instant events per message). Timestamps are emitted in simulated
/// microseconds at the given clock.
[[nodiscard]] std::string to_chrome_trace_json(const TraceRecorder& trace,
                                               const ClockModel& clock = {});

/// IEEE-1364 VCD waveform dump: per processor a 1-bit `busy` wire and an
/// 8-bit `task` register (the id of the executing task), viewable in
/// GTKWave — the natural habitat of the paper's FPGA audience. The
/// timescale is one simulated cycle = 1 ns.
[[nodiscard]] std::string to_vcd(const TraceRecorder& trace, std::int32_t pe_count);

}  // namespace spi::sim
