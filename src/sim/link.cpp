#include "sim/link.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace spi::sim {

std::int32_t LinkParams::mesh_hops(std::int32_t src, std::int32_t dst) const {
  const std::int32_t sx = src % mesh_width, sy = src / mesh_width;
  const std::int32_t dx = dst % mesh_width, dy = dst / mesh_width;
  return std::abs(sx - dx) + std::abs(sy - dy);
}

namespace {

/// XY route on the mesh: the sequence of directed hop keys. Hop keys are
/// encoded as (node, node) pairs of adjacent mesh routers.
std::vector<std::pair<std::int32_t, std::int32_t>> mesh_route(const LinkParams& params,
                                                              std::int32_t src,
                                                              std::int32_t dst) {
  std::vector<std::pair<std::int32_t, std::int32_t>> hops;
  const std::int32_t w = params.mesh_width;
  std::int32_t x = src % w, y = src / w;
  const std::int32_t dx = dst % w, dy = dst / w;
  auto node = [w](std::int32_t cx, std::int32_t cy) { return cy * w + cx; };
  while (x != dx) {  // X first
    const std::int32_t nx = x + (dx > x ? 1 : -1);
    hops.emplace_back(node(x, y), node(nx, y));
    x = nx;
  }
  while (y != dy) {  // then Y
    const std::int32_t ny = y + (dy > y ? 1 : -1);
    hops.emplace_back(node(x, y), node(x, ny));
    y = ny;
  }
  return hops;
}

}  // namespace

SimTime LinkNetwork::transfer(EventKernel& kernel, std::int32_t src, std::int32_t dst,
                              SimTime ready, std::int64_t bytes, int extra_roundtrips,
                              std::function<void()> deliver) {
  SimTime arrival = 0;
  total_bytes_ += bytes;

  if (params_.topology == Topology::kMesh2D && src != dst) {
    // Wormhole routing: the head flit advances one hop per latency; the
    // message body streams behind it, occupying each hop link for the
    // serialization duration. Contention is per directed hop link.
    const auto route = mesh_route(params_, src, dst);
    SimTime start = std::max(ready, kernel.now());
    start += static_cast<SimTime>(extra_roundtrips) * 2 * params_.latency_cycles *
             static_cast<SimTime>(route.size());
    const SimTime body = params_.serialization(bytes);
    SimTime head = start;
    for (const auto& hop : route) {
      SimTime& busy = busy_until_[hop];
      head = std::max(head, busy);
      busy = head + body;  // the body occupies the hop behind the head
      head += params_.latency_cycles;
    }
    arrival = head + body;
  } else {
    // A shared bus is modeled as one pseudo-link all transfers contend
    // on; point-to-point (and mesh self-messages) use the pair link.
    const auto key = params_.topology == Topology::kSharedBus
                         ? std::make_pair(std::int32_t{-1}, std::int32_t{-1})
                         : std::make_pair(src, dst);
    SimTime& busy = busy_until_[key];
    SimTime start = std::max({ready, busy, kernel.now()});
    start += static_cast<SimTime>(extra_roundtrips) * 2 * params_.latency_cycles;
    const SimTime done_serializing = start + params_.serialization(bytes);
    busy = done_serializing;  // link free for the next transfer
    arrival = done_serializing + params_.latency_cycles;
  }

  kernel.schedule_at(arrival, std::move(deliver));
  return arrival;
}

}  // namespace spi::sim
