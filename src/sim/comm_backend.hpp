/// \file comm_backend.hpp
/// Interface between the timed executor and a message-passing protocol.
///
/// SPI (src/core) and the generic MPI baseline (src/mpi) both implement
/// this interface, so protocol overhead comparisons run on an otherwise
/// identical platform model — the isolation DESIGN.md calls out.
#pragma once

#include <cstdint>

#include "dataflow/graph.hpp"

namespace spi::sim {

/// Cost breakdown of sending one message.
///
/// `pe_block_cycles` occupies the *sending processor* (software stacks
/// run on the PE; hardware communication actors only charge a small
/// enqueue cost — the paper's separation of communication from
/// computation). `offload_cycles` is pipeline work inside the
/// communication actor that delays wire entry but leaves the PE free.
/// `wire_bytes` = header + payload. `handshake_roundtrips` are link round
/// trips that must complete before payload moves (rendezvous protocols).
struct MessageCost {
  std::int64_t pe_block_cycles = 0;
  std::int64_t offload_cycles = 0;
  std::int64_t wire_bytes = 0;
  int handshake_roundtrips = 0;
};

/// Descriptor of the channel a message travels on.
struct ChannelInfo {
  df::EdgeId edge = df::kInvalidEdge;
  bool dynamic = false;  ///< VTS edge (variable-size packed tokens)
};

/// A message-passing protocol's cost model.
class CommBackend {
 public:
  virtual ~CommBackend() = default;

  /// Cost of a data message carrying `payload_bytes` on `channel`.
  [[nodiscard]] virtual MessageCost data_message(const ChannelInfo& channel,
                                                 std::int64_t payload_bytes) const = 0;

  /// Cost of a pure synchronization message (UBS acknowledgement or a
  /// resynchronization edge's message).
  [[nodiscard]] virtual MessageCost sync_message(const ChannelInfo& channel) const = 0;

  /// Human-readable protocol name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Zero-overhead backend: every cost is zero except the payload on the
/// wire. Used by tests to isolate executor semantics from protocol cost.
class IdealBackend final : public CommBackend {
 public:
  [[nodiscard]] MessageCost data_message(const ChannelInfo&,
                                         std::int64_t payload_bytes) const override {
    return MessageCost{0, 0, payload_bytes, 0};
  }
  [[nodiscard]] MessageCost sync_message(const ChannelInfo&) const override {
    return MessageCost{0, 0, 1, 0};
  }
  [[nodiscard]] const char* name() const override { return "ideal"; }
};

}  // namespace spi::sim
