/// \file event_kernel.hpp
/// Discrete-event simulation kernel (the SystemC-style substrate that
/// replaces the paper's FPGA testbed — see DESIGN.md, substitution table).
///
/// Events are executed in (time, insertion-sequence) order, which makes
/// every simulation bit-reproducible: ties never depend on container or
/// allocation nondeterminism.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace spi::sim {

/// Simulated time in clock cycles of the modeled platform.
using SimTime = std::int64_t;

/// Converts cycles to microseconds at a given clock (paper reports µs on
/// a Virtex-4 that "could not attain" its 500 MHz ceiling; we default to
/// 100 MHz, a typical achieved System Generator clock).
struct ClockModel {
  double mhz = 100.0;
  [[nodiscard]] double to_microseconds(SimTime cycles) const {
    return static_cast<double>(cycles) / mhz;
  }
};

/// Minimal deterministic event kernel.
class EventKernel {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  void schedule_at(SimTime time, Action action);
  void schedule_in(SimTime delta, Action action) { schedule_at(now_ + delta, std::move(action)); }

  /// Executes the next event; returns false when the queue is empty.
  bool step();

  /// Runs to quiescence (or until `max_events`, a runaway guard).
  void run(std::uint64_t max_events = 500'000'000ULL);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace spi::sim
