/// \file power.hpp
/// First-order FPGA energy model over execution statistics.
///
/// Dynamic energy on an FPGA scales with switching activity: busy PE
/// cycles, wire traffic and per-message control activity; static
/// (leakage) power accrues with wall-clock time and the configured area.
/// The model turns the timed executor's ExecStats plus an AreaReport
/// into energy estimates — coarse by design, but sufficient to rank
/// design points (the DSE example reports energy per frame).
#pragma once

#include "sim/event_kernel.hpp"
#include "sim/fpga_area.hpp"
#include "sim/timed_executor.hpp"

namespace spi::sim {

struct PowerParams {
  double busy_nj_per_cycle = 0.25;    ///< PE switching energy when computing
  double idle_nj_per_cycle = 0.02;    ///< clock-tree/idle switching per PE
  double wire_nj_per_byte = 0.08;     ///< interconnect switching
  double msg_nj_per_message = 1.5;    ///< control/handshake activity
  double leakage_nw_per_slice = 15.0; ///< static power per occupied slice (nW)
  double clock_mhz = 100.0;
};

struct EnergyEstimate {
  double dynamic_compute_nj = 0.0;
  double dynamic_comm_nj = 0.0;
  double static_nj = 0.0;

  [[nodiscard]] double total_nj() const {
    return dynamic_compute_nj + dynamic_comm_nj + static_nj;
  }
  /// Average power over the run, in milliwatts.
  [[nodiscard]] double average_mw(SimTime makespan_cycles, double clock_mhz) const {
    if (makespan_cycles <= 0) return 0.0;
    const double seconds = static_cast<double>(makespan_cycles) / (clock_mhz * 1e6);
    return total_nj() * 1e-9 / seconds * 1e3;
  }
};

/// Estimates the energy of one timed run. The area report supplies the
/// slice count for leakage; pass the system's own report.
[[nodiscard]] EnergyEstimate estimate_energy(const ExecStats& stats, const AreaReport& area,
                                             const PowerParams& params = {});

}  // namespace spi::sim
