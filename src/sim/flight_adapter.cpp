#include "sim/flight_adapter.hpp"

#include <algorithm>
#include <map>

namespace spi::sim {

obs::FlightLog to_flight_log(const TraceRecorder& trace, const sched::SyncGraph& sync,
                             std::int32_t pe_count, std::vector<std::string> edge_names) {
  obs::FlightLog log;
  log.time_unit = "cycles";
  log.proc_count = pe_count;
  log.edge_names = std::move(edge_names);

  // Synthetic edge ids for messages whose sync edge has no dataflow
  // identity (resynchronization edges): allocated past every real edge.
  df::EdgeId synthetic_base = 0;
  for (const sched::SyncEdge& e : sync.edges())
    if (e.dataflow_edge != df::kInvalidEdge)
      synthetic_base = std::max(synthetic_base, e.dataflow_edge + 1);
  synthetic_base = std::max(synthetic_base,
                            static_cast<df::EdgeId>(log.edge_names.size()));

  auto edge_id_of = [&](std::size_t sync_edge) -> df::EdgeId {
    const sched::SyncEdge& e = sync.edges().at(sync_edge);
    if (e.dataflow_edge != df::kInvalidEdge) return e.dataflow_edge;
    return synthetic_base + static_cast<df::EdgeId>(sync_edge);
  };
  auto ensure_edge_name = [&](df::EdgeId id, std::size_t sync_edge) {
    if (id < 0) return;
    if (static_cast<std::size_t>(id) >= log.edge_names.size())
      log.edge_names.resize(static_cast<std::size_t>(id) + 1);
    std::string& name = log.edge_names[static_cast<std::size_t>(id)];
    if (!name.empty()) return;
    const sched::SyncEdge& e = sync.edges().at(sync_edge);
    const std::string& src = sync.task(e.src).name;
    const std::string& snk = sync.task(e.snk).name;
    name = (e.kind == sched::SyncEdgeKind::kResync ? "resync:" : "") + src + "->" + snk;
  };

  for (const FiringRecord& r : trace.firings()) {
    if (r.task >= 0) {
      if (static_cast<std::size_t>(r.task) >= log.actor_names.size())
        log.actor_names.resize(static_cast<std::size_t>(r.task) + 1);
      if (log.actor_names[static_cast<std::size_t>(r.task)].empty())
        log.actor_names[static_cast<std::size_t>(r.task)] = r.name;
    }
    obs::FlightEvent begin;
    begin.t = r.start;
    begin.iteration = r.iteration;
    begin.proc = r.pe;
    begin.actor = r.task;
    begin.kind = obs::FlightEventKind::kFireBegin;
    log.events.push_back(begin);
    obs::FlightEvent end = begin;
    end.t = r.end;
    end.kind = obs::FlightEventKind::kFireEnd;
    log.events.push_back(end);
  }

  // Messages are recorded in send order per sync edge, so a per-stream
  // counter reproduces the sequence numbers both endpoints agree on.
  std::map<std::size_t, std::int64_t> seq_of_stream;
  for (const MessageRecord& m : trace.messages()) {
    const df::EdgeId edge = edge_id_of(m.sync_edge);
    ensure_edge_name(edge, m.sync_edge);
    const std::int64_t seq = seq_of_stream[m.sync_edge]++;
    const std::int32_t aux =
        static_cast<std::int32_t>(m.sync_edge) * 2 + (m.is_data ? 0 : 1);
    obs::FlightEvent send;
    send.t = m.send_time;
    send.seq = seq;
    send.proc = m.src_pe;
    send.edge = edge;
    send.aux = aux;
    send.kind = obs::FlightEventKind::kSend;
    log.events.push_back(send);
    obs::FlightEvent recv = send;
    recv.t = m.arrival_time;
    recv.proc = m.dst_pe;
    recv.kind = obs::FlightEventKind::kReceive;
    log.events.push_back(recv);
  }
  return log;
}

}  // namespace spi::sim
