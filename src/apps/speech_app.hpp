/// \file speech_app.hpp
/// Application 1 of the paper: LPC-based acoustic data compression
/// (Section 5.2).
///
/// The dataflow graph (paper figure 2): A reads a segment of input data,
/// B computes an FFT over the samples, C performs LU decomposition to
/// find predictor coefficients, D generates the prediction error, and E
/// Huffman-codes the error. The paper parallelizes actor D across n PEs
/// in hardware (figure 3): per PE an I/O interface sends the predictor
/// coefficients and an overlapping frame subsection and receives the
/// computed error values. The frame size and coefficient count are not
/// known before run time, so those transfers are dynamic -> SPI_dynamic.
///
/// Two facets are implemented:
///  * SpeechCompressor — the sequential A..E reference codec (real DSP).
///  * ErrorGenApp — the parallel actor-D system: dataflow graph, SPI
///    compilation, functional parallel execution (bit-identical to the
///    reference), the figure-6 timing experiment and the table-1 area
///    model.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/spi_system.hpp"
#include "core/threaded_runtime.hpp"
#include "dsp/huffman.hpp"
#include "dsp/quantize.hpp"
#include "sim/fpga_area.hpp"

namespace spi::apps {

struct SpeechParams {
  std::size_t frame_size = 256;      ///< N: samples per frame (run-time value)
  std::size_t max_frame_size = 2048; ///< compile-time bound (VTS requirement)
  std::size_t order = 10;            ///< M: predictor order (run-time value)
  std::size_t max_order = 16;        ///< compile-time bound
  double quant_step = 0.005;
  std::int32_t max_symbol = 4095;
};

/// Whole-signal compression result of the sequential reference codec.
struct CompressionResult {
  std::vector<double> reconstructed;
  std::uint64_t raw_bits = 0;         ///< 16-bit input samples
  std::uint64_t compressed_bits = 0;  ///< error bitstream + coefficients + code table
  double snr_db = 0.0;

  [[nodiscard]] double ratio() const {
    return compressed_bits == 0
               ? 0.0
               : static_cast<double>(raw_bits) / static_cast<double>(compressed_bits);
  }
};

/// Sequential reference implementation of the full A..E pipeline.
class SpeechCompressor {
 public:
  explicit SpeechCompressor(SpeechParams params);

  [[nodiscard]] const SpeechParams& params() const { return params_; }

  /// Actor B + C: predictor coefficients of one frame. The
  /// autocorrelation is computed spectrally (FFT -> power spectrum ->
  /// inverse FFT, actor B's role), then the Toeplitz normal equations are
  /// solved by LU decomposition (actor C).
  [[nodiscard]] std::vector<double> frame_coefficients(std::span<const double> frame) const;

  /// Actor D: prediction error of one frame under the given coefficients.
  [[nodiscard]] std::vector<double> frame_errors(std::span<const double> frame,
                                                 std::span<const double> coeffs) const;

  /// Full pipeline over a signal: frame split, coefficients, errors,
  /// quantization, Huffman coding (two-pass: one code for the whole
  /// signal), then decode + reconstruct for the quality metrics.
  [[nodiscard]] CompressionResult compress(std::span<const double> signal) const;

 private:
  SpeechParams params_;
};

/// Cycle-cost calibration of the FPGA implementation (the timing half of
/// the DESIGN.md substitution for the Virtex-4 testbed).
struct SpeechTimingModel {
  double clock_mhz = 100.0;            ///< achieved System Generator clock
  std::int64_t sample_wire_bytes = 2;  ///< 16-bit fixed-point samples on the wire
  std::int64_t coeff_wire_bytes = 4;   ///< 32-bit fixed-point coefficients
  std::int64_t d_setup_cycles = 24;    ///< PE pipeline fill / control
  std::int64_t d_cycles_per_mac = 1;   ///< one multiply-accumulate per cycle
  std::int64_t io_setup_cycles = 12;   ///< I/O interface per-transfer control
  std::int64_t io_cycles_per_byte = 1; ///< I/O interface streaming rate
  sim::LinkParams link;                ///< interconnect model (topology, width)
};

/// The parallel actor-D system (figures 3 and 6, table 1).
class ErrorGenApp {
 public:
  ErrorGenApp(std::int32_t pe_count, SpeechParams params,
              core::SpiSystemOptions options = {});

  [[nodiscard]] std::int32_t pe_count() const { return pe_count_; }
  [[nodiscard]] const SpeechParams& params() const { return params_; }
  [[nodiscard]] const core::SpiSystem& system() const { return *system_; }

  /// Per-PE frame section [begin, begin+count) of a `sample_count` frame
  /// (balanced split; each PE additionally receives `order` samples of
  /// history before `begin`, clamped at the frame start).
  struct Section {
    std::size_t begin = 0;
    std::size_t count = 0;
    std::size_t history = 0;  ///< extra leading samples shipped to the PE
  };
  [[nodiscard]] Section section(std::int32_t pe, std::size_t sample_count,
                                std::size_t order) const;

  /// Functional parallel execution of one frame through the SPI fabric
  /// (real packed tokens, real headers). The result is bit-identical to
  /// SpeechCompressor::frame_errors — the integration tests assert it.
  [[nodiscard]] std::vector<double> compute_errors_parallel(std::span<const double> frame,
                                                            std::span<const double> coeffs) const;

  /// Same computation on real host threads (one per modeled processor)
  /// over the reliable transport: sequenced CRC-checked frames, bounded
  /// retry/backoff, optionally under `reliability.faults`. Because fault
  /// decisions are keyed by (edge, sequence, attempt), the result is
  /// bit-identical to compute_errors_parallel whenever the plan's retry
  /// budget suffices; a persistent fault surfaces sim::ChannelError.
  /// `metrics` (optional) receives the spi_reliable_* counters.
  /// `policy` selects the channel implementation for plain edges
  /// (lock-free SPSC by default; kBlockingOnly forces the mutex fallback
  /// — the parity tests run both and assert identical bits).
  [[nodiscard]] std::vector<double> compute_errors_threaded(
      std::span<const double> frame, std::span<const double> coeffs,
      core::ReliabilityOptions reliability = {}, obs::MetricRegistry* metrics = nullptr,
      core::ChannelPolicy policy = core::ChannelPolicy::kAuto) const;

  /// compute_errors_threaded with full control of the run — iteration
  /// count, live telemetry endpoint, watchdog (core::RunOptions,
  /// docs/observability.md). The speech computes are iteration-
  /// independent (every firing re-sends the same frame sections), so
  /// any iterations >= 1 produces the same bits; the scrape and soak
  /// tests use extra iterations to keep the pipeline busy while
  /// observers attach.
  [[nodiscard]] std::vector<double> compute_errors_threaded(
      std::span<const double> frame, std::span<const double> coeffs,
      const core::RunOptions& run_options, core::ReliabilityOptions reliability = {},
      obs::MetricRegistry* metrics = nullptr,
      core::ChannelPolicy policy = core::ChannelPolicy::kAuto) const;

  /// One queued speech job: a frame and its predictor coefficients
  /// (sizes may vary per job up to the compile-time bounds — the
  /// transfers are SPI_dynamic).
  struct SpeechJobSpec {
    std::vector<double> frame;
    std::vector<double> coeffs;
  };

  /// Batched firing (docs/serving.md): executes jobs.size() graph
  /// iterations colocated on the calling thread through `instance`
  /// (which must have been built from this app's system().plan()), one
  /// queued job per iteration — one program traversal amortized over
  /// the whole batch, zero cross-thread handoffs. Dataflow determinacy
  /// makes every per-job result bit-identical to a one-job
  /// compute_errors_parallel/_threaded run of the same inputs (the
  /// serve tests assert it). Rewires the instance's computes and resets
  /// its invocation counters; the instance can be reused for the next
  /// batch by calling this again. `run_options` (optional) configures
  /// the batch run — watchdog, flight recorder dump directory — its
  /// iteration count is overridden by the batch size.
  [[nodiscard]] std::vector<std::vector<double>> compute_errors_batch(
      std::span<const SpeechJobSpec> jobs, core::JobInstance& instance,
      const core::RunOptions* run_options = nullptr) const;

  /// Figure 6: timed execution at a given run-time sample size and
  /// predictor order; returns per-iteration statistics. `backend`
  /// defaults to this system's SPI backend (pass an MpiBackend for the
  /// comparison ablation).
  [[nodiscard]] sim::ExecStats run_timed(std::size_t sample_size, std::size_t order,
                                         const SpeechTimingModel& timing,
                                         std::int64_t iterations,
                                         const sim::CommBackend* backend = nullptr) const;

  /// Table 1: component-wise FPGA area of the n-PE system.
  [[nodiscard]] sim::AreaReport area_report() const;

  /// The complete figure-2 co-design pipeline as one dataflow system:
  /// A (read), B (FFT), C (LU) and E (Huffman) run as software actors on
  /// the host processor while actor D is parallelized across this
  /// system's hardware PEs. Compresses `signal` frame by frame through
  /// the SPI fabric; the result is identical to SpeechCompressor
  /// (tests assert bits and bitstream sizes).
  [[nodiscard]] CompressionResult compress_pipeline(std::span<const double> signal) const;

  /// Area of a hypothetical *all-hardware* implementation of the full
  /// A..E pipeline replicated `pipelines` times. The paper reports that
  /// "the FPGA resources were not enough to fit a multiprocessor version
  /// of the whole system" — motivating the co-design in which only actor
  /// D is parallelized in hardware. One pipeline fits the Virtex-4;
  /// check_fits() throws for two or more (tests assert this).
  [[nodiscard]] static sim::AreaReport full_hardware_area(std::int32_t pipelines);

 private:
  /// Registers the four per-PE compute functions on either execution
  /// engine (FunctionalRuntime or ThreadedRuntime — same ComputeFn
  /// contract). `result` collects the error values by section.
  template <class Runtime>
  void wire_error_gen(Runtime& runtime, std::span<const double> frame,
                      std::span<const double> coeffs,
                      const std::shared_ptr<std::vector<double>>& result) const;

  std::int32_t pe_count_;
  SpeechParams params_;
  std::vector<df::ActorId> send_frame_, send_coeff_, recv_err_, pe_;
  std::vector<df::EdgeId> frame_edge_, coeff_edge_, err_edge_;
  std::unique_ptr<core::SpiSystem> system_;
};

}  // namespace spi::apps
