#include "apps/speech_app.hpp"

#include <stdexcept>

#include "apps/serialization.hpp"
#include "core/functional.hpp"
#include "dsp/fft.hpp"
#include "dsp/linalg.hpp"
#include "dsp/lpc.hpp"

namespace spi::apps {

// ---------------------------------------------------------------------------
// SpeechCompressor — sequential reference (actors A..E)
// ---------------------------------------------------------------------------

SpeechCompressor::SpeechCompressor(SpeechParams params) : params_(params) {
  if (params_.frame_size == 0 || params_.frame_size > params_.max_frame_size)
    throw std::invalid_argument("SpeechCompressor: frame_size out of range");
  if (params_.order == 0 || params_.order > params_.max_order)
    throw std::invalid_argument("SpeechCompressor: order out of range");
  if (params_.order >= params_.frame_size)
    throw std::invalid_argument("SpeechCompressor: order must be < frame_size");
}

std::vector<double> SpeechCompressor::frame_coefficients(std::span<const double> frame) const {
  const std::size_t order = params_.order;
  // Actor B: spectral autocorrelation. Zero-pad the windowed frame to at
  // least twice its length so the circular correlation equals the linear
  // one, take |X|^2, and inverse-transform.
  std::vector<double> windowed(frame.begin(), frame.end());
  dsp::hamming_window(windowed);
  const std::size_t n = dsp::next_power_of_two(2 * windowed.size());
  std::vector<dsp::Complex> padded(n, dsp::Complex(0.0, 0.0));
  for (std::size_t i = 0; i < windowed.size(); ++i) padded[i] = dsp::Complex(windowed[i], 0.0);
  dsp::fft_inplace(padded);
  for (auto& x : padded) x = dsp::Complex(std::norm(x), 0.0);
  dsp::ifft_inplace(padded);
  std::vector<double> r(order + 1);
  const double inv = 1.0 / static_cast<double>(windowed.size());
  for (std::size_t k = 0; k <= order; ++k) r[k] = padded[k].real() * inv;

  // Actor C: Toeplitz normal equations R a = r solved by LU decomposition
  // (with the same tiny diagonal load as the dsp reference path).
  dsp::Matrix big_r(order, order);
  for (std::size_t i = 0; i < order; ++i)
    for (std::size_t j = 0; j < order; ++j)
      big_r.at(i, j) = r[i >= j ? i - j : j - i];
  for (std::size_t i = 0; i < order; ++i) big_r.at(i, i) += 1e-9 * (r[0] + 1.0);
  const std::vector<double> rhs(r.begin() + 1, r.end());
  return dsp::lu_solve(std::move(big_r), rhs);
}

std::vector<double> SpeechCompressor::frame_errors(std::span<const double> frame,
                                                   std::span<const double> coeffs) const {
  return dsp::prediction_error(frame, coeffs, 0, frame.size());
}

CompressionResult SpeechCompressor::compress(std::span<const double> signal) const {
  const std::size_t frame_size = params_.frame_size;
  const std::size_t frames = signal.size() / frame_size;
  if (frames == 0) throw std::invalid_argument("SpeechCompressor::compress: signal too short");
  const std::size_t used = frames * frame_size;

  const dsp::UniformQuantizer quantizer(params_.quant_step, params_.max_symbol);
  std::vector<std::size_t> symbols;
  symbols.reserve(used);
  std::vector<std::vector<double>> coeffs_per_frame;
  coeffs_per_frame.reserve(frames);

  for (std::size_t f = 0; f < frames; ++f) {
    const std::span<const double> frame = signal.subspan(f * frame_size, frame_size);
    coeffs_per_frame.push_back(frame_coefficients(frame));
    const std::vector<double> errors = frame_errors(frame, coeffs_per_frame.back());
    for (double e : errors) symbols.push_back(quantizer.index_of(quantizer.quantize(e)));
  }

  // Actor E: two-pass canonical Huffman over the whole signal's symbols.
  std::vector<std::uint64_t> freq(quantizer.alphabet_size(), 0);
  for (std::size_t s : symbols) ++freq[s];
  const dsp::HuffmanCode code = dsp::HuffmanCode::from_frequencies(freq);
  dsp::BitWriter writer;
  code.encode(symbols, writer);

  // Decode + reconstruct (decoder recursion feeds back reconstructed
  // samples, so quantization noise shapes through the synthesis filter).
  dsp::BitReader reader(writer.bytes(), writer.bit_count());
  const std::vector<std::size_t> decoded = code.decode(reader, symbols.size());
  CompressionResult result;
  result.reconstructed.resize(used);
  for (std::size_t f = 0; f < frames; ++f) {
    std::vector<double> errors(frame_size);
    for (std::size_t i = 0; i < frame_size; ++i)
      errors[i] = quantizer.dequantize(
          quantizer.symbol_of(decoded[f * frame_size + i]));
    const std::vector<double> rec = dsp::lpc_reconstruct(errors, coeffs_per_frame[f]);
    std::copy(rec.begin(), rec.end(), result.reconstructed.begin() +
                                          static_cast<std::ptrdiff_t>(f * frame_size));
  }

  // Code-table cost: only the contiguous range of symbols actually used
  // is transmitted (range header + one byte of code length per entry).
  std::size_t min_used = freq.size(), max_used = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] == 0) continue;
    min_used = std::min(min_used, s);
    max_used = std::max(max_used, s);
  }
  const std::uint64_t table_bits =
      min_used <= max_used ? 32 + static_cast<std::uint64_t>(max_used - min_used + 1) * 8 : 32;

  result.raw_bits = static_cast<std::uint64_t>(used) * 16;  // 16-bit input samples
  result.compressed_bits = writer.bit_count() +
                           static_cast<std::uint64_t>(frames) * params_.order * 32 +  // coeffs
                           table_bits;
  result.snr_db = dsp::snr_db(signal.subspan(0, used), result.reconstructed);
  return result;
}

// ---------------------------------------------------------------------------
// ErrorGenApp — the parallel actor-D system
// ---------------------------------------------------------------------------

namespace {

std::size_t max_section_tokens(std::int32_t pe_count, const SpeechParams& p) {
  return (p.max_frame_size + static_cast<std::size_t>(pe_count) - 1) /
             static_cast<std::size_t>(pe_count) +
         p.max_order;
}

}  // namespace

ErrorGenApp::ErrorGenApp(std::int32_t pe_count, SpeechParams params,
                         core::SpiSystemOptions options)
    : pe_count_(pe_count), params_(params) {
  if (pe_count <= 0) throw std::invalid_argument("ErrorGenApp: pe_count must be positive");

  df::Graph graph("speech-error-gen-" + std::to_string(pe_count) + "pe");
  const auto sec_bound = static_cast<std::int64_t>(max_section_tokens(pe_count, params_));
  const auto coeff_bound = static_cast<std::int64_t>(params_.max_order);

  // Actor creation order matters: with the kFirstFireable PASS policy the
  // host processor issues *all* frame and coefficient sends before any
  // error receive, so the n PEs compute concurrently (the paper's figure
  // 3 schedule) instead of being served one at a time.
  for (std::int32_t i = 0; i < pe_count; ++i)
    send_frame_.push_back(graph.add_actor("SendFrame" + std::to_string(i)));
  for (std::int32_t i = 0; i < pe_count; ++i)
    send_coeff_.push_back(graph.add_actor("SendCoef" + std::to_string(i)));
  for (std::int32_t i = 0; i < pe_count; ++i)
    pe_.push_back(graph.add_actor("D" + std::to_string(i)));
  for (std::int32_t i = 0; i < pe_count; ++i)
    recv_err_.push_back(graph.add_actor("RecvErr" + std::to_string(i)));

  for (std::int32_t i = 0; i < pe_count; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::string suffix = std::to_string(i);
    // All three transfers are dynamic: neither the frame size nor the
    // model order is known before run time (paper Section 5.2).
    frame_edge_.push_back(graph.connect(send_frame_[idx], df::Rate::dynamic(sec_bound),
                                        pe_[idx], df::Rate::dynamic(sec_bound), 0,
                                        sizeof(double), "frame" + suffix));
    coeff_edge_.push_back(graph.connect(send_coeff_[idx], df::Rate::dynamic(coeff_bound),
                                        pe_[idx], df::Rate::dynamic(coeff_bound), 0,
                                        sizeof(double), "coeff" + suffix));
    err_edge_.push_back(graph.connect(pe_[idx], df::Rate::dynamic(sec_bound),
                                      recv_err_[idx], df::Rate::dynamic(sec_bound), 0,
                                      sizeof(double), "err" + suffix));
  }

  // Host I/O interfaces share processor 0; each D gets its own PE.
  sched::Assignment assignment(graph.actor_count(), pe_count + 1);
  for (std::int32_t i = 0; i < pe_count; ++i) {
    assignment.assign(send_frame_[static_cast<std::size_t>(i)], 0);
    assignment.assign(send_coeff_[static_cast<std::size_t>(i)], 0);
    assignment.assign(recv_err_[static_cast<std::size_t>(i)], 0);
    assignment.assign(pe_[static_cast<std::size_t>(i)], i + 1);
  }

  options.pass_policy = df::SchedulePolicy::kFirstFireable;  // see creation-order note above
  system_ = std::make_unique<core::SpiSystem>(graph, std::move(assignment), options);
}

ErrorGenApp::Section ErrorGenApp::section(std::int32_t pe, std::size_t sample_count,
                                          std::size_t order) const {
  if (pe < 0 || pe >= pe_count_) throw std::out_of_range("ErrorGenApp::section: bad PE");
  const auto n = static_cast<std::size_t>(pe_count_);
  const auto p = static_cast<std::size_t>(pe);
  const std::size_t base = sample_count / n;
  const std::size_t rem = sample_count % n;
  Section s;
  s.begin = p * base + std::min(p, rem);
  s.count = base + (p < rem ? 1 : 0);
  s.history = std::min(order, s.begin);
  return s;
}

template <class Runtime>
void ErrorGenApp::wire_error_gen(Runtime& runtime, std::span<const double> frame,
                                 std::span<const double> coeffs,
                                 const std::shared_ptr<std::vector<double>>& result) const {
  const std::vector<double> frame_copy(frame.begin(), frame.end());
  const std::vector<double> coeff_copy(coeffs.begin(), coeffs.end());

  for (std::int32_t i = 0; i < pe_count_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Section sec = section(i, frame.size(), coeffs.size());

    runtime.set_compute(send_frame_[idx], [this, idx, sec, frame_copy](core::FiringContext& ctx) {
      const std::span<const double> data(frame_copy);
      const auto shipped = data.subspan(sec.begin - sec.history, sec.history + sec.count);
      ctx.outputs[ctx.output_index(frame_edge_[idx])] = {pack_f64(shipped)};
    });
    runtime.set_compute(send_coeff_[idx], [this, idx, coeff_copy](core::FiringContext& ctx) {
      ctx.outputs[ctx.output_index(coeff_edge_[idx])] = {pack_f64(coeff_copy)};
    });
    runtime.set_compute(pe_[idx], [this, idx, sec](core::FiringContext& ctx) {
      const std::vector<double> samples =
          unpack_f64(ctx.inputs[ctx.input_index(frame_edge_[idx])][0]);
      const std::vector<double> coeffs_in =
          unpack_f64(ctx.inputs[ctx.input_index(coeff_edge_[idx])][0]);
      // The shipped section starts `history` samples before the section;
      // errors are produced only for the section proper.
      const std::vector<double> errors =
          dsp::prediction_error(samples, coeffs_in, sec.history, sec.count);
      ctx.outputs[ctx.output_index(err_edge_[idx])] = {pack_f64(errors)};
    });
    // All RecvErr actors live on processor 0, so `result` is written by
    // one thread; the runtime's join orders the writes before the read.
    runtime.set_compute(recv_err_[idx], [this, idx, sec, result](core::FiringContext& ctx) {
      const std::vector<double> errors =
          unpack_f64(ctx.inputs[ctx.input_index(err_edge_[idx])][0]);
      std::copy(errors.begin(), errors.end(),
                result->begin() + static_cast<std::ptrdiff_t>(sec.begin));
    });
  }
}

std::vector<double> ErrorGenApp::compute_errors_parallel(std::span<const double> frame,
                                                         std::span<const double> coeffs) const {
  if (frame.size() > params_.max_frame_size)
    throw std::length_error("ErrorGenApp: frame exceeds the declared bound");
  if (coeffs.size() > params_.max_order)
    throw std::length_error("ErrorGenApp: order exceeds the declared bound");

  core::FunctionalRuntime runtime(*system_);
  auto result = std::make_shared<std::vector<double>>(frame.size(), 0.0);
  wire_error_gen(runtime, frame, coeffs, result);
  runtime.run(1);
  return std::move(*result);
}

std::vector<double> ErrorGenApp::compute_errors_threaded(std::span<const double> frame,
                                                         std::span<const double> coeffs,
                                                         core::ReliabilityOptions reliability,
                                                         obs::MetricRegistry* metrics,
                                                         core::ChannelPolicy policy) const {
  if (frame.size() > params_.max_frame_size)
    throw std::length_error("ErrorGenApp: frame exceeds the declared bound");
  if (coeffs.size() > params_.max_order)
    throw std::length_error("ErrorGenApp: order exceeds the declared bound");

  core::ThreadedRuntime runtime(system_->plan(), policy, reliability, metrics);
  auto result = std::make_shared<std::vector<double>>(frame.size(), 0.0);
  wire_error_gen(runtime, frame, coeffs, result);
  runtime.run(1);
  return std::move(*result);
}

std::vector<double> ErrorGenApp::compute_errors_threaded(std::span<const double> frame,
                                                         std::span<const double> coeffs,
                                                         const core::RunOptions& run_options,
                                                         core::ReliabilityOptions reliability,
                                                         obs::MetricRegistry* metrics,
                                                         core::ChannelPolicy policy) const {
  if (frame.size() > params_.max_frame_size)
    throw std::length_error("ErrorGenApp: frame exceeds the declared bound");
  if (coeffs.size() > params_.max_order)
    throw std::length_error("ErrorGenApp: order exceeds the declared bound");

  core::ThreadedRuntime runtime(system_->plan(), policy, reliability, metrics);
  auto result = std::make_shared<std::vector<double>>(frame.size(), 0.0);
  wire_error_gen(runtime, frame, coeffs, result);
  runtime.run(run_options);
  return std::move(*result);
}

std::vector<std::vector<double>> ErrorGenApp::compute_errors_batch(
    std::span<const SpeechJobSpec> jobs, core::JobInstance& instance,
    const core::RunOptions* run_options) const {
  for (const SpeechJobSpec& job : jobs) {
    if (job.frame.size() > params_.max_frame_size)
      throw std::length_error("ErrorGenApp: frame exceeds the declared bound");
    if (job.coeffs.size() > params_.max_order)
      throw std::length_error("ErrorGenApp: order exceeds the declared bound");
  }
  auto results = std::make_shared<std::vector<std::vector<double>>>();
  results->reserve(jobs.size());
  for (const SpeechJobSpec& job : jobs) results->emplace_back(job.frame.size(), 0.0);

  // Every speech actor fires exactly once per graph iteration, so after
  // reset_invocations() ctx.invocation names the queued job being fired.
  // The lambdas hold the caller's span — valid because the whole batch
  // runs to completion before this function returns.
  for (std::int32_t i = 0; i < pe_count_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    instance.set_compute(send_frame_[idx], [this, i, idx, jobs](core::FiringContext& ctx) {
      const SpeechJobSpec& job = jobs[static_cast<std::size_t>(ctx.invocation)];
      const Section sec = section(i, job.frame.size(), job.coeffs.size());
      const std::span<const double> data(job.frame);
      const auto shipped = data.subspan(sec.begin - sec.history, sec.history + sec.count);
      ctx.outputs[ctx.output_index(frame_edge_[idx])] = {pack_f64(shipped)};
    });
    instance.set_compute(send_coeff_[idx], [this, idx, jobs](core::FiringContext& ctx) {
      const SpeechJobSpec& job = jobs[static_cast<std::size_t>(ctx.invocation)];
      ctx.outputs[ctx.output_index(coeff_edge_[idx])] = {pack_f64(job.coeffs)};
    });
    instance.set_compute(pe_[idx], [this, i, idx, jobs](core::FiringContext& ctx) {
      const SpeechJobSpec& job = jobs[static_cast<std::size_t>(ctx.invocation)];
      const Section sec = section(i, job.frame.size(), job.coeffs.size());
      const std::vector<double> samples =
          unpack_f64(ctx.inputs[ctx.input_index(frame_edge_[idx])][0]);
      const std::vector<double> coeffs_in =
          unpack_f64(ctx.inputs[ctx.input_index(coeff_edge_[idx])][0]);
      const std::vector<double> errors =
          dsp::prediction_error(samples, coeffs_in, sec.history, sec.count);
      ctx.outputs[ctx.output_index(err_edge_[idx])] = {pack_f64(errors)};
    });
    instance.set_compute(recv_err_[idx], [this, i, idx, jobs, results](core::FiringContext& ctx) {
      const auto job_index = static_cast<std::size_t>(ctx.invocation);
      const SpeechJobSpec& job = jobs[job_index];
      const Section sec = section(i, job.frame.size(), job.coeffs.size());
      const std::vector<double> errors =
          unpack_f64(ctx.inputs[ctx.input_index(err_edge_[idx])][0]);
      std::copy(errors.begin(), errors.end(),
                (*results)[job_index].begin() + static_cast<std::ptrdiff_t>(sec.begin));
    });
  }

  instance.reset_invocations();
  if (run_options) {
    core::RunOptions options = *run_options;
    options.iterations = static_cast<std::int64_t>(jobs.size());
    instance.run_colocated(options);
  } else {
    instance.run_colocated(static_cast<std::int64_t>(jobs.size()));
  }
  return std::move(*results);
}

sim::ExecStats ErrorGenApp::run_timed(std::size_t sample_size, std::size_t order,
                                      const SpeechTimingModel& timing, std::int64_t iterations,
                                      const sim::CommBackend* backend) const {
  if (sample_size > params_.max_frame_size || order > params_.max_order)
    throw std::length_error("ErrorGenApp::run_timed: workload exceeds declared bounds");

  // Role lookup: actor id -> (kind, pe index).
  enum class Role { kSendFrame, kSendCoeff, kPe, kRecvErr };
  std::vector<std::pair<Role, std::int32_t>> role(system_->application().actor_count());
  for (std::int32_t i = 0; i < pe_count_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    role[static_cast<std::size_t>(send_frame_[idx])] = {Role::kSendFrame, i};
    role[static_cast<std::size_t>(send_coeff_[idx])] = {Role::kSendCoeff, i};
    role[static_cast<std::size_t>(pe_[idx])] = {Role::kPe, i};
    role[static_cast<std::size_t>(recv_err_[idx])] = {Role::kRecvErr, i};
  }

  sim::WorkloadModel workload;
  workload.exec_cycles = [this, sample_size, order, timing, role](std::int32_t task,
                                                                  std::int64_t) -> std::int64_t {
    const df::ActorId actor = system_->sync_graph().task(task).actor;
    const auto [kind, pe] = role[static_cast<std::size_t>(actor)];
    const Section sec = section(pe, sample_size, order);
    switch (kind) {
      case Role::kSendFrame:
        return timing.io_setup_cycles +
               static_cast<std::int64_t>(sec.history + sec.count) * timing.sample_wire_bytes *
                   timing.io_cycles_per_byte;
      case Role::kSendCoeff:
        return timing.io_setup_cycles +
               static_cast<std::int64_t>(order) * timing.coeff_wire_bytes *
                   timing.io_cycles_per_byte;
      case Role::kPe:
        // One MAC per predictor tap per output sample on the custom unit.
        return timing.d_setup_cycles + static_cast<std::int64_t>(sec.count) *
                                           static_cast<std::int64_t>(order) *
                                           timing.d_cycles_per_mac;
      case Role::kRecvErr:
        return timing.io_setup_cycles +
               static_cast<std::int64_t>(sec.count) * timing.sample_wire_bytes *
                   timing.io_cycles_per_byte;
    }
    return 1;
  };
  workload.payload_bytes = [this, sample_size, order, timing](const sched::SyncEdge& e,
                                                              std::int64_t) -> std::int64_t {
    for (std::int32_t i = 0; i < pe_count_; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const Section sec = section(i, sample_size, order);
      if (e.dataflow_edge == frame_edge_[idx])
        return static_cast<std::int64_t>(sec.history + sec.count) * timing.sample_wire_bytes;
      if (e.dataflow_edge == coeff_edge_[idx])
        return static_cast<std::int64_t>(order) * timing.coeff_wire_bytes;
      if (e.dataflow_edge == err_edge_[idx])
        return static_cast<std::int64_t>(sec.count) * timing.sample_wire_bytes;
    }
    return 4;
  };

  sim::TimedExecutorOptions options;
  options.iterations = iterations;
  options.clock.mhz = timing.clock_mhz;
  options.link = timing.link;
  if (backend) return system_->run_timed_with(*backend, options, std::move(workload));
  return system_->run_timed(options, std::move(workload));
}

sim::AreaReport ErrorGenApp::area_report() const {
  // Component areas calibrated against the paper's Table 1 (4-PE system
  // on a Virtex-4; see EXPERIMENTS.md for the calibration note).
  sim::AreaReport report(sim::virtex4_sx35());
  for (std::int32_t i = 0; i < pe_count_; ++i) {
    const std::string suffix = std::to_string(i);
    report.add("D" + suffix + " (error-gen PE)", sim::ResourceVector{75, 108, 121, 2, 2});
    report.add("IO interface " + suffix, sim::ResourceVector{14, 18, 21, 0, 0});
    report.add("SPI frame channel " + suffix, sim::ResourceVector{4, 6, 8, 1, 0},
               /*is_spi=*/true);
    report.add("SPI coeff channel " + suffix, sim::ResourceVector{4, 6, 7, 0, 0},
               /*is_spi=*/true);
    report.add("SPI err channel " + suffix, sim::ResourceVector{4, 6, 8, 1, 0},
               /*is_spi=*/true);
  }
  return report;
}

CompressionResult ErrorGenApp::compress_pipeline(std::span<const double> signal) const {
  // The paper's co-design: actors A, B, C and E execute in host software;
  // actor D's errors come back from the hardware PEs through the SPI
  // fabric. Identical arithmetic to SpeechCompressor::compress with
  // frame_errors() swapped for the parallel implementation.
  const SpeechCompressor host(params_);
  const std::size_t frame_size = params_.frame_size;
  const std::size_t frames = signal.size() / frame_size;
  if (frames == 0)
    throw std::invalid_argument("ErrorGenApp::compress_pipeline: signal too short");
  const std::size_t used = frames * frame_size;

  const dsp::UniformQuantizer quantizer(params_.quant_step, params_.max_symbol);
  std::vector<std::size_t> symbols;
  symbols.reserve(used);
  std::vector<std::vector<double>> coeffs_per_frame;
  coeffs_per_frame.reserve(frames);
  for (std::size_t f = 0; f < frames; ++f) {
    const std::span<const double> frame = signal.subspan(f * frame_size, frame_size);
    coeffs_per_frame.push_back(host.frame_coefficients(frame));   // actors B + C
    const std::vector<double> errors =
        compute_errors_parallel(frame, coeffs_per_frame.back()); // actor D, n PEs via SPI
    for (double e : errors) symbols.push_back(quantizer.index_of(quantizer.quantize(e)));
  }

  std::vector<std::uint64_t> freq(quantizer.alphabet_size(), 0);   // actor E
  for (std::size_t s : symbols) ++freq[s];
  const dsp::HuffmanCode code = dsp::HuffmanCode::from_frequencies(freq);
  dsp::BitWriter writer;
  code.encode(symbols, writer);

  dsp::BitReader reader(writer.bytes(), writer.bit_count());
  const std::vector<std::size_t> decoded = code.decode(reader, symbols.size());
  CompressionResult result;
  result.reconstructed.resize(used);
  for (std::size_t f = 0; f < frames; ++f) {
    std::vector<double> errors(frame_size);
    for (std::size_t i = 0; i < frame_size; ++i)
      errors[i] = quantizer.dequantize(quantizer.symbol_of(decoded[f * frame_size + i]));
    const std::vector<double> rec = dsp::lpc_reconstruct(errors, coeffs_per_frame[f]);
    std::copy(rec.begin(), rec.end(),
              result.reconstructed.begin() + static_cast<std::ptrdiff_t>(f * frame_size));
  }

  std::size_t min_used = freq.size(), max_used = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] == 0) continue;
    min_used = std::min(min_used, s);
    max_used = std::max(max_used, s);
  }
  result.raw_bits = static_cast<std::uint64_t>(used) * 16;
  result.compressed_bits =
      writer.bit_count() + static_cast<std::uint64_t>(frames) * params_.order * 32 +
      (min_used <= max_used ? 32 + static_cast<std::uint64_t>(max_used - min_used + 1) * 8
                            : 32);
  result.snr_db = dsp::snr_db(signal.subspan(0, used), result.reconstructed);
  return result;
}

sim::AreaReport ErrorGenApp::full_hardware_area(std::int32_t pipelines) {
  if (pipelines <= 0) throw std::invalid_argument("full_hardware_area: pipelines must be >= 1");
  sim::AreaReport report(sim::virtex4_sx35());
  for (std::int32_t p = 0; p < pipelines; ++p) {
    const std::string s = std::to_string(p);
    // High-computational-intensity actors in hardware (paper Section 5.2):
    // a streaming FFT core (B), an LU-decomposition array (C), the error
    // generator (D) and a Huffman coder (E) plus the frame reader (A).
    report.add("A framer " + s, sim::ResourceVector{220, 300, 380, 2, 0});
    report.add("B FFT core " + s, sim::ResourceVector{3900, 5200, 6800, 24, 28});
    report.add("C LU array " + s, sim::ResourceVector{4600, 6100, 8200, 18, 46});
    report.add("D error-gen " + s, sim::ResourceVector{600, 860, 980, 8, 16});
    report.add("E Huffman coder " + s, sim::ResourceVector{1400, 1900, 2600, 12, 0});
    report.add("SPI channels " + s, sim::ResourceVector{20, 30, 38, 4, 0}, /*is_spi=*/true);
  }
  return report;
}

}  // namespace spi::apps
