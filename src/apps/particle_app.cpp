#include "apps/particle_app.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/serialization.hpp"
#include "core/functional.hpp"

namespace spi::apps {

namespace {

/// Deterministic transfer plan for phase 3: donors (targets above quota)
/// ship their excess to receivers (below quota), both walked in PE order.
/// Every PE computes the identical plan from the shared weight sums.
/// transfer[i][j] = particles PE i sends to PE j.
std::vector<std::vector<std::int64_t>> transfer_plan(const std::vector<std::int64_t>& targets,
                                                     std::int64_t quota) {
  const std::size_t n = targets.size();
  std::vector<std::vector<std::int64_t>> plan(n, std::vector<std::int64_t>(n, 0));
  std::vector<std::int64_t> surplus(n);
  for (std::size_t i = 0; i < n; ++i) surplus[i] = targets[i] - quota;
  std::size_t donor = 0, receiver = 0;
  while (true) {
    while (donor < n && surplus[donor] <= 0) ++donor;
    while (receiver < n && surplus[receiver] >= 0) ++receiver;
    if (donor >= n || receiver >= n) break;
    const std::int64_t amount = std::min(surplus[donor], -surplus[receiver]);
    plan[donor][receiver] += amount;
    surplus[donor] -= amount;
    surplus[receiver] += amount;
  }
  return plan;
}

/// Deterministic per-iteration exchange volume for the timed model:
/// mean_fraction scaled by a hash-derived factor in [0.5, 1.5).
std::int64_t modeled_exchange(std::size_t per_pe, double mean_fraction, std::int64_t iter) {
  const auto h = static_cast<std::uint64_t>(iter + 1) * 2654435761ULL;
  const double factor = 0.5 + static_cast<double>(h % 1000) / 1000.0;
  return static_cast<std::int64_t>(mean_fraction * factor * static_cast<double>(per_pe));
}

}  // namespace

ParticleFilterApp::ParticleFilterApp(std::int32_t pe_count, ParticleParams params,
                                     core::SpiSystemOptions options)
    : pe_count_(pe_count), params_(params) {
  if (pe_count <= 0) throw std::invalid_argument("ParticleFilterApp: pe_count must be positive");
  if (params_.particles == 0 || params_.particles > params_.max_particles)
    throw std::invalid_argument("ParticleFilterApp: particle count out of range");
  if (params_.particles % static_cast<std::size_t>(pe_count) != 0)
    throw std::invalid_argument(
        "ParticleFilterApp: particles must divide evenly across PEs (paper: each PE handles N/n)");

  df::Graph graph("particle-filter-" + std::to_string(pe_count) + "pe");
  const auto n = static_cast<std::size_t>(pe_count);
  const auto particle_bound = static_cast<std::int64_t>(params_.max_particles);

  obs_ = graph.add_actor("Obs");
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    est_.push_back(graph.add_actor("Est" + s));
    upd_.push_back(graph.add_actor("Upd" + s));
    lws_.push_back(graph.add_actor("Lws" + s));
    res_.push_back(graph.add_actor("Res" + s));
    xch_.push_back(graph.add_actor("Xch" + s));
  }

  lws_edge_.assign(n, std::vector<df::EdgeId>(n, df::kInvalidEdge));
  particle_edge_.assign(n, std::vector<df::EdgeId>(n, df::kInvalidEdge));
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    chain_eu_.push_back(graph.connect_simple(est_[i], upd_[i], 0, 4));
    obs_edge_.push_back(graph.connect_simple(obs_, upd_[i], 0, sizeof(double)));
    chain_ul_.push_back(graph.connect_simple(upd_[i], lws_[i], 0, 4));
    // Phase 1: partial weight statistics to every PE (SPI_static when
    // interprocessor; 3 doubles: weight sum, weighted-particle sum and
    // squared-weight sum — the latter for the global ESS).
    for (std::size_t j = 0; j < n; ++j)
      lws_edge_[i][j] =
          graph.connect_simple(lws_[i], res_[j], 0, 3 * sizeof(double));
    chain_rx_.push_back(graph.connect_simple(res_[i], xch_[i], 0, 4));
    // Phase 3: excess particles to every other PE (SPI_dynamic — the
    // count varies at run time; paper Section 5.3).
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      particle_edge_[i][j] = graph.connect(
          res_[i], df::Rate::dynamic(particle_bound), xch_[j],
          df::Rate::dynamic(particle_bound), 0, sizeof(double),
          "particles" + s + "->" + std::to_string(j));
    }
    // Next-iteration loop (the unit delay makes the schedule admissible).
    loop_xe_.push_back(graph.connect_simple(xch_[i], est_[i], 1, 4));
  }

  sched::Assignment assignment(graph.actor_count(), pe_count);
  assignment.assign(obs_, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = static_cast<sched::Proc>(i);
    assignment.assign(est_[i], p);
    assignment.assign(upd_[i], p);
    assignment.assign(lws_[i], p);
    assignment.assign(res_[i], p);
    assignment.assign(xch_[i], p);
  }

  system_ = std::make_unique<core::SpiSystem>(graph, std::move(assignment), options);
}

/// Per-PE mutable tracking state. Each instance is touched only by its
/// PE's actors — on the threaded engine, only by that PE's thread.
struct ParticleFilterApp::TrackState {
  struct PeState {
    std::vector<double> particles;
    std::vector<double> weights;
    std::vector<double> kept;                        // phase-2 survivors
    std::vector<std::vector<double>> exports;        // per destination PE
    std::int64_t exported = 0;                       // phase-3 particles shipped out
    dsp::Rng rng;
    explicit PeState(std::uint64_t seed) : rng(seed) {}
  };
  std::vector<PeState> pe;
  const dsp::CrackTrajectory* traj = nullptr;
  std::vector<double> estimates;  ///< appended only by Res0
  std::int64_t resample_steps = 0;
};

/// The job states of one batch in queue order. Every actor of the graph
/// fires exactly once per iteration (q == 1 throughout), so an actor's
/// cumulative invocation count *is* the merged-PASS iteration index:
/// iteration k executes step k % steps_per_job of job k / steps_per_job.
struct ParticleFilterApp::BatchTrackState {
  std::vector<std::shared_ptr<TrackState>> jobs;
  std::int64_t steps_per_job = 1;

  [[nodiscard]] TrackState& at(std::int64_t invocation) const {
    return *jobs[static_cast<std::size_t>(invocation / steps_per_job)];
  }
  [[nodiscard]] std::int64_t local_step(std::int64_t invocation) const {
    return invocation % steps_per_job;
  }
};

std::shared_ptr<ParticleFilterApp::TrackState> ParticleFilterApp::make_track_state(
    const ParticleParams& params, std::size_t n, const dsp::CrackTrajectory& trajectory) {
  const std::size_t quota = params.particles / n;
  auto shared = std::make_shared<ParticleFilterApp::TrackState>();
  shared->traj = &trajectory;
  for (std::size_t i = 0; i < n; ++i) {
    auto& st = shared->pe.emplace_back(params.seed + 1000 * i);
    st.particles.reserve(quota);
    for (std::size_t p = 0; p < quota; ++p)
      st.particles.push_back(std::max(
          1e-6, params.model.initial_length +
                    st.rng.gaussian(0.0, 5.0 * params.model.process_noise)));
    st.weights.assign(quota, 1.0 / static_cast<double>(params.particles));
    st.exports.assign(n, {});
  }
  return shared;
}

template <class Runtime>
void ParticleFilterApp::wire_tracking(Runtime& runtime,
                                      const std::shared_ptr<BatchTrackState>& batch) const {
  const auto n = static_cast<std::size_t>(pe_count_);
  const std::size_t quota = params_.particles / n;
  const dsp::CrackModel model = params_.model;
  const auto total = static_cast<std::int64_t>(params_.particles);

  runtime.set_compute(obs_, [this, batch](core::FiringContext& ctx) {
    const TrackState& shared = batch->at(ctx.invocation);
    const double obs =
        shared.traj->observations.at(static_cast<std::size_t>(batch->local_step(ctx.invocation)));
    for (std::size_t i = 0; i < obs_edge_.size(); ++i)
      ctx.outputs[ctx.output_index(obs_edge_[i])] = {pack_f64(std::vector<double>{obs})};
  });

  for (std::size_t i = 0; i < n; ++i) {
    runtime.set_compute(est_[i], [this, batch, i, model](core::FiringContext& ctx) {
      auto& st = batch->at(ctx.invocation).pe[i];
      for (double& p : st.particles) p = model.step(p, st.rng);
      ctx.outputs[ctx.output_index(chain_eu_[i])] = {core::Bytes(4, 0)};
    });

    runtime.set_compute(upd_[i], [this, batch, i, model](core::FiringContext& ctx) {
      auto& st = batch->at(ctx.invocation).pe[i];
      const double obs = unpack_f64(ctx.inputs[ctx.input_index(obs_edge_[i])][0]).at(0);
      // Weight accumulation (weights are globally normalized after every
      // iteration, so this composes across skipped resampling steps).
      for (std::size_t p = 0; p < st.particles.size(); ++p)
        st.weights[p] *= model.likelihood(obs, st.particles[p]);
      ctx.outputs[ctx.output_index(chain_ul_[i])] = {core::Bytes(4, 0)};
    });

    runtime.set_compute(lws_[i], [this, batch, i, n](core::FiringContext& ctx) {
      auto& st = batch->at(ctx.invocation).pe[i];
      double w_sum = 0.0, wp_sum = 0.0, w2_sum = 0.0;
      for (std::size_t p = 0; p < st.particles.size(); ++p) {
        w_sum += st.weights[p];
        wp_sum += st.weights[p] * st.particles[p];
        w2_sum += st.weights[p] * st.weights[p];
      }
      for (std::size_t j = 0; j < n; ++j)
        ctx.outputs[ctx.output_index(lws_edge_[i][j])] = {
            pack_f64(std::vector<double>{w_sum, wp_sum, w2_sum})};
    });

    runtime.set_compute(res_[i], [this, batch, i, n, quota, total](core::FiringContext& ctx) {
      TrackState& shared = batch->at(ctx.invocation);
      auto& st = shared.pe[i];
      std::vector<double> w_sums(n);
      double w_total = 0.0, wp_acc = 0.0, w2_acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const std::vector<double> sums =
            unpack_f64(ctx.inputs[ctx.input_index(lws_edge_[j][i])][0]);
        w_sums[j] = sums.at(0);
        w_total += sums.at(0);
        wp_acc += sums.at(1);
        w2_acc += sums.at(2);
      }
      if (i == 0)  // the global posterior-mean estimate (identical on all PEs)
        shared.estimates.push_back(w_total > 0.0 ? wp_acc / w_total : 0.0);

      // Adaptive trigger: global ESS from the shared sums — every PE
      // reaches the same decision with no extra communication.
      const double ess = w2_acc > 0.0 ? (w_total * w_total) / w2_acc : 0.0;
      const bool do_resample =
          w_total > 0.0 &&
          ess <= params_.resample_ess_fraction * static_cast<double>(total);
      if (i == 0 && do_resample) ++shared.resample_steps;

      st.exports.assign(n, {});
      if (do_resample) {
        std::vector<std::int64_t> targets = dsp::proportional_targets(w_sums, total);
        const auto plan = transfer_plan(targets, static_cast<std::int64_t>(quota));

        // Phase 2: local resampling to this PE's target count.
        std::vector<double> resampled;
        const auto t_i = static_cast<std::size_t>(targets[i]);
        if (t_i > 0 && w_sums[i] > 0.0) {
          resampled = dsp::systematic_resample(st.particles, st.weights, targets[i],
                                               st.rng.uniform());
        } else if (t_i > 0) {
          resampled.assign(t_i, st.particles.empty() ? 1e-6 : st.particles[0]);
        }
        const std::size_t keep = std::min(t_i, quota);
        st.kept.assign(resampled.begin(),
                       resampled.begin() + static_cast<std::ptrdiff_t>(keep));
        // Phase 3 exports: slices of the excess, walked in receiver order.
        std::size_t cursor = keep;
        for (std::size_t j = 0; j < n; ++j) {
          const auto amount = static_cast<std::size_t>(plan[i][j]);
          if (amount == 0) continue;
          st.exports[j].assign(
              resampled.begin() + static_cast<std::ptrdiff_t>(cursor),
              resampled.begin() + static_cast<std::ptrdiff_t>(cursor + amount));
          cursor += amount;
        }
      } else {
        // Skip: keep the particle set, normalize weights globally (the
        // degenerate w_total <= 0 case resets to uniform instead).
        st.kept = st.particles;
        if (w_total > 0.0) {
          for (double& w : st.weights) w /= w_total;
        } else {
          st.weights.assign(quota, 1.0 / static_cast<double>(total));
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        st.exported += static_cast<std::int64_t>(st.exports[j].size());
        ctx.outputs[ctx.output_index(particle_edge_[i][j])] = {pack_f64(st.exports[j])};
      }
      ctx.outputs[ctx.output_index(chain_rx_[i])] = {
          core::Bytes(4, do_resample ? 1 : 0)};  // flag for Xch
    });

    runtime.set_compute(xch_[i], [this, batch, i, n, quota, total](core::FiringContext& ctx) {
      auto& st = batch->at(ctx.invocation).pe[i];
      const bool resampled = ctx.inputs[ctx.input_index(chain_rx_[i])][0][0] != 0;
      std::vector<double> merged = std::move(st.kept);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const std::vector<double> imported =
            unpack_f64(ctx.inputs[ctx.input_index(particle_edge_[j][i])][0]);
        merged.insert(merged.end(), imported.begin(), imported.end());
      }
      if (merged.size() != quota)
        throw std::logic_error("ParticleFilterApp: intra-resampling did not rebalance to N/n");
      st.particles = std::move(merged);
      if (resampled) st.weights.assign(quota, 1.0 / static_cast<double>(total));
      ctx.outputs[ctx.output_index(loop_xe_[i])] = {core::Bytes(4, 0)};
    });
  }
}

namespace {
/// A single-trajectory run is a batch of one job.
template <class Batch, class State>
std::shared_ptr<Batch> one_job_batch(std::shared_ptr<State> state, std::size_t steps) {
  auto batch = std::make_shared<Batch>();
  batch->steps_per_job = std::max<std::int64_t>(1, static_cast<std::int64_t>(steps));
  batch->jobs.push_back(std::move(state));
  return batch;
}
}  // namespace

TrackResult ParticleFilterApp::track(const dsp::CrackTrajectory& trajectory) const {
  auto shared =
      make_track_state(params_, static_cast<std::size_t>(pe_count_), trajectory);

  core::FunctionalRuntime runtime(*system_);
  wire_tracking(runtime, one_job_batch<BatchTrackState>(shared, trajectory.observations.size()));
  runtime.run(static_cast<std::int64_t>(trajectory.observations.size()));

  TrackResult result;
  result.estimates = std::move(shared->estimates);
  result.resample_steps = shared->resample_steps;
  result.rmse_vs_truth = dsp::rmse(trajectory.truth, result.estimates);
  for (const auto& [edge, channel] : runtime.channels()) {
    const bool dynamic = channel.config().mode == core::SpiMode::kDynamic;
    if (dynamic) {
      result.dynamic_messages += channel.stats().messages;
      result.particles_exchanged +=
          channel.stats().payload_bytes / static_cast<std::int64_t>(sizeof(double));
    } else {
      result.static_messages += channel.stats().messages;
    }
  }
  return result;
}

TrackResult ParticleFilterApp::track_threaded(const dsp::CrackTrajectory& trajectory,
                                              core::ChannelPolicy policy) const {
  return track_threaded(trajectory, core::RunOptions{}, policy);
}

TrackResult ParticleFilterApp::track_threaded(const dsp::CrackTrajectory& trajectory,
                                              const core::RunOptions& run_options,
                                              core::ChannelPolicy policy) const {
  auto shared =
      make_track_state(params_, static_cast<std::size_t>(pe_count_), trajectory);

  core::ThreadedRuntime runtime(system_->plan(), policy);
  wire_tracking(runtime, one_job_batch<BatchTrackState>(shared, trajectory.observations.size()));
  core::RunOptions options = run_options;
  options.iterations = static_cast<std::int64_t>(trajectory.observations.size());
  runtime.run(options);

  TrackResult result;
  result.estimates = std::move(shared->estimates);
  result.resample_steps = shared->resample_steps;
  result.rmse_vs_truth = dsp::rmse(trajectory.truth, result.estimates);
  for (const auto& pe : shared->pe) result.particles_exchanged += pe.exported;
  return result;
}

std::vector<TrackResult> ParticleFilterApp::track_batch(std::span<const ParticleJobSpec> jobs,
                                                        core::JobInstance& instance,
                                                        const core::RunOptions* run_options) const {
  if (jobs.empty()) return {};
  const auto n = static_cast<std::size_t>(pe_count_);
  const auto steps = static_cast<std::int64_t>(jobs.front().trajectory.observations.size());
  if (steps <= 0)
    throw std::invalid_argument("ParticleFilterApp::track_batch: empty trajectory");

  auto batch = std::make_shared<BatchTrackState>();
  batch->steps_per_job = steps;
  batch->jobs.reserve(jobs.size());
  for (const ParticleJobSpec& job : jobs) {
    if (static_cast<std::int64_t>(job.trajectory.observations.size()) != steps)
      throw std::invalid_argument(
          "ParticleFilterApp::track_batch: jobs must share one trajectory length");
    ParticleParams params = params_;
    params.seed = job.seed;
    batch->jobs.push_back(make_track_state(params, n, job.trajectory));
  }

  wire_tracking(instance, batch);
  instance.reset_invocations();
  if (run_options) {
    core::RunOptions options = *run_options;
    options.iterations = steps * static_cast<std::int64_t>(jobs.size());
    instance.run_colocated(options);
  } else {
    instance.run_colocated(steps * static_cast<std::int64_t>(jobs.size()));
  }

  std::vector<TrackResult> results;
  results.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    TrackState& shared = *batch->jobs[k];
    TrackResult result;
    result.estimates = std::move(shared.estimates);
    result.resample_steps = shared.resample_steps;
    result.rmse_vs_truth = dsp::rmse(jobs[k].trajectory.truth, result.estimates);
    for (const auto& pe : shared.pe) result.particles_exchanged += pe.exported;
    results.push_back(std::move(result));
  }
  return results;
}

sim::ExecStats ParticleFilterApp::run_timed(std::size_t particles,
                                            const ParticleTimingModel& timing,
                                            std::int64_t iterations,
                                            const sim::CommBackend* backend) const {
  if (particles > params_.max_particles)
    throw std::length_error("ParticleFilterApp::run_timed: particles exceed declared bound");
  const auto n = static_cast<std::size_t>(pe_count_);
  const std::size_t per_pe = particles / n;

  enum class Role { kObs, kEst, kUpd, kLws, kRes, kXch };
  std::vector<Role> role(system_->application().actor_count(), Role::kObs);
  for (std::size_t i = 0; i < n; ++i) {
    role[static_cast<std::size_t>(est_[i])] = Role::kEst;
    role[static_cast<std::size_t>(upd_[i])] = Role::kUpd;
    role[static_cast<std::size_t>(lws_[i])] = Role::kLws;
    role[static_cast<std::size_t>(res_[i])] = Role::kRes;
    role[static_cast<std::size_t>(xch_[i])] = Role::kXch;
  }

  sim::WorkloadModel workload;
  workload.exec_cycles = [this, per_pe, timing, role](std::int32_t task,
                                                      std::int64_t iter) -> std::int64_t {
    const df::ActorId actor = system_->sync_graph().task(task).actor;
    const auto count = static_cast<std::int64_t>(per_pe);
    switch (role[static_cast<std::size_t>(actor)]) {
      case Role::kObs: return timing.phase_setup_cycles;
      case Role::kEst: return timing.phase_setup_cycles + count * timing.est_cycles_per_particle;
      case Role::kUpd: return timing.phase_setup_cycles + count * timing.upd_cycles_per_particle;
      case Role::kLws: return timing.phase_setup_cycles + count * timing.sum_cycles_per_particle;
      case Role::kRes: return timing.phase_setup_cycles + count * timing.res_cycles_per_particle;
      case Role::kXch:
        return timing.phase_setup_cycles +
               modeled_exchange(per_pe, timing.mean_exchange_fraction, iter) *
                   timing.xch_cycles_per_particle;
    }
    return 1;
  };
  workload.payload_bytes = [this, per_pe, timing, n](const sched::SyncEdge& e,
                                                     std::int64_t iter) -> std::int64_t {
    for (std::size_t i = 0; i < n; ++i) {
      if (e.dataflow_edge == obs_edge_[i]) return timing.obs_wire_bytes;
      for (std::size_t j = 0; j < n; ++j) {
        if (e.dataflow_edge == lws_edge_[i][j]) return timing.weight_wire_bytes;
        if (j != i && e.dataflow_edge == particle_edge_[i][j])
          return modeled_exchange(per_pe, timing.mean_exchange_fraction, iter) *
                 timing.particle_wire_bytes;
      }
    }
    return 4;
  };

  sim::TimedExecutorOptions options;
  options.iterations = iterations;
  options.clock.mhz = timing.clock_mhz;
  options.link = timing.link;
  if (backend) return system_->run_timed_with(*backend, options, std::move(workload));
  return system_->run_timed(options, std::move(workload));
}

sim::AreaReport ParticleFilterApp::area_report() const {
  // Component areas calibrated against the paper's Table 2 (2-PE system;
  // see EXPERIMENTS.md for the calibration note). The particle-filter PE
  // is computationally heavy — the paper could only fit 2 PEs.
  sim::AreaReport report(sim::virtex4_sx35());
  report.add("Observation host", sim::ResourceVector{60, 60, 80, 1, 0});
  const auto n = static_cast<std::size_t>(pe_count_);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = std::to_string(i);
    report.add("PF PE " + s, sim::ResourceVector{3400, 3050, 9990, 15, 54});
    if (i > 0)  // obs channel to every non-host PE
      report.add("SPI obs channel " + s, sim::ResourceVector{2, 1, 8, 0, 0}, /*is_spi=*/true);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      report.add("SPI weight channel " + s + "->" + std::to_string(j),
                 sim::ResourceVector{2, 1, 10, 0, 0}, /*is_spi=*/true);
      report.add("SPI particle channel " + s + "->" + std::to_string(j),
                 sim::ResourceVector{4, 2, 14, 2, 0}, /*is_spi=*/true);
    }
  }
  return report;
}

}  // namespace spi::apps
