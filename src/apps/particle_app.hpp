/// \file particle_app.hpp
/// Application 2 of the paper: particle-filter-based tracking of crack
/// failure length in turbine-engine blades (Section 5.3).
///
/// Per figure 4, E estimates the current state, U updates it against the
/// external observation, and S selects particles for the next iteration.
/// Particles are distributed equally across PEs; every step parallelizes
/// except resampling, which is split into three phases (figure 5):
///   1. each PE computes a partial (local) weight statistic and
///      communicates it to the other PEs — known length -> SPI_static;
///   2. local resampling against the globally apportioned target counts;
///   3. intra-resampling: excess particles move between PEs so all PEs
///      re-enter the next iteration with N/n particles — run-time-varying
///      length -> SPI_dynamic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/spi_system.hpp"
#include "core/threaded_runtime.hpp"
#include "dsp/particle_filter.hpp"
#include "sim/fpga_area.hpp"

namespace spi::apps {

struct ParticleParams {
  std::size_t particles = 100;      ///< N (the paper sweeps 50..300)
  std::size_t max_particles = 512;  ///< compile-time bound (VTS requirement)
  dsp::CrackModel model;
  std::uint64_t seed = 42;
  /// Adaptive resampling (extension): the 3-phase resampling runs only
  /// when the global effective sample size falls below this fraction of
  /// N. 1.0 = resample every iteration (the paper's scheme). Skipped
  /// iterations ship *empty* packed tokens on the SPI_dynamic channels —
  /// VTS handles zero-size payloads natively.
  double resample_ess_fraction = 1.0;
};

/// Cycle-cost calibration of the FPGA particle-filter PEs.
struct ParticleTimingModel {
  double clock_mhz = 100.0;
  std::int64_t est_cycles_per_particle = 12;  ///< Paris-law propagation pipeline
  std::int64_t upd_cycles_per_particle = 18;  ///< Gaussian likelihood (exp unit)
  std::int64_t sum_cycles_per_particle = 2;   ///< local weight accumulation
  std::int64_t res_cycles_per_particle = 6;   ///< systematic resampling walk
  std::int64_t xch_cycles_per_particle = 3;   ///< excess particle copy in/out
  std::int64_t phase_setup_cycles = 16;
  std::int64_t particle_wire_bytes = 4;       ///< 32-bit fixed-point particle values
  std::int64_t weight_wire_bytes = 8;         ///< two 32-bit partial sums
  std::int64_t obs_wire_bytes = 4;
  /// Mean fraction of a PE's particles exchanged during intra-resampling
  /// (drives the dynamic message sizes of the timed model; the functional
  /// run measures the real value).
  double mean_exchange_fraction = 0.15;
  sim::LinkParams link;  ///< interconnect model (topology, width)
};

/// Result of functionally tracking a crack trajectory.
struct TrackResult {
  std::vector<double> estimates;       ///< per-step posterior-mean crack length
  double rmse_vs_truth = 0.0;
  std::int64_t particles_exchanged = 0;  ///< raw particles moved in phase 3
  std::int64_t static_messages = 0;      ///< SPI_static messages (weight sums, obs)
  std::int64_t dynamic_messages = 0;     ///< SPI_dynamic messages (particles)
  std::int64_t resample_steps = 0;       ///< iterations that ran phases 2+3
};

/// The distributed particle-filter system (figures 5 and 7, table 2).
class ParticleFilterApp {
 public:
  ParticleFilterApp(std::int32_t pe_count, ParticleParams params,
                    core::SpiSystemOptions options = {});

  [[nodiscard]] std::int32_t pe_count() const { return pe_count_; }
  [[nodiscard]] const ParticleParams& params() const { return params_; }
  [[nodiscard]] const core::SpiSystem& system() const { return *system_; }

  /// Functional distributed tracking of a trajectory through the SPI
  /// fabric (real packed particles, real headers, real resampling).
  [[nodiscard]] TrackResult track(const dsp::CrackTrajectory& trajectory) const;

  /// Same tracking on real host threads — one per PE, with the phases
  /// communicating through runtime channels. Dataflow determinacy makes
  /// the estimates bit-identical to track() whatever the thread schedule
  /// (the parity tests assert it). `policy` selects the channel
  /// implementation: lock-free SPSC (default) or the blocking fallback.
  /// static_messages/dynamic_messages are zero here — the threaded
  /// engine aggregates per-channel counters in its MetricRegistry
  /// instead of per wire format.
  [[nodiscard]] TrackResult track_threaded(
      const dsp::CrackTrajectory& trajectory,
      core::ChannelPolicy policy = core::ChannelPolicy::kAuto) const;

  /// track_threaded with full control of the run — watchdog, flight
  /// recorder, telemetry and the cross-iteration pipelining window
  /// (`max_inflight_iterations`). The iteration count is overridden by
  /// the trajectory length. Estimates stay bit-identical to track()
  /// at every in-flight cap (the pipelined-runtime tests assert it).
  [[nodiscard]] TrackResult track_threaded(
      const dsp::CrackTrajectory& trajectory, const core::RunOptions& run_options,
      core::ChannelPolicy policy = core::ChannelPolicy::kAuto) const;

  /// One queued tracking job: a trajectory to filter and the RNG seed of
  /// its particle population (the default matches ParticleParams::seed,
  /// so a default-seeded job reproduces track() bit for bit).
  struct ParticleJobSpec {
    dsp::CrackTrajectory trajectory;
    std::uint64_t seed = 42;
  };

  /// Batched firing (docs/serving.md): tracks jobs.size() independent
  /// trajectories colocated on the calling thread through `instance`
  /// (built from this app's system().plan()). Every actor of this graph
  /// fires once per iteration, so iteration k of the merged PASS is step
  /// k % T of job k / T — one program traversal amortized over the whole
  /// batch. Jobs must share one trajectory length T. Dataflow
  /// determinacy makes each result bit-identical to a one-job
  /// track()/track_threaded() run with that job's seed (the serve tests
  /// assert it). Rewires the instance's computes and resets its
  /// invocation counters; call again to reuse the instance.
  /// `run_options` (optional) configures the batch run — watchdog,
  /// flight recorder dump directory — its iteration count is overridden
  /// by the batch size.
  [[nodiscard]] std::vector<TrackResult> track_batch(
      std::span<const ParticleJobSpec> jobs, core::JobInstance& instance,
      const core::RunOptions* run_options = nullptr) const;

  /// Figure 7: timed execution at a given run-time particle count.
  [[nodiscard]] sim::ExecStats run_timed(std::size_t particles,
                                         const ParticleTimingModel& timing,
                                         std::int64_t iterations,
                                         const sim::CommBackend* backend = nullptr) const;

  /// Table 2: component-wise FPGA area of the n-PE system.
  [[nodiscard]] sim::AreaReport area_report() const;

 private:
  struct TrackState;       // per-job mutable state shared by the compute fns
  struct BatchTrackState;  // ordered job states + the invocation->job mapping
  [[nodiscard]] static std::shared_ptr<TrackState> make_track_state(
      const ParticleParams& params, std::size_t n, const dsp::CrackTrajectory& trajectory);
  /// Registers all compute functions on either execution engine
  /// (FunctionalRuntime, ThreadedRuntime or JobInstance — same ComputeFn
  /// contract). Each firing resolves its job's TrackState from
  /// ctx.invocation (a single-trajectory run is a batch of one). Each
  /// PE's state is touched only by that PE's actors (all mapped to the
  /// same processor), and the shared estimate is appended only by Res0 —
  /// so the wiring is thread-safe on the threaded engine without extra
  /// locks.
  template <class Runtime>
  void wire_tracking(Runtime& runtime, const std::shared_ptr<BatchTrackState>& batch) const;

  std::int32_t pe_count_;
  ParticleParams params_;
  // Per-PE actors (phase pipeline) and the shared observation source.
  df::ActorId obs_ = df::kInvalidActor;
  std::vector<df::ActorId> est_, upd_, lws_, res_, xch_;
  std::vector<df::EdgeId> obs_edge_;                   ///< obs -> upd_i
  std::vector<std::vector<df::EdgeId>> lws_edge_;      ///< lws_i -> res_j (all j)
  std::vector<std::vector<df::EdgeId>> particle_edge_; ///< res_i -> xch_j (j != i; [i][j])
  std::vector<df::EdgeId> chain_eu_, chain_ul_, chain_rx_, loop_xe_;
  std::unique_ptr<core::SpiSystem> system_;
};

}  // namespace spi::apps
