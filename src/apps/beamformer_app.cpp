#include "apps/beamformer_app.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "apps/serialization.hpp"
#include "core/functional.hpp"

namespace spi::apps {

namespace {

/// The carrier is sampled at 4 samples per wavelength; steering delays
/// are expressed on the same scale.
constexpr double kSamplesPerWavelength = 4.0;
constexpr double kCarrier = 1.0 / kSamplesPerWavelength;  // normalized frequency

}  // namespace

// ---------------------------------------------------------------------------
// BeamformerReference
// ---------------------------------------------------------------------------

BeamformerReference::BeamformerReference(BeamformerParams params) : params_(params) {
  if (params_.sensors == 0) throw std::invalid_argument("Beamformer: need >= 1 sensor");
  if (params_.block < 8) throw std::invalid_argument("Beamformer: block must be >= 8");
  if (params_.spacing_wavelengths <= 0.0)
    throw std::invalid_argument("Beamformer: spacing must be positive");
}

double BeamformerReference::delay_samples(std::size_t sensor, double angle_rad) const {
  const double per_element =
      params_.spacing_wavelengths * kSamplesPerWavelength * std::sin(angle_rad);
  const double raw = static_cast<double>(sensor) * per_element;
  const double last = static_cast<double>(params_.sensors - 1) * per_element;
  return raw - std::min(0.0, last);  // shifted so every delay is >= 0
}

std::vector<std::vector<double>> BeamformerReference::sensor_block(
    double source_rad, std::int64_t block_index) const {
  std::vector<std::vector<double>> block(params_.sensors,
                                         std::vector<double>(params_.block, 0.0));
  for (std::size_t m = 0; m < params_.sensors; ++m) {
    // Per-(sensor, block) deterministic noise stream, independent of how
    // many PEs regenerate it.
    dsp::Rng rng(params_.seed ^ (0x9E3779B9ULL * (m + 1)) ^
                 (0xC2B2AE35ULL * static_cast<std::uint64_t>(block_index + 1)));
    const double tau = delay_samples(m, source_rad);
    for (std::size_t n = 0; n < params_.block; ++n) {
      const double t =
          static_cast<double>(block_index) * static_cast<double>(params_.block) +
          static_cast<double>(n) - tau;
      block[m][n] = std::sin(2.0 * std::numbers::pi * kCarrier * t) +
                    rng.gaussian(0.0, params_.noise_stddev);
    }
  }
  return block;
}

std::vector<double> BeamformerReference::steer_channel(std::span<const double> x,
                                                       double advance_samples) {
  std::vector<double> y(x.size(), 0.0);
  const auto last = static_cast<double>(x.size() - 1);
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double pos = std::min(static_cast<double>(n) + advance_samples, last);
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    const double a = x[i];
    const double b = i + 1 < x.size() ? x[i + 1] : x[i];
    y[n] = a + frac * (b - a);  // linear interpolation
  }
  return y;
}

std::vector<double> BeamformerReference::beamform(
    const std::vector<std::vector<double>>& sensors, double steer_rad) const {
  if (sensors.size() != params_.sensors)
    throw std::invalid_argument("beamform: sensor count mismatch");
  std::vector<double> y(params_.block, 0.0);
  const double weight = 1.0 / static_cast<double>(params_.sensors);
  for (std::size_t m = 0; m < params_.sensors; ++m) {
    const std::vector<double> aligned =
        steer_channel(sensors[m], delay_samples(m, steer_rad));
    for (std::size_t n = 0; n < params_.block; ++n) y[n] += weight * aligned[n];
  }
  return y;
}

double BeamformerReference::steered_power(double steer_rad, double source_rad,
                                          std::int64_t blocks) const {
  double acc = 0.0;
  std::int64_t samples = 0;
  for (std::int64_t k = 0; k < blocks; ++k) {
    const std::vector<double> y = beamform(sensor_block(source_rad, k), steer_rad);
    for (double v : y) acc += v * v;
    samples += static_cast<std::int64_t>(y.size());
  }
  return acc / static_cast<double>(samples);
}

// ---------------------------------------------------------------------------
// BeamformerApp
// ---------------------------------------------------------------------------

BeamformerApp::BeamformerApp(std::int32_t pe_count, BeamformerParams params,
                             core::SpiSystemOptions options)
    : pe_count_(pe_count), params_(params) {
  if (pe_count <= 0) throw std::invalid_argument("BeamformerApp: pe_count must be positive");
  if (params_.sensors < static_cast<std::size_t>(pe_count))
    throw std::invalid_argument("BeamformerApp: need at least one sensor per PE");

  df::Graph graph("beamformer-" + std::to_string(pe_count) + "pe-" +
                  std::to_string(params_.sensors) + "sensors");
  const auto n = static_cast<std::size_t>(pe_count);
  const auto block_bytes = static_cast<std::int64_t>(sizeof(double));

  steer_ = graph.add_actor("Steer", 8);
  dist_.reserve(n);
  psum_.reserve(n);
  sensor_actor_.resize(n);
  feed_edge_.resize(n);
  sensor_edge_.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    const std::string s = std::to_string(p);
    dist_.push_back(graph.add_actor("Dist" + s, 4));
    for (std::size_t m = p; m < params_.sensors; m += n)
      sensor_actor_[p].push_back(graph.add_actor("Sensor" + std::to_string(m), 32));
    psum_.push_back(graph.add_actor("Psum" + s, 16));
  }
  sum_ = graph.add_actor("Sum", 16);

  for (std::size_t p = 0; p < n; ++p) {
    steer_edge_.push_back(graph.connect_simple(steer_, dist_[p], 0, sizeof(double)));
    for (df::ActorId sensor : sensor_actor_[p]) {
      feed_edge_[p].push_back(graph.connect_simple(dist_[p], sensor, 0, sizeof(double)));
      // One block token per firing (the block is one packed static token).
      sensor_edge_[p].push_back(graph.connect(
          sensor, df::Rate::fixed(static_cast<std::int64_t>(params_.block)), psum_[p],
          df::Rate::fixed(static_cast<std::int64_t>(params_.block)), 0, block_bytes));
    }
    partial_edge_.push_back(graph.connect(
        psum_[p], df::Rate::fixed(static_cast<std::int64_t>(params_.block)), sum_,
        df::Rate::fixed(static_cast<std::int64_t>(params_.block)), 0, block_bytes));
  }

  sched::Assignment assignment(graph.actor_count(), pe_count);
  assignment.assign(steer_, 0);
  assignment.assign(sum_, 0);
  for (std::size_t p = 0; p < n; ++p) {
    assignment.assign(dist_[p], static_cast<sched::Proc>(p));
    assignment.assign(psum_[p], static_cast<sched::Proc>(p));
    for (df::ActorId sensor : sensor_actor_[p])
      assignment.assign(sensor, static_cast<sched::Proc>(p));
  }

  options.pass_policy = df::SchedulePolicy::kFirstFireable;
  system_ = std::make_unique<core::SpiSystem>(graph, std::move(assignment), options);
}

std::vector<std::size_t> BeamformerApp::sensors_on(std::int32_t pe) const {
  if (pe < 0 || pe >= pe_count_) throw std::out_of_range("BeamformerApp::sensors_on: bad PE");
  std::vector<std::size_t> result;
  for (std::size_t m = static_cast<std::size_t>(pe); m < params_.sensors;
       m += static_cast<std::size_t>(pe_count_))
    result.push_back(m);
  return result;
}

std::vector<double> BeamformerApp::run_functional(double steer_rad, double source_rad,
                                                  std::int64_t blocks) const {
  const BeamformerReference reference(params_);
  core::FunctionalRuntime runtime(*system_);
  auto output = std::make_shared<std::vector<double>>();
  const auto n = static_cast<std::size_t>(pe_count_);
  const double weight = 1.0 / static_cast<double>(params_.sensors);

  runtime.set_compute(steer_, [this, steer_rad](core::FiringContext& ctx) {
    for (df::EdgeId e : steer_edge_)
      ctx.outputs[ctx.output_index(e)] = {pack_f64(std::vector<double>{steer_rad})};
  });
  for (std::size_t p = 0; p < n; ++p) {
    runtime.set_compute(dist_[p], [this, p](core::FiringContext& ctx) {
      const core::Bytes& token = ctx.inputs[ctx.input_index(steer_edge_[p])][0];
      for (df::EdgeId e : feed_edge_[p]) ctx.outputs[ctx.output_index(e)] = {token};
    });
    const std::vector<std::size_t> locals = sensors_on(static_cast<std::int32_t>(p));
    for (std::size_t li = 0; li < locals.size(); ++li) {
      const std::size_t m = locals[li];
      runtime.set_compute(
          sensor_actor_[p][li],
          [this, p, li, m, source_rad, weight, reference](core::FiringContext& ctx) {
            const double steer =
                unpack_f64(ctx.inputs[ctx.input_index(feed_edge_[p][li])][0]).at(0);
            // Regenerate this sensor's channel of the shared scene.
            const auto scene = reference.sensor_block(source_rad, ctx.invocation);
            std::vector<double> aligned = BeamformerReference::steer_channel(
                scene[m], reference.delay_samples(m, steer));
            for (double& v : aligned) v *= weight;
            std::vector<core::Bytes> tokens;
            tokens.reserve(aligned.size());
            for (double v : aligned) tokens.push_back(pack_f64(std::vector<double>{v}));
            ctx.outputs[ctx.output_index(sensor_edge_[p][li])] = std::move(tokens);
          });
    }
    runtime.set_compute(psum_[p], [this, p](core::FiringContext& ctx) {
      std::vector<double> partial(params_.block, 0.0);
      for (df::EdgeId e : sensor_edge_[p]) {
        const auto& tokens = ctx.inputs[ctx.input_index(e)];
        for (std::size_t i = 0; i < tokens.size(); ++i)
          partial[i] += unpack_f64(tokens[i]).at(0);
      }
      std::vector<core::Bytes> tokens;
      tokens.reserve(partial.size());
      for (double v : partial) tokens.push_back(pack_f64(std::vector<double>{v}));
      ctx.outputs[ctx.output_index(partial_edge_[p])] = std::move(tokens);
    });
  }
  runtime.set_compute(sum_, [this, output, n](core::FiringContext& ctx) {
    std::vector<double> block(params_.block, 0.0);
    for (df::EdgeId e : partial_edge_) {
      const auto& tokens = ctx.inputs[ctx.input_index(e)];
      for (std::size_t i = 0; i < tokens.size(); ++i) block[i] += unpack_f64(tokens[i]).at(0);
    }
    output->insert(output->end(), block.begin(), block.end());
  });

  runtime.run(blocks);
  return *output;
}

sim::ExecStats BeamformerApp::run_timed(const BeamformerTimingModel& timing,
                                        std::int64_t iterations,
                                        const sim::CommBackend* backend) const {
  const auto block = static_cast<std::int64_t>(params_.block);
  sim::WorkloadModel workload;
  workload.exec_cycles = [this, block, timing](std::int32_t task, std::int64_t) -> std::int64_t {
    const df::ActorId actor = system_->sync_graph().task(task).actor;
    const std::string& name = system_->application().actor(actor).name;
    if (name.starts_with("Sensor"))
      return timing.setup_cycles + block * timing.sensor_cycles_per_sample;
    if (name.starts_with("Psum")) {
      // Per-PE sensor counts differ by at most one; charge the maximum.
      const std::int64_t max_locals =
          (static_cast<std::int64_t>(params_.sensors) + pe_count_ - 1) / pe_count_;
      return timing.setup_cycles + max_locals * block * timing.sum_cycles_per_sample;
    }
    if (name.starts_with("Sum"))
      return timing.setup_cycles + pe_count_ * block * timing.sum_cycles_per_sample;
    return timing.setup_cycles;  // Steer / Dist
  };
  workload.payload_bytes = [this, block, timing](const sched::SyncEdge& e,
                                                 std::int64_t) -> std::int64_t {
    for (df::EdgeId steer : steer_edge_)
      if (e.dataflow_edge == steer) return 8;
    return block * timing.sample_wire_bytes;  // partial blocks
  };

  sim::TimedExecutorOptions options;
  options.iterations = iterations;
  options.clock.mhz = timing.clock_mhz;
  options.link = timing.link;
  if (backend) return system_->run_timed_with(*backend, options, std::move(workload));
  return system_->run_timed(options, std::move(workload));
}

sim::AreaReport BeamformerApp::area_report() const {
  sim::AreaReport report(sim::virtex4_sx35());
  report.add("Steering host", sim::ResourceVector{30, 40, 50, 0, 0});
  report.add("Final combiner", sim::ResourceVector{80, 100, 120, 0, 1});
  for (std::int32_t p = 0; p < pe_count_; ++p) {
    const std::string s = std::to_string(p);
    report.add("Distributor " + s, sim::ResourceVector{12, 16, 20, 0, 0});
    report.add("Partial sum " + s, sim::ResourceVector{60, 80, 100, 0, 1});
    for (std::size_t m : sensors_on(p))
      report.add("Sensor channel " + std::to_string(m),
                 sim::ResourceVector{180, 240, 300, 1, 2});
    if (p > 0)
      report.add("SPI steer channel " + s, sim::ResourceVector{2, 1, 8, 0, 0}, /*is_spi=*/true);
    report.add("SPI partial channel " + s, sim::ResourceVector{4, 2, 14, 1, 0},
               /*is_spi=*/true);
  }
  return report;
}

}  // namespace spi::apps
