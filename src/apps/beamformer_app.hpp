/// \file beamformer_app.hpp
/// A delay-and-sum beamformer on SPI — the third domain application
/// (the signal-processing literature the paper builds on uses hard
/// real-time beamformers as the canonical massively parallel workload).
///
/// An M-sensor uniform linear array listens to a plane wave from angle
/// theta. Per block of B samples, each sensor channel applies its
/// steering delay (integer + linear-interpolated fractional part) and
/// apodization weight; channels are distributed across n PEs, each PE
/// reduces its local channels to one partial block, and a combiner on
/// the host PE sums the n partials — a hierarchical reduction whose
/// traffic is n blocks per iteration instead of M.
///
/// Channels: steering updates host->PE (SPI_static, tiny), partial
/// blocks PE->host (SPI_static, B samples) — an all-static system that
/// complements the paper's dynamic applications.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/spi_system.hpp"
#include "dsp/rng.hpp"
#include "sim/fpga_area.hpp"

namespace spi::apps {

struct BeamformerParams {
  std::size_t sensors = 8;        ///< M: array elements
  std::size_t block = 64;         ///< B: samples per block (per iteration)
  double spacing_wavelengths = 0.5;  ///< element pitch / wavelength (d/lambda)
  double noise_stddev = 1.0;      ///< per-sensor white noise
  std::uint64_t seed = 17;
};

/// Sequential reference: steer the array to `steer_rad` and process one
/// block of the scene (a unit-amplitude plane wave from `source_rad` in
/// per-sensor noise). Returns the beamformed block.
class BeamformerReference {
 public:
  explicit BeamformerReference(BeamformerParams params);

  [[nodiscard]] const BeamformerParams& params() const { return params_; }

  /// Per-sensor steering delay in samples for a far-field source at
  /// `angle_rad` (4 samples per wavelength of travel; always >= 0).
  [[nodiscard]] double delay_samples(std::size_t sensor, double angle_rad) const;

  /// Synthesizes one block of sensor data for a source at `source_rad`
  /// (deterministic given the params seed and block index).
  [[nodiscard]] std::vector<std::vector<double>> sensor_block(double source_rad,
                                                              std::int64_t block_index) const;

  /// One channel advanced by `advance_samples` (linear interpolation,
  /// clamped at the block edges) — the per-sensor steering primitive the
  /// distributed implementation shares with the reference.
  [[nodiscard]] static std::vector<double> steer_channel(std::span<const double> x,
                                                         double advance_samples);

  /// Delay-and-sum over one multi-sensor block steered to `steer_rad`.
  [[nodiscard]] std::vector<double> beamform(
      const std::vector<std::vector<double>>& sensors, double steer_rad) const;

  /// Mean output power of `blocks` blocks with the beam at `steer_rad`
  /// and the source at `source_rad` — the beam-pattern probe.
  [[nodiscard]] double steered_power(double steer_rad, double source_rad,
                                     std::int64_t blocks) const;

 private:
  BeamformerParams params_;
};

struct BeamformerTimingModel {
  double clock_mhz = 100.0;
  std::int64_t sensor_cycles_per_sample = 3;  ///< delay interpolation + weight
  std::int64_t sum_cycles_per_sample = 1;     ///< one accumulate per sample
  std::int64_t setup_cycles = 16;
  std::int64_t sample_wire_bytes = 4;
  sim::LinkParams link;
};

/// The distributed beamformer system.
class BeamformerApp {
 public:
  BeamformerApp(std::int32_t pe_count, BeamformerParams params,
                core::SpiSystemOptions options = {});

  [[nodiscard]] std::int32_t pe_count() const { return pe_count_; }
  [[nodiscard]] const core::SpiSystem& system() const { return *system_; }
  [[nodiscard]] const BeamformerParams& params() const { return params_; }

  /// Sensors handled by PE p (round-robin distribution).
  [[nodiscard]] std::vector<std::size_t> sensors_on(std::int32_t pe) const;

  /// Functional distributed run: beamform `blocks` blocks of the scene;
  /// output is bit-identical to the sequential reference (tests assert).
  [[nodiscard]] std::vector<double> run_functional(double steer_rad, double source_rad,
                                                   std::int64_t blocks) const;

  /// Timed run for the throughput experiment.
  [[nodiscard]] sim::ExecStats run_timed(const BeamformerTimingModel& timing,
                                         std::int64_t iterations,
                                         const sim::CommBackend* backend = nullptr) const;

  /// Component-wise FPGA area of the n-PE array processor.
  [[nodiscard]] sim::AreaReport area_report() const;

 private:
  std::int32_t pe_count_;
  BeamformerParams params_;
  df::ActorId steer_ = df::kInvalidActor;  ///< steering source (host)
  df::ActorId sum_ = df::kInvalidActor;    ///< final combiner (host)
  std::vector<df::ActorId> dist_;          ///< per-PE steering distributor
  std::vector<df::ActorId> psum_;          ///< per-PE partial reducers
  std::vector<std::vector<df::ActorId>> sensor_actor_;  ///< [pe][local index]
  std::vector<df::EdgeId> steer_edge_;     ///< steer -> dist_p
  std::vector<std::vector<df::EdgeId>> feed_edge_;      ///< dist_p -> sensor (local)
  std::vector<std::vector<df::EdgeId>> sensor_edge_;    ///< sensor -> psum (local)
  std::vector<df::EdgeId> partial_edge_;   ///< psum_p -> sum
  std::unique_ptr<core::SpiSystem> system_;
};

}  // namespace spi::apps
