/// \file serialization.hpp
/// Token (de)serialization helpers for the application actors: dataflow
/// tokens are raw bytes on SPI channels; the applications move doubles,
/// floats and int32s through them.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/message.hpp"

namespace spi::apps {

using core::Bytes;

inline void append_f64(Bytes& out, double v) {
  std::uint8_t buf[sizeof(double)];
  std::memcpy(buf, &v, sizeof(double));
  out.insert(out.end(), buf, buf + sizeof(double));
}

inline void append_i32(Bytes& out, std::int32_t v) {
  std::uint8_t buf[sizeof(std::int32_t)];
  std::memcpy(buf, &v, sizeof(std::int32_t));
  out.insert(out.end(), buf, buf + sizeof(std::int32_t));
}

[[nodiscard]] inline Bytes pack_f64(std::span<const double> values) {
  Bytes out;
  out.reserve(values.size() * sizeof(double));
  for (double v : values) append_f64(out, v);
  return out;
}

[[nodiscard]] inline Bytes pack_i32(std::span<const std::int32_t> values) {
  Bytes out;
  out.reserve(values.size() * sizeof(std::int32_t));
  for (std::int32_t v : values) append_i32(out, v);
  return out;
}

[[nodiscard]] inline std::vector<double> unpack_f64(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % sizeof(double) != 0)
    throw std::invalid_argument("unpack_f64: byte count not a multiple of 8");
  std::vector<double> out(bytes.size() / sizeof(double));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

[[nodiscard]] inline std::vector<std::int32_t> unpack_i32(std::span<const std::uint8_t> bytes) {
  if (bytes.size() % sizeof(std::int32_t) != 0)
    throw std::invalid_argument("unpack_i32: byte count not a multiple of 4");
  std::vector<std::int32_t> out(bytes.size() / sizeof(std::int32_t));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

}  // namespace spi::apps
