/// \file assignment.hpp
/// Actor-to-processor assignment for multiprocessor implementation.
///
/// SPI follows the self-timed scheduling model (paper Section 2): actor
/// assignment and per-processor ordering are fixed at compile time, while
/// firing *times* are resolved at run time by synchronization. This file
/// provides the compile-time half: manual assignments (the paper's
/// experiments hand-partition the applications) plus an HLFET-style list
/// scheduler for automatic exploration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/graph.hpp"

namespace spi::sched {

using Proc = std::int32_t;

/// Maps every actor of a graph to one of `proc_count` processors.
class Assignment {
 public:
  Assignment(std::size_t actor_count, std::int32_t proc_count)
      : proc_of_(actor_count, 0), proc_count_(proc_count) {
    if (proc_count <= 0) throw std::invalid_argument("Assignment: proc_count must be positive");
  }

  void assign(df::ActorId a, Proc p) {
    if (p < 0 || p >= proc_count_) throw std::out_of_range("Assignment: invalid processor");
    proc_of_.at(static_cast<std::size_t>(a)) = p;
  }

  [[nodiscard]] Proc proc_of(df::ActorId a) const { return proc_of_.at(static_cast<std::size_t>(a)); }
  [[nodiscard]] std::int32_t proc_count() const { return proc_count_; }
  [[nodiscard]] std::size_t actor_count() const { return proc_of_.size(); }

  /// Actors mapped to processor p, in actor-id order.
  [[nodiscard]] std::vector<df::ActorId> actors_on(Proc p) const;

  /// Dataflow edges whose endpoints live on different processors — the
  /// edges on which SPI inserts send/receive actor pairs.
  [[nodiscard]] std::vector<df::EdgeId> interprocessor_edges(const df::Graph& g) const;

 private:
  std::vector<Proc> proc_of_;
  std::int32_t proc_count_;
};

/// Per-hop communication cost model used by the list scheduler: cycles to
/// move one inter-processor token = fixed + per_byte · token_bytes.
struct CommCostModel {
  std::int64_t fixed_cycles = 10;
  std::int64_t cycles_per_byte = 1;

  [[nodiscard]] std::int64_t cost(std::int64_t bytes) const {
    return fixed_cycles + cycles_per_byte * bytes;
  }
};

/// Highest-Level-First-with-Estimated-Times list scheduling over an
/// acyclic precedence projection of the graph (feedback edges with delay
/// are relaxed, as is standard). Returns an assignment balancing the
/// critical path against IPC cost. Deterministic.
[[nodiscard]] Assignment list_schedule(const df::Graph& g, std::int32_t proc_count,
                                       const CommCostModel& comm = {});

}  // namespace spi::sched
