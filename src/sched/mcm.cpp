#include "sched/mcm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spi::sched {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Scale-aware comparison margin for the policy-improvement tests.
double improvement_eps(const std::vector<McmArc>& arcs) {
  double scale = 1.0;
  for (const McmArc& a : arcs) scale = std::max(scale, std::abs(a.weight));
  return 1e-10 * scale;
}

}  // namespace

double witness_ratio(const McmResult& result, const std::vector<McmArc>& arcs) {
  if (result.cycle_arcs.empty()) return 0.0;
  double weight = 0.0;
  std::int64_t delay = 0;
  for (std::size_t idx : result.cycle_arcs) {
    weight += arcs.at(idx).weight;
    delay += arcs.at(idx).delay;
  }
  if (delay <= 0) throw std::logic_error("witness_ratio: zero-delay witness cycle");
  return weight / static_cast<double>(delay);
}

void HowardSolver::reset(std::size_t node_count, std::vector<McmArc> arcs) {
  node_count_ = node_count;
  arcs_ = std::move(arcs);
  arc_active_.assign(arcs_.size(), 1);
  policy_.assign(node_count_, -1);
  policy_valid_ = false;
  result_ = {};
}

std::size_t HowardSolver::add_arc(const McmArc& arc) {
  arcs_.push_back(arc);
  arc_active_.push_back(1);
  return arcs_.size() - 1;
}

void HowardSolver::remove_arc(std::size_t index) {
  arc_active_.at(index) = 0;
}

const McmResult& HowardSolver::solve() {
  const std::size_t n = node_count_;
  result_ = {};
  if (n == 0 || arcs_.empty()) return result_;

  // Adjacency over active arcs (arc indices grouped by source).
  std::vector<std::int32_t> head(n, -1);
  std::vector<std::int32_t> next(arcs_.size(), -1);
  for (std::size_t i = arcs_.size(); i-- > 0;) {
    if (!arc_active_[i]) continue;
    const auto u = static_cast<std::size_t>(arcs_[i].src);
    next[i] = head[u];
    head[u] = static_cast<std::int32_t>(i);
  }

  // Peel nodes that cannot reach a cycle: repeatedly drop nodes whose
  // every active arc leads to an already-dropped node. What survives is
  // the cycle-reaching core on which a policy is well defined.
  std::vector<std::int32_t> out_degree(n, 0);
  std::vector<std::vector<std::int32_t>> rev(n);
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (!arc_active_[i]) continue;
    ++out_degree[static_cast<std::size_t>(arcs_[i].src)];
    rev[static_cast<std::size_t>(arcs_[i].snk)].push_back(static_cast<std::int32_t>(arcs_[i].src));
  }
  std::vector<char> alive(n, 1);
  std::vector<std::int32_t> worklist;
  for (std::size_t u = 0; u < n; ++u)
    if (out_degree[u] == 0) {
      alive[u] = 0;
      worklist.push_back(static_cast<std::int32_t>(u));
    }
  while (!worklist.empty()) {
    const auto u = static_cast<std::size_t>(worklist.back());
    worklist.pop_back();
    for (std::int32_t p : rev[u]) {
      const auto pu = static_cast<std::size_t>(p);
      if (alive[pu] && --out_degree[pu] == 0) {
        // Recount: out_degree here tracks arcs into still-alive nodes.
        alive[pu] = 0;
        worklist.push_back(p);
      }
    }
  }
  // The decrement above is per incoming-arc-to-a-dead-node; recompute the
  // survivors' effective degree to guard against double-decrements from
  // parallel arcs (rev holds one entry per arc, so counts stay exact).
  bool any_alive = false;
  for (std::size_t u = 0; u < n; ++u) any_alive = any_alive || alive[u];
  if (!any_alive) return result_;  // acyclic in the delay sense

  // Policy init / warm repair: keep previous choices that still point at
  // an active arc into the live core; otherwise take the first such arc.
  for (std::size_t u = 0; u < n; ++u) {
    if (!alive[u]) {
      policy_[u] = -1;
      continue;
    }
    const std::int32_t kept = policy_valid_ ? policy_[u] : -1;
    const bool kept_ok = kept >= 0 && static_cast<std::size_t>(kept) < arcs_.size() &&
                         arc_active_[static_cast<std::size_t>(kept)] &&
                         arcs_[static_cast<std::size_t>(kept)].src == static_cast<std::int32_t>(u) &&
                         alive[static_cast<std::size_t>(arcs_[static_cast<std::size_t>(kept)].snk)];
    if (kept_ok) continue;
    std::int32_t pick = -1;
    for (std::int32_t a = head[u]; a >= 0; a = next[static_cast<std::size_t>(a)])
      if (alive[static_cast<std::size_t>(arcs_[static_cast<std::size_t>(a)].snk)]) pick = a;
    // The intrusive list is built in reverse, so the last survivor seen is
    // the lowest arc index — deterministic regardless of warm state.
    policy_[u] = pick;
  }

  const double eps = improvement_eps(arcs_);
  std::vector<double> lambda(n, kNegInf), value(n, 0.0);
  std::vector<std::int32_t> color(n);          // 0 unvisited, 1 on path, 2 valued
  std::vector<std::int32_t> path;
  std::int32_t best_cycle_entry = -1;          // a node on the best policy cycle
  double best_lambda = kNegInf;

  const std::size_t max_sweeps = std::max<std::size_t>(64, 2 * n + 16);
  bool converged = false;
  for (std::size_t sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    // --- value determination over the policy's functional graph ---------
    std::fill(color.begin(), color.end(), 0);
    best_cycle_entry = -1;
    best_lambda = kNegInf;
    for (std::size_t root = 0; root < n; ++root) {
      if (!alive[root] || color[root] != 0) continue;
      path.clear();
      std::int32_t u = static_cast<std::int32_t>(root);
      while (color[static_cast<std::size_t>(u)] == 0) {
        color[static_cast<std::size_t>(u)] = 1;
        path.push_back(u);
        u = arcs_[static_cast<std::size_t>(policy_[static_cast<std::size_t>(u)])].snk;
      }
      if (color[static_cast<std::size_t>(u)] == 1) {
        // New policy cycle: u closes it. Evaluate its exact ratio.
        const auto cycle_start = static_cast<std::size_t>(
            std::find(path.begin(), path.end(), u) - path.begin());
        const std::size_t k = path.size() - cycle_start;
        double weight = 0.0;
        std::int64_t delay = 0;
        std::size_t anchor_pos = 0;  // offset of the min-id cycle node
        for (std::size_t i = 0; i < k; ++i) {
          const McmArc& a =
              arcs_[static_cast<std::size_t>(policy_[static_cast<std::size_t>(path[cycle_start + i])])];
          weight += a.weight;
          delay += a.delay;
          if (path[cycle_start + i] < path[cycle_start + anchor_pos]) anchor_pos = i;
        }
        if (delay <= 0)
          throw std::logic_error("max_cycle_ratio: zero-delay cycle (deadlock)");
        const double ratio = weight / static_cast<double>(delay);
        // Anchor value(min-id node) = 0 and solve backwards around the
        // cycle. The anchor must depend only on the cycle itself — never
        // on which root the traversal entered it from — or potentials of
        // an unchanged cycle would shift between sweeps and the
        // equal-ratio improvement test below could churn forever.
        const std::int32_t anchor = path[cycle_start + anchor_pos];
        if (ratio > best_lambda) {
          best_lambda = ratio;
          best_cycle_entry = anchor;
        }
        lambda[static_cast<std::size_t>(anchor)] = ratio;
        value[static_cast<std::size_t>(anchor)] = 0.0;
        color[static_cast<std::size_t>(anchor)] = 2;
        for (std::size_t j = 1; j < k; ++j) {
          const auto node =
              static_cast<std::size_t>(path[cycle_start + (anchor_pos + k - j) % k]);
          const McmArc& a = arcs_[static_cast<std::size_t>(policy_[node])];
          lambda[node] = ratio;
          value[node] = a.weight - ratio * static_cast<double>(a.delay) +
                        value[static_cast<std::size_t>(a.snk)];
          color[node] = 2;
        }
      }
      // Unwind the tree part of the path (nodes still colored 1).
      for (std::size_t i = path.size(); i-- > 0;) {
        const auto node = static_cast<std::size_t>(path[i]);
        if (color[node] == 2) continue;
        const McmArc& a = arcs_[static_cast<std::size_t>(policy_[node])];
        lambda[node] = lambda[static_cast<std::size_t>(a.snk)];
        value[node] = a.weight - lambda[node] * static_cast<double>(a.delay) +
                      value[static_cast<std::size_t>(a.snk)];
        color[node] = 2;
      }
    }

    // --- policy improvement ---------------------------------------------
    // An arc (u -> v) improves u when it reaches a strictly better cycle
    // ratio, or the same ratio with a strictly better potential. Arcs are
    // scanned in index order and only strict improvements switch the
    // policy, so the pass is deterministic.
    bool improved = false;
    for (std::size_t i = 0; i < arcs_.size(); ++i) {
      if (!arc_active_[i]) continue;
      const McmArc& a = arcs_[i];
      const auto u = static_cast<std::size_t>(a.src);
      const auto v = static_cast<std::size_t>(a.snk);
      if (!alive[u] || !alive[v]) continue;
      if (lambda[v] > lambda[u] + eps) {
        policy_[u] = static_cast<std::int32_t>(i);
        lambda[u] = lambda[v];
        // Keep (lambda, value) consistent for the rest of the sweep: later
        // arcs from u compare against this choice, so a stale potential
        // here would let a worse arc win the equal-ratio test.
        value[u] = a.weight - lambda[v] * static_cast<double>(a.delay) + value[v];
        improved = true;
      } else if (lambda[v] > lambda[u] - eps) {
        const double candidate =
            a.weight - lambda[u] * static_cast<double>(a.delay) + value[v];
        if (candidate > value[u] + eps) {
          policy_[u] = static_cast<std::int32_t>(i);
          value[u] = candidate;
          improved = true;
        }
      }
    }
    converged = !improved;
  }
  policy_valid_ = true;

  if (!converged) {
    // Numerical cycling safety valve: defer to the oracle. Rare enough
    // that a from-scratch run is acceptable.
    result_ = max_cycle_ratio_lawler(node_count_, [&] {
      std::vector<McmArc> active;
      active.reserve(arcs_.size());
      for (std::size_t i = 0; i < arcs_.size(); ++i)
        if (arc_active_[i]) active.push_back(arcs_[i]);
      return active;
    }());
    // Witness arc indices above refer to the compacted list; drop them
    // rather than report misleading ids.
    result_.cycle_nodes.clear();
    result_.cycle_arcs.clear();
    return result_;
  }

  // Extract the witness: walk the converged policy from the best cycle's
  // entry node until it closes.
  if (best_cycle_entry >= 0) {
    result_.mcm = best_lambda;
    std::int32_t u = best_cycle_entry;
    do {
      const auto arc = static_cast<std::size_t>(policy_[static_cast<std::size_t>(u)]);
      result_.cycle_nodes.push_back(u);
      result_.cycle_arcs.push_back(arc);
      u = arcs_[arc].snk;
    } while (u != best_cycle_entry);
    result_.mcm = witness_ratio(result_, arcs_);
  }
  return result_;
}

McmResult max_cycle_ratio_howard(std::size_t node_count, const std::vector<McmArc>& arcs) {
  HowardSolver solver;
  solver.reset(node_count, arcs);
  return solver.solve();
}

McmResult max_cycle_ratio_lawler(std::size_t node_count, const std::vector<McmArc>& arcs) {
  McmResult result;
  if (node_count == 0 || arcs.empty()) return result;

  // A cycle with mean > lambda exists iff the graph with arc weights
  // w - lambda*delay has a positive cycle: detected by n Bellman-Ford
  // relaxation passes from a virtual zero-weight source.
  std::vector<double> dist(node_count);
  std::vector<std::int32_t> parent(node_count);
  std::int32_t last_updated = -1;  // a node relaxed in the final BF pass
  const auto has_positive_cycle = [&](double lambda, bool track_parents) {
    std::fill(dist.begin(), dist.end(), 0.0);
    if (track_parents) std::fill(parent.begin(), parent.end(), -1);
    last_updated = -1;
    for (std::size_t iter = 0; iter < node_count; ++iter) {
      bool changed = false;
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        const McmArc& a = arcs[i];
        const double w = a.weight - lambda * static_cast<double>(a.delay);
        const double cand = dist[static_cast<std::size_t>(a.src)] + w;
        if (cand > dist[static_cast<std::size_t>(a.snk)] + 1e-12) {
          dist[static_cast<std::size_t>(a.snk)] = cand;
          if (track_parents) parent[static_cast<std::size_t>(a.snk)] = static_cast<std::int32_t>(i);
          last_updated = a.snk;
          changed = true;
        }
      }
      if (!changed) return false;
    }
    return true;
  };

  double total_weight = 0.0;
  for (const McmArc& a : arcs) total_weight += std::max(a.weight, 0.0);
  if (!has_positive_cycle(0.0, false)) return result;  // no (delay-)cycle

  double lo = 0.0, hi = std::max(total_weight, 1e-9);
  for (int iter = 0; iter < 64 && hi - lo > 1e-9 * std::max(1.0, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (has_positive_cycle(mid, false))
      lo = mid;
    else
      hi = mid;
  }
  result.mcm = hi;

  // Witness: at lambda slightly below the answer a strictly-positive
  // cycle exists; recover it from the Bellman-Ford parent pointers and
  // report its exact ratio (which tightens the binary-search scalar).
  double probe = lo;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (has_positive_cycle(probe, true)) break;
    probe -= std::max(1e-12, 1e-9 * std::max(1.0, hi)) * (1 << attempt);
    if (attempt == 7) return result;  // keep the scalar, no witness
  }
  // A node relaxed in the n-th pass sits at the end of a parent chain of
  // length >= n, which therefore repeats a node: walking n parents from
  // *that* node (no other — chains from earlier-relaxed nodes may simply
  // end at an unparented root) is guaranteed to land inside a cycle of
  // the parent forest.
  std::int32_t inside = last_updated;
  if (inside < 0) return result;
  for (std::size_t hop = 0; hop < node_count; ++hop) {
    const std::int32_t p = parent[static_cast<std::size_t>(inside)];
    if (p < 0) return result;  // defensive: keep the scalar, drop the witness
    inside = arcs[static_cast<std::size_t>(p)].src;
  }
  std::vector<char> on_cycle(node_count, 0);
  std::int32_t u = inside;
  while (!on_cycle[static_cast<std::size_t>(u)]) {
    on_cycle[static_cast<std::size_t>(u)] = 1;
    u = arcs[static_cast<std::size_t>(parent[static_cast<std::size_t>(u)])].src;
  }
  // u is now on the cycle; walk it forward (via parents, which point at
  // predecessors) collecting arcs, then reverse into source order.
  const std::int32_t start = u;
  std::vector<std::int32_t> nodes_rev;
  std::vector<std::size_t> arcs_rev;
  do {
    const auto arc = static_cast<std::size_t>(parent[static_cast<std::size_t>(u)]);
    nodes_rev.push_back(u);
    arcs_rev.push_back(arc);
    u = arcs[arc].src;
  } while (u != start);
  // parent[] chains snk <- src: nodes_rev[i] is the sink of arcs_rev[i].
  // Reversing yields nodes in walk order with cycle_arcs[i] leaving
  // cycle_nodes[i].
  result.cycle_nodes.assign(nodes_rev.rbegin(), nodes_rev.rend());
  std::vector<std::size_t> forward(arcs_rev.rbegin(), arcs_rev.rend());
  // arcs_rev reversed gives, at position i, the arc *entering*
  // cycle_nodes[i]; rotate by one so index i carries the arc leaving it.
  std::rotate(forward.begin(), forward.begin() + 1, forward.end());
  result.cycle_arcs = std::move(forward);
  result.mcm = witness_ratio(result, arcs);
  return result;
}

McmResult max_cycle_ratio(std::size_t node_count, const std::vector<McmArc>& arcs,
                          McmAlgorithm algorithm) {
  return algorithm == McmAlgorithm::kHoward ? max_cycle_ratio_howard(node_count, arcs)
                                            : max_cycle_ratio_lawler(node_count, arcs);
}

}  // namespace spi::sched
