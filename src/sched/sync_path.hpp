/// \file sync_path.hpp
/// Shared minimum-delay path engine over a synchronization graph.
///
/// The redundancy test (Section 4.1), the equation-2 buffer bounds and the
/// resynchronizer all reduce to "minimum total delay from u to v over the
/// active edges, possibly ignoring one edge". The naive formulation —
/// copy the graph minus one edge, run a full Dijkstra — is O(E) per query
/// just for the copy, and the compile pipeline issues thousands of such
/// queries. This engine is built once per graph:
///
///  * the adjacency is indexed once; `removed` flags are read live from
///    the SyncGraph, so edges marked removed between queries need no
///    rebuild (SyncGraph never erases edges — ids are stable);
///  * scratch distance arrays are epoch-stamped, making per-query reset
///    O(touched) instead of O(V);
///  * the search stops as soon as the target settles, and any path whose
///    delay already exceeds the caller's cap is pruned (the redundancy
///    test only cares whether dist <= delay(e), not the exact value).
///
/// refresh() picks up edges appended since construction (the
/// resynchronizer inserts candidates mid-run).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/sync_graph.hpp"

namespace spi::sched {

class SyncPathEngine {
 public:
  explicit SyncPathEngine(const SyncGraph& g);

  /// Indexes edges appended to the graph since construction / last call.
  void refresh();

  /// Minimum total delay of an active-edge path from `from` to `to`,
  /// skipping edge `exclude` entirely; returns df::kUnreachable when no
  /// path exists or every path exceeds `cap` (pass kUnreachable for no
  /// cap). from == to returns 0.
  [[nodiscard]] std::int64_t min_delay(std::int32_t from, std::int32_t to,
                                       std::optional<std::size_t> exclude = std::nullopt,
                                       std::int64_t cap = df::kUnreachable);

 private:
  struct Arc {
    std::int32_t to = 0;
    std::size_t edge = 0;  ///< index into g_->edges(); delay/removed read live
  };

  const SyncGraph* g_;
  std::vector<std::vector<Arc>> adj_;
  std::size_t edges_indexed_ = 0;
  // Epoch-stamped scratch: dist_[v] is valid iff stamp_[v] == epoch_.
  std::vector<std::int64_t> dist_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<std::pair<std::int64_t, std::int32_t>> heap_;
};

}  // namespace spi::sched
