#include "sched/sync_dot.hpp"

#include <sstream>

namespace spi::sched {

std::string to_dot(const SyncGraph& g, bool show_removed) {
  std::ostringstream out;
  out << "digraph sync {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

  for (Proc p = 0; p < g.proc_count(); ++p) {
    out << "  subgraph cluster_p" << p << " {\n    label=\"Processor " << p << "\";\n";
    for (std::size_t t = 0; t < g.task_count(); ++t) {
      if (g.proc_of(static_cast<std::int32_t>(t)) != p) continue;
      out << "    t" << t << " [label=\"" << g.task(static_cast<std::int32_t>(t)).name
          << "\"];\n";
    }
    out << "  }\n";
  }

  for (const SyncEdge& e : g.edges()) {
    if (e.removed && !show_removed) continue;
    out << "  t" << e.src << " -> t" << e.snk << " [";
    switch (e.kind) {
      case SyncEdgeKind::kSequence: out << "color=black"; break;
      case SyncEdgeKind::kIpc: out << "color=blue, penwidth=2"; break;
      case SyncEdgeKind::kAck: out << "color=red, style=dashed"; break;
      case SyncEdgeKind::kResync: out << "color=darkgreen, style=dashed, penwidth=2"; break;
    }
    if (e.delay > 0) out << ", label=\"d=" << e.delay << "\"";
    if (e.removed) out << ", color=grey, style=dotted, label=\"elided\"";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace spi::sched
