/// \file hsdf.hpp
/// Homogeneous-SDF (HSDF) expansion.
///
/// The synchronization-graph machinery of Sriram & Bhattacharyya (and
/// hence the paper's Section 4) operates on graphs whose nodes are *task
/// invocations* — one node per firing per iteration. A multirate SDF
/// graph is expanded so actor `a` with repetitions q[a] yields q[a] task
/// nodes, and every raw-token dependency becomes a (deduplicated,
/// minimum-delay) precedence arc between the producing and consuming
/// firings. Graphs that are already homogeneous expand 1:1.
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/graph.hpp"
#include "dataflow/repetitions.hpp"

namespace spi::sched {

/// One task node of the expanded graph: firing `firing` of actor `actor`.
struct TaskNode {
  df::ActorId actor = df::kInvalidActor;
  std::int32_t firing = 0;  ///< 0 .. q[actor]-1
  std::int64_t exec_cycles = 1;
  std::string name;
};

/// Precedence arc of the expanded graph. `delay` counts iteration
/// boundaries the dependency crosses (0 = same iteration).
struct TaskArc {
  std::int32_t src = 0;
  std::int32_t snk = 0;
  std::int64_t delay = 0;
  df::EdgeId dataflow_edge = df::kInvalidEdge;  ///< originating SDF edge
};

/// Expanded task graph with a map back to the SDF actors.
struct HsdfGraph {
  std::vector<TaskNode> tasks;
  std::vector<TaskArc> arcs;
  /// first_task[a] .. first_task[a] + q[a] - 1 are actor a's task nodes.
  std::vector<std::int32_t> first_task;

  [[nodiscard]] std::int32_t task_of(df::ActorId a, std::int32_t firing) const {
    return first_task.at(static_cast<std::size_t>(a)) + firing;
  }
};

/// Expands a consistent, pure-SDF graph. Arcs between the same task pair
/// are merged keeping the minimum delay (the binding constraint).
[[nodiscard]] HsdfGraph hsdf_expand(const df::Graph& g, const df::Repetitions& reps);

}  // namespace spi::sched
