#include "sched/sync_graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "sched/sync_path.hpp"

namespace spi::sched {

std::size_t SyncGraph::add_edge(SyncEdge e) {
  if (e.src < 0 || static_cast<std::size_t>(e.src) >= tasks_.size() || e.snk < 0 ||
      static_cast<std::size_t>(e.snk) >= tasks_.size())
    throw std::out_of_range("SyncGraph::add_edge: invalid task id");
  if (e.delay < 0) throw std::invalid_argument("SyncGraph::add_edge: negative delay");
  edges_.push_back(e);
  return edges_.size() - 1;
}

df::WeightedDigraph SyncGraph::digraph(std::optional<std::size_t> exclude) const {
  df::WeightedDigraph g(tasks_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].removed) continue;
    if (exclude && *exclude == i) continue;
    g.add_arc(edges_[i].src, edges_[i].snk, edges_[i].delay);
  }
  return g;
}

bool SyncGraph::is_redundant(std::size_t edge_index) const {
  const SyncEdge& e = edges_.at(edge_index);
  if (e.removed) return true;
  SyncPathEngine engine(*this);
  // The search is capped at delay(e): any path found is a witness.
  return engine.min_delay(e.src, e.snk, edge_index, e.delay) != df::kUnreachable;
}

std::size_t SyncGraph::remove_redundant(std::initializer_list<SyncEdgeKind> removable_kinds) {
  // A single ascending pass is complete: removing an edge never *creates*
  // redundancy elsewhere (it only removes witness paths), and each test
  // runs against the current graph — the engine reads `removed` flags
  // live, so one engine serves the whole sweep.
  SyncPathEngine engine(*this);
  std::size_t removed = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const SyncEdge& e = edges_[i];
    if (e.removed) continue;
    const bool removable =
        std::find(removable_kinds.begin(), removable_kinds.end(), e.kind) !=
        removable_kinds.end();
    if (removable && engine.min_delay(e.src, e.snk, i, e.delay) != df::kUnreachable) {
      edges_[i].removed = true;
      ++removed;
    }
  }
  return removed;
}

std::size_t SyncGraph::count_active(SyncEdgeKind kind) const {
  std::size_t n = 0;
  for (const SyncEdge& e : edges_)
    if (!e.removed && e.kind == kind) ++n;
  return n;
}

bool SyncGraph::is_deadlock_free() const {
  df::WeightedDigraph zero(tasks_.size());
  for (const SyncEdge& e : edges_)
    if (!e.removed && e.delay == 0) zero.add_arc(e.src, e.snk, 0);
  return df::topological_order(zero).has_value();
}

double SyncGraph::max_cycle_mean(McmAlgorithm algorithm) const {
  return max_cycle_mean_witness(algorithm).mcm;
}

McmResult SyncGraph::max_cycle_mean_witness(McmAlgorithm algorithm) const {
  if (!is_deadlock_free())
    throw std::logic_error("SyncGraph::max_cycle_mean: zero-delay cycle (deadlock)");

  // Node exec times are attributed to outgoing arcs, turning the cycle
  // *mean* into the cycle *ratio* mcm.hpp solves.
  std::vector<McmArc> arcs;
  std::vector<std::size_t> edge_of_arc;
  arcs.reserve(edges_.size());
  edge_of_arc.reserve(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const SyncEdge& e = edges_[i];
    if (e.removed) continue;
    arcs.push_back(McmArc{e.src, e.snk,
                          static_cast<double>(tasks_[static_cast<std::size_t>(e.src)].exec_cycles),
                          e.delay});
    edge_of_arc.push_back(i);
  }
  McmResult result = max_cycle_ratio(tasks_.size(), arcs, algorithm);
  for (std::size_t& a : result.cycle_arcs) a = edge_of_arc[a];
  return result;
}

ProcOrder proc_order_from_pass(const HsdfGraph& hsdf,
                               const std::vector<df::ActorId>& pass_firings,
                               const Assignment& assignment) {
  ProcOrder order(static_cast<std::size_t>(assignment.proc_count()));
  std::vector<std::int32_t> fired(hsdf.first_task.size(), 0);
  for (df::ActorId a : pass_firings) {
    const std::int32_t task = hsdf.task_of(a, fired[static_cast<std::size_t>(a)]++);
    order[static_cast<std::size_t>(assignment.proc_of(a))].push_back(task);
  }
  return order;
}

SyncGraphBuild build_sync_graph(const HsdfGraph& hsdf, const Assignment& assignment,
                                const ProcOrder& order, const SyncGraphOptions& options) {
  std::vector<Proc> proc_of_task(hsdf.tasks.size());
  for (std::size_t t = 0; t < hsdf.tasks.size(); ++t)
    proc_of_task[t] = assignment.proc_of(hsdf.tasks[t].actor);

  SyncGraph graph(hsdf.tasks, std::move(proc_of_task), assignment.proc_count());

  // (2) sequence edges: zero-delay chain per processor plus the unit-delay
  // loop-back that models one schedule pass per iteration.
  std::vector<std::int32_t> position(hsdf.tasks.size(), -1);
  for (Proc p = 0; p < assignment.proc_count(); ++p) {
    const auto& tasks = order.at(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < tasks.size(); ++i)
      position[static_cast<std::size_t>(tasks[i])] = static_cast<std::int32_t>(i);
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i)
      graph.add_edge(SyncEdge{tasks[i], tasks[i + 1], 0, SyncEdgeKind::kSequence,
                              df::kInvalidEdge, false});
    if (!tasks.empty())
      graph.add_edge(SyncEdge{tasks.back(), tasks.front(), 1, SyncEdgeKind::kSequence,
                              df::kInvalidEdge, false});
  }

  // (3) IPC edges for cross-processor arcs; validate that intra-processor
  // arcs are honoured by the schedule order (admissibility).
  SyncGraphBuild build{std::move(graph), {}};
  for (const TaskArc& arc : hsdf.arcs) {
    const Proc ps = build.graph.proc_of(arc.src);
    const Proc pk = build.graph.proc_of(arc.snk);
    if (ps == pk) {
      const bool src_first = position[static_cast<std::size_t>(arc.src)] <
                             position[static_cast<std::size_t>(arc.snk)];
      if (!src_first && arc.delay < 1)
        throw std::logic_error(
            "build_sync_graph: schedule order violates zero-delay intra-processor dependency " +
            hsdf.tasks[static_cast<std::size_t>(arc.src)].name + " -> " +
            hsdf.tasks[static_cast<std::size_t>(arc.snk)].name);
      continue;  // enforced by sequence edges
    }
    const std::size_t idx = build.graph.add_edge(
        SyncEdge{arc.src, arc.snk, arc.delay, SyncEdgeKind::kIpc, arc.dataflow_edge, false});
    build.ipc_edges.emplace_back(idx, SyncProtocol::kUbs);  // classified below
  }

  // Classify protocols on the ack-free graph: a feedback IPC edge has a
  // statically bounded buffer (eq. 2) -> BBS; feedforward -> UBS. One
  // path engine serves every bound query.
  std::vector<std::int64_t> ack_delay(build.ipc_edges.size(), 0);
  SyncPathEngine engine(build.graph);
  for (std::size_t i = 0; i < build.ipc_edges.size(); ++i) {
    auto& [idx, protocol] = build.ipc_edges[i];
    const auto bound = ipc_buffer_bound_tokens(build.graph, engine, idx);
    protocol = bound.has_value() ? SyncProtocol::kBbs : SyncProtocol::kUbs;
    ack_delay[i] = bound.value_or(options.ubs_credit_window);
  }
  // Distributed memory: *both* protocols carry acknowledgements (paper
  // Section 4 — there is no shared read pointer, so the consumer reports
  // buffer space back). The ack of a BBS edge grants the producer a lead
  // of B(e) (equation 2) iterations; a UBS ack grants the credit window.
  // Resynchronization (Section 4.1) later elides every ack whose bound is
  // already enforced by other synchronization paths — for BBS edges that
  // is frequently provable, which is exactly the paper's optimization.
  for (std::size_t i = 0; i < build.ipc_edges.size(); ++i) {
    const SyncEdge e = build.graph.edge(build.ipc_edges[i].first);
    build.graph.add_edge(
        SyncEdge{e.snk, e.src, ack_delay[i], SyncEdgeKind::kAck, e.dataflow_edge, false});
  }
  return build;
}

std::optional<std::int64_t> ipc_buffer_bound_tokens(const SyncGraph& g, std::size_t edge_index) {
  SyncPathEngine engine(g);
  return ipc_buffer_bound_tokens(g, engine, edge_index);
}

std::optional<std::int64_t> ipc_buffer_bound_tokens(const SyncGraph& g, SyncPathEngine& engine,
                                                    std::size_t edge_index) {
  const SyncEdge& e = g.edges().at(edge_index);
  if (e.kind != SyncEdgeKind::kIpc)
    throw std::invalid_argument("ipc_buffer_bound_tokens: not an IPC edge");
  // Tokens on e cannot exceed delay(e) plus the minimum delay of a
  // synchronization path from the consumer back to the producer: the
  // producer can run at most that many iterations ahead (equation 2's
  // token-count factor; multiply by c(e) of equation 1 for bytes).
  // Excluding e itself is for clarity only: a snk->src walk through
  // e = (src -> snk) would visit src before using it, so a no-shorter
  // e-free prefix always exists.
  const std::int64_t back = engine.min_delay(e.snk, e.src, edge_index);
  if (back == df::kUnreachable) return std::nullopt;
  return e.delay + back;
}

}  // namespace spi::sched
