#include "sched/sync_graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace spi::sched {

std::size_t SyncGraph::add_edge(SyncEdge e) {
  if (e.src < 0 || static_cast<std::size_t>(e.src) >= tasks_.size() || e.snk < 0 ||
      static_cast<std::size_t>(e.snk) >= tasks_.size())
    throw std::out_of_range("SyncGraph::add_edge: invalid task id");
  if (e.delay < 0) throw std::invalid_argument("SyncGraph::add_edge: negative delay");
  edges_.push_back(e);
  return edges_.size() - 1;
}

df::WeightedDigraph SyncGraph::digraph(std::optional<std::size_t> exclude) const {
  df::WeightedDigraph g(tasks_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].removed) continue;
    if (exclude && *exclude == i) continue;
    g.add_arc(edges_[i].src, edges_[i].snk, edges_[i].delay);
  }
  return g;
}

bool SyncGraph::is_redundant(std::size_t edge_index) const {
  const SyncEdge& e = edges_.at(edge_index);
  if (e.removed) return true;
  const df::WeightedDigraph g = digraph(edge_index);
  const auto dist = df::min_delay_from(g, e.src);
  const std::int64_t d = dist.at(static_cast<std::size_t>(e.snk));
  return d != df::kUnreachable && d <= e.delay;
}

std::size_t SyncGraph::remove_redundant(std::initializer_list<SyncEdgeKind> removable_kinds) {
  // A single ascending pass is complete: removing an edge never *creates*
  // redundancy elsewhere (it only removes witness paths), and each test
  // runs against the current graph.
  std::size_t removed = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].removed) continue;
    const bool removable =
        std::find(removable_kinds.begin(), removable_kinds.end(), edges_[i].kind) !=
        removable_kinds.end();
    if (removable && is_redundant(i)) {
      edges_[i].removed = true;
      ++removed;
    }
  }
  return removed;
}

std::size_t SyncGraph::count_active(SyncEdgeKind kind) const {
  std::size_t n = 0;
  for (const SyncEdge& e : edges_)
    if (!e.removed && e.kind == kind) ++n;
  return n;
}

bool SyncGraph::is_deadlock_free() const {
  df::WeightedDigraph zero(tasks_.size());
  for (const SyncEdge& e : edges_)
    if (!e.removed && e.delay == 0) zero.add_arc(e.src, e.snk, 0);
  return df::topological_order(zero).has_value();
}

double SyncGraph::max_cycle_mean() const {
  if (!is_deadlock_free())
    throw std::logic_error("SyncGraph::max_cycle_mean: zero-delay cycle (deadlock)");

  // Binary search on lambda; a cycle with mean > lambda exists iff the
  // graph with edge weights exec(src) - lambda*delay has a positive cycle
  // (Lawler). Node exec times are attributed to outgoing edges.
  struct Arc {
    std::int32_t src, snk;
    std::int64_t delay;
  };
  std::vector<Arc> arcs;
  for (const SyncEdge& e : edges_)
    if (!e.removed) arcs.push_back(Arc{e.src, e.snk, e.delay});
  if (arcs.empty()) return 0.0;

  const std::size_t n = tasks_.size();
  auto has_positive_cycle = [&](double lambda) {
    std::vector<double> dist(n, 0.0);  // virtual zero-weight source to all
    for (std::size_t iter = 0; iter < n; ++iter) {
      bool changed = false;
      for (const Arc& a : arcs) {
        const double w = static_cast<double>(tasks_[static_cast<std::size_t>(a.src)].exec_cycles) -
                         lambda * static_cast<double>(a.delay);
        const double cand = dist[static_cast<std::size_t>(a.src)] + w;
        if (cand > dist[static_cast<std::size_t>(a.snk)] + 1e-12) {
          dist[static_cast<std::size_t>(a.snk)] = cand;
          changed = true;
        }
      }
      if (!changed) return false;  // converged: no positive cycle
    }
    return true;  // still relaxing after n passes
  };

  double total_exec = 0.0;
  for (const TaskNode& t : tasks_) total_exec += static_cast<double>(t.exec_cycles);
  double lo = 0.0, hi = total_exec;
  if (!has_positive_cycle(0.0)) return 0.0;  // acyclic (in the delay sense)
  for (int iter = 0; iter < 64 && hi - lo > 1e-9 * std::max(1.0, hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (has_positive_cycle(mid))
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

ProcOrder proc_order_from_pass(const HsdfGraph& hsdf,
                               const std::vector<df::ActorId>& pass_firings,
                               const Assignment& assignment) {
  ProcOrder order(static_cast<std::size_t>(assignment.proc_count()));
  std::vector<std::int32_t> fired(hsdf.first_task.size(), 0);
  for (df::ActorId a : pass_firings) {
    const std::int32_t task = hsdf.task_of(a, fired[static_cast<std::size_t>(a)]++);
    order[static_cast<std::size_t>(assignment.proc_of(a))].push_back(task);
  }
  return order;
}

SyncGraphBuild build_sync_graph(const HsdfGraph& hsdf, const Assignment& assignment,
                                const ProcOrder& order, const SyncGraphOptions& options) {
  std::vector<Proc> proc_of_task(hsdf.tasks.size());
  for (std::size_t t = 0; t < hsdf.tasks.size(); ++t)
    proc_of_task[t] = assignment.proc_of(hsdf.tasks[t].actor);

  SyncGraph graph(hsdf.tasks, std::move(proc_of_task), assignment.proc_count());

  // (2) sequence edges: zero-delay chain per processor plus the unit-delay
  // loop-back that models one schedule pass per iteration.
  std::vector<std::int32_t> position(hsdf.tasks.size(), -1);
  for (Proc p = 0; p < assignment.proc_count(); ++p) {
    const auto& tasks = order.at(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < tasks.size(); ++i)
      position[static_cast<std::size_t>(tasks[i])] = static_cast<std::int32_t>(i);
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i)
      graph.add_edge(SyncEdge{tasks[i], tasks[i + 1], 0, SyncEdgeKind::kSequence,
                              df::kInvalidEdge, false});
    if (!tasks.empty())
      graph.add_edge(SyncEdge{tasks.back(), tasks.front(), 1, SyncEdgeKind::kSequence,
                              df::kInvalidEdge, false});
  }

  // (3) IPC edges for cross-processor arcs; validate that intra-processor
  // arcs are honoured by the schedule order (admissibility).
  SyncGraphBuild build{std::move(graph), {}};
  for (const TaskArc& arc : hsdf.arcs) {
    const Proc ps = build.graph.proc_of(arc.src);
    const Proc pk = build.graph.proc_of(arc.snk);
    if (ps == pk) {
      const bool src_first = position[static_cast<std::size_t>(arc.src)] <
                             position[static_cast<std::size_t>(arc.snk)];
      if (!src_first && arc.delay < 1)
        throw std::logic_error(
            "build_sync_graph: schedule order violates zero-delay intra-processor dependency " +
            hsdf.tasks[static_cast<std::size_t>(arc.src)].name + " -> " +
            hsdf.tasks[static_cast<std::size_t>(arc.snk)].name);
      continue;  // enforced by sequence edges
    }
    const std::size_t idx = build.graph.add_edge(
        SyncEdge{arc.src, arc.snk, arc.delay, SyncEdgeKind::kIpc, arc.dataflow_edge, false});
    build.ipc_edges.emplace_back(idx, SyncProtocol::kUbs);  // classified below
  }

  // Classify protocols on the ack-free graph: a feedback IPC edge has a
  // statically bounded buffer (eq. 2) -> BBS; feedforward -> UBS.
  std::vector<std::int64_t> ack_delay(build.ipc_edges.size(), 0);
  for (std::size_t i = 0; i < build.ipc_edges.size(); ++i) {
    auto& [idx, protocol] = build.ipc_edges[i];
    const auto bound = ipc_buffer_bound_tokens(build.graph, idx);
    protocol = bound.has_value() ? SyncProtocol::kBbs : SyncProtocol::kUbs;
    ack_delay[i] = bound.value_or(options.ubs_credit_window);
  }
  // Distributed memory: *both* protocols carry acknowledgements (paper
  // Section 4 — there is no shared read pointer, so the consumer reports
  // buffer space back). The ack of a BBS edge grants the producer a lead
  // of B(e) (equation 2) iterations; a UBS ack grants the credit window.
  // Resynchronization (Section 4.1) later elides every ack whose bound is
  // already enforced by other synchronization paths — for BBS edges that
  // is frequently provable, which is exactly the paper's optimization.
  for (std::size_t i = 0; i < build.ipc_edges.size(); ++i) {
    const SyncEdge e = build.graph.edge(build.ipc_edges[i].first);
    build.graph.add_edge(
        SyncEdge{e.snk, e.src, ack_delay[i], SyncEdgeKind::kAck, e.dataflow_edge, false});
  }
  return build;
}

std::optional<std::int64_t> ipc_buffer_bound_tokens(const SyncGraph& g, std::size_t edge_index) {
  const SyncEdge& e = g.edges().at(edge_index);
  if (e.kind != SyncEdgeKind::kIpc)
    throw std::invalid_argument("ipc_buffer_bound_tokens: not an IPC edge");
  // Tokens on e cannot exceed delay(e) plus the minimum delay of a
  // synchronization path from the consumer back to the producer: the
  // producer can run at most that many iterations ahead (equation 2's
  // token-count factor; multiply by c(e) of equation 1 for bytes).
  const df::WeightedDigraph wd = g.digraph(edge_index);
  const auto dist = df::min_delay_from(wd, e.snk);
  const std::int64_t back = dist.at(static_cast<std::size_t>(e.src));
  if (back == df::kUnreachable) return std::nullopt;
  return e.delay + back;
}

}  // namespace spi::sched
