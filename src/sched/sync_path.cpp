#include "sched/sync_path.hpp"

#include <algorithm>

namespace spi::sched {

SyncPathEngine::SyncPathEngine(const SyncGraph& g)
    : g_(&g),
      adj_(g.task_count()),
      dist_(g.task_count(), 0),
      stamp_(g.task_count(), 0) {
  refresh();
}

void SyncPathEngine::refresh() {
  const auto& edges = g_->edges();
  for (std::size_t i = edges_indexed_; i < edges.size(); ++i)
    adj_[static_cast<std::size_t>(edges[i].src)].push_back(Arc{edges[i].snk, i});
  edges_indexed_ = edges.size();
}

std::int64_t SyncPathEngine::min_delay(std::int32_t from, std::int32_t to,
                                       std::optional<std::size_t> exclude, std::int64_t cap) {
  if (from == to) return 0;
  const auto& edges = g_->edges();
  ++epoch_;
  heap_.clear();
  const auto greater = [](const auto& a, const auto& b) { return a.first > b.first; };

  dist_[static_cast<std::size_t>(from)] = 0;
  stamp_[static_cast<std::size_t>(from)] = epoch_;
  heap_.emplace_back(0, from);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), greater);
    const auto [d, u] = heap_.back();
    heap_.pop_back();
    if (u == to) return d;
    if (d > dist_[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Arc& a : adj_[static_cast<std::size_t>(u)]) {
      if (exclude && *exclude == a.edge) continue;
      const SyncEdge& e = edges[a.edge];
      if (e.removed) continue;
      const std::int64_t cand = d + e.delay;
      if (cap != df::kUnreachable && cand > cap) continue;
      const auto v = static_cast<std::size_t>(a.to);
      if (stamp_[v] == epoch_ && dist_[v] <= cand) continue;
      dist_[v] = cand;
      stamp_[v] = epoch_;
      heap_.emplace_back(cand, a.to);
      std::push_heap(heap_.begin(), heap_.end(), greater);
    }
  }
  return df::kUnreachable;
}

}  // namespace spi::sched
