/// \file sync_dot.hpp
/// Graphviz DOT export for synchronization graphs — renders the paper's
/// figure-3/figure-5 style diagrams: processors as clusters, sequence
/// edges solid, IPC edges bold, acknowledgement/resynchronization edges
/// dashed, elided edges grey.
#pragma once

#include <string>

#include "sched/sync_graph.hpp"

namespace spi::sched {

/// Renders the synchronization graph. When `show_removed` is true,
/// elided edges are drawn grey-dotted (useful for before/after figures).
[[nodiscard]] std::string to_dot(const SyncGraph& g, bool show_removed = true);

}  // namespace spi::sched
