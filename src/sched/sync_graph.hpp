/// \file sync_graph.hpp
/// IPC graph and synchronization graph (paper Section 4, after Sriram &
/// Bhattacharyya, "Embedded Multiprocessors: Scheduling and
/// Synchronization").
///
/// Given a task (HSDF) graph and a self-timed multiprocessor schedule,
/// the *IPC graph* G_ipc instantiates: (1) a vertex per task; (2) a
/// zero-delay *sequence* edge between successive tasks on the same
/// processor plus a unit-delay back edge from the last to the first task
/// (the processor loops over its schedule once per iteration); (3) an
/// *IPC* edge for every dataflow arc whose endpoints are on different
/// processors. Every edge (vj -> vi, delay d) encodes the self-timed
/// constraint  start(vi, k) >= end(vj, k - d)  (equation 3).
///
/// The *synchronization graph* G_s starts identical to G_ipc and is then
/// edited: distributed-memory SPI adds an *acknowledgement* edge
/// (snk -> src) for every IPC edge — "both protocols use acknowledgments"
/// (paper Section 4), since without shared memory the consumer must
/// report buffer space back to the producer. A BBS edge's ack carries
/// delay B(e) (the equation-2 bound, the size of its static buffer); a
/// UBS edge's ack carries the configured credit window.
/// Resynchronization (resync.hpp) then removes redundant edges — the
/// paper's "removal of redundant acknowledgement edges for SPI actors".
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dataflow/graph_algos.hpp"
#include "sched/assignment.hpp"
#include "sched/hsdf.hpp"
#include "sched/mcm.hpp"

namespace spi::sched {

class SyncPathEngine;  // sync_path.hpp

enum class SyncEdgeKind : std::uint8_t {
  kSequence,  ///< same-processor schedule order (incl. loop-back edge)
  kIpc,       ///< inter-processor dataflow edge (data + synchronization)
  kAck,       ///< acknowledgement / back-pressure for an UBS edge
  kResync,    ///< pure synchronization edge added by resynchronization
};

struct SyncEdge {
  std::int32_t src = 0;
  std::int32_t snk = 0;
  std::int64_t delay = 0;  ///< iteration distance of the constraint
  SyncEdgeKind kind = SyncEdgeKind::kSequence;
  df::EdgeId dataflow_edge = df::kInvalidEdge;  ///< for kIpc/kAck: source SDF edge
  bool removed = false;  ///< redundant edges are marked, never erased (stable ids)
};

/// Synchronization graph over the tasks of an HSDF graph.
class SyncGraph {
 public:
  SyncGraph(std::vector<TaskNode> tasks, std::vector<Proc> proc_of_task,
            std::int32_t proc_count)
      : tasks_(std::move(tasks)), proc_(std::move(proc_of_task)), proc_count_(proc_count) {}

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] const TaskNode& task(std::int32_t t) const { return tasks_.at(static_cast<std::size_t>(t)); }
  /// Updates one task's exec cycles in place. Exec times never affect the
  /// graph's structure (edges, delays, redundancy), so incremental
  /// recompilation patches exec-only edits without rebuilding.
  void set_task_exec(std::int32_t t, std::int64_t exec_cycles) {
    tasks_.at(static_cast<std::size_t>(t)).exec_cycles = exec_cycles;
  }
  [[nodiscard]] Proc proc_of(std::int32_t t) const { return proc_.at(static_cast<std::size_t>(t)); }
  [[nodiscard]] std::int32_t proc_count() const { return proc_count_; }

  std::size_t add_edge(SyncEdge e);
  [[nodiscard]] const std::vector<SyncEdge>& edges() const { return edges_; }
  [[nodiscard]] SyncEdge& edge(std::size_t i) { return edges_.at(i); }

  /// Active (non-removed) edges as a weighted digraph; `exclude` skips one
  /// edge index (used by the redundancy test).
  [[nodiscard]] df::WeightedDigraph digraph(std::optional<std::size_t> exclude = std::nullopt) const;

  /// A synchronization edge (x -> y, delay d) is *redundant* iff some
  /// other active path x -> y has total delay <= d: the sequencing it
  /// enforces is already guaranteed (paper Section 4.1).
  [[nodiscard]] bool is_redundant(std::size_t edge_index) const;

  /// Marks redundant edges of the given kinds removed, one at a time with
  /// recomputation (removing an edge can change other edges' status).
  /// Returns the number of edges removed. Deterministic.
  std::size_t remove_redundant(std::initializer_list<SyncEdgeKind> removable_kinds);

  /// Count of active edges of a kind.
  [[nodiscard]] std::size_t count_active(SyncEdgeKind kind) const;

  /// True when every cycle carries at least one delay (the self-timed
  /// system can make progress; a zero-delay cycle deadlocks).
  [[nodiscard]] bool is_deadlock_free() const;

  /// Maximum cycle mean: max over cycles of (sum of task exec times) /
  /// (sum of edge delays) — the asymptotic iteration period of self-timed
  /// execution. Returns 0 for acyclic graphs. Solved with Howard's policy
  /// iteration by default (mcm.hpp); kLawler selects the binary-search
  /// oracle.
  [[nodiscard]] double max_cycle_mean(McmAlgorithm algorithm = McmAlgorithm::kHoward) const;

  /// As max_cycle_mean(), but also returns the witness critical cycle:
  /// cycle_nodes are task ids, cycle_arcs are indices into edges().
  [[nodiscard]] McmResult max_cycle_mean_witness(
      McmAlgorithm algorithm = McmAlgorithm::kHoward) const;

 private:
  std::vector<TaskNode> tasks_;
  std::vector<Proc> proc_;
  std::int32_t proc_count_ = 1;
  std::vector<SyncEdge> edges_;
};

/// Buffer-synchronization protocol chosen per IPC edge (paper Section 4).
enum class SyncProtocol : std::uint8_t {
  kBbs,  ///< bounded buffer: size statically guaranteed, no acknowledgement
  kUbs,  ///< unbounded buffer: acknowledgement-based back-pressure required
};

/// Options controlling synchronization-graph construction.
struct SyncGraphOptions {
  /// Iteration distance granted by one UBS acknowledgement (credit
  /// window): the sender may run this many iterations ahead of the
  /// receiver before blocking.
  std::int64_t ubs_credit_window = 1;
};

/// Result of building G_s from an HSDF graph + self-timed schedule.
struct SyncGraphBuild {
  SyncGraph graph;
  /// Per IPC edge (index into graph.edges()): the protocol selected.
  std::vector<std::pair<std::size_t, SyncProtocol>> ipc_edges;
};

/// Per-processor task order of a self-timed schedule: order[p] lists task
/// ids in execution order.
using ProcOrder = std::vector<std::vector<std::int32_t>>;

/// Derives a per-processor task order from a flat PASS firing sequence.
[[nodiscard]] ProcOrder proc_order_from_pass(const HsdfGraph& hsdf,
                                             const std::vector<df::ActorId>& pass_firings,
                                             const Assignment& assignment);

/// Builds the synchronization graph per the recipe above. Feedback IPC
/// edges (bounded by eq. 2) get SPI_BBS; feedforward edges get SPI_UBS
/// plus an acknowledgement edge with the configured credit window.
[[nodiscard]] SyncGraphBuild build_sync_graph(const HsdfGraph& hsdf, const Assignment& assignment,
                                              const ProcOrder& order,
                                              const SyncGraphOptions& options = {});

/// Equation 2: bound (in packed tokens) on the IPC buffer of edge
/// `edge_index` (an active kIpc edge): delay(e) plus the minimum path
/// delay from snk(e) back to src(e) over the other active edges. Returns
/// nullopt when no such path exists (feedforward edge — unbounded without
/// back-pressure, hence UBS).
[[nodiscard]] std::optional<std::int64_t> ipc_buffer_bound_tokens(const SyncGraph& g,
                                                                  std::size_t edge_index);

/// As above, but reusing a caller-held path engine — the form the compile
/// pipeline uses when computing bounds for every IPC edge of one graph.
[[nodiscard]] std::optional<std::int64_t> ipc_buffer_bound_tokens(const SyncGraph& g,
                                                                  SyncPathEngine& engine,
                                                                  std::size_t edge_index);

}  // namespace spi::sched
