/// \file mcm.hpp
/// Maximum-cycle-mean / maximum-cycle-ratio solvers for synchronization
/// graphs.
///
/// The iteration-period bound of self-timed execution is the maximum over
/// cycles of (sum of task exec times) / (sum of edge delays) — a maximum
/// cycle *ratio* problem where node exec times are attributed to outgoing
/// arcs. Two solvers are provided:
///
///  * Howard's policy iteration (the default): the empirically fastest
///    known MCR algorithm (Dasdan's survey). A policy picks one outgoing
///    arc per node; the induced functional graph is evaluated exactly
///    (every policy cycle's ratio plus node potentials) and then greedily
///    improved until no arc offers a better (ratio, potential) pair. On
///    the sync graphs the pipeline produces it converges in a handful of
///    sweeps, each O(V + E) — versus the ~64 Bellman–Ford passes of the
///    binary search it replaces.
///  * Lawler's binary search over Bellman–Ford feasibility checks — the
///    historical solver, retained as a differential-test oracle
///    (tests/test_mcm.cpp) and selectable via McmAlgorithm::kLawler.
///
/// Both return a *witness*: the critical cycle (node sequence plus the
/// arc indices realizing it) whose exact ratio is the reported MCM, so
/// reports can name the tasks that bound throughput instead of just the
/// scalar.
///
/// Precondition shared by both: no zero-delay cycle (callers check
/// deadlock-freedom first; SyncGraph::max_cycle_mean throws).
#pragma once

#include <cstdint>
#include <vector>

namespace spi::sched {

/// One arc of the cycle-ratio problem: weight is the gain (exec cycles of
/// the source task), delay the iteration distance.
struct McmArc {
  std::int32_t src = 0;
  std::int32_t snk = 0;
  double weight = 0.0;
  std::int64_t delay = 0;
};

/// Solver result: the maximum cycle ratio and its witness cycle.
/// cycle_nodes[i] -> cycle_nodes[(i+1) % size] via arcs[cycle_arcs[i]];
/// both are empty when the graph has no cycle (mcm == 0).
struct McmResult {
  double mcm = 0.0;
  std::vector<std::int32_t> cycle_nodes;
  std::vector<std::size_t> cycle_arcs;  ///< indices into the input arc list
};

enum class McmAlgorithm : std::uint8_t {
  kHoward,  ///< policy iteration (default)
  kLawler,  ///< binary search oracle
};

/// Exact ratio (total weight / total delay) of the witness cycle in
/// `result` re-evaluated against `arcs`; 0 for an empty witness.
[[nodiscard]] double witness_ratio(const McmResult& result, const std::vector<McmArc>& arcs);

/// Howard's policy iteration. Nodes that cannot reach a cycle are peeled
/// first; returns 0 with an empty witness for acyclic inputs. Behaviour
/// is undefined for zero-delay cycles (check beforehand).
[[nodiscard]] McmResult max_cycle_ratio_howard(std::size_t node_count,
                                               const std::vector<McmArc>& arcs);

/// Lawler's binary search with witness extraction: after the search
/// converges, the critical cycle is recovered from the positive-cycle
/// certificate at the final lambda and the reported MCM is that cycle's
/// exact ratio.
[[nodiscard]] McmResult max_cycle_ratio_lawler(std::size_t node_count,
                                               const std::vector<McmArc>& arcs);

/// Dispatch on the algorithm flag.
[[nodiscard]] McmResult max_cycle_ratio(std::size_t node_count, const std::vector<McmArc>& arcs,
                                        McmAlgorithm algorithm = McmAlgorithm::kHoward);

/// Incremental wrapper for callers that probe many single-arc edits of
/// the same graph (the resynchronizer's preserve-throughput check): the
/// converged policy and node values persist across solves, so re-solving
/// after add_arc()/remove_arc() only pays the (usually tiny) number of
/// improvement sweeps the edit actually causes, instead of a full
/// from-scratch run per candidate edge.
class HowardSolver {
 public:
  HowardSolver() = default;
  /// (Re)initializes the solver with a fresh problem.
  void reset(std::size_t node_count, std::vector<McmArc> arcs);
  /// Appends an arc; returns its index. Invalidates nothing — the next
  /// solve() warm-starts from the previous policy.
  std::size_t add_arc(const McmArc& arc);
  /// Deactivates an arc by index (typically one just added and rejected).
  void remove_arc(std::size_t index);
  /// Solves from the current (warm) policy; repeated calls after edits
  /// are cheap. Returns the same result a fresh solver would.
  const McmResult& solve();

 private:
  std::size_t node_count_ = 0;
  std::vector<McmArc> arcs_;
  std::vector<char> arc_active_;
  std::vector<std::int32_t> policy_;  ///< node -> arc index (-1 = peeled)
  McmResult result_;
  bool policy_valid_ = false;
};

}  // namespace spi::sched
