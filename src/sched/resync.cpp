#include "sched/resync.hpp"

#include <algorithm>

#include "sched/mcm.hpp"

namespace spi::sched {

namespace {

constexpr auto kRemovable = {SyncEdgeKind::kAck, SyncEdgeKind::kResync};

/// A removable edge in the compact form the candidate scan ranks against.
struct Removable {
  std::int32_t src = 0;
  std::int32_t snk = 0;
  std::int64_t delay = 0;
};

/// Number of removable edges that a new edge x -> y with delay
/// `candidate_delay` would make redundant, given all-pairs min delays of
/// the current graph. This is a ranking heuristic: the exact redundancy
/// test re-runs after insertion. The removable list is precomputed per
/// round — the scan calls this for every (x, y) candidate pair, so
/// iterating the full edge list here would dominate the compile.
std::size_t cover_count(const std::vector<Removable>& removables,
                        const std::vector<std::vector<std::int64_t>>& dist,
                        std::int32_t x, std::int32_t y, std::int64_t candidate_delay) {
  std::size_t covered = 0;
  for (const Removable& e : removables) {
    // e = (src, snk, d) becomes redundant via src ~> x -> y ~> snk when
    // dist(src,x) + candidate_delay + dist(y,snk) <= d.
    const std::int64_t to_x = dist[static_cast<std::size_t>(e.src)][static_cast<std::size_t>(x)];
    const std::int64_t from_y = dist[static_cast<std::size_t>(y)][static_cast<std::size_t>(e.snk)];
    if (to_x == df::kUnreachable || from_y == df::kUnreachable) continue;
    if (to_x + candidate_delay + from_y <= e.delay) ++covered;
  }
  return covered;
}

}  // namespace

ResyncReport resynchronize(SyncGraph& g, const ResyncOptions& options, ResyncTrace* trace) {
  ResyncReport report;
  report.acks_before = g.count_active(SyncEdgeKind::kAck);
  report.mcm_before = g.max_cycle_mean();

  const auto active_removable_indices = [&] {
    std::vector<std::size_t> v;
    for (std::size_t i = 0; i < g.edges().size(); ++i) {
      const SyncEdge& e = g.edges()[i];
      if (!e.removed && (e.kind == SyncEdgeKind::kAck || e.kind == SyncEdgeKind::kResync))
        v.push_back(i);
    }
    return v;
  };
  const auto now_removed = [&](const std::vector<std::size_t>& snapshot) {
    std::vector<std::size_t> v;
    for (std::size_t i : snapshot)
      if (g.edges()[i].removed) v.push_back(i);
    return v;
  };
  if (trace) {
    *trace = {};
    trace->pre_resync_edges = g.edges().size();
  }

  // Phase 1: drop already-redundant acknowledgement edges.
  const auto before_phase1 = trace ? active_removable_indices() : std::vector<std::size_t>{};
  report.edges_removed += g.remove_redundant(kRemovable);
  if (trace) trace->phase1_removed = now_removed(before_phase1);

  // Phase 2: greedy insertion. Skipped beyond the size gate: each round
  // is O(V^2) candidate pairs over an all-pairs table, which is the right
  // trade at schedule-sized graphs but not at 10k tasks (where phase 1 —
  // near-linear with the path engine — already elides the bulk of acks).
  const auto n = static_cast<std::int32_t>(g.task_count());
  if (g.task_count() <= options.greedy_max_tasks) {
    // Throughput checks reuse one policy-iteration solver across every
    // inserted candidate: the converged policy is a warm start that the
    // single added arc perturbs only locally, so re-solves cost a couple
    // of O(V+E) sweeps instead of a from-scratch MCM run per candidate.
    HowardSolver solver;
    std::vector<std::ptrdiff_t> solver_arc_of_edge;
    const auto exec_of = [&](std::int32_t t) {
      return static_cast<double>(g.task(t).exec_cycles);
    };
    if (options.preserve_throughput) {
      solver_arc_of_edge.assign(g.edges().size(), -1);
      std::vector<McmArc> arcs;
      for (std::size_t i = 0; i < g.edges().size(); ++i) {
        const SyncEdge& e = g.edges()[i];
        if (e.removed) continue;
        solver_arc_of_edge[i] = static_cast<std::ptrdiff_t>(arcs.size());
        arcs.push_back(McmArc{e.src, e.snk, exec_of(e.src), e.delay});
      }
      solver.reset(g.task_count(), std::move(arcs));
    }
    while (report.edges_added < options.max_added) {
      std::vector<Removable> removables;
      for (const SyncEdge& e : g.edges())
        if (!e.removed && (e.kind == SyncEdgeKind::kAck || e.kind == SyncEdgeKind::kResync))
          removables.push_back(Removable{e.src, e.snk, e.delay});
      // No candidate can cover min_cover edges when fewer remain at all.
      if (removables.size() < options.min_cover) break;

      const auto dist = df::all_pairs_min_delay(g.digraph());

      std::int32_t best_x = -1, best_y = -1;
      std::int64_t best_delay = 0;
      std::size_t best_cover = options.min_cover - 1;
      for (std::int32_t x = 0; x < n; ++x) {
        for (std::int32_t y = 0; y < n; ++y) {
          if (x == y || g.proc_of(x) == g.proc_of(y)) continue;
          // Candidate delays: 0 (same-iteration ordering) and 1 (pipelined,
          // one iteration of slack — often the only throughput-preserving
          // way to cover acknowledgement edges). Smaller delay preferred on
          // equal cover since it is the stronger constraint.
          for (std::int64_t d : {std::int64_t{0}, std::int64_t{1}}) {
            // Feasibility: a zero-delay edge x->y must not close a
            // zero-delay cycle; delayed candidates are always feasible.
            if (d == 0 && dist[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] == 0)
              continue;
            const std::size_t cover = cover_count(removables, dist, x, y, d);
            if (cover > best_cover) {
              best_cover = cover;
              best_x = x;
              best_y = y;
              best_delay = d;
            }
          }
        }
      }
      if (best_x < 0) break;

      const std::size_t added_index = g.add_edge(
          SyncEdge{best_x, best_y, best_delay, SyncEdgeKind::kResync, df::kInvalidEdge, false});
      if (trace) trace->rounds.push_back(ResyncTrace::Round{added_index, true, false, {}});
      std::ptrdiff_t added_arc = -1;
      if (options.preserve_throughput) {
        added_arc = static_cast<std::ptrdiff_t>(
            solver.add_arc(McmArc{best_x, best_y, exec_of(best_x), best_delay}));
        solver_arc_of_edge.push_back(added_arc);
        const double mcm = solver.solve().mcm;
        if (mcm > report.mcm_before * (1.0 + 1e-9)) {
          g.edge(added_index).removed = true;  // reject: would slow the system
          solver.remove_arc(static_cast<std::size_t>(added_arc));
          if (trace) trace->rounds.back().accepted = false;
          break;
        }
      }

      // Exact removal sweep; if the ranking over-promised and fewer than
      // min_cover edges actually fall, roll the candidate back.
      const auto swept = active_removable_indices();
      const std::size_t removed_now = g.remove_redundant(kRemovable);
      if (removed_now < options.min_cover) {
        // Rolling back precisely is impossible once removals happened; only
        // roll back when nothing useful was removed at all.
        if (removed_now == 0) {
          g.edge(added_index).removed = true;
          if (added_arc >= 0) solver.remove_arc(static_cast<std::size_t>(added_arc));
          if (trace) trace->rounds.back().rolled_back = true;
          break;
        }
      }
      if (options.preserve_throughput)
        for (std::size_t i : swept)
          if (g.edges()[i].removed && solver_arc_of_edge[i] >= 0)
            solver.remove_arc(static_cast<std::size_t>(solver_arc_of_edge[i]));
      if (trace) trace->rounds.back().removed = now_removed(swept);
      report.edges_added += 1;
      report.edges_removed += removed_now;
    }
  }

  report.acks_after = g.count_active(SyncEdgeKind::kAck);
  McmResult after = g.max_cycle_mean_witness();
  report.mcm_after = after.mcm;
  report.critical_cycle = std::move(after.cycle_nodes);
  return report;
}

}  // namespace spi::sched
