#include "sched/resync.hpp"

#include <algorithm>

namespace spi::sched {

namespace {

constexpr auto kRemovable = {SyncEdgeKind::kAck, SyncEdgeKind::kResync};

/// Number of active removable edges that a new edge x -> y with delay
/// `candidate_delay` would make redundant, given all-pairs min delays of
/// the current graph. This is a ranking heuristic: the exact redundancy
/// test re-runs after insertion.
std::size_t cover_count(const SyncGraph& g,
                        const std::vector<std::vector<std::int64_t>>& dist,
                        std::int32_t x, std::int32_t y, std::int64_t candidate_delay) {
  std::size_t covered = 0;
  for (const SyncEdge& e : g.edges()) {
    if (e.removed) continue;
    if (e.kind != SyncEdgeKind::kAck && e.kind != SyncEdgeKind::kResync) continue;
    // e = (src, snk, d) becomes redundant via src ~> x -> y ~> snk when
    // dist(src,x) + candidate_delay + dist(y,snk) <= d.
    const std::int64_t to_x = dist[static_cast<std::size_t>(e.src)][static_cast<std::size_t>(x)];
    const std::int64_t from_y = dist[static_cast<std::size_t>(y)][static_cast<std::size_t>(e.snk)];
    if (to_x == df::kUnreachable || from_y == df::kUnreachable) continue;
    if (to_x + candidate_delay + from_y <= e.delay) ++covered;
  }
  return covered;
}

}  // namespace

ResyncReport resynchronize(SyncGraph& g, const ResyncOptions& options) {
  ResyncReport report;
  report.acks_before = g.count_active(SyncEdgeKind::kAck);
  report.mcm_before = g.max_cycle_mean();

  // Phase 1: drop already-redundant acknowledgement edges.
  report.edges_removed += g.remove_redundant(kRemovable);

  // Phase 2: greedy insertion.
  const auto n = static_cast<std::int32_t>(g.task_count());
  while (report.edges_added < options.max_added) {
    const auto dist = df::all_pairs_min_delay(g.digraph());

    std::int32_t best_x = -1, best_y = -1;
    std::int64_t best_delay = 0;
    std::size_t best_cover = options.min_cover - 1;
    for (std::int32_t x = 0; x < n; ++x) {
      for (std::int32_t y = 0; y < n; ++y) {
        if (x == y || g.proc_of(x) == g.proc_of(y)) continue;
        // Candidate delays: 0 (same-iteration ordering) and 1 (pipelined,
        // one iteration of slack — often the only throughput-preserving
        // way to cover acknowledgement edges). Smaller delay preferred on
        // equal cover since it is the stronger constraint.
        for (std::int64_t d : {std::int64_t{0}, std::int64_t{1}}) {
          // Feasibility: a zero-delay edge x->y must not close a
          // zero-delay cycle; delayed candidates are always feasible.
          if (d == 0 && dist[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] == 0)
            continue;
          const std::size_t cover = cover_count(g, dist, x, y, d);
          if (cover > best_cover) {
            best_cover = cover;
            best_x = x;
            best_y = y;
            best_delay = d;
          }
        }
      }
    }
    if (best_x < 0) break;

    const std::size_t added_index = g.add_edge(
        SyncEdge{best_x, best_y, best_delay, SyncEdgeKind::kResync, df::kInvalidEdge, false});

    if (options.preserve_throughput) {
      const double mcm = g.max_cycle_mean();
      if (mcm > report.mcm_before * (1.0 + 1e-9)) {
        g.edge(added_index).removed = true;  // reject: would slow the system
        break;
      }
    }

    // Exact removal sweep; if the ranking over-promised and fewer than
    // min_cover edges actually fall, roll the candidate back.
    const std::size_t removed_now = g.remove_redundant(kRemovable);
    if (removed_now < options.min_cover) {
      // Rolling back precisely is impossible once removals happened; only
      // roll back when nothing useful was removed at all.
      if (removed_now == 0) {
        g.edge(added_index).removed = true;
        break;
      }
    }
    report.edges_added += 1;
    report.edges_removed += removed_now;
  }

  report.acks_after = g.count_active(SyncEdgeKind::kAck);
  report.mcm_after = g.max_cycle_mean();
  return report;
}

}  // namespace spi::sched
