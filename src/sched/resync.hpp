/// \file resync.hpp
/// Resynchronization (paper Section 4.1).
///
/// Certain synchronization operations in a self-timed multiprocessor
/// implementation are *redundant*: their sequencing requirement is already
/// ensured by other synchronizations. Resynchronization deliberately adds
/// a small number of new synchronization edges so that a larger number of
/// existing ones become redundant, lowering net synchronization cost. The
/// paper's distributed-memory specialization targets the acknowledgement
/// edges of SPI_UBS channels: each elided acknowledgement is one fewer
/// runtime message per graph iteration.
///
/// The search is the classic greedy pairwise-cover heuristic (global
/// resynchronization is NP-hard; Sriram & Bhattacharyya reduce it to set
/// covering): repeatedly add the feasible candidate edge that makes the
/// most removable edges redundant, then sweep removals.
#pragma once

#include <cstddef>

#include "sched/sync_graph.hpp"

namespace spi::sched {

struct ResyncOptions {
  /// Reject candidates that would raise the maximum cycle mean (i.e.
  /// lower throughput). Matches "maximum-throughput resynchronization".
  bool preserve_throughput = true;
  /// Minimum number of edges a candidate must cover to be worth one new
  /// synchronization message (2 = strict net win).
  std::size_t min_cover = 2;
  /// Safety valve for the greedy loop.
  std::size_t max_added = 64;
};

struct ResyncReport {
  std::size_t edges_added = 0;    ///< kResync edges inserted
  std::size_t edges_removed = 0;  ///< redundant kAck/kResync edges elided
  std::size_t acks_before = 0;
  std::size_t acks_after = 0;
  double mcm_before = 0.0;  ///< iteration-period bound before
  double mcm_after = 0.0;   ///< and after (== before when preserved)

  /// Net change in synchronization messages per graph iteration
  /// (negative = saving).
  [[nodiscard]] std::ptrdiff_t net_message_delta() const {
    return static_cast<std::ptrdiff_t>(edges_added) - static_cast<std::ptrdiff_t>(edges_removed);
  }
};

/// Runs redundant-edge elimination and greedy resynchronization on g.
/// Only kAck and kResync edges are ever removed: IPC edges carry data and
/// sequence edges are the processor schedules themselves. The graph is
/// left deadlock-free; with preserve_throughput the MCM does not increase.
ResyncReport resynchronize(SyncGraph& g, const ResyncOptions& options = {});

}  // namespace spi::sched
