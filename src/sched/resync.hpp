/// \file resync.hpp
/// Resynchronization (paper Section 4.1).
///
/// Certain synchronization operations in a self-timed multiprocessor
/// implementation are *redundant*: their sequencing requirement is already
/// ensured by other synchronizations. Resynchronization deliberately adds
/// a small number of new synchronization edges so that a larger number of
/// existing ones become redundant, lowering net synchronization cost. The
/// paper's distributed-memory specialization targets the acknowledgement
/// edges of SPI_UBS channels: each elided acknowledgement is one fewer
/// runtime message per graph iteration.
///
/// The search is the classic greedy pairwise-cover heuristic (global
/// resynchronization is NP-hard; Sriram & Bhattacharyya reduce it to set
/// covering): repeatedly add the feasible candidate edge that makes the
/// most removable edges redundant, then sweep removals.
#pragma once

#include <cstddef>

#include "sched/sync_graph.hpp"

namespace spi::sched {

struct ResyncOptions {
  /// Reject candidates that would raise the maximum cycle mean (i.e.
  /// lower throughput). Matches "maximum-throughput resynchronization".
  bool preserve_throughput = true;
  /// Minimum number of edges a candidate must cover to be worth one new
  /// synchronization message (2 = strict net win).
  std::size_t min_cover = 2;
  /// Safety valve for the greedy loop.
  std::size_t max_added = 64;
  /// Above this many tasks the O(V^2)-per-round greedy insertion phase is
  /// skipped and only redundant-edge elimination runs — the phase-1 sweep
  /// stays near-linear and is where almost all ack elisions come from.
  std::size_t greedy_max_tasks = 2048;
};

struct ResyncReport {
  std::size_t edges_added = 0;    ///< kResync edges inserted
  std::size_t edges_removed = 0;  ///< redundant kAck/kResync edges elided
  std::size_t acks_before = 0;
  std::size_t acks_after = 0;
  double mcm_before = 0.0;  ///< iteration-period bound before
  double mcm_after = 0.0;   ///< and after (== before when preserved)
  /// Witness critical cycle of mcm_after: the task ids (sync-graph
  /// vertices) of the cycle whose mean realizes the bound. Empty when the
  /// final graph is acyclic.
  std::vector<std::int32_t> critical_cycle;

  /// Net change in synchronization messages per graph iteration
  /// (negative = saving).
  [[nodiscard]] std::ptrdiff_t net_message_delta() const {
    return static_cast<std::ptrdiff_t>(edges_added) - static_cast<std::ptrdiff_t>(edges_removed);
  }
};

/// Decision trace of one resynchronize() run, recorded for incremental
/// recompilation. Every decision except the per-insertion throughput
/// check depends only on topology and delays — never on exec times — so
/// an exec-only edit can *replay* the trace, re-evaluating just the
/// throughput verdicts, and reuse the structural outcome wholesale when
/// every verdict matches (see core/pipeline.cpp).
struct ResyncTrace {
  std::size_t pre_resync_edges = 0;  ///< edge count before any insertion
  std::vector<std::size_t> phase1_removed;  ///< initial sweep's removals
  struct Round {
    std::size_t edge_index = 0;  ///< the inserted kResync edge
    bool accepted = true;        ///< throughput verdict (false ended the run)
    bool rolled_back = false;    ///< accepted but its sweep removed nothing
    std::vector<std::size_t> removed;  ///< edges the post-insert sweep removed
  };
  std::vector<Round> rounds;
};

/// Runs redundant-edge elimination and greedy resynchronization on g.
/// Only kAck and kResync edges are ever removed: IPC edges carry data and
/// sequence edges are the processor schedules themselves. The graph is
/// left deadlock-free; with preserve_throughput the MCM does not increase.
/// When `trace` is non-null the decision sequence is recorded into it.
ResyncReport resynchronize(SyncGraph& g, const ResyncOptions& options = {},
                           ResyncTrace* trace = nullptr);

}  // namespace spi::sched
