#include "sched/assignment.hpp"

#include <algorithm>
#include <stdexcept>

#include "dataflow/graph_algos.hpp"

namespace spi::sched {

std::vector<df::ActorId> Assignment::actors_on(Proc p) const {
  std::vector<df::ActorId> result;
  for (std::size_t a = 0; a < proc_of_.size(); ++a)
    if (proc_of_[a] == p) result.push_back(static_cast<df::ActorId>(a));
  return result;
}

std::vector<df::EdgeId> Assignment::interprocessor_edges(const df::Graph& g) const {
  if (g.actor_count() != proc_of_.size())
    throw std::invalid_argument("Assignment: graph/assignment size mismatch");
  std::vector<df::EdgeId> result;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const df::Edge& edge = g.edge(static_cast<df::EdgeId>(e));
    if (proc_of(edge.src) != proc_of(edge.snk)) result.push_back(static_cast<df::EdgeId>(e));
  }
  return result;
}

namespace {

/// Static b-level (longest path to any sink, counting exec times) over
/// the zero-delay precedence DAG. Edges with delay >= 1 cross iteration
/// boundaries and impose no intra-iteration precedence.
std::vector<std::int64_t> b_levels(const df::Graph& g) {
  df::WeightedDigraph prec(g.actor_count());
  for (const df::Edge& e : g.edges())
    if (e.delay == 0) prec.add_arc(e.src, e.snk, 0);
  const auto order = df::topological_order(prec);
  if (!order)
    throw std::logic_error("list_schedule: zero-delay cycle (graph deadlocks)");

  std::vector<std::int64_t> level(g.actor_count(), 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const auto u = static_cast<std::size_t>(*it);
    std::int64_t best = 0;
    for (const auto& arc : prec.arcs(*it))
      best = std::max(best, level[static_cast<std::size_t>(arc.to)]);
    level[u] = best + g.actor(*it).exec_cycles;
  }
  return level;
}

}  // namespace

Assignment list_schedule(const df::Graph& g, std::int32_t proc_count,
                         const CommCostModel& comm) {
  Assignment assignment(g.actor_count(), proc_count);
  if (g.actor_count() == 0) return assignment;

  const std::vector<std::int64_t> level = b_levels(g);

  // Priority order: descending b-level, actor id as deterministic tie-break.
  std::vector<df::ActorId> order(g.actor_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<df::ActorId>(i);
  std::stable_sort(order.begin(), order.end(), [&](df::ActorId a, df::ActorId b) {
    return level[static_cast<std::size_t>(a)] > level[static_cast<std::size_t>(b)];
  });

  std::vector<std::int64_t> proc_ready(static_cast<std::size_t>(proc_count), 0);
  std::vector<std::int64_t> finish(g.actor_count(), 0);

  for (df::ActorId a : order) {
    // Earliest finish time on each candidate processor, accounting for
    // IPC cost from already-placed zero-delay predecessors.
    Proc best_proc = 0;
    std::int64_t best_finish = -1;
    for (Proc p = 0; p < proc_count; ++p) {
      std::int64_t ready = proc_ready[static_cast<std::size_t>(p)];
      for (df::EdgeId eid : g.in_edges(a)) {
        const df::Edge& e = g.edge(eid);
        if (e.delay > 0) continue;
        std::int64_t arrival = finish[static_cast<std::size_t>(e.src)];
        if (assignment.proc_of(e.src) != p)
          arrival += comm.cost(e.cons.bound() * e.token_bytes);
        ready = std::max(ready, arrival);
      }
      const std::int64_t f = ready + g.actor(a).exec_cycles;
      if (best_finish < 0 || f < best_finish) {
        best_finish = f;
        best_proc = p;
      }
    }
    assignment.assign(a, best_proc);
    finish[static_cast<std::size_t>(a)] = best_finish;
    proc_ready[static_cast<std::size_t>(best_proc)] = best_finish;
  }
  return assignment;
}

}  // namespace spi::sched
