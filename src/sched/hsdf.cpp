#include "sched/hsdf.hpp"

#include <map>
#include <stdexcept>

namespace spi::sched {

HsdfGraph hsdf_expand(const df::Graph& g, const df::Repetitions& reps) {
  if (!g.is_sdf()) throw std::logic_error("hsdf_expand: graph is not pure SDF");
  if (!reps.consistent) throw std::logic_error("hsdf_expand: inconsistent graph");

  HsdfGraph out;
  out.first_task.reserve(g.actor_count());
  for (std::size_t a = 0; a < g.actor_count(); ++a) {
    const auto id = static_cast<df::ActorId>(a);
    out.first_task.push_back(static_cast<std::int32_t>(out.tasks.size()));
    const std::int64_t q = reps.of(id);
    for (std::int64_t f = 0; f < q; ++f) {
      TaskNode node;
      node.actor = id;
      node.firing = static_cast<std::int32_t>(f);
      node.exec_cycles = g.actor(id).exec_cycles;
      node.name = q == 1 ? g.actor(id).name
                         : g.actor(id).name + "#" + std::to_string(f);
      out.tasks.push_back(std::move(node));
    }
  }

  // For each SDF edge, trace every token produced during one iteration to
  // the firing that consumes it; merge parallel arcs keeping min delay.
  std::map<std::pair<std::int32_t, std::int32_t>, std::size_t> arc_index;
  for (std::size_t eid = 0; eid < g.edge_count(); ++eid) {
    const df::Edge& e = g.edge(static_cast<df::EdgeId>(eid));
    const std::int64_t p = e.prod.value();
    const std::int64_t c = e.cons.value();
    const std::int64_t q_src = reps.of(e.src);
    const std::int64_t q_snk = reps.of(e.snk);
    for (std::int64_t i = 0; i < q_src; ++i) {
      for (std::int64_t j = 0; j < p; ++j) {
        const std::int64_t token = e.delay + i * p + j;  // absolute token index
        const std::int64_t consumer_firing = token / c;  // global firing index of snk
        const std::int64_t delay = consumer_firing / q_snk;    // iterations crossed
        const std::int64_t firing_in_iter = consumer_firing % q_snk;
        const std::int32_t src_task = out.task_of(e.src, static_cast<std::int32_t>(i));
        const std::int32_t snk_task = out.task_of(e.snk, static_cast<std::int32_t>(firing_in_iter));
        const auto key = std::make_pair(src_task, snk_task);
        auto it = arc_index.find(key);
        if (it == arc_index.end()) {
          arc_index.emplace(key, out.arcs.size());
          out.arcs.push_back(TaskArc{src_task, snk_task, delay, static_cast<df::EdgeId>(eid)});
        } else if (delay < out.arcs[it->second].delay) {
          out.arcs[it->second].delay = delay;
          out.arcs[it->second].dataflow_edge = static_cast<df::EdgeId>(eid);
        }
      }
    }
  }
  return out;
}

}  // namespace spi::sched
