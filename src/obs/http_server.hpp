/// \file http_server.hpp
/// Dependency-free embedded HTTP server: the socket/poll plumbing shared
/// by the telemetry endpoints (ObsServer) and the serving daemon's
/// ingest path (serve::PlanServer).
///
/// One event-loop thread over plain POSIX sockets, no TLS, no
/// third-party code. Speaks HTTP/1.1 with keep-alive and request
/// pipelining — a client may write many requests back-to-back on one
/// connection; the server parses every complete request out of each read
/// burst, dispatches them (batched, if a BatchHandler is installed),
/// and answers in order with correct Content-Length framing. HTTP/1.0
/// clients keep the old single-request contract: one request, one
/// response, `Connection: close` — existing scrapers and the curl-less
/// CI probes work unchanged.
///
/// Pipelining + batching is what makes a ≥100k req/s ingest rate
/// reachable on one core: the per-request cost collapses to parsing,
/// and the handler is invoked once per burst instead of once per
/// request (docs/serving.md, "Batched firing").
///
/// Binding port 0 (the default) asks the kernel for an ephemeral port;
/// `port()` reports the bound one. The server owns no data: it renders
/// through the installed handler(s), which must stay valid between
/// start() and stop(). Handlers run on the event-loop thread — they must
/// synchronize with any state they share with other threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace spi::obs {

/// One parsed request, body already assembled from Content-Length.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< origin-form target, query string included
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::string body;     ///< Content-Length bytes (empty without one)
  bool keep_alive = false;  ///< connection survives after the response
};

/// One rendered HTTP response (routing result, pre-serialization).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  /// Per-request dispatch.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Per-burst dispatch: every complete pipelined request parsed from
  /// one read, in arrival order; the handler must append exactly one
  /// response per request, in the same order. When installed it takes
  /// precedence over Handler (and is also used for bursts of one).
  using BatchHandler =
      std::function<void(std::span<HttpRequest>, std::vector<HttpResponse>&)>;

  struct Options {
    int port = 0;  ///< 0 = kernel-assigned ephemeral port
    std::string bind_address = "127.0.0.1";
    Handler handler;
    BatchHandler batch_handler;
    /// Connections beyond this are accepted and immediately shed with
    /// 503 + close (the poll set stays bounded).
    std::size_t max_connections = 64;
  };

  explicit HttpServer(Options options);
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();

  /// Binds, listens and spawns the event-loop thread. Throws
  /// std::runtime_error when the socket cannot be set up.
  void start();
  /// Stops accepting, closes every connection and joins the loop.
  void stop();

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  /// The bound TCP port (resolves port-0 requests), 0 before start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection parse state: bytes read but not yet consumed.
  struct Connection {
    int fd = -1;
    std::string inbox;
  };

  void serve();
  /// Parses every complete request out of conn.inbox (consuming them),
  /// dispatches, and writes the serialized responses in one send.
  /// Returns false when the connection must be closed.
  bool process_input(Connection& conn);

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> requests_{0};
};

}  // namespace spi::obs
