/// \file watchdog.hpp
/// Stall-detecting progress watchdog for the threaded runtime.
///
/// ThreadedRuntime publishes one heartbeat epoch per worker — a relaxed
/// atomic counter bumped once per firing (the only hot-path cost is that
/// single store to a worker-private cache line). The watchdog samples
/// those epochs from its own monitor thread: when *no* live worker's
/// epoch advances for a configurable window, the run has stopped making
/// progress, and the watchdog classifies the stall from the workers'
/// published wait state:
///
///  * **deadlock**  — every stalled worker is blocked on a channel
///    operation; the report names the channel with the most waiters
///    (in the classic dropped-forever reliability stall that is the
///    dead edge, with its producer stuck retransmitting and its
///    consumer stuck in the receive timeout).
///  * **slow-actor** — at least one stalled worker is *inside* a
///    compute function (not waiting on any channel); the others are
///    victims of its back-pressure. The report names the actor.
///  * **livelock**  — workers are neither waiting nor inside an actor
///    (e.g. spinning between firings) yet nothing advances.
///
/// The watchdog itself is runtime-agnostic: it sees the world only
/// through the `Hooks` (a snapshot function plus name resolvers), so it
/// lives in obs without a dependency on core. ThreadedRuntime wires it
/// up in run(), dumps a flight-recorder post-mortem + /runtime snapshot
/// when it fires, and turns the report into a StallError when
/// `abort_on_stall` is set. docs/observability.md ("Live telemetry")
/// covers tuning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace spi::obs {

/// One worker's published state as sampled by the watchdog (and served
/// by /runtime). All fields come from relaxed per-worker atomics, so a
/// snapshot is approximate across workers but exact enough for
/// liveness: an epoch that never changes is a worker that never fires.
struct WorkerSnapshot {
  std::int32_t proc = 0;
  std::uint64_t epoch = 0;        ///< firings completed (heartbeat)
  std::int64_t iteration = 0;     ///< graph iteration being executed
  std::int64_t completed = 0;     ///< graph iterations fully completed
  std::int32_t step = -1;         ///< index into the proc's firing program
  std::int32_t actor = -1;        ///< actor of the current firing (-1 between firings)
  std::int32_t waiting_edge = -1; ///< edge id of the channel op in progress (-1: none)
  std::int32_t waiting_side = -1; ///< 0 = consuming inputs, 1 = producing outputs
  bool done = false;              ///< worker finished its iterations (or unwound)
};

enum class StallKind { kNone, kDeadlock, kLivelock, kSlowActor };

/// "deadlock" / "livelock" / "slow-actor" / "none" — used in report
/// JSON, post-mortem dump filenames and /healthz verdicts.
[[nodiscard]] const char* to_string(StallKind kind);

/// Everything the watchdog knows about one detected stall.
struct StallReport {
  StallKind kind = StallKind::kNone;
  std::string classification;       ///< to_string(kind)
  std::int32_t edge = -1;           ///< blocking edge (deadlock) or -1
  std::string channel;              ///< name of the blocking channel, "" if none
  std::int32_t actor = -1;          ///< stuck actor (slow-actor) or -1
  std::string actor_name;           ///< resolved actor name, "" if none
  std::int64_t window_ms = 0;       ///< configured no-progress window
  std::int64_t stalled_ms = 0;      ///< measured time since the last progress
  /// Iteration spread across the live workers at detection — under
  /// cross-iteration pipelining the stalled workers are legitimately on
  /// *different* iterations, and the spread tells the operator how deep
  /// the overlapped window was when it wedged.
  std::int64_t iteration_min = 0;   ///< lowest live-worker iteration
  std::int64_t iteration_max = 0;   ///< highest live-worker iteration
  std::int64_t inflight_iterations = 0;  ///< iteration_max - iteration_min + 1 (0: no live workers)
  std::string message;              ///< one-line human summary
  std::vector<WorkerSnapshot> workers;  ///< per-worker state at detection

  /// Self-contained JSON object (strict, json_check-clean); embedded
  /// verbatim in watchdog post-mortem dumps and /runtime output.
  [[nodiscard]] std::string to_json() const;
};

/// Liveness verdict served by /healthz.
struct HealthStatus {
  bool ok = true;
  std::string verdict = "ok";       ///< "ok" | "idle" | "stalled: ..."
  std::int64_t last_progress_ms = 0;  ///< ms since a worker last advanced
  std::int64_t window_ms = 0;         ///< configured stall window (0: no watchdog)
  [[nodiscard]] std::string to_json() const;
};

/// Watchdog configuration carried by RunOptions.
struct WatchdogOptions {
  bool enabled = false;
  std::int64_t window_ms = 1000;  ///< no-progress window before a stall fires
  std::int64_t poll_ms = 0;       ///< epoch sampling period; 0 = max(10, window/4)
  /// Directory for the stall post-mortem (flight dump + runtime
  /// snapshot), written by ThreadedRuntime when the watchdog fires.
  /// Empty = current directory.
  std::string dump_dir;
  /// When true (default) a stall aborts the run: workers are
  /// interrupted and run() throws StallError after dumping the
  /// post-mortem. When false the run is left executing (the callback
  /// observes the stall; /healthz turns unhealthy).
  bool abort_on_stall = true;
  /// User callback invoked once per stall episode, from the monitor
  /// thread, before any abort is initiated.
  std::function<void(const StallReport&)> on_stall;

  [[nodiscard]] std::int64_t effective_poll_ms() const {
    if (poll_ms > 0) return poll_ms;
    return window_ms / 4 > 10 ? window_ms / 4 : 10;
  }
};

/// Thrown out of ThreadedRuntime::run() when the watchdog aborts a
/// stalled run (abort_on_stall). Carries the full report.
class StallError : public std::runtime_error {
 public:
  explicit StallError(StallReport report);
  [[nodiscard]] const StallReport& report() const { return report_; }

 private:
  StallReport report_;
};

/// The monitor: samples worker snapshots on its own thread, detects
/// no-progress windows, classifies them and fires the hooks. Re-arms
/// when progress resumes (each stall episode fires once).
class ProgressWatchdog {
 public:
  struct Hooks {
    /// Required: the current per-worker state (ThreadedRuntime reads
    /// its relaxed worker atomics).
    std::function<std::vector<WorkerSnapshot>()> snapshot;
    /// Optional name resolvers for the report.
    std::function<std::string(std::int32_t)> actor_name;
    std::function<std::string(std::int32_t)> channel_name;
    /// Fired once per stall episode from the monitor thread (after the
    /// user callback in `options.on_stall`, which fires first). The
    /// runtime uses this to dump post-mortems and abort.
    std::function<void(const StallReport&)> on_stall;
  };

  ProgressWatchdog(WatchdogOptions options, Hooks hooks);
  ProgressWatchdog(const ProgressWatchdog&) = delete;
  ProgressWatchdog& operator=(const ProgressWatchdog&) = delete;
  ~ProgressWatchdog();

  void start();
  void stop();

  [[nodiscard]] bool stalled() const { return stalled_.load(std::memory_order_relaxed); }
  /// Last stall report (kind == kNone when no stall ever fired).
  [[nodiscard]] StallReport last_report() const;
  /// Liveness verdict for /healthz.
  [[nodiscard]] HealthStatus health() const;

  /// Pure classification logic, exposed for unit tests: given the
  /// stalled worker set and the measured stall duration, produce the
  /// report (names resolved through the hooks).
  [[nodiscard]] StallReport classify(const std::vector<WorkerSnapshot>& workers,
                                     std::int64_t stalled_ms) const;

 private:
  void monitor();

  WatchdogOptions options_;
  Hooks hooks_;

  std::thread thread_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;

  std::atomic<bool> stalled_{false};
  std::atomic<std::int64_t> last_progress_ns_{0};
  StallReport last_report_;  ///< guarded by mutex_
};

}  // namespace spi::obs
