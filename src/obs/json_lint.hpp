/// \file json_lint.hpp
/// Tiny strict JSON validator shared by tools/json_check and the test
/// suites that assert exporter/endpoint output is well-formed (the live
/// telemetry scrape tests hammer /metrics.json and /runtime from client
/// threads and validate every response). Recursive-descent over the
/// whole input; a document is valid iff it is exactly one JSON value
/// followed by nothing but whitespace.
#pragma once

#include <cctype>
#include <string>

namespace spi::obs::detail {

class JsonLint {
 public:
  explicit JsonLint(const std::string& text) : text_(text) {}

  /// Returns an empty string on success, else "offset N: message".
  std::string validate() {
    skip_ws();
    if (!value()) return error_;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after JSON value");
    return {};
  }

 private:
  bool fail_bool(const std::string& message) {
    if (error_.empty()) error_ = "offset " + std::to_string(pos_) + ": " + message;
    return false;
  }
  std::string fail(const std::string& message) {
    fail_bool(message);
    return error_;
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return fail_bool("invalid literal");
    pos_ += n;
    return true;
  }

  bool value() {
    if (depth_ > 256) return fail_bool("nesting too deep");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    consume('{');
    skip_ws();
    if (consume('}')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail_bool("expected string key");
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return fail_bool("expected ':' after key");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return true;
      }
      return fail_bool("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++depth_;
    consume('[');
    skip_ws();
    if (consume(']')) {
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return true;
      }
      return fail_bool("expected ',' or ']' in array");
    }
  }

  bool string() {
    consume('"');
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail_bool("raw control char in string");
      if (c == '\\') {
        ++pos_;
        const char esc = peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_)
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return fail_bool("bad \\u escape");
          continue;
        }
        if (std::string("\"\\/bfnrt").find(esc) == std::string::npos)
          return fail_bool("bad escape character");
      }
      ++pos_;
    }
    return fail_bool("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    consume('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail_bool("expected a value");
    if (consume('0')) {
      // no leading zeros
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail_bool("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return fail_bool("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

/// Validates `text` as one strict JSON document. Empty result = valid;
/// otherwise "offset N: message".
[[nodiscard]] inline std::string json_validate(const std::string& text) {
  return JsonLint(text).validate();
}

}  // namespace spi::obs::detail
