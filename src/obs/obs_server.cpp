#include "obs/obs_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spi::obs {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Serializes one response and writes it fully (best effort — a client
/// that hung up mid-write is its own problem, never the server's).
void write_response(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    reason_phrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads until the end of the request head ("\r\n\r\n") or 4 KiB,
/// whichever comes first. We only route on the request line, so the
/// head is all we ever need; SO_RCVTIMEO bounds a stalled client.
std::string read_request_head(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 4096 && head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    head.append(buf, static_cast<std::size_t>(n));
  }
  return head;
}

}  // namespace

ObsServer::ObsServer(Options options) : options_(std::move(options)) {}

ObsServer::~ObsServer() { stop(); }

void ObsServer::start() {
  if (listen_fd_ >= 0) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("ObsServer: socket() failed");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("ObsServer: invalid bind address '" + options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("ObsServer: cannot bind " + options_.bind_address + ":" +
                             std::to_string(options_.port) + " (" + std::strerror(err) + ")");
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("ObsServer: listen() failed (") + std::strerror(err) +
                             ")");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = static_cast<int>(ntohs(bound.sin_port));

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve(); });
}

void ObsServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  // Kick the acceptor out of poll()/accept() by retiring the listener.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

HttpResponse ObsServer::handle(const std::string& method, const std::string& target) const {
  if (method != "GET") {
    return {405, "text/plain; charset=utf-8", "method not allowed\n"};
  }
  // Strip any query string: /healthz?verbose=1 routes as /healthz.
  const std::string path = target.substr(0, target.find('?'));

  if (path == "/") {
    return {200, "text/plain; charset=utf-8",
            "spi observability endpoints:\n"
            "  /metrics       Prometheus text exposition\n"
            "  /metrics.json  JSON metrics export\n"
            "  /healthz       liveness / progress verdict\n"
            "  /runtime       live per-worker and per-channel state\n"};
  }
  if (path == "/metrics") {
    if (options_.registry == nullptr)
      return {404, "text/plain; charset=utf-8", "no metric registry attached\n"};
    if (options_.refresh) options_.refresh();
    return {200, "text/plain; version=0.0.4; charset=utf-8", options_.registry->to_prometheus()};
  }
  if (path == "/metrics.json") {
    if (options_.registry == nullptr)
      return {404, "text/plain; charset=utf-8", "no metric registry attached\n"};
    if (options_.refresh) options_.refresh();
    return {200, "application/json", options_.registry->to_json()};
  }
  if (path == "/healthz") {
    HealthStatus status;
    if (options_.health) {
      status = options_.health();
    } else {
      status.verdict = "no-watchdog";
    }
    return {status.ok ? 200 : 503, "application/json", status.to_json() + "\n"};
  }
  if (path == "/runtime") {
    if (!options_.runtime_json)
      return {404, "text/plain; charset=utf-8", "no runtime attached\n"};
    if (options_.refresh) options_.refresh();
    return {200, "application/json", options_.runtime_json() + "\n"};
  }
  return {404, "text/plain; charset=utf-8", "unknown endpoint '" + path + "'\n"};
}

void ObsServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

    const std::string head = read_request_head(conn);
    // Request line: METHOD SP TARGET SP VERSION.
    const std::size_t m_end = head.find(' ');
    const std::size_t t_end = m_end == std::string::npos ? std::string::npos
                                                         : head.find(' ', m_end + 1);
    HttpResponse response;
    if (t_end == std::string::npos) {
      response = {400, "text/plain; charset=utf-8", "malformed request line\n"};
    } else {
      response = handle(head.substr(0, m_end), head.substr(m_end + 1, t_end - m_end - 1));
    }
    // Counted before the reply leaves: a client that has read a full
    // response can rely on requests_served() already covering it.
    requests_.fetch_add(1, std::memory_order_relaxed);
    write_response(conn, response);
    ::close(conn);
  }
}

}  // namespace spi::obs
