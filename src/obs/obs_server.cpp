#include "obs/obs_server.hpp"

#include "obs/text_escape.hpp"

namespace spi::obs {

ObsServer::ObsServer(Options options) : options_(std::move(options)) {}

ObsServer::~ObsServer() { stop(); }

void ObsServer::start() {
  if (http_) return;
  HttpServer::Options http_options;
  http_options.port = options_.port;
  http_options.bind_address = options_.bind_address;
  http_options.handler = [this](const HttpRequest& request) {
    return handle(request.method, request.target);
  };
  http_ = std::make_unique<HttpServer>(std::move(http_options));
  http_->start();
}

void ObsServer::stop() {
  if (!http_) return;
  http_->stop();
  http_.reset();
}

HttpResponse ObsServer::handle(const std::string& method, const std::string& target) const {
  if (method != "GET") {
    return {405, "application/json", "{\"error\": \"method not allowed\"}\n"};
  }
  // Strip any query string: /healthz?verbose=1 routes as /healthz.
  const std::string path = target.substr(0, target.find('?'));

  if (path == "/") {
    return {200, "text/plain; charset=utf-8",
            "spi observability endpoints:\n"
            "  /metrics       Prometheus text exposition\n"
            "  /metrics.json  JSON metrics export\n"
            "  /healthz       liveness / progress verdict\n"
            "  /runtime       live per-worker and per-channel state\n"};
  }
  if (path == "/metrics") {
    if (options_.registry == nullptr)
      return {404, "application/json", "{\"error\": \"no metric registry attached\"}\n"};
    if (options_.refresh) options_.refresh();
    return {200, "text/plain; version=0.0.4; charset=utf-8", options_.registry->to_prometheus()};
  }
  if (path == "/metrics.json") {
    if (options_.registry == nullptr)
      return {404, "application/json", "{\"error\": \"no metric registry attached\"}\n"};
    if (options_.refresh) options_.refresh();
    return {200, "application/json", options_.registry->to_json()};
  }
  if (path == "/healthz") {
    HealthStatus status;
    if (options_.health) {
      status = options_.health();
    } else {
      status.verdict = "no-watchdog";
    }
    return {status.ok ? 200 : 503, "application/json", status.to_json() + "\n"};
  }
  if (path == "/runtime") {
    if (!options_.runtime_json)
      return {404, "application/json", "{\"error\": \"no runtime attached\"}\n"};
    if (options_.refresh) options_.refresh();
    return {200, "application/json", options_.runtime_json() + "\n"};
  }
  return {404, "application/json",
          "{\"error\": \"unknown endpoint '" + detail::json_escaped(path) + "'\"}\n"};
}

}  // namespace spi::obs
