#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spi::obs {

namespace {

// Bounds chosen for an embedded control-plane server: a request head
// larger than 8 KiB or a body larger than 8 MiB is a client bug (or an
// attack), not traffic we want to buffer.
constexpr std::size_t kMaxHeadBytes = 8 * 1024;
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

enum class ParseResult { kRequest, kNeedMore, kBad };

/// Parses one request off the front of `inbox` (erasing what it
/// consumed). kNeedMore = the head or the declared body is incomplete.
ParseResult parse_request(std::string& inbox, HttpRequest& out) {
  const std::size_t head_end = inbox.find("\r\n\r\n");
  if (head_end == std::string::npos)
    return inbox.size() > kMaxHeadBytes ? ParseResult::kBad : ParseResult::kNeedMore;
  if (head_end > kMaxHeadBytes) return ParseResult::kBad;

  const std::string_view head(inbox.data(), head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line = head.substr(0, line_end);
  const std::size_t m_end = request_line.find(' ');
  const std::size_t t_end =
      m_end == std::string_view::npos ? std::string_view::npos : request_line.find(' ', m_end + 1);
  if (t_end == std::string_view::npos) return ParseResult::kBad;
  out.method = std::string(request_line.substr(0, m_end));
  out.target = std::string(request_line.substr(m_end + 1, t_end - m_end - 1));
  out.version = std::string(trimmed(request_line.substr(t_end + 1)));
  if (out.method.empty() || out.target.empty() ||
      (out.version != "HTTP/1.0" && out.version != "HTTP/1.1"))
    return ParseResult::kBad;

  // Headers we act on: Content-Length frames the body, Connection
  // overrides the version's keep-alive default.
  std::size_t content_length = 0;
  bool have_connection = false;
  std::string_view connection;
  std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view name = trimmed(line.substr(0, colon));
    const std::string_view value = trimmed(line.substr(colon + 1));
    if (iequals(name, "content-length")) {
      content_length = 0;
      for (const char c : value) {
        if (c < '0' || c > '9') return ParseResult::kBad;
        content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
        if (content_length > kMaxBodyBytes) return ParseResult::kBad;
      }
    } else if (iequals(name, "connection")) {
      have_connection = true;
      connection = value;
    } else if (iequals(name, "transfer-encoding")) {
      // Chunked bodies are out of scope for this embedded server.
      return ParseResult::kBad;
    }
  }

  const std::size_t total = head_end + 4 + content_length;
  if (inbox.size() < total) return ParseResult::kNeedMore;
  out.body = inbox.substr(head_end + 4, content_length);

  // Keep-alive: the HTTP/1.1 default, opt-out via "Connection: close".
  // HTTP/1.0 stays single-request even if the client asks — old clients
  // of the telemetry server read to EOF, and that contract is kept.
  out.keep_alive = out.version == "HTTP/1.1" &&
                   !(have_connection && iequals(connection, "close"));
  inbox.erase(0, total);
  return ParseResult::kRequest;
}

void serialize_response(std::string& out, const HttpRequest& request,
                        const HttpResponse& response) {
  // The response echoes the request's protocol flavor so an HTTP/1.0
  // client never sees a version it may not understand.
  out += request.version;
  out += ' ';
  out += std::to_string(response.status);
  out += ' ';
  out += reason_phrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += request.keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                            : "\r\nConnection: close\r\n\r\n";
  out += response.body;
}

}  // namespace

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (listen_fd_ >= 0) return;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("HttpServer: socket() failed");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("HttpServer: invalid bind address '" + options_.bind_address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("HttpServer: cannot bind " + options_.bind_address + ":" +
                             std::to_string(options_.port) + " (" + std::strerror(err) + ")");
  }
  // Non-blocking listener: the event loop drains the whole accept
  // backlog per poll tick without risking a block on the last accept.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("HttpServer: listen() failed (") + std::strerror(err) +
                             ")");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = static_cast<int>(ntohs(bound.sin_port));

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve(); });
}

void HttpServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  // Kick the event loop out of poll() by retiring the listener.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

bool HttpServer::process_input(Connection& conn) {
  // Drain every complete pipelined request out of the inbox, dispatch
  // them as one batch, and answer with one send. The burst size is the
  // client's pipeline depth — this is where the per-request cost
  // amortizes.
  std::vector<HttpRequest> requests;
  bool bad = false;
  for (;;) {
    HttpRequest request;
    const ParseResult result = parse_request(conn.inbox, request);
    if (result == ParseResult::kNeedMore) break;
    if (result == ParseResult::kBad) {
      bad = true;
      break;
    }
    const bool keep = request.keep_alive;
    requests.push_back(std::move(request));
    if (!keep) break;  // anything pipelined after "close" is ignored
  }

  std::vector<HttpResponse> responses;
  if (!requests.empty()) {
    responses.reserve(requests.size());
    if (options_.batch_handler) {
      options_.batch_handler({requests.data(), requests.size()}, responses);
      if (responses.size() != requests.size()) {
        responses.assign(requests.size(),
                         {500, "application/json", "{\"error\": \"batch handler miscount\"}\n"});
      }
    } else if (options_.handler) {
      for (const HttpRequest& request : requests) responses.push_back(options_.handler(request));
    } else {
      responses.assign(requests.size(),
                       {503, "application/json", "{\"error\": \"no handler installed\"}\n"});
    }
  }

  std::string wire;
  for (std::size_t i = 0; i < requests.size(); ++i)
    serialize_response(wire, requests[i], responses[i]);
  if (bad) {
    static const HttpRequest kBadRequest{"GET", "/", "HTTP/1.0", "", false};
    serialize_response(wire, kBadRequest,
                       {400, "application/json", "{\"error\": \"malformed request\"}\n"});
  }
  // Counted before the reply leaves: a client that has read a full
  // response can rely on requests_served() already covering it.
  requests_.fetch_add(static_cast<std::int64_t>(requests.size()) + (bad ? 1 : 0),
                      std::memory_order_relaxed);
  if (!wire.empty() && !send_all(conn.fd, wire)) return false;
  if (bad) return false;
  return requests.empty() || requests.back().keep_alive;
}

void HttpServer::serve() {
  std::vector<Connection> connections;
  std::vector<pollfd> pfds;
  char buf[64 * 1024];

  const auto close_connection = [&](std::size_t index) {
    ::close(connections[index].fd);
    connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(index));
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Connection& conn : connections) pfds.push_back({conn.fd, POLLIN, 0});

    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), /*timeout_ms=*/200);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;

    if (pfds[0].revents != 0) {
      // Accept the whole backlog: at high connection-churn rates one
      // accept per poll tick would itself become the bottleneck.
      for (;;) {
        const int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn < 0) break;
        if (connections.size() >= options_.max_connections) {
          static const HttpRequest kShed{"GET", "/", "HTTP/1.0", "", false};
          std::string wire;
          serialize_response(wire, kShed,
                             {503, "application/json", "{\"error\": \"connection limit reached\"}\n"});
          send_all(conn, wire);
          ::close(conn);
          continue;
        }
        timeval timeout{};
        timeout.tv_sec = 2;
        ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        connections.push_back({conn, {}});
      }
    }

    // Walk backwards so closing a connection does not disturb the
    // pfds<->connections correspondence of entries not yet visited.
    for (std::size_t i = pfds.size(); i-- > 1;) {
      if (pfds[i].revents == 0) continue;
      const std::size_t ci = i - 1;
      if (ci >= connections.size()) continue;
      Connection& conn = connections[ci];
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        close_connection(ci);
        continue;
      }
      conn.inbox.append(buf, static_cast<std::size_t>(n));
      if (!process_input(conn)) close_connection(ci);
    }
  }

  for (const Connection& conn : connections) ::close(conn.fd);
  connections.clear();
}

}  // namespace spi::obs
