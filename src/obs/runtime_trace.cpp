#include "obs/runtime_trace.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"

namespace spi::obs {

namespace {

void append_escaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

RuntimeTraceRecorder::RuntimeTraceRecorder() : epoch_ns_(monotonic_ns()) {}

std::int64_t RuntimeTraceRecorder::now_us() const {
  return (monotonic_ns() - epoch_ns_) / 1000;
}

void RuntimeTraceRecorder::record(RuntimeSpan span) {
  span.end_us = std::max(span.end_us, span.start_us);
  std::lock_guard lock(mutex_);
  spans_.push_back(std::move(span));
}

void RuntimeTraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
}

std::vector<RuntimeSpan> RuntimeTraceRecorder::spans() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::string RuntimeTraceRecorder::to_chrome_trace_json() const {
  std::vector<RuntimeSpan> spans = this->spans();
  // Chrome's viewer copes with any order, but a time-sorted trace is
  // stable for diffing and for the monotonicity tests.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const RuntimeSpan& a, const RuntimeSpan& b) {
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.tid < b.tid;
                   });
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const RuntimeSpan& s : spans) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"";
    append_escaped(out, s.name);
    out << "\",\"cat\":\"";
    append_escaped(out, s.category);
    out << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << s.tid << ",\"ts\":" << s.start_us
        << ",\"dur\":" << (s.end_us - s.start_us) << ",\"args\":{\"iteration\":" << s.iteration
        << "}}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace spi::obs
