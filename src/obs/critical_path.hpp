/// \file critical_path.hpp
/// Realized critical-path reconstruction over a flight-recorder log.
///
/// The paper's static side predicts an iteration period — the sync
/// graph's maximum cycle mean, exported as `spi_plan_resync_mcm_after`.
/// This analyzer computes the *dynamic* side from a FlightLog: the
/// chain of causally-dependent activity that tiles the run's makespan,
/// with every nanosecond (or modeled cycle) attributed to exactly one
/// of four categories:
///
///  * compute — inside an actor firing on the critical path
///  * blocked — a processor waiting on a channel (back-pressure or an
///              empty queue) while on the critical path
///  * comm    — the in-flight window between a matched send and the
///              receive that unblocked the path
///  * idle    — critical-path time with no recorded activity (engine
///              scheduling gaps, pre-first-firing warmup)
///
/// Reconstruction walks *backward* from the last event: within a
/// processor, program order gives dependencies; across processors,
/// (edge, aux, seq) matches a receive to its send. Each step attributes
/// the interval [cursor_bottom, cursor_top] and moves the cursor to the
/// interval's bottom (possibly on another processor), so the emitted
/// segments tile [t_first, t_last] exactly: cp length == makespan by
/// construction. The parity test leans on that: over the *simulator's*
/// event stream the analyzer's cp length equals the simulator's
/// reported makespan to the cycle.
///
/// Attribution is also aggregated off the path: per-channel and
/// per-actor blocked time over *all* processors, so the report answers
/// "which channel is the bottleneck" even when the path only grazes it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace spi::obs {

/// One attributed interval of the realized critical path, in reverse
/// chronological discovery order reversed back to chronological.
struct CriticalSegment {
  enum class Kind { kCompute, kBlocked, kComm, kIdle };
  Kind kind = Kind::kIdle;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int32_t proc = -1;
  std::int32_t actor = -1;  ///< kCompute: the firing actor
  std::int32_t edge = -1;   ///< kBlocked / kComm: the channel involved
  std::int64_t iteration = -1;

  [[nodiscard]] std::int64_t duration() const { return end - begin; }
};

/// Blocked/communication time charged to one channel (edge id), summed
/// over all processors — not just the critical path.
struct ChannelAttribution {
  std::int32_t edge = -1;
  std::string name;
  std::int64_t producer_blocked = 0;  ///< back-pressure (full channel)
  std::int64_t consumer_blocked = 0;  ///< starvation (empty channel)
  std::int64_t cp_blocked = 0;        ///< blocked time on the critical path
  std::int64_t cp_comm = 0;           ///< in-flight time on the critical path
  std::int64_t messages = 0;          ///< receives observed
};

/// Compute/blocked time charged to one actor.
struct ActorAttribution {
  std::int32_t actor = -1;
  std::string name;
  std::int64_t compute = 0;     ///< total firing time, all processors
  std::int64_t cp_compute = 0;  ///< firing time on the critical path
  std::int64_t firings = 0;
};

struct AnalyzeOptions {
  /// The plan's predicted iteration-period bound (sync-graph MCM, in
  /// the same unit as the log's timestamps). <= 0 means unknown; the
  /// realized-vs-predicted fields are then omitted from the report.
  double predicted_mcm = 0.0;
  /// Unit scale for predicted_mcm relative to log timestamps (e.g. a
  /// wall-clock run at 1 cycle = 1 us has mcm_scale = 1000 with "ns"
  /// logs). Default 1: same unit.
  double mcm_scale = 1.0;
};

/// The analyzer's full output.
struct CriticalPathReport {
  std::string time_unit;  ///< copied from the log
  std::int32_t proc_count = 0;
  std::int64_t events = 0;
  std::int64_t dropped = 0;

  std::int64_t t_first = 0;  ///< earliest event timestamp
  std::int64_t t_last = 0;   ///< latest event timestamp
  /// == t_last - t_first == sum of segment durations (exact tiling).
  std::int64_t cp_length = 0;
  std::int64_t cp_compute = 0;
  std::int64_t cp_blocked = 0;
  std::int64_t cp_comm = 0;
  std::int64_t cp_idle = 0;

  /// Realized iteration period: mean over observed iterations, and a
  /// steady-state estimate (slope over the second half, mirroring
  /// sim::ExecStats). 0 when fewer than 2 iterations completed.
  double realized_period_avg = 0.0;
  double realized_period_steady = 0.0;
  std::int64_t iterations_observed = 0;

  /// Maximum number of iterations simultaneously "open" (between an
  /// iteration's first FireBegin and its last FireEnd): the realized
  /// cross-iteration pipelining depth. 1 = barriered/sequential; >1 =
  /// the free-running workers actually overlapped iterations.
  std::int64_t pipelined_iterations_max = 0;

  /// Predicted bound echoed from AnalyzeOptions (already scaled into
  /// the log's unit); 0 = unknown.
  double predicted_mcm = 0.0;
  /// realized_period_steady / predicted_mcm (0 when either unknown).
  double period_ratio = 0.0;

  std::vector<CriticalSegment> segments;        ///< chronological
  std::vector<ChannelAttribution> channels;     ///< sorted by total blocked desc
  std::vector<ActorAttribution> actors;         ///< sorted by cp_compute desc

  /// Bottleneck headline: the channel with the most critical-path
  /// blocked+comm time (-1 = none; compute-bound run).
  std::int32_t bottleneck_edge = -1;
  std::string bottleneck_channel;

  /// Full report as a JSON document (stable key order; validated by
  /// tools/json_check in the tooling ctest tier).
  [[nodiscard]] std::string to_json() const;

  /// Chrome trace-event JSON: one "X" slice per firing / block /
  /// critical-path segment, plus "s"/"t" flow events chaining the
  /// critical path so Perfetto draws it as connected arrows.
  [[nodiscard]] std::string to_chrome_trace_json(const FlightLog& log) const;

  /// spi_critpath_* gauges (lengths, breakdown, realized vs predicted
  /// period, per-channel/per-actor attribution).
  void publish_metrics(MetricRegistry& registry) const;
};

/// Reconstructs the realized critical path from a flight log.
/// The log may come from ThreadedRuntime (wall clock) or from the timed
/// simulator via sim/flight_adapter.hpp (modeled time) — same schema.
/// Tolerates truncated logs (ring overflow): unmatched events degrade
/// to idle/blocked attribution, never UB. Throws std::invalid_argument
/// only on structurally impossible input (proc out of range).
[[nodiscard]] CriticalPathReport analyze_critical_path(const FlightLog& log,
                                                       const AnalyzeOptions& options = {});

}  // namespace spi::obs
