#include "obs/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/metrics.hpp"
#include "obs/text_escape.hpp"

namespace spi::obs {

const char* to_string(StallKind kind) {
  switch (kind) {
    case StallKind::kNone: return "none";
    case StallKind::kDeadlock: return "deadlock";
    case StallKind::kLivelock: return "livelock";
    case StallKind::kSlowActor: return "slow-actor";
  }
  return "none";
}

namespace {

void append_worker_json(std::string& out, const WorkerSnapshot& w) {
  out += "{\"proc\":" + std::to_string(w.proc);
  out += ",\"epoch\":" + std::to_string(w.epoch);
  out += ",\"iteration\":" + std::to_string(w.iteration);
  out += ",\"completed\":" + std::to_string(w.completed);
  out += ",\"step\":" + std::to_string(w.step);
  out += ",\"actor\":" + std::to_string(w.actor);
  out += ",\"waiting_edge\":" + std::to_string(w.waiting_edge);
  out += ",\"waiting_side\":" + std::to_string(w.waiting_side);
  out += std::string(",\"done\":") + (w.done ? "true" : "false") + "}";
}

}  // namespace

std::string StallReport::to_json() const {
  std::string out = "{\"classification\":\"";
  out += to_string(kind);
  out += "\",\"edge\":" + std::to_string(edge);
  out += ",\"channel\":\"" + detail::json_escaped(channel);
  out += "\",\"actor\":" + std::to_string(actor);
  out += ",\"actor_name\":\"" + detail::json_escaped(actor_name);
  out += "\",\"window_ms\":" + std::to_string(window_ms);
  out += ",\"stalled_ms\":" + std::to_string(stalled_ms);
  out += ",\"iteration_min\":" + std::to_string(iteration_min);
  out += ",\"iteration_max\":" + std::to_string(iteration_max);
  out += ",\"inflight_iterations\":" + std::to_string(inflight_iterations);
  out += ",\"message\":\"" + detail::json_escaped(message);
  out += "\",\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (i) out += ",";
    append_worker_json(out, workers[i]);
  }
  out += "]}";
  return out;
}

std::string HealthStatus::to_json() const {
  std::string out = std::string("{\"ok\":") + (ok ? "true" : "false");
  out += ",\"verdict\":\"" + detail::json_escaped(verdict);
  out += "\",\"last_progress_ms\":" + std::to_string(last_progress_ms);
  out += ",\"window_ms\":" + std::to_string(window_ms) + "}";
  return out;
}

StallError::StallError(StallReport report)
    : std::runtime_error("SPI watchdog: " + report.message), report_(std::move(report)) {}

ProgressWatchdog::ProgressWatchdog(WatchdogOptions options, Hooks hooks)
    : options_(std::move(options)), hooks_(std::move(hooks)) {
  if (!hooks_.snapshot)
    throw std::invalid_argument("ProgressWatchdog: a snapshot hook is required");
  if (options_.window_ms <= 0)
    throw std::invalid_argument("ProgressWatchdog: window_ms must be positive");
  last_progress_ns_.store(monotonic_ns(), std::memory_order_relaxed);
}

ProgressWatchdog::~ProgressWatchdog() { stop(); }

void ProgressWatchdog::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  last_progress_ns_.store(monotonic_ns(), std::memory_order_relaxed);
  thread_ = std::thread([this] { monitor(); });
}

void ProgressWatchdog::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mutex_);
  running_ = false;
}

StallReport ProgressWatchdog::last_report() const {
  std::lock_guard lock(mutex_);
  return last_report_;
}

HealthStatus ProgressWatchdog::health() const {
  HealthStatus status;
  status.window_ms = options_.window_ms;
  status.last_progress_ms =
      (monotonic_ns() - last_progress_ns_.load(std::memory_order_relaxed)) / 1'000'000;
  if (stalled_.load(std::memory_order_relaxed)) {
    std::lock_guard lock(mutex_);
    status.ok = false;
    status.verdict = "stalled: " + last_report_.message;
  }
  return status;
}

StallReport ProgressWatchdog::classify(const std::vector<WorkerSnapshot>& workers,
                                       std::int64_t stalled_ms) const {
  StallReport report;
  report.window_ms = options_.window_ms;
  report.stalled_ms = stalled_ms;
  report.workers = workers;

  // Only live (not-done) workers can hold the run up; a done worker's
  // frozen epoch is success, not a stall.
  std::vector<const WorkerSnapshot*> live;
  for (const WorkerSnapshot& w : workers)
    if (!w.done) live.push_back(&w);
  if (live.empty()) {
    report.kind = StallKind::kNone;
    report.classification = to_string(report.kind);
    report.message = "all workers done";
    return report;
  }

  // Iteration spread across the live workers: under cross-iteration
  // pipelining a healthy run keeps workers on *different* iterations, so
  // the spread is context for the diagnosis, never evidence of a stall
  // by itself (only frozen epochs are).
  report.iteration_min = live.front()->iteration;
  report.iteration_max = live.front()->iteration;
  for (const WorkerSnapshot* w : live) {
    report.iteration_min = std::min(report.iteration_min, w->iteration);
    report.iteration_max = std::max(report.iteration_max, w->iteration);
  }
  report.inflight_iterations = report.iteration_max - report.iteration_min + 1;

  // A worker inside a compute function (an actor is set, no channel op
  // in flight) dominates the diagnosis: everyone else is back-pressure
  // downstream/upstream of it.
  const WorkerSnapshot* busy = nullptr;
  bool all_waiting = true;
  for (const WorkerSnapshot* w : live) {
    if (w->waiting_edge < 0) {
      all_waiting = false;
      if (w->actor >= 0 && busy == nullptr) busy = w;
    }
  }

  if (busy != nullptr) {
    report.kind = StallKind::kSlowActor;
    report.actor = busy->actor;
    if (hooks_.actor_name) report.actor_name = hooks_.actor_name(busy->actor);
    report.message = "no progress for " + std::to_string(stalled_ms) + "ms; actor '" +
                     (report.actor_name.empty() ? std::to_string(report.actor)
                                                : report.actor_name) +
                     "' on proc " + std::to_string(busy->proc) +
                     " is executing and not returning";
  } else if (all_waiting) {
    // Every live worker is parked on a channel: a cyclic (or dead-edge)
    // wait. Name the channel with the most waiters — in the
    // dropped-forever reliability case that is the dead edge, with the
    // producer retransmitting into it and the consumer timing out on it.
    std::map<std::int32_t, int> waiters;
    for (const WorkerSnapshot* w : live) ++waiters[w->waiting_edge];
    std::int32_t edge = live.front()->waiting_edge;
    int best = 0;
    for (const auto& [e, n] : waiters)
      if (n > best) {
        best = n;
        edge = e;
      }
    report.kind = StallKind::kDeadlock;
    report.edge = edge;
    if (hooks_.channel_name) report.channel = hooks_.channel_name(edge);
    report.message = "no progress for " + std::to_string(stalled_ms) +
                     "ms; all workers blocked on channels, most on '" +
                     (report.channel.empty() ? "edge " + std::to_string(edge)
                                             : report.channel) +
                     "' (edge " + std::to_string(edge) + ")";
  } else {
    report.kind = StallKind::kLivelock;
    report.message = "no progress for " + std::to_string(stalled_ms) +
                     "ms; workers are running but no firing completes";
  }
  report.classification = to_string(report.kind);
  if (report.inflight_iterations > 1)
    report.message += "; " + std::to_string(report.inflight_iterations) +
                      " iterations in flight [" + std::to_string(report.iteration_min) +
                      ".." + std::to_string(report.iteration_max) + "]";
  // The classification leads the message so log lines, StallError
  // what() and /healthz verdicts all name the verdict verbatim.
  report.message = report.classification + (": " + report.message);
  return report;
}

void ProgressWatchdog::monitor() {
  const std::int64_t poll_ms = options_.effective_poll_ms();
  const std::int64_t window_ns = options_.window_ms * 1'000'000;
  std::vector<std::uint64_t> last_epochs;
  bool fired = false;

  std::unique_lock lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(poll_ms), [this] { return stop_; });
    if (stop_) break;

    lock.unlock();
    const std::vector<WorkerSnapshot> workers = hooks_.snapshot();
    const std::int64_t now = monotonic_ns();

    bool progressed = last_epochs.size() != workers.size();
    bool all_done = !workers.empty();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].done) all_done = false;
      if (!progressed && (workers[i].epoch != last_epochs[i] || workers[i].done))
        progressed = true;
    }
    last_epochs.resize(workers.size());
    for (std::size_t i = 0; i < workers.size(); ++i) last_epochs[i] = workers[i].epoch;

    if (progressed || all_done) {
      last_progress_ns_.store(now, std::memory_order_relaxed);
      if (fired || stalled_.load(std::memory_order_relaxed)) {
        // Progress resumed after a (non-aborting) stall: re-arm.
        stalled_.store(false, std::memory_order_relaxed);
        fired = false;
      }
      lock.lock();
      continue;
    }

    const std::int64_t stalled_ns =
        now - last_progress_ns_.load(std::memory_order_relaxed);
    if (!fired && stalled_ns >= window_ns) {
      const StallReport report = classify(workers, stalled_ns / 1'000'000);
      if (report.kind != StallKind::kNone) {
        {
          std::lock_guard report_lock(mutex_);
          last_report_ = report;
        }
        stalled_.store(true, std::memory_order_relaxed);
        fired = true;
        if (options_.on_stall) options_.on_stall(report);
        if (hooks_.on_stall) hooks_.on_stall(report);
      }
    }
    lock.lock();
  }
}

}  // namespace spi::obs
