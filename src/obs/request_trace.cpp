#include "obs/request_trace.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/text_escape.hpp"

namespace spi::obs {

namespace {

/// Same decade span as spi_serve_burst_seconds: 1 us .. ~260 ms.
std::vector<double> stage_bounds() { return Histogram::exponential_bounds(1e-6, 4.0, 10); }

void append_span_json(std::string& out, const StoredRequestSpan& stored) {
  const RequestSpan& s = stored.span;
  out += "{\"id\": " + std::to_string(s.id);
  out += ", \"tenant\": \"";
  detail::append_json_escaped(out, stored.tenant);
  out += "\", \"app\": \"";
  detail::append_json_escaped(out, stored.app);
  out += "\", \"status\": " + std::to_string(s.status);
  out += ", \"batch\": " + std::to_string(s.batch_id);
  out += ", \"batch_size\": " + std::to_string(s.batch_size);
  out += ", \"sampled\": ";
  out += s.sampled ? "true" : "false";
  out += ", \"ingest_ns\": " + std::to_string(s.ingest_ns);
  for (std::size_t k = 0; k < kRequestStageCount; ++k) {
    out += ", \"";
    out += request_stage_name(static_cast<RequestStage>(k));
    out += "_ns\": " + std::to_string(s.stage_ns[k]);
  }
  out += ", \"e2e_ns\": " + std::to_string(s.e2e_ns()) + "}";
}

void append_us(std::string& out, double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", us);
  out += buf;
}

}  // namespace

const char* request_stage_name(RequestStage stage) {
  switch (stage) {
    case RequestStage::kAdmission: return "admission";
    case RequestStage::kQueue: return "queue";
    case RequestStage::kBatch: return "batch";
    case RequestStage::kExec: return "exec";
    case RequestStage::kReply: return "reply";
  }
  return "?";
}

RequestTracer::RequestTracer(RequestTracerOptions options, MetricRegistry& registry)
    : options_(options),
      registry_(registry),
      sample_every_(std::max<std::int64_t>(1, options.sample_every)),
      flight_every_(std::max<std::int64_t>(1, options.flight_every)),
      epoch_(std::chrono::steady_clock::now()) {
  options_.sample_every = sample_every_;
  options_.flight_every = flight_every_;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  ring_.reserve(options_.ring_capacity);
}

std::int64_t RequestTracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                              epoch_)
      .count();
}

std::uint64_t RequestTracer::begin_span() {
  return static_cast<std::uint64_t>(requests_total_.fetch_add(1, std::memory_order_relaxed)) + 1;
}

TenantSeries* RequestTracer::make_series(const std::string& tenant) {
  auto series = std::make_unique<TenantSeries>();
  series->name = tenant;
  const Labels tenant_label{{"tenant", tenant}};
  series->requests = &registry_.counter("spi_serve_trace_requests_total", tenant_label,
                                        "completed traced requests per tenant");
  series->rejects = &registry_.counter("spi_serve_trace_rejects_total", tenant_label,
                                       "traced requests answered 429 per tenant");
  series->e2e_ns = &registry_.counter("spi_serve_request_ns_total", tenant_label,
                                      "summed end-to-end request ns per tenant");
  series->e2e_seconds = &registry_.histogram("spi_serve_request_seconds", stage_bounds(),
                                             tenant_label, "sampled end-to-end request latency");
  for (std::size_t k = 0; k < kRequestStageCount; ++k) {
    const char* stage = request_stage_name(static_cast<RequestStage>(k));
    const Labels labels{{"stage", stage}, {"tenant", tenant}};
    series->stage_ns[k] = &registry_.counter("spi_serve_stage_ns_total", labels,
                                             "summed per-stage request ns");
    series->stage_seconds[k] = &registry_.histogram("spi_serve_stage_seconds", stage_bounds(),
                                                    labels, "sampled per-stage request latency");
  }
  TenantSeries* raw = series.get();
  series_.emplace(tenant, std::move(series));
  return raw;
}

TenantSeries* RequestTracer::tenant_series(const std::string& tenant) {
  if (!options_.enabled) return nullptr;
  const auto it = series_.find(tenant);
  if (it != series_.end()) return it->second.get();
  if (series_.size() >= options_.max_tenants) {
    // Cardinality cap: overflow tenants share the "_other" series.
    if (other_series_ == nullptr) other_series_ = make_series("_other");
    return other_series_;
  }
  return make_series(tenant);
}

void RequestTracer::store_span(TenantSeries& series, const RequestSpan& span, std::int64_t e2e,
                               const std::string& tenant, const std::string& app) {
  if (span.sampled) {
    sampled_total_.fetch_add(1, std::memory_order_relaxed);
    series.e2e_seconds->observe(static_cast<double>(e2e) * 1e-9);
    for (std::size_t k = 0; k < kRequestStageCount; ++k)
      series.stage_seconds[k]->observe(static_cast<double>(span.stage_ns[k]) * 1e-9);
    if (ring_.size() < options_.ring_capacity) {
      ring_.push_back({span, tenant, app});
    } else {
      StoredRequestSpan& slot = ring_[ring_count_ % options_.ring_capacity];
      slot.span = span;
      slot.tenant = tenant;
      slot.app = app;
    }
    ++ring_count_;
  }

  // Tail outliers bypass the sampling decision: admission to the
  // reservoir only needs one integer compare on the non-outlier path.
  if (outliers_.size() < options_.outlier_capacity || e2e > outlier_min_ns_)
    store_outlier(span, tenant, app);
}

void RequestTracer::complete(TenantSeries& series, const RequestSpan& span,
                             const std::string& tenant, const std::string& app) {
  series.requests->inc();
  if (span.status == 429) series.rejects->inc();
  std::int64_t e2e = 0;
  for (std::size_t k = 0; k < kRequestStageCount; ++k) {
    const std::int64_t ns = span.stage_ns[k];
    if (ns != 0) series.stage_ns[k]->inc(ns);
    e2e += ns;
  }
  series.e2e_ns->inc(e2e);
  store_span(series, span, e2e, tenant, app);
}

void RequestTracer::complete_batch(TenantSeries& series, RequestSpan span,
                                   std::span<const std::uint64_t> ids,
                                   const std::string& tenant, const std::string& app) {
  const std::int64_t n = static_cast<std::int64_t>(ids.size());
  if (n == 0) return;
  const std::int64_t e2e = span.e2e_ns();
  series.requests->inc(n);
  if (span.status == 429) series.rejects->inc(n);
  for (std::size_t k = 0; k < kRequestStageCount; ++k)
    if (span.stage_ns[k] != 0) series.stage_ns[k]->inc(span.stage_ns[k] * n);
  series.e2e_ns->inc(e2e * n);

  bool stored = false;
  for (const std::uint64_t id : ids) {
    if (!is_sampled(id)) continue;
    span.id = id;
    span.sampled = true;
    store_span(series, span, e2e, tenant, app);
    stored = true;
  }
  // An unsampled batch still offers one representative to the slowest-N
  // reservoir (every job of the batch has the same e2e, so one
  // candidate decides for all of them).
  if (!stored && (outliers_.size() < options_.outlier_capacity || e2e > outlier_min_ns_)) {
    span.id = ids.front();
    span.sampled = false;
    store_outlier(span, tenant, app);
  }
}

void RequestTracer::store_outlier(const RequestSpan& span, const std::string& tenant,
                                  const std::string& app) {
  if (options_.outlier_capacity == 0) return;
  if (outliers_.size() < options_.outlier_capacity) {
    outliers_.push_back({span, tenant, app});
  } else {
    auto slowest_min =
        std::min_element(outliers_.begin(), outliers_.end(),
                         [](const StoredRequestSpan& a, const StoredRequestSpan& b) {
                           return a.span.e2e_ns() < b.span.e2e_ns();
                         });
    *slowest_min = {span, tenant, app};
  }
  if (outliers_.size() == options_.outlier_capacity) {
    outlier_min_ns_ = outliers_.front().span.e2e_ns();
    for (const StoredRequestSpan& s : outliers_)
      outlier_min_ns_ = std::min(outlier_min_ns_, s.span.e2e_ns());
  }
}

void RequestTracer::note_flight(std::int64_t batch_id, FlightLog log) {
  flight_batch_ = batch_id;
  flight_log_ = std::move(log);
}

std::string RequestTracer::trace_json() const {
  std::string out = "{\"schema\": 1, \"enabled\": ";
  out += options_.enabled ? "true" : "false";
  out += ", \"sample_every\": " + std::to_string(sample_every_);
  out += ", \"flight_every\": " + std::to_string(flight_every_);
  out += ", \"ring_capacity\": " + std::to_string(options_.ring_capacity);
  out += ", \"outlier_capacity\": " + std::to_string(options_.outlier_capacity);
  out += ", \"requests_total\": " + std::to_string(requests_total());
  out += ", \"sampled_total\": " + std::to_string(sampled_total());
  out += ", \"spans_evicted\": " +
         std::to_string(ring_count_ > ring_.size() ? ring_count_ - ring_.size() : 0);
  out += ", \"flight_batch\": " + std::to_string(flight_batch_);
  out += ",\n \"spans\": [\n";
  const std::uint64_t held = ring_.size();
  for (std::uint64_t i = 0; i < held; ++i) {
    // Oldest first: the ring index of the (count - held + i)-th span.
    const StoredRequestSpan& stored = ring_[(ring_count_ - held + i) % options_.ring_capacity];
    out += "  ";
    append_span_json(out, stored);
    out += i + 1 < held ? ",\n" : "\n";
  }
  out += " ],\n \"outliers\": [\n";
  std::vector<const StoredRequestSpan*> slowest;
  slowest.reserve(outliers_.size());
  for (const StoredRequestSpan& s : outliers_) slowest.push_back(&s);
  std::sort(slowest.begin(), slowest.end(),
            [](const StoredRequestSpan* a, const StoredRequestSpan* b) {
              return a->span.e2e_ns() > b->span.e2e_ns();
            });
  for (std::size_t i = 0; i < slowest.size(); ++i) {
    out += "  ";
    append_span_json(out, *slowest[i]);
    out += i + 1 < slowest.size() ? ",\n" : "\n";
  }
  out += " ]\n}\n";
  return out;
}

void RequestTracer::append_rollup_json(std::string& out, const TenantSeries& series) const {
  const std::int64_t requests = series.requests->value();
  const double n = requests > 0 ? static_cast<double>(requests) : 1.0;
  out += "\"requests\": " + std::to_string(requests);
  out += ", \"rejects\": " + std::to_string(series.rejects->value());
  out += ", \"series\": \"";
  detail::append_json_escaped(out, series.name);
  out += "\", \"e2e\": {\"ns_total\": " + std::to_string(series.e2e_ns->value());
  out += ", \"us_mean\": ";
  append_us(out, static_cast<double>(series.e2e_ns->value()) / n / 1e3);
  out += ", \"us_p50\": ";
  append_us(out, series.e2e_seconds->quantile(0.50) * 1e6);
  out += ", \"us_p99\": ";
  append_us(out, series.e2e_seconds->quantile(0.99) * 1e6);
  out += "}, \"stages\": {";
  for (std::size_t k = 0; k < kRequestStageCount; ++k) {
    if (k != 0) out += ", ";
    out += "\"";
    out += request_stage_name(static_cast<RequestStage>(k));
    out += "\": {\"ns_total\": " + std::to_string(series.stage_ns[k]->value());
    out += ", \"us_mean\": ";
    append_us(out, static_cast<double>(series.stage_ns[k]->value()) / n / 1e3);
    out += ", \"us_p99\": ";
    append_us(out, series.stage_seconds[k]->quantile(0.99) * 1e6);
    out += "}";
  }
  out += "}";
}

}  // namespace spi::obs
