/// \file runtime_trace.hpp
/// Wall-clock execution tracing for the threaded runtime (and any other
/// real-time component).
///
/// The timed simulator already emits Chrome trace-event JSON
/// (sim/trace.hpp) in simulated time; RuntimeTraceRecorder emits the
/// *same* event shape in real microseconds, so a simulated run and a
/// threaded run of one system load side by side in Perfetto /
/// chrome://tracing and can be compared span for span.
///
/// Recording is thread-safe (one mutex around an append-only vector;
/// spans are recorded at firing granularity, far off the token hot
/// path). Timestamps come from the recorder's steady-clock epoch, so a
/// trace always starts near t=0.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spi::obs {

/// One completed wall-clock span (a firing, a blocking wait, a phase).
struct RuntimeSpan {
  std::string name;       ///< actor or phase name
  std::string category;   ///< "firing", "block", "phase", ...
  std::int32_t tid = 0;   ///< processor / worker-thread index
  std::int64_t start_us = 0;  ///< microseconds since the recorder epoch
  std::int64_t end_us = 0;
  std::int64_t iteration = -1;  ///< graph iteration (-1 = not applicable)
};

class RuntimeTraceRecorder {
 public:
  RuntimeTraceRecorder();

  /// Microseconds elapsed since this recorder was constructed
  /// (monotonic; use for span start/end stamps).
  [[nodiscard]] std::int64_t now_us() const;

  /// Thread-safe append. end_us < start_us is clamped to start_us.
  void record(RuntimeSpan span);

  void clear();

  /// Snapshot copy of everything recorded so far.
  [[nodiscard]] std::vector<RuntimeSpan> spans() const;

  /// Chrome trace-event JSON — "X" duration events, pid 0, tid = the
  /// span's tid, same shape as sim::to_chrome_trace_json so the two are
  /// diffable in Perfetto.
  [[nodiscard]] std::string to_chrome_trace_json() const;

 private:
  std::int64_t epoch_ns_;
  mutable std::mutex mutex_;
  std::vector<RuntimeSpan> spans_;
};

}  // namespace spi::obs
