/// \file metrics.hpp
/// Library-wide observability: a metric registry shared by the compile
/// pipeline, the timed simulator and the threaded runtime.
///
/// Three instrument kinds, modeled on the Prometheus data model:
///
///  * Counter   — monotonically increasing int64 (messages, bytes,
///                block events). Lock-free: a relaxed std::atomic
///                fetch_add, cheap enough for hot paths.
///  * Gauge     — a double that goes up and down (plan-level facts,
///                phase wall-clock seconds).
///  * Histogram — fixed upper-bound buckets with atomic counts
///                (latencies, per-iteration periods). Quantiles are
///                estimated by linear interpolation inside a bucket.
///
/// Instruments are identified by (name, labels); asking the registry for
/// the same identity twice returns the same instrument. Handles returned
/// by the registry stay valid for the registry's lifetime, so hot code
/// resolves its instruments once and then only touches atomics.
///
/// Two exporters serialize a consistent snapshot of everything
/// registered: `to_json()` (machine-readable, consumed by
/// `spi_compile --metrics=json` and the tooling ctest tier) and
/// `to_prometheus()` (text exposition format 0.0.4, scrapeable).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace spi::obs {

/// Sorted (key, value) pairs identifying one time series of a metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::int64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending; an implicit +inf bucket
  /// is appended. Throws std::invalid_argument otherwise.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  struct Snapshot {
    std::vector<double> upper_bounds;   ///< finite bounds (no +inf entry)
    std::vector<std::int64_t> buckets;  ///< per bound + final +inf bucket
    std::int64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate (q clamped to [0,1]) by linear interpolation
  /// within the containing bucket. Defined edge cases (asserted in
  /// tests/test_metrics.cpp, documented in docs/observability.md):
  /// empty histogram -> 0; q=0 -> the lower edge of the first nonempty
  /// bucket; q=1 -> the upper bound of the last nonempty finite bucket;
  /// any quantile landing in the implicit +inf bucket -> that bucket's
  /// floor (the largest finite bound, or 0 with no finite bounds).
  [[nodiscard]] double quantile(double q) const;

  /// "count=N sum=S mean=M p50=.. p90=.. p99=.." — one line for bench
  /// and report output.
  [[nodiscard]] std::string summary(const std::string& unit = "") const;

  /// Convenience bucket layouts.
  [[nodiscard]] static std::vector<double> exponential_bounds(double start, double factor,
                                                              std::size_t count);
  [[nodiscard]] static std::vector<double> linear_bounds(double start, double step,
                                                         std::size_t count);

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  ///< upper_bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe instrument registry with JSON / Prometheus exporters.
/// Registration takes a mutex; returned instrument references are stable
/// and lock-free to update.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {}, const std::string& help = "");
  /// For an already-registered (name, labels) the existing histogram is
  /// returned and `upper_bounds` is ignored.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const Labels& labels = {}, const std::string& help = "");

  /// Sum of one counter metric over all its label sets (0 when absent).
  [[nodiscard]] std::int64_t counter_total(const std::string& name) const;
  /// Value of one exact (name, labels) counter (0 when absent).
  [[nodiscard]] std::int64_t counter_value(const std::string& name, const Labels& labels) const;
  /// Value of one exact (name, labels) gauge (0 when absent).
  [[nodiscard]] double gauge_value(const std::string& name, const Labels& labels = {}) const;

  /// One collected time series: the live values frozen at collect()
  /// time, decoupled from the instrument they came from.
  struct SeriesSnapshot {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Labels labels;
    std::string help;
    Kind kind = Kind::kCounter;
    std::int64_t counter_value = 0;
    double gauge_value = 0.0;
    Histogram::Snapshot histogram;
  };

  /// Freezes every registered series in one pass under the registry
  /// lock. Both exporters format from this, never from live
  /// instruments, so concurrent updates cannot tear an export
  /// mid-format; each histogram snapshot keeps its +Inf cumulative
  /// bucket equal to its count.
  [[nodiscard]] std::vector<SeriesSnapshot> collect() const;

  /// {"counters":[...],"gauges":[...],"histograms":[...]} — stable
  /// (name, labels) ordering.
  [[nodiscard]] std::string to_json() const;
  /// Prometheus text exposition format: # HELP / # TYPE lines followed
  /// by the series; histograms emit _bucket{le=...}, _sum, _count.
  [[nodiscard]] std::string to_prometheus() const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Series& series(const std::string& name, const Labels& labels, const std::string& help);

  mutable std::mutex mutex_;
  std::map<Key, Series> series_;
};

/// RAII wall-clock phase timer: on destruction records the elapsed
/// seconds into a gauge (set) and/or a histogram (observe).
class ScopedTimer {
 public:
  explicit ScopedTimer(Gauge* gauge, Histogram* histogram = nullptr);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

  /// Elapsed seconds so far.
  [[nodiscard]] double elapsed_seconds() const;

 private:
  Gauge* gauge_;
  Histogram* histogram_;
  std::int64_t start_ns_;
};

/// Monotonic wall-clock now, nanoseconds (steady_clock).
[[nodiscard]] std::int64_t monotonic_ns();

}  // namespace spi::obs
