/// \file obs_server.hpp
/// Embedded telemetry endpoints over the shared HttpServer plumbing.
///
/// The routing layer of the live observability surface — the transport
/// (sockets, poll loop, HTTP/1.1 keep-alive + pipelining, HTTP/1.0
/// single-request compatibility) lives in http_server.hpp and is shared
/// with the serving daemon's ingest path. Endpoints (see
/// docs/observability.md, "Live telemetry"):
///
///   GET /              endpoint index (text/plain)
///   GET /metrics       Prometheus text exposition of the registry
///   GET /metrics.json  the registry's JSON exporter
///   GET /healthz       liveness/progress verdict (200 ok, 503 stalled)
///   GET /runtime       live runtime snapshot: per-worker state and
///                      per-channel depth/high-watermark vs. bound
///
/// Binding port 0 (the default) asks the kernel for an ephemeral port;
/// `port()` reports the bound one — tests and `--obs-port 0` runs print
/// it instead of racing for a fixed port. The server owns no data: it
/// renders through the hooks in Options, all of which must stay valid
/// between start() and stop().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace spi::obs {

class ObsServer {
 public:
  struct Options {
    int port = 0;                       ///< 0 = kernel-assigned ephemeral port
    std::string bind_address = "127.0.0.1";
    MetricRegistry* registry = nullptr; ///< /metrics + /metrics.json source
    /// Called before rendering /metrics, /metrics.json and /runtime —
    /// the runtime refreshes its channel-depth gauges here.
    std::function<void()> refresh;
    /// /runtime body (a JSON document). Absent: /runtime returns 404.
    std::function<std::string()> runtime_json;
    /// /healthz verdict. Absent: /healthz reports ok with verdict
    /// "no-watchdog" (the server answering is the only liveness fact).
    std::function<HealthStatus()> health;
  };

  explicit ObsServer(Options options);
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;
  ~ObsServer();

  /// Binds, listens and spawns the event-loop thread. Throws
  /// std::runtime_error when the socket cannot be set up.
  void start();
  /// Stops accepting, closes the listener and joins the loop.
  void stop();

  [[nodiscard]] bool running() const { return http_ && http_->running(); }
  /// The bound TCP port (resolves port-0 requests), 0 before start().
  [[nodiscard]] int port() const { return http_ ? http_->port() : 0; }
  [[nodiscard]] std::int64_t requests_served() const {
    return http_ ? http_->requests_served() : 0;
  }

  /// Pure routing: method + target -> response. Exposed so unit tests
  /// cover every endpoint without sockets.
  [[nodiscard]] HttpResponse handle(const std::string& method, const std::string& target) const;

 private:
  Options options_;
  std::unique_ptr<HttpServer> http_;
};

}  // namespace spi::obs
