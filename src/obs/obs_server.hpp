/// \file obs_server.hpp
/// Dependency-free embedded HTTP/1.0 telemetry server.
///
/// One acceptor thread over plain POSIX sockets, one request per
/// connection (`Connection: close`), no keep-alive, no TLS, no
/// third-party code — the live layer a `spi_served` daemon mounts
/// unchanged, and small enough to embed in every ThreadedRuntime::run()
/// behind `RunOptions::obs_port`. Endpoints (see docs/observability.md,
/// "Live telemetry"):
///
///   GET /              endpoint index (text/plain)
///   GET /metrics       Prometheus text exposition of the registry
///   GET /metrics.json  the registry's JSON exporter
///   GET /healthz       liveness/progress verdict (200 ok, 503 stalled)
///   GET /runtime       live runtime snapshot: per-worker state and
///                      per-channel depth/high-watermark vs. bound
///
/// Binding port 0 (the default) asks the kernel for an ephemeral port;
/// `port()` reports the bound one — tests and `--obs-port 0` runs print
/// it instead of racing for a fixed port. The server owns no data: it
/// renders through the hooks in Options, all of which must stay valid
/// between start() and stop().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/watchdog.hpp"

namespace spi::obs {

/// One rendered HTTP response (routing result, pre-serialization).
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class ObsServer {
 public:
  struct Options {
    int port = 0;                       ///< 0 = kernel-assigned ephemeral port
    std::string bind_address = "127.0.0.1";
    MetricRegistry* registry = nullptr; ///< /metrics + /metrics.json source
    /// Called before rendering /metrics, /metrics.json and /runtime —
    /// the runtime refreshes its channel-depth gauges here.
    std::function<void()> refresh;
    /// /runtime body (a JSON document). Absent: /runtime returns 404.
    std::function<std::string()> runtime_json;
    /// /healthz verdict. Absent: /healthz reports ok with verdict
    /// "no-watchdog" (the server answering is the only liveness fact).
    std::function<HealthStatus()> health;
  };

  explicit ObsServer(Options options);
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;
  ~ObsServer();

  /// Binds, listens and spawns the acceptor thread. Throws
  /// std::runtime_error when the socket cannot be set up.
  void start();
  /// Stops accepting, closes the listener and joins the acceptor.
  void stop();

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  /// The bound TCP port (resolves port-0 requests), 0 before start().
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Pure routing: method + target -> response. Exposed so unit tests
  /// cover every endpoint without sockets.
  [[nodiscard]] HttpResponse handle(const std::string& method, const std::string& target) const;

 private:
  void serve();

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> requests_{0};
};

}  // namespace spi::obs
