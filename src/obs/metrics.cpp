#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/text_escape.hpp"

namespace spi::obs {

namespace {

void add_atomic_double(std::atomic<double>& target, double d) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void append_json_escaped(std::ostringstream& out, const std::string& s) {
  // Full RFC 8259 escaping (text_escape.hpp): a raw newline or control
  // character in a label would make the whole export unparseable.
  out << detail::json_escaped(s);
}

void append_json_labels(std::ostringstream& out, const Labels& labels) {
  out << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ",";
    first = false;
    out << "\"";
    append_json_escaped(out, k);
    out << "\":\"";
    append_json_escaped(out, v);
    out << "\"";
  }
  out << "}";
}

/// Prometheus label value escaping: backslash, double quote, newline.
void append_prom_escaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '\\')
      out << "\\\\";
    else if (c == '"')
      out << "\\\"";
    else if (c == '\n')
      out << "\\n";
    else
      out << c;
  }
}

/// # HELP text escaping per exposition format 0.0.4: only backslash and
/// newline — double quotes are NOT escaped on HELP lines (that rule is
/// specific to quoted label values).
void append_prom_help_escaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '\\')
      out << "\\\\";
    else if (c == '\n')
      out << "\\n";
    else
      out << c;
  }
}

void append_prom_labels(std::ostringstream& out, const Labels& labels,
                        const std::string& extra_key = "", const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return;
  out << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ",";
    first = false;
    out << k << "=\"";
    append_prom_escaped(out, v);
    out << "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out << ",";
    out << extra_key << "=\"" << extra_value << "\"";
  }
  out << "}";
}

/// JSON/Prometheus-safe number rendering (no inf/nan in JSON output).
std::string render_double(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

// --- Histogram -----------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)), buckets_(upper_bounds_.size() + 1) {
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i)
    if (upper_bounds_[i] <= upper_bounds_[i - 1])
      throw std::invalid_argument("Histogram: bucket bounds must be strictly ascending");
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_atomic_double(sum_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  // Internally consistent under concurrent observe(): `count` is
  // derived from the bucket reads (never read from count_ separately),
  // so the exported cumulative +Inf bucket always equals `count`; and
  // `sum` is read after the buckets — observe() updates bucket before
  // sum, so a mid-snapshot observation can make the exported sum lead
  // the counted set, never report counted observations missing from it.
  Snapshot s;
  s.upper_bounds = upper_bounds_;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    const std::int64_t n = b.load(std::memory_order_relaxed);
    s.buckets.push_back(n);
    s.count += n;
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::quantile(double q) const {
  const Snapshot s = snapshot();
  if (s.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(s.count);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < s.buckets.size(); ++i) {
    const std::int64_t next = cumulative + s.buckets[i];
    if (static_cast<double>(next) >= target && s.buckets[i] > 0) {
      const double lo = i == 0 ? 0.0 : s.upper_bounds[i - 1];
      if (i == s.upper_bounds.size()) return lo;  // +inf bucket: report its floor
      const double hi = s.upper_bounds[i];
      const double inside = target - static_cast<double>(cumulative);
      return lo + (hi - lo) * inside / static_cast<double>(s.buckets[i]);
    }
    cumulative = next;
  }
  return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
}

std::string Histogram::summary(const std::string& unit) const {
  const Snapshot s = snapshot();
  std::ostringstream out;
  const std::string u = unit.empty() ? "" : " " + unit;
  out << "count=" << s.count;
  if (s.count > 0) {
    out << " mean=" << render_double(s.sum / static_cast<double>(s.count)) << u
        << " p50=" << render_double(quantile(0.50)) << u
        << " p90=" << render_double(quantile(0.90)) << u
        << " p99=" << render_double(quantile(0.99)) << u;
  }
  return out.str();
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  if (start <= 0 || factor <= 1)
    throw std::invalid_argument("Histogram::exponential_bounds: need start > 0, factor > 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v *= factor) bounds.push_back(v);
  return bounds;
}

std::vector<double> Histogram::linear_bounds(double start, double step, std::size_t count) {
  if (step <= 0) throw std::invalid_argument("Histogram::linear_bounds: need step > 0");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    bounds.push_back(start + step * static_cast<double>(i));
  return bounds;
}

// --- MetricRegistry ------------------------------------------------------

MetricRegistry::Series& MetricRegistry::series(const std::string& name, const Labels& labels,
                                               const std::string& help) {
  const Key key{name, sorted(labels)};
  Series& s = series_[key];
  if (s.name.empty()) {
    s.name = name;
    s.labels = key.second;
    s.help = help;
  }
  if (s.help.empty() && !help.empty()) s.help = help;
  return s;
}

Counter& MetricRegistry::counter(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  std::lock_guard lock(mutex_);
  Series& s = series(name, labels, help);
  if (s.gauge || s.histogram)
    throw std::invalid_argument("MetricRegistry: '" + name + "' is not a counter");
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, const Labels& labels,
                             const std::string& help) {
  std::lock_guard lock(mutex_);
  Series& s = series(name, labels, help);
  if (s.counter || s.histogram)
    throw std::invalid_argument("MetricRegistry: '" + name + "' is not a gauge");
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name, std::vector<double> upper_bounds,
                                     const Labels& labels, const std::string& help) {
  std::lock_guard lock(mutex_);
  Series& s = series(name, labels, help);
  if (s.counter || s.gauge)
    throw std::invalid_argument("MetricRegistry: '" + name + "' is not a histogram");
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *s.histogram;
}

std::int64_t MetricRegistry::counter_total(const std::string& name) const {
  std::lock_guard lock(mutex_);
  std::int64_t total = 0;
  for (const auto& [key, s] : series_)
    if (key.first == name && s.counter) total += s.counter->value();
  return total;
}

std::int64_t MetricRegistry::counter_value(const std::string& name, const Labels& labels) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(Key{name, sorted(labels)});
  return it != series_.end() && it->second.counter ? it->second.counter->value() : 0;
}

double MetricRegistry::gauge_value(const std::string& name, const Labels& labels) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(Key{name, sorted(labels)});
  return it != series_.end() && it->second.gauge ? it->second.gauge->value() : 0.0;
}

std::vector<MetricRegistry::SeriesSnapshot> MetricRegistry::collect() const {
  // One tight pass under the lock reading each live value exactly once.
  // Formatting happens outside the lock from this frozen copy, so a
  // mid-scrape update can shift values between two series but can never
  // make one series internally inconsistent or tear a formatted line.
  std::lock_guard lock(mutex_);
  std::vector<SeriesSnapshot> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    SeriesSnapshot snap;
    snap.name = s.name;
    snap.labels = s.labels;
    snap.help = s.help;
    if (s.counter) {
      snap.kind = SeriesSnapshot::Kind::kCounter;
      snap.counter_value = s.counter->value();
    } else if (s.gauge) {
      snap.kind = SeriesSnapshot::Kind::kGauge;
      snap.gauge_value = s.gauge->value();
    } else if (s.histogram) {
      snap.kind = SeriesSnapshot::Kind::kHistogram;
      snap.histogram = s.histogram->snapshot();
    } else {
      continue;  // registered name with no instrument yet
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string MetricRegistry::to_json() const {
  const std::vector<SeriesSnapshot> snapshot = collect();
  std::ostringstream out;
  auto emit_header = [&](const SeriesSnapshot& s) {
    out << "\n    {\"name\":\"";
    append_json_escaped(out, s.name);
    out << "\",\"labels\":";
    append_json_labels(out, s.labels);
  };

  out << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& s : snapshot) {
    if (s.kind != SeriesSnapshot::Kind::kCounter) continue;
    if (!first) out << ",";
    first = false;
    emit_header(s);
    out << ",\"value\":" << s.counter_value << "}";
  }
  out << "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& s : snapshot) {
    if (s.kind != SeriesSnapshot::Kind::kGauge) continue;
    if (!first) out << ",";
    first = false;
    emit_header(s);
    out << ",\"value\":" << render_double(s.gauge_value) << "}";
  }
  out << "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& s : snapshot) {
    if (s.kind != SeriesSnapshot::Kind::kHistogram) continue;
    if (!first) out << ",";
    first = false;
    emit_header(s);
    const Histogram::Snapshot& snap = s.histogram;
    out << ",\"count\":" << snap.count << ",\"sum\":" << render_double(snap.sum)
        << ",\"buckets\":[";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      cumulative += snap.buckets[i];
      if (i) out << ",";
      out << "{\"le\":";
      if (i < snap.upper_bounds.size())
        out << render_double(snap.upper_bounds[i]);
      else
        out << "\"+Inf\"";
      out << ",\"count\":" << cumulative << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string MetricRegistry::to_prometheus() const {
  const std::vector<SeriesSnapshot> snapshot = collect();
  std::ostringstream out;
  // One # HELP / # TYPE block per metric name, series grouped beneath.
  std::string open_name;
  for (const auto& s : snapshot) {
    const char* type = s.kind == SeriesSnapshot::Kind::kCounter  ? "counter"
                       : s.kind == SeriesSnapshot::Kind::kGauge ? "gauge"
                                                                : "histogram";
    if (s.name != open_name) {
      open_name = s.name;
      if (!s.help.empty()) {
        out << "# HELP " << s.name << " ";
        append_prom_help_escaped(out, s.help);
        out << "\n";
      }
      out << "# TYPE " << s.name << " " << type << "\n";
    }
    if (s.kind == SeriesSnapshot::Kind::kCounter) {
      out << s.name;
      append_prom_labels(out, s.labels);
      out << " " << s.counter_value << "\n";
    } else if (s.kind == SeriesSnapshot::Kind::kGauge) {
      out << s.name;
      append_prom_labels(out, s.labels);
      out << " " << render_double(s.gauge_value) << "\n";
    } else {
      const Histogram::Snapshot& snap = s.histogram;
      std::int64_t cumulative = 0;
      for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
        cumulative += snap.buckets[i];
        out << s.name << "_bucket";
        append_prom_labels(out, s.labels, "le",
                           i < snap.upper_bounds.size() ? render_double(snap.upper_bounds[i])
                                                        : std::string("+Inf"));
        out << " " << cumulative << "\n";
      }
      out << s.name << "_sum";
      append_prom_labels(out, s.labels);
      out << " " << render_double(snap.sum) << "\n";
      out << s.name << "_count";
      append_prom_labels(out, s.labels);
      out << " " << snap.count << "\n";
    }
  }
  return out.str();
}

// --- ScopedTimer ---------------------------------------------------------

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScopedTimer::ScopedTimer(Gauge* gauge, Histogram* histogram)
    : gauge_(gauge), histogram_(histogram), start_ns_(monotonic_ns()) {}

double ScopedTimer::elapsed_seconds() const {
  return static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
}

ScopedTimer::~ScopedTimer() {
  const double seconds = elapsed_seconds();
  if (gauge_) gauge_->set(seconds);
  if (histogram_) histogram_->observe(seconds);
}

}  // namespace spi::obs
